"""Streaming-vs-recompute parity for every shared statistic.

The streaming contexts' bit-identity contract: however the stream is
chopped into pushes (single bits up to multi-window slabs), the rolled
window statistics and every preseeded ``window_context`` must equal the
packed kernels recomputed on the equivalent trailing history slice.  The
property tests here randomise push sizes and window rolls (exercising the
mirrored rings across many wrap points and the cumulative-walk ring), and
pin the degenerate streams (all zeros / all ones) and the query API's
edge behaviour (not-ready errors, unsupported block geometries).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    BatchContext,
    StreamingBatchContext,
    StreamingContext,
    pack_matrix,
    run_batch,
)

CHEAP_TESTS = [1, 2, 3, 4, 13]


def random_matrix(rows, nbits, seed=0, p=0.5):
    rng = np.random.default_rng(seed)
    return (rng.random((rows, nbits)) < p).astype(np.uint8)


def split_into_chunks(matrix, sizes):
    """Column-slices of ``matrix`` with the given randomized widths."""
    chunks, offset = [], 0
    for size in sizes:
        take = min(size, matrix.shape[1] - offset)
        if take == 0:
            break
        chunks.append(matrix[:, offset : offset + take])
        offset += take
    if offset < matrix.shape[1]:
        chunks.append(matrix[:, offset:])
    return chunks


def assert_window_parity(stream, history, block_lengths=(64, 128, 256)):
    """Every rolled statistic equals the recompute on the trailing window."""
    window = history[:, -stream.window_bits :]
    reference = BatchContext(window)
    stats = stream.window_stats()
    assert np.array_equal(stats["ones"], reference.ones())
    assert np.array_equal(stats["num_runs"], reference.num_runs())
    assert np.array_equal(stats["last_bits"], reference.last_bits())
    for rolled, recomputed in zip(stats["walk_extremes"], reference.walk_extremes()):
        assert np.array_equal(rolled, recomputed)
    for block_length in block_lengths:
        sums = stream.window_block_sums(block_length)
        assert sums is not None
        assert np.array_equal(sums, reference.block_sums(block_length))
        longest = stream.window_block_longest(block_length)
        if stream.track_runs:
            assert longest is not None
            assert np.array_equal(
                longest, reference.block_longest_one_runs(block_length)
            )
        else:
            assert longest is None


class TestRandomizedPushParity:
    """Parity under randomized chunking, from single bits to huge slabs."""

    @given(
        seed=st.integers(0, 2**32 - 1),
        sizes=st.lists(st.integers(1, 700), min_size=4, max_size=40),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_chunking_matches_recompute(self, seed, sizes):
        window = 512
        total = max(sum(sizes), window + 64)
        history = random_matrix(3, total, seed=seed)
        stream = StreamingBatchContext(3, window)
        for chunk in split_into_chunks(history, sizes):
            stream.push(chunk)
        assert stream.total_bits == total
        if stream.window_ready:
            assert_window_parity(stream, history, block_lengths=(64, 128))
        # The extraction path serves the window at any alignment.
        context = stream.window_context()
        reference = BatchContext(history[:, -window:])
        assert np.array_equal(context.ones(), reference.ones())
        assert np.array_equal(context.num_runs(), reference.num_runs())

    def test_single_bit_pushes(self):
        history = random_matrix(2, 320, seed=11, p=0.4)
        stream = StreamingBatchContext(2, 128)
        for column in range(history.shape[1]):
            stream.push(history[:, column : column + 1])
            if stream.window_ready:
                assert_window_parity(stream, history[:, : column + 1], (64, 128))

    def test_one_giant_push_of_4096_words(self):
        # A single push far larger than the ring exercises the whole-window
        # replacement paths (counter rebuild + full ring overwrite).
        history = random_matrix(2, 4096 * 64, seed=7)
        stream = StreamingBatchContext(2, 2048)
        stream.push(history)
        assert_window_parity(stream, history)

    @pytest.mark.parametrize("value", [0, 1])
    def test_constant_streams(self, value):
        history = np.full((2, 1024), value, dtype=np.uint8)
        stream = StreamingBatchContext(2, 512)
        for chunk in split_into_chunks(history, [63, 64, 65, 1, 511]):
            stream.push(chunk)
        assert_window_parity(stream, history)
        stats = stream.window_stats()
        assert np.array_equal(stats["ones"], np.full(2, value * 512))
        assert np.array_equal(stats["num_runs"], np.ones(2))

    def test_packed_and_uint8_pushes_identical(self):
        history = random_matrix(3, 896, seed=23)
        via_bits = StreamingBatchContext(3, 640)
        via_words = StreamingBatchContext(3, 640)
        for chunk in split_into_chunks(history, [100, 64, 1, 300, 63]):
            via_bits.push(chunk)
            via_words.push(pack_matrix(chunk))
        for stream in (via_bits, via_words):
            assert_window_parity(stream, history)
        assert np.array_equal(
            via_bits.window_matrix().words, via_words.window_matrix().words
        )


class TestWindowRolls:
    """Many rolls wrap the mirrored rings and the cumulative-walk ring."""

    @pytest.mark.parametrize("capacity", [1024, 1600])
    def test_strided_rolls_stay_bit_identical(self, capacity):
        window, stride, rolls = 1024, 192, 50
        total = window + rolls * stride
        history = random_matrix(2, total, seed=5)
        stream = StreamingBatchContext(2, window, capacity_bits=capacity)
        stream.push(history[:, :window])
        assert_window_parity(stream, history[:, :window])
        for roll in range(rolls):
            start = window + roll * stride
            stream.push(history[:, start : start + stride])
            assert_window_parity(stream, history[:, : start + stride])

    def test_preseeded_run_batch_p_values_identical(self):
        window, stride = 1024, 256
        history = random_matrix(4, window + 6 * stride, seed=31, p=0.55)
        stream = StreamingBatchContext(4, window)
        stream.push(history[:, :window])
        for roll in range(6):
            start = window + roll * stride
            stream.push(history[:, start : start + stride])
            rolled = run_batch(stream.window_context(), tests=CHEAP_TESTS)
            recomputed = run_batch(
                BatchContext(history[:, : start + stride][:, -window:]),
                tests=CHEAP_TESTS,
            )
            for rolled_report, recomputed_report in zip(rolled, recomputed):
                assert rolled_report.p_values() == recomputed_report.p_values()

    def test_walk_extremes_survive_maximum_eviction(self):
        # The global walk maximum sits in the first window and must leave
        # the statistics once evicted (walks are query-time reductions, not
        # rollable totals — the regression this pins).
        front = np.ones((1, 512), dtype=np.uint8)
        back = random_matrix(1, 2048, seed=13, p=0.3)
        history = np.concatenate([front, back], axis=1)
        stream = StreamingBatchContext(1, 512)
        for chunk in split_into_chunks(history, [512] * 5):
            stream.push(chunk)
            assert_window_parity(stream, history[:, : stream.total_bits])

    def test_window_matrix_serves_any_trailing_slice(self):
        history = random_matrix(2, 2300, seed=41)
        stream = StreamingBatchContext(2, 1024, capacity_bits=2048)
        for chunk in split_into_chunks(history, [777, 63, 1000, 460]):
            stream.push(chunk)
        for nbits in (0, 1, 63, 64, 65, 1000, 1024, 2048):
            served = stream.window_matrix(nbits).unpack()
            assert np.array_equal(served, history[:, history.shape[1] - nbits :])
        with pytest.raises(ValueError):
            stream.window_matrix(2049)


class TestQueryEdgeBehaviour:
    def test_queries_raise_before_window_fills(self):
        stream = StreamingBatchContext(2, 256)
        stream.push(random_matrix(2, 255, seed=3))
        assert not stream.window_ready
        with pytest.raises(ValueError):
            stream.window_stats()
        with pytest.raises(ValueError):
            stream.window_block_sums(64)
        with pytest.raises(ValueError):
            stream.window_block_longest(64)

    def test_queries_raise_with_pending_tail_bits(self):
        stream = StreamingBatchContext(1, 128)
        stream.push(random_matrix(1, 129, seed=4))
        assert stream.tail_bits == 1
        assert not stream.window_ready
        with pytest.raises(ValueError):
            stream.window_stats()
        # The extraction path still serves a bit-identical window.
        history = random_matrix(1, 129, seed=4)
        context = stream.window_context()
        assert np.array_equal(context.ones(), BatchContext(history[:, -128:]).ones())

    def test_unaligned_window_always_falls_back(self):
        history = random_matrix(2, 300, seed=8)
        stream = StreamingBatchContext(2, 100)
        stream.push(history)
        assert not stream.window_ready
        with pytest.raises(ValueError):
            stream.window_stats()
        context = stream.window_context()
        reference = BatchContext(history[:, -100:])
        assert np.array_equal(context.ones(), reference.ones())
        assert np.array_equal(context.num_runs(), reference.num_runs())

    def test_unsupported_block_geometries_return_none(self):
        stream = StreamingBatchContext(1, 256)
        stream.push(random_matrix(1, 256, seed=9))
        assert stream.window_block_sums(96) is None
        assert stream.window_block_sums(512) is None
        assert stream.window_block_longest(96) is None

    def test_track_runs_off_serves_sums_not_longest(self):
        stream = StreamingBatchContext(1, 256, track_runs=False)
        stream.push(random_matrix(1, 256, seed=10))
        assert stream.window_block_sums(64) is not None
        assert stream.window_block_longest(64) is None

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            StreamingBatchContext(-1, 128)
        with pytest.raises(ValueError):
            StreamingBatchContext(1, 0)
        with pytest.raises(ValueError):
            StreamingBatchContext(1, 128, capacity_bits=100)

    def test_state_is_constant_across_the_stream(self):
        stream = StreamingBatchContext(4, 1024)
        stream.push(random_matrix(4, 1024, seed=12))
        baseline = stream.state_nbytes
        for seed in range(20):
            stream.push(random_matrix(4, 257, seed=100 + seed))
            assert stream.state_nbytes == baseline

    def test_bookkeeping_at_word_boundaries(self):
        stream = StreamingBatchContext(1, 128)
        for size, tail, words in ((63, 63, 0), (64, 63, 1), (65, 0, 3)):
            stream.push(random_matrix(1, size, seed=size))
            assert stream.tail_bits == tail
            assert stream.committed_words == words
        assert stream.total_bits == 63 + 64 + 65
        assert stream.bits_stored == 128


class TestStreamingContextFacade:
    def test_single_stream_matches_sequence_context(self):
        rng = np.random.default_rng(77)
        bits = rng.integers(0, 2, size=1500, dtype=np.uint8)
        stream = StreamingContext(512)
        offset = 0
        for size in (1, 63, 64, 65, 500, 807):
            stream.push(bits[offset : offset + size])
            offset += size
        assert stream.total_bits == 1500
        sequence = stream.sequence_context()
        reference = BatchContext(bits[np.newaxis, -512:]).context(0)
        assert sequence.ones == reference.ones
        assert sequence.num_runs() == reference.num_runs()
        assert sequence.walk_extremes() == reference.walk_extremes()

    def test_facade_accepts_packed_rows(self):
        bits = random_matrix(1, 640, seed=88)
        stream = StreamingContext(256)
        stream.push(pack_matrix(bits))
        stats = stream.window_stats()
        assert np.array_equal(stats["ones"], BatchContext(bits[:, -256:]).ones())
