"""Every instrumented hot layer moves its metrics and spans when exercised.

Delta-based: the metrics live in the process-wide registry and other tests
also move them, so each assertion compares a before/after pair around one
workload instead of absolute values.
"""

import numpy as np
import pytest

import repro.obs as obs
from repro.campaign import CampaignConfig, run_campaign
from repro.engine import run_batch
from repro.engine.context import BatchContext
from repro.engine.streaming import StreamingBatchContext
from repro.fleet import DeviceRegistry, FleetMix, FleetScheduler
from repro.trng import IdealSource


def metric(name):
    found = obs.registry().get(name)
    assert found is not None, f"metric {name} not registered"
    return found


@pytest.fixture(scope="module")
def sequences():
    return np.stack(
        [IdealSource(seed=900 + i).generate(2048).bits for i in range(4)]
    )


def small_fleet(num_devices=8):
    registry = DeviceRegistry("n128_light", alpha=0.01)
    registry.populate(
        num_devices, FleetMix.parse("healthy-ideal:0.75,stuck-at-1:0.25"), seed=7
    )
    return FleetScheduler(registry)


class TestBatchInstrumentation:
    def test_bits_and_paths_accounted(self, sequences):
        bits = metric("repro_engine_bits_evaluated_total")
        totals = metric("repro_engine_tests_total")
        seconds = metric("repro_engine_test_seconds")

        def path_sum():
            return sum(
                totals.value(path=path) for path in ("batched", "inline", "pooled")
            )

        bits_before = bits.value()
        paths_before = path_sum()
        freq_before = seconds.count(test="nist.frequency")
        run_batch(sequences, tests=["nist.frequency", "nist.runs"], backend="packed")
        assert bits.value() - bits_before == sequences.size
        # Two tests over four sequences: eight per-sequence evaluations,
        # whatever path each test took.
        assert path_sum() - paths_before == 8
        assert seconds.count(test="nist.frequency") - freq_before == 1

    def test_trace_covers_pack_dispatch_decision(self, sequences):
        obs.clear_traces()
        run_batch(sequences, tests=["nist.frequency"], backend="packed")
        roots = [root for root in obs.TRACER.traces() if root.name == "run_batch"]
        assert roots, "run_batch recorded no root span"
        stages = roots[-1].stage_names()
        for stage in ("run_batch", "pack", "dispatch", "decision"):
            assert stage in stages
        obs.clear_traces()

    def test_disabled_batch_still_computes(self, sequences):
        bits = metric("repro_engine_bits_evaluated_total")
        before = bits.value()
        with obs.disabled():
            reports = run_batch(sequences, tests=["nist.frequency"])
        assert len(reports) == len(sequences)
        assert bits.value() == before


class TestKernelInstrumentation:
    def test_packed_kernel_dispatches_counted(self, sequences):
        calls = metric("repro_packed_kernel_invocations_total")
        before = calls.value(kernel="ones_count")
        ctx = BatchContext(sequences, backend="packed")
        ctx.ones()
        assert calls.value(kernel="ones_count") - before == 1
        # Cached on the context: a second read is not a second dispatch.
        ctx.ones()
        assert calls.value(kernel="ones_count") - before == 1

    def test_uint8_backend_does_not_touch_kernel_counters(self, sequences):
        calls = metric("repro_packed_kernel_invocations_total")
        before = calls.value(kernel="ones_count")
        BatchContext(sequences, backend="uint8").ones()
        assert calls.value(kernel="ones_count") == before


class TestStreamingInstrumentation:
    def test_push_roll_and_wrap_counters(self):
        ingested = metric("repro_stream_bits_ingested_total")
        rolls = metric("repro_stream_window_rolls_total")
        wraps = metric("repro_stream_ring_wraps_total")
        ingested_before = ingested.value()
        rolls_before = rolls.value()
        wraps_before = wraps.value()

        rng = np.random.default_rng(5)
        stream = StreamingBatchContext(2, 128)
        # An unaligned word commit (1 word) followed by a full-ring commit
        # forces the write to wrap past the end of the 2-word ring.
        stream.push(rng.integers(0, 2, size=(2, 64), dtype=np.uint8))
        stream.push(rng.integers(0, 2, size=(2, 128), dtype=np.uint8))
        stream.push(rng.integers(0, 2, size=(2, 128), dtype=np.uint8))

        assert ingested.value() - ingested_before == 2 * (64 + 128 + 128)
        assert rolls.value() - rolls_before > 0
        assert wraps.value() - wraps_before > 0

    def test_empty_push_ingests_nothing(self):
        ingested = metric("repro_stream_bits_ingested_total")
        before = ingested.value()
        StreamingBatchContext(2, 128).push(np.zeros((2, 0), dtype=np.uint8))
        assert ingested.value() == before


class TestFleetInstrumentation:
    def test_round_latency_throughput_and_transitions(self):
        rounds = metric("repro_fleet_round_latency_seconds")
        devices_per_s = metric("repro_fleet_devices_per_second")
        transitions = metric("repro_fleet_health_transitions_total")

        def transition_sum():
            return sum(value for _, value in transitions.samples())

        scheduler = small_fleet(num_devices=8)
        rounds_before = rounds.count()
        transitions_before = transition_sum()
        scheduler.run_round()
        assert rounds.count() - rounds_before == 1
        assert devices_per_s.value() > 0
        # Every device folds exactly one observation per round, self-
        # transitions (healthy -> healthy) included.
        assert transition_sum() - transitions_before == 8

    def test_stuck_devices_record_a_failing_transition(self):
        transitions = metric("repro_fleet_health_transitions_total")
        scheduler = small_fleet(num_devices=8)
        before = transitions.value(from_state="healthy", to_state="suspect")
        scheduler.run_round()
        # The 25% stuck-at-1 devices fail their first sequence.
        assert transitions.value(from_state="healthy", to_state="suspect") - before >= 1

    def test_round_trace_tree(self):
        scheduler = small_fleet(num_devices=4)
        obs.clear_traces()
        scheduler.run_round()
        roots = [r for r in obs.TRACER.traces() if r.name == "fleet.run_round"]
        assert roots
        assert [child.name for child in roots[-1].children] == [
            "generate", "evaluate", "fold",
        ]
        obs.clear_traces()

    def test_round_elapsed_matches_span_even_disabled(self):
        scheduler = small_fleet(num_devices=4)
        with obs.disabled():
            fleet_round = scheduler.run_round()
        assert fleet_round.elapsed_s > 0

    def test_ingest_bits_counted(self):
        ingest_bits = metric("repro_fleet_ingest_bits_total")
        scheduler = small_fleet(num_devices=4)
        device_id = scheduler.registry.device_ids()[0]
        before = ingest_bits.value()
        scheduler.ingest(device_id, np.zeros(256, dtype=np.uint8))
        assert ingest_bits.value() - before == 256


class TestCampaignInstrumentation:
    def test_cells_timed_per_design_and_scenario(self):
        cells = metric("repro_campaign_cell_seconds")
        config = CampaignConfig(
            designs=("n128_light",),
            scenarios=("healthy-ideal", "stuck-at-1"),
            trials=1,
            sequences_per_trial=2,
            seed=3,
        )
        before = {
            label: cells.count(design="n128_light", scenario=label)
            for label in config.scenarios
        }
        run_campaign(config)
        for label in config.scenarios:
            assert cells.count(design="n128_light", scenario=label) - before[label] == 1
