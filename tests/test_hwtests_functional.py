"""Equivalence of the functional (vectorised) and cycle-accurate hardware models."""

import numpy as np
import pytest

from repro.hwtests import DesignParameters, SharingOptions, UnifiedTestingBlock
from repro.hwtests.functional import fast_load_block, fast_load_unit
from repro.hwtests.runs import RunsHW
from repro.trng import BiasedSource, CorrelatedSource, IdealSource, StuckAtSource

ALL_TESTS = (1, 2, 3, 4, 7, 8, 11, 12, 13)


def _sources():
    return {
        "ideal": IdealSource(seed=31),
        "biased": BiasedSource(0.65, seed=32),
        "correlated": CorrelatedSource(0.8, seed=33),
        "stuck": StuckAtSource(1),
    }


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("source_name", ["ideal", "biased", "correlated", "stuck"])
    def test_register_file_identical(self, source_name):
        params = DesignParameters.for_length(2048)
        bits = _sources()[source_name].generate(2048).bits
        cycle = UnifiedTestingBlock(params, tests=ALL_TESTS).process_sequence(bits)
        functional = UnifiedTestingBlock(params, tests=ALL_TESTS).accelerated_process_sequence(bits)
        assert cycle.hardware_values() == functional.hardware_values()

    def test_equivalence_without_sharing(self):
        params = DesignParameters.for_length(2048)
        bits = IdealSource(seed=34).generate(2048).bits
        sharing = SharingOptions.all_disabled()
        cycle = UnifiedTestingBlock(params, tests=ALL_TESTS, sharing=sharing).process_sequence(bits)
        functional = UnifiedTestingBlock(
            params, tests=ALL_TESTS, sharing=sharing
        ).accelerated_process_sequence(bits)
        assert cycle.hardware_values() == functional.hardware_values()

    def test_equivalence_at_n128(self):
        params = DesignParameters.for_length(128)
        bits = IdealSource(seed=35).generate(128).bits
        tests = (1, 2, 3, 4, 11, 12, 13)
        cycle = UnifiedTestingBlock(params, tests=tests).process_sequence(bits)
        functional = UnifiedTestingBlock(params, tests=tests).accelerated_process_sequence(bits)
        assert cycle.hardware_values() == functional.hardware_values()

    def test_wrong_length_rejected(self):
        params = DesignParameters.for_length(2048)
        block = UnifiedTestingBlock(params, tests=[13])
        with pytest.raises(ValueError):
            block.accelerated_process_sequence([0, 1, 0])

    def test_fast_load_unknown_unit_rejected(self):
        class FakeUnit:
            pass

        with pytest.raises(TypeError):
            fast_load_unit(FakeUnit(), np.zeros(16, dtype=np.uint8))

    def test_fast_load_marks_block_complete(self):
        params = DesignParameters.for_length(2048)
        bits = IdealSource(seed=36).generate(2048).bits
        block = UnifiedTestingBlock(params, tests=ALL_TESTS)
        fast_load_block(block, bits)
        assert block.sequence_complete
        with pytest.raises(RuntimeError):
            block.process_bit(0)

    def test_fast_load_single_unit(self):
        params = DesignParameters.for_length(2048)
        bits = IdealSource(seed=37).generate(2048).bits
        unit = RunsHW(params)
        fast_load_unit(unit, bits)
        reference = RunsHW(params)
        for index, bit in enumerate(bits):
            reference.process_bit(int(bit), index)
        assert unit.runs == reference.runs
