"""The three observability surfaces: /metrics, /metrics.json, the CLI."""

import io
import json
import logging
import re
import threading
import urllib.request

import pytest

import repro.obs as obs
from repro.cli import build_parser, main
from repro.fleet import DeviceRegistry, FleetMix, FleetScheduler, serve
from repro.fleet.service import METRICS_CONTENT_TYPE, _route_label
from repro.trng.ideal import IdealSource


@pytest.fixture()
def server_base():
    registry = DeviceRegistry("n128_light", alpha=0.01)
    registry.populate(8, FleetMix.healthy_with_threats(0.9), seed=4)
    scheduler = FleetScheduler(registry)
    scheduler.run(1)
    server = serve(scheduler, host="127.0.0.1", port=0)
    host, port = server.server_address
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def get(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.status, dict(response.headers), response.read().decode("utf-8")


def post(base, path, payload):
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def ingest_one(base, device_id="obs-probe", nbits=256):
    bits = "".join(str(b) for b in IdealSource(seed=31).generate_block(nbits))
    post(base, "/devices", {"device_id": device_id})
    return post(base, "/ingest", {"device_id": device_id, "bits": bits})


_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?) "
    r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$"
)


def parse_samples(text):
    """Exposition text -> {'name{labels}': float}; asserts every line parses."""
    samples = {}
    for line in text.splitlines():
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE ")), f"bad comment: {line!r}"
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"malformed exposition line: {line!r}"
        samples[match.group(1)] = float(match.group(2))
    return samples


class TestMetricsEndpoint:
    def test_exposition_is_parseable_with_the_advertised_content_type(self, server_base):
        status, headers, text = get(server_base, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == METRICS_CONTENT_TYPE
        samples = parse_samples(text)
        assert samples, "empty exposition"

    def test_core_metrics_nonzero_after_one_ingest_round(self, server_base):
        ingest_one(server_base)
        _, _, text = get(server_base, "/metrics")
        samples = parse_samples(text)
        assert samples["repro_fleet_round_latency_seconds_count"] >= 1
        assert samples["repro_fleet_ingest_bits_total"] >= 256
        assert samples["repro_fleet_devices_per_second"] > 0
        assert samples["repro_engine_bits_evaluated_total"] > 0
        path_keys = [k for k in samples if k.startswith("repro_engine_tests_total")]
        assert path_keys and sum(samples[k] for k in path_keys) > 0
        transition_keys = [
            k for k in samples if k.startswith("repro_fleet_health_transitions_total")
        ]
        assert transition_keys and sum(samples[k] for k in transition_keys) > 0

    def test_counters_are_monotonic_across_two_rounds(self, server_base):
        ingest_one(server_base, device_id="obs-m1")
        _, _, before_text = get(server_base, "/metrics")
        before = parse_samples(before_text)
        ingest_one(server_base, device_id="obs-m2")
        _, _, after_text = get(server_base, "/metrics")
        after = parse_samples(after_text)
        cumulative = tuple(
            key for key in before
            if key.split("{")[0].endswith(("_total", "_count", "_bucket"))
        )
        assert cumulative
        for key in cumulative:
            assert after.get(key, 0.0) >= before[key], f"{key} went backwards"
        assert (
            after["repro_fleet_ingest_bits_total"]
            == before["repro_fleet_ingest_bits_total"] + 256
        )

    def test_request_accounting_includes_the_previous_scrape(self, server_base):
        key = 'repro_service_requests_total{method="GET",route="/metrics",status="200"}'
        _, _, text = get(server_base, "/metrics")
        first = parse_samples(text).get(key, 0.0)
        assert first >= 1  # the in-flight scrape is accounted before the body
        _, _, text = get(server_base, "/metrics")
        assert parse_samples(text)[key] == first + 1


class TestMetricsJsonEndpoint:
    def test_snapshot_shape(self, server_base):
        status, headers, text = get(server_base, "/metrics.json")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(text)
        by_name = {metric["name"]: metric for metric in payload["metrics"]}
        assert "repro_fleet_round_latency_seconds" in by_name
        histogram = by_name["repro_fleet_round_latency_seconds"]
        assert histogram["type"] == "histogram"
        for sample in histogram["samples"]:
            assert sample["buckets"]["+Inf"] == sample["count"]


class TestServiceLogging:
    def test_requests_logged_with_status_and_latency(self, server_base, caplog):
        with caplog.at_level(logging.INFO, logger="repro.fleet.service"):
            get(server_base, "/fleet/summary")
        messages = [
            record.getMessage() for record in caplog.records
            if record.name == "repro.fleet.service" and record.levelno == logging.INFO
        ]
        assert any(
            "GET /fleet/summary -> 200" in message and "ms" in message
            for message in messages
        )

    def test_route_labels_collapse_device_ids(self):
        assert _route_label("/devices/edge-7/health") == "/devices/<id>/health"
        assert _route_label("/metrics") == "/metrics"
        assert _route_label("/metrics.json") == "/metrics.json"
        assert _route_label("/nonsense") == "<unknown>"


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestMetricsCommand:
    def test_renders_workload_metrics_as_text(self):
        code, text = run_cli(
            ["metrics", "--", "batch", "--sequences", "4", "--length", "2048",
             "--tests", "1,3"]
        )
        assert code == 0
        assert "# TYPE repro_engine_bits_evaluated_total counter" in text
        parse_samples("\n".join(
            line for line in text.splitlines() if line.startswith(("#", "repro_"))
        ))

    def test_json_output_is_a_snapshot(self):
        code, text = run_cli(
            ["metrics", "--json", "--", "batch", "--sequences", "2",
             "--length", "2048", "--tests", "1"]
        )
        assert code == 0
        start = text.index("{")
        payload = json.loads(text[start:])
        names = {metric["name"] for metric in payload["metrics"]}
        assert "repro_engine_bits_evaluated_total" in names

    def test_without_workload_dumps_current_registry(self):
        code, text = run_cli(["metrics"])
        assert code == 0
        assert "# HELP" in text

    def test_recursive_metrics_workload_rejected(self):
        code, text = run_cli(["metrics", "metrics"])
        assert code == 2

    def test_workload_exit_code_is_propagated(self):
        code, _ = run_cli(
            ["metrics", "--", "evaluate", "--design", "n128_light",
             "--source", "stuck", "--parameter", "1", "--seed", "1"]
        )
        assert code == 1


class TestTraceFlag:
    def test_batch_trace_covers_pack_dispatch_decision(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        code, text = run_cli(
            ["batch", "--sequences", "4", "--length", "2048", "--tests", "1,3",
             "--trace", str(trace_path)]
        )
        assert code == 0
        assert f"trace written to {trace_path}" in text
        payload = json.loads(trace_path.read_text())
        roots = payload["traces"]
        assert roots, "trace file holds no root spans"

        def names(node):
            yield node["name"]
            for child in node["children"]:
                yield from names(child)

        stages = [name for root in roots for name in names(root)]
        for stage in ("cli.batch", "run_batch", "pack", "dispatch", "decision"):
            assert stage in stages
        for root in roots:
            assert root["start_s"] == 0.0
            assert set(root) == {
                "name", "start_s", "duration_s", "attributes", "error", "children",
            }

    def test_monitor_and_fleet_accept_trace(self, tmp_path):
        for argv in (
            ["monitor", "--sequences", "2", "--trace", str(tmp_path / "m.json")],
            ["fleet", "run", "--devices", "8", "--rounds", "1",
             "--trace", str(tmp_path / "f.json")],
        ):
            code, _ = run_cli(argv)
            assert code == 0
        fleet_trace = json.loads((tmp_path / "f.json").read_text())
        assert any(root["name"] == "fleet.run_round" for root in fleet_trace["traces"])


class TestQuietFlag:
    def test_serve_parser_accepts_quiet(self):
        args = build_parser().parse_args(["fleet", "serve", "--quiet"])
        assert args.quiet is True
        assert build_parser().parse_args(["fleet", "run"]).quiet is False
