"""Tests of the precomputed critical values (design-time constants)."""

import math

import pytest
from scipy import stats

from repro.hwtests.parameters import DesignParameters
from repro.nist.cusum import cusum_p_value
from repro.sw.critical_values import (
    NIST_ALPHA_RANGE,
    CriticalValues,
    approximate_entropy_guard_band,
    chi_squared_critical,
)


@pytest.fixture(scope="module")
def cv_65536():
    return CriticalValues.for_design(DesignParameters.for_length(65536), alpha=0.01)


class TestChiSquaredCritical:
    def test_matches_scipy_isf(self):
        for df in (3, 5, 8, 16):
            for alpha in (0.001, 0.01, 0.05):
                assert chi_squared_critical(alpha, df) == pytest.approx(
                    stats.chi2.isf(alpha, df), rel=1e-9
                )

    def test_monotone_in_alpha(self):
        assert chi_squared_critical(0.001, 8) > chi_squared_critical(0.01, 8)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            chi_squared_critical(0.0, 8)
        with pytest.raises(ValueError):
            chi_squared_critical(0.01, 0)


class TestCriticalValues:
    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            CriticalValues.for_design(DesignParameters.for_length(128), alpha=1.5)

    def test_frequency_threshold_closed_form(self, cv_65536):
        # |S| <= sqrt(2n)*erfcinv(alpha): check via the inverse relation.
        from scipy import special

        expected = math.sqrt(2 * 65536) * special.erfcinv(0.01)
        assert cv_65536.frequency_max_abs_s == pytest.approx(expected, rel=1e-12)

    def test_smaller_alpha_widens_acceptance(self):
        params = DesignParameters.for_length(65536)
        strict = CriticalValues.for_design(params, alpha=0.01)
        loose = CriticalValues.for_design(params, alpha=0.001)
        assert loose.frequency_max_abs_s > strict.frequency_max_abs_s
        assert loose.block_frequency_max_sum > strict.block_frequency_max_sum
        assert loose.cusum_max_z_forward >= strict.cusum_max_z_forward
        assert loose.serial_max_del1 > strict.serial_max_del1

    def test_thresholds_scale_with_length(self):
        small = CriticalValues.for_design(DesignParameters.for_length(128), alpha=0.01)
        large = CriticalValues.for_design(DesignParameters.for_length(65536), alpha=0.01)
        assert large.frequency_max_abs_s > small.frequency_max_abs_s
        assert large.cusum_max_z_forward > small.cusum_max_z_forward

    def test_cusum_boundary_is_exact(self, cv_65536):
        """The stored excursion limit is the last accepted integer value."""
        z = cv_65536.cusum_max_z_forward
        assert cusum_p_value(z, 65536) >= 0.01
        assert cusum_p_value(z + 1, 65536) < 0.01

    def test_longest_run_constants_match_parameters(self, cv_65536):
        params = DesignParameters.for_length(65536)
        assert len(cv_65536.longest_run_inverse_pi) == 6  # K=5 for M=128
        # 1/(N*pi_i) must invert back to positive expectations below N.
        for inverse in cv_65536.longest_run_inverse_pi:
            expected = 1.0 / inverse
            assert 0 < expected < params.longest_run_num_blocks

    def test_nonoverlapping_mean_and_variance(self, cv_65536):
        params = DesignParameters.for_length(65536)
        m = params.template_length
        big_m = params.nonoverlapping_block_length
        assert cv_65536.nonoverlapping_mean == pytest.approx((big_m - m + 1) / 512)
        assert cv_65536.nonoverlapping_inverse_variance > 0

    def test_overlapping_pi_constants(self, cv_65536):
        assert len(cv_65536.overlapping_inverse_pi) == 6
        total = sum(1.0 / p for p in cv_65536.overlapping_inverse_pi)
        # Expectations sum to the number of blocks.
        assert total == pytest.approx(DesignParameters.for_length(65536).overlapping_num_blocks, rel=1e-6)

    def test_as_table_round_trip(self, cv_65536):
        table = cv_65536.as_table()
        assert table["alpha"] == 0.01
        assert "cusum_max_z_forward" in table
        assert isinstance(table["longest_run_inverse_pi"], list)

    def test_nist_alpha_range_constant(self):
        assert NIST_ALPHA_RANGE == (0.001, 0.01)


class TestApEnGuardBand:
    def test_positive_and_grows_with_n(self):
        small = approximate_entropy_guard_band(128, 3)
        large = approximate_entropy_guard_band(1048576, 3)
        assert small > 0
        assert large > small

    def test_shrinks_with_more_segments(self):
        coarse = approximate_entropy_guard_band(65536, 3, segments=16)
        fine = approximate_entropy_guard_band(65536, 3, segments=128)
        assert fine < coarse

    def test_invalid_segments(self):
        with pytest.raises(ValueError):
            approximate_entropy_guard_band(65536, 3, segments=0)

    def test_included_in_critical_value(self):
        params = DesignParameters.for_length(65536)
        cv = CriticalValues.for_design(params, alpha=0.01)
        base = chi_squared_critical(0.01, 8)
        assert cv.approximate_entropy_max_chi2 > base
