"""Bit-exactness parity tests for the block-native source layer.

Every entropy source must satisfy two stream invariants:

* ``generate_block(n)`` from a given seed equals ``n`` successive
  ``next_bit()`` calls from the same seed (the shim serves the same stream);
* the stream is split-invariant — chopping it into blocks of any sizes, or
  interleaving bit-serial and block access, never changes the emitted bits.

The parametrised factories cover every source class in ``repro.trng``
including wrapper chains (attack-on-source, capture-on-source, stacked
wrappers), so a vectorised implementation that silently diverges from the
bit-serial semantics fails here immediately.
"""

import numpy as np
import pytest

from repro.trng import (
    AgingSource,
    AlternatingSource,
    BiasedSource,
    BurstFailureSource,
    CaptureSource,
    CorrelatedSource,
    DeadSource,
    EMInjectionAttack,
    FrequencyInjectionAttack,
    IdealSource,
    OscillatingBiasSource,
    ReplaySource,
    RingOscillatorTRNG,
    StuckAtSource,
)
from repro.trng.source import EntropySource, SeededSource

#: label -> factory(seed) covering every source class and wrapper chain.
SOURCE_FACTORIES = {
    "ideal": lambda s: IdealSource(seed=s),
    "biased": lambda s: BiasedSource(0.6, seed=s),
    "correlated": lambda s: CorrelatedSource(0.7, seed=s),
    "oscillating-bias": lambda s: OscillatingBiasSource(0.3, period=97, seed=s),
    "ring-oscillator": lambda s: RingOscillatorTRNG(seed=s),
    "aging": lambda s: AgingSource(drift_per_bit=1e-4, seed=s),
    "stuck-at-1": lambda s: StuckAtSource(1),
    "dead": lambda s: DeadSource(),
    "alternating": lambda s: AlternatingSource((1, 1, 0)),
    "burst-failure": lambda s: BurstFailureSource(burst_rate=0.02, burst_length=7, seed=s),
    "freq-injection-staged": lambda s: FrequencyInjectionAttack(
        RingOscillatorTRNG(seed=s), start_bit=40
    ),
    "em-on-biased": lambda s: EMInjectionAttack(
        BiasedSource(0.6, seed=s), coupling=0.7, carrier_period=4, start_bit=10, seed=s + 1
    ),
    "capture-on-correlated": lambda s: CaptureSource(CorrelatedSource(0.7, seed=s)),
    "replay-looped": lambda s: ReplaySource(IdealSource(seed=s).generate_block(500), loop=True),
    "em-on-attacked-oscillator": lambda s: EMInjectionAttack(
        FrequencyInjectionAttack(RingOscillatorTRNG(seed=s), start_bit=30),
        coupling=0.5, start_bit=5, seed=s + 2,
    ),
    "capture-on-em-attack": lambda s: CaptureSource(
        EMInjectionAttack(IdealSource(seed=s), coupling=0.8, start_bit=20, seed=s + 3)
    ),
}

#: Long enough to cross every buffer refill granularity (max block_bits is
#: 1024) and the staged-attack onsets above several times.
N = 2500


def _cases():
    return sorted(SOURCE_FACTORIES.items())


@pytest.mark.parametrize("label,factory", _cases())
def test_block_equals_bitserial(label, factory):
    block = factory(3).generate_block(N)
    source = factory(3)
    serial = np.fromiter((source.next_bit() for _ in range(N)), dtype=np.uint8, count=N)
    assert block.dtype == np.uint8 and block.size == N
    assert np.array_equal(block, serial)


@pytest.mark.parametrize("label,factory", _cases())
def test_stream_is_split_invariant(label, factory):
    whole = factory(3).generate_block(N)
    source = factory(3)
    sizes = (1, 7, 64, 129, 512, 1024)
    chunks = [source.generate_block(k) for k in sizes]
    chunks.append(source.generate_block(N - sum(sizes)))
    assert np.array_equal(whole, np.concatenate(chunks))


@pytest.mark.parametrize("label,factory", _cases())
def test_interleaved_bitserial_and_block_access(label, factory):
    whole = factory(3).generate_block(N)
    source = factory(3)
    pieces = [
        np.fromiter((source.next_bit() for _ in range(13)), dtype=np.uint8, count=13),
        source.generate_block(700),
        np.fromiter((source.next_bit() for _ in range(87)), dtype=np.uint8, count=87),
        source.generate_block(N - 800),
    ]
    assert np.array_equal(whole, np.concatenate(pieces))


@pytest.mark.parametrize("label,factory", _cases())
def test_generate_delegates_to_generate_block(label, factory):
    assert np.array_equal(factory(3).generate(N).bits, factory(3).generate_block(N))


def test_generate_matrix_rows_are_consecutive_stream_chunks():
    matrix = IdealSource(seed=9).generate_matrix(5, 128)
    assert matrix.shape == (5, 128) and matrix.dtype == np.uint8
    assert np.array_equal(matrix.ravel(), IdealSource(seed=9).generate_block(5 * 128))


class TestWrapperLockstep:
    """Satellite regression: wrappers stay in lockstep with their targets
    across interleaved ``next_bit()`` / ``generate_block()`` calls (buffer-
    boundary correctness)."""

    def test_capture_records_exactly_the_consumer_stream(self):
        capture = CaptureSource(CorrelatedSource(0.7, seed=3))
        seen = [
            np.fromiter((capture.next_bit() for _ in range(10)), dtype=np.uint8, count=10),
            capture.generate_block(90),
            np.fromiter((capture.next_bit() for _ in range(5)), dtype=np.uint8, count=5),
            capture.generate_block(45),
        ]
        seen = np.concatenate(seen)
        assert capture.captured_bits == seen.size
        assert np.array_equal(capture.captured().bits, seen)
        # ... and the consumer stream is exactly the target's own stream.
        assert np.array_equal(seen, CorrelatedSource(0.7, seed=3).generate_block(150))

    def test_attack_wrapper_tracks_staged_onset_across_interleaving(self):
        def build(seed):
            return FrequencyInjectionAttack(RingOscillatorTRNG(seed=seed), start_bit=100)

        whole = build(11).generate_block(400)
        attack = build(11)
        mixed = [np.fromiter((attack.next_bit() for _ in range(97)), dtype=np.uint8, count=97)]
        assert not attack.active  # 97 < start_bit: the lock is still staged
        mixed.append(attack.generate_block(103))
        assert attack.active and attack.target.locked
        mixed.append(attack.generate_block(200))
        assert np.array_equal(whole, np.concatenate(mixed))

    def test_em_attack_interleaving_matches_whole_stream(self):
        def build(seed):
            return EMInjectionAttack(
                BiasedSource(0.55, seed=seed), coupling=0.6, carrier_period=4,
                start_bit=50, seed=seed + 1,
            )

        whole = build(13).generate_block(600)
        attack = build(13)
        mixed = [
            attack.generate_block(30),
            np.fromiter((attack.next_bit() for _ in range(40)), dtype=np.uint8, count=40),
            attack.generate_block(530),
        ]
        assert np.array_equal(whole, np.concatenate(mixed))

    def test_capture_max_bits_truncates_block_recording(self):
        capture = CaptureSource(IdealSource(seed=4), max_bits=64)
        capture.generate_block(100)
        assert capture.captured_bits == 64
        assert np.array_equal(
            capture.captured().bits, IdealSource(seed=4).generate_block(100)[:64]
        )


class TestLegacyBitSerialSubclasses:
    """Subclasses that only override ``next_bit`` keep working: bulk
    generation falls back to looping the bit-serial override."""

    def test_next_bit_only_subclass(self):
        class Inverted(EntropySource):
            def __init__(self):
                self._inner = IdealSource(seed=21)

            def next_bit(self):
                return 1 - self._inner.next_bit()

        expected = 1 - IdealSource(seed=21).generate_block(300)
        assert np.array_equal(Inverted().generate_block(300), expected)

    def test_next_bit_override_below_block_native_source(self):
        # The examples/continuous_monitoring.py pattern: overriding next_bit
        # below a block-native source must make blocks honour the override.
        class Inverted(AgingSource):
            def next_bit(self):
                return 1 - super().next_bit()

        expected = 1 - AgingSource(drift_per_bit=1e-4, seed=5).generate_block(300)
        got = Inverted(drift_per_bit=1e-4, seed=5).generate_block(300)
        assert np.array_equal(got, expected)

    def test_source_with_neither_hook_raises(self):
        class Hollow(SeededSource):
            pass

        with pytest.raises(TypeError, match="_generate_block"):
            Hollow(seed=1).generate_block(4)

    def test_buffered_parent_bits_are_not_drained_raw(self):
        # A legacy override below a *buffering* source: super().next_bit()
        # stages raw parent bits in the shim buffer, and a following
        # generate_block must keep routing through the override instead of
        # draining those raw bits.
        class Inverted(IdealSource):
            def next_bit(self):
                return 1 - super().next_bit()

        expected = 1 - IdealSource(seed=31).generate_block(6)
        source = Inverted(seed=31)
        got = np.concatenate([[source.next_bit()], source.generate_block(5)])
        assert np.array_equal(got, expected)


class TestPositionObservables:
    """Sources with position-dependent observables must not read ahead."""

    def test_aging_age_tracks_consumed_bits(self):
        source = AgingSource(drift_per_bit=1e-4, seed=23)
        for _ in range(40):
            source.next_bit()
        assert source.age_bits == 40

    def test_oscillating_bias_tracks_consumed_bits(self):
        source = OscillatingBiasSource(0.4, period=100, seed=9)
        for _ in range(25):
            source.next_bit()
        assert source.current_bias() == pytest.approx(0.9, abs=1e-6)

    def test_burst_state_visible_bit_by_bit(self):
        source = BurstFailureSource(burst_rate=1.0, burst_length=3, stuck_value=0, seed=1)
        source.next_bit()
        assert source._remaining_burst == 2

    def test_replay_remaining_bits_track_consumption(self):
        replay = ReplaySource([1, 0, 1, 1, 0, 0, 1, 0])
        replay.next_bit()
        replay.generate_block(3)
        assert replay.remaining_bits == 4

    def test_replay_block_overrun_raises(self):
        replay = ReplaySource([1, 0, 1, 1], loop=False)
        replay.generate_block(2)
        with pytest.raises(RuntimeError, match="exhausted"):
            replay.generate_block(3)

    def test_wrappers_do_not_read_ahead_of_their_target(self):
        # An EM attack on a finite replay must serve all stored bits
        # bit-serially instead of exhausting the capture by buffering ahead.
        attack = EMInjectionAttack(
            ReplaySource([1, 0, 1, 1, 0, 1, 0, 0]), coupling=0.0, seed=2
        )
        assert [attack.next_bit() for _ in range(8)] == [1, 0, 1, 1, 0, 1, 0, 0]
        # ... and a position-observable target only advances by what the
        # consumer has actually seen.
        aging = AgingSource(drift_per_bit=1e-4, seed=3)
        EMInjectionAttack(aging, coupling=0.5, seed=4).next_bit()
        assert aging.age_bits == 1
