"""Tests of the continuous on-the-fly monitor and its health policy."""

import pytest

from repro.core.monitor import HealthState, OnTheFlyMonitor
from repro.core.platform import OnTheFlyPlatform
from repro.trng import AgingSource, BurstFailureSource, IdealSource, StuckAtSource


@pytest.fixture()
def monitor():
    return OnTheFlyMonitor(OnTheFlyPlatform("n128_light"), suspect_after=1, fail_after=2)


class TestHealthPolicy:
    def test_policy_validation(self):
        platform = OnTheFlyPlatform("n128_light")
        with pytest.raises(ValueError):
            OnTheFlyMonitor(platform, suspect_after=0)
        with pytest.raises(ValueError):
            OnTheFlyMonitor(platform, suspect_after=3, fail_after=2)

    def test_healthy_source_stays_healthy(self, monitor):
        events = monitor.monitor(IdealSource(seed=60), num_sequences=5)
        assert len(events) == 5
        assert monitor.state is HealthState.HEALTHY
        assert monitor.failure_rate() <= 0.2

    def test_dead_source_fails_quickly(self, monitor):
        events = monitor.monitor(StuckAtSource(0), num_sequences=3)
        assert events[0].state is HealthState.SUSPECT
        assert events[1].state is HealthState.FAILED
        assert monitor.state is HealthState.FAILED
        assert monitor.failure_rate() == 1.0

    def test_detection_latency(self, monitor):
        monitor.monitor(StuckAtSource(0), num_sequences=3)
        assert monitor.detection_latency_bits() == 2 * 128

    def test_detection_latency_none_when_healthy(self, monitor):
        monitor.monitor(IdealSource(seed=61), num_sequences=3)
        assert monitor.detection_latency_bits() is None

    def test_recovery_resets_consecutive_count(self, monitor):
        monitor.monitor(StuckAtSource(0), num_sequences=1)
        assert monitor.state is HealthState.SUSPECT
        monitor.monitor(IdealSource(seed=62), num_sequences=1)
        assert monitor.state is HealthState.HEALTHY

    def test_monitor_until_failure_stops_early(self, monitor):
        events = list(monitor.monitor_until_failure(StuckAtSource(1), max_sequences=50))
        assert events[-1].state is HealthState.FAILED
        assert len(events) == 2

    def test_monitor_until_failure_respects_budget(self, monitor):
        events = list(monitor.monitor_until_failure(IdealSource(seed=63), max_sequences=4))
        assert len(events) == 4

    def test_reset_clears_history(self, monitor):
        monitor.monitor(StuckAtSource(0), num_sequences=2)
        monitor.reset()
        assert monitor.state is HealthState.HEALTHY
        assert monitor.sequences_monitored == 0
        assert monitor.failure_rate() == 0.0

    def test_event_callback_invoked(self):
        seen = []
        monitor = OnTheFlyMonitor(
            OnTheFlyPlatform("n128_light"), on_event=seen.append
        )
        monitor.monitor(IdealSource(seed=64), num_sequences=3)
        assert len(seen) == 3
        assert seen[0].sequence_index == 0

    def test_num_sequences_validation(self, monitor):
        with pytest.raises(ValueError):
            monitor.monitor(IdealSource(seed=65), num_sequences=0)


class TestMonitorScenarios:
    def test_intermittent_bursts_raise_suspicion(self):
        """A bursty source fails some sequences and is flagged SUSPECT."""
        monitor = OnTheFlyMonitor(
            OnTheFlyPlatform("n128_light"), suspect_after=1, fail_after=3
        )
        source = BurstFailureSource(burst_rate=0.02, burst_length=96, seed=66)
        monitor.monitor(source, num_sequences=20)
        assert monitor.failure_rate() > 0.0

    def test_aging_detected_eventually(self):
        """Slow aging drift passes at first and is caught once it accumulates."""
        monitor = OnTheFlyMonitor(
            OnTheFlyPlatform("n128_light"), suspect_after=1, fail_after=2
        )
        source = AgingSource(drift_per_bit=2e-4, seed=67)
        events = monitor.monitor(source, num_sequences=12)
        assert events[0].report.passed  # young source looks fine
        assert monitor.state is HealthState.FAILED  # old source caught
