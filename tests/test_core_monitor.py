"""Tests of the continuous on-the-fly monitor and its health policy."""

import pytest

from repro.core.monitor import HealthState, OnTheFlyMonitor
from repro.core.platform import OnTheFlyPlatform
from repro.trng import (
    AgingSource,
    BiasedSource,
    BurstFailureSource,
    IdealSource,
    StuckAtSource,
)


@pytest.fixture()
def monitor():
    return OnTheFlyMonitor(OnTheFlyPlatform("n128_light"), suspect_after=1, fail_after=2)


class TestHealthPolicy:
    def test_policy_validation(self):
        platform = OnTheFlyPlatform("n128_light")
        with pytest.raises(ValueError):
            OnTheFlyMonitor(platform, suspect_after=0)
        with pytest.raises(ValueError):
            OnTheFlyMonitor(platform, suspect_after=3, fail_after=2)

    def test_healthy_source_stays_healthy(self, monitor):
        events = monitor.monitor(IdealSource(seed=60), num_sequences=5)
        assert len(events) == 5
        assert monitor.state is HealthState.HEALTHY
        assert monitor.failure_rate() <= 0.2

    def test_dead_source_fails_quickly(self, monitor):
        events = monitor.monitor(StuckAtSource(0), num_sequences=3)
        assert events[0].state is HealthState.SUSPECT
        assert events[1].state is HealthState.FAILED
        assert monitor.state is HealthState.FAILED
        assert monitor.failure_rate() == 1.0

    def test_detection_latency(self, monitor):
        monitor.monitor(StuckAtSource(0), num_sequences=3)
        assert monitor.detection_latency_bits() == 2 * 128

    def test_detection_latency_none_when_healthy(self, monitor):
        monitor.monitor(IdealSource(seed=61), num_sequences=3)
        assert monitor.detection_latency_bits() is None

    def test_recovery_resets_consecutive_count(self, monitor):
        monitor.monitor(StuckAtSource(0), num_sequences=1)
        assert monitor.state is HealthState.SUSPECT
        monitor.monitor(IdealSource(seed=62), num_sequences=1)
        assert monitor.state is HealthState.HEALTHY

    def test_monitor_until_failure_stops_early(self, monitor):
        events = list(monitor.monitor_until_failure(StuckAtSource(1), max_sequences=50))
        assert events[-1].state is HealthState.FAILED
        assert len(events) == 2

    def test_monitor_until_failure_respects_budget(self, monitor):
        events = list(monitor.monitor_until_failure(IdealSource(seed=63), max_sequences=4))
        assert len(events) == 4

    def test_reset_clears_history(self, monitor):
        monitor.monitor(StuckAtSource(0), num_sequences=2)
        monitor.reset()
        assert monitor.state is HealthState.HEALTHY
        assert monitor.sequences_monitored == 0
        assert monitor.failure_rate() == 0.0

    def test_event_callback_invoked(self):
        seen = []
        monitor = OnTheFlyMonitor(
            OnTheFlyPlatform("n128_light"), on_event=seen.append
        )
        monitor.monitor(IdealSource(seed=64), num_sequences=3)
        assert len(seen) == 3
        assert seen[0].sequence_index == 0

    def test_num_sequences_validation(self, monitor):
        with pytest.raises(ValueError):
            monitor.monitor(IdealSource(seed=65), num_sequences=0)


class TestLatencyAndAttributionHooks:
    def test_first_indices_and_latency_sequences(self, monitor):
        monitor.monitor(StuckAtSource(0), num_sequences=4)
        assert monitor.first_suspect_index == 0  # suspect_after=1
        assert monitor.first_failed_index == 1  # fail_after=2
        assert monitor.detection_latency_sequences() == 2
        assert monitor.detection_latency_bits() == 2 * 128

    def test_hooks_none_while_healthy(self, monitor):
        monitor.monitor(IdealSource(seed=70), num_sequences=3)
        assert monitor.first_failed_index is None
        assert monitor.detection_latency_sequences() is None
        if monitor.failure_rate() == 0:
            assert monitor.first_suspect_index is None
            assert monitor.first_failing_tests is None
            assert monitor.failing_test_counts() == {}

    def test_first_failing_tests_and_counts(self, monitor):
        monitor.monitor(StuckAtSource(1), num_sequences=3)
        # a constant-1 source fails every test of the n128_light design
        assert monitor.first_failing_tests == (1, 2, 3, 4, 13)
        assert monitor.failing_test_counts() == {t: 3 for t in (1, 2, 3, 4, 13)}

    def test_counts_survive_history_eviction(self):
        monitor = OnTheFlyMonitor(
            OnTheFlyPlatform("n128_light"), fail_after=2, max_history=1
        )
        monitor.monitor(StuckAtSource(0), num_sequences=5)
        assert monitor.failing_test_counts()[1] == 5
        assert monitor.first_failed_index == 1

    def test_reset_clears_hooks(self, monitor):
        monitor.monitor(StuckAtSource(0), num_sequences=3)
        monitor.reset()
        assert monitor.first_failed_index is None
        assert monitor.first_suspect_index is None
        assert monitor.first_failing_tests is None
        assert monitor.failing_test_counts() == {}

    def test_failing_test_counts_returns_a_copy(self, monitor):
        monitor.monitor(StuckAtSource(0), num_sequences=2)
        counts = monitor.failing_test_counts()
        counts[1] = 999
        assert monitor.failing_test_counts()[1] != 999


class TestBatchedSequentialParity:
    def test_failing_source_trajectory_parity(self):
        """Batched and per-sequence monitoring must agree event for event on
        a source that fails some (but not all) sequences."""
        per_seq = OnTheFlyMonitor(
            OnTheFlyPlatform("n128_light"), suspect_after=1, fail_after=2
        )
        batched = OnTheFlyMonitor(
            OnTheFlyPlatform("n128_light"), suspect_after=1, fail_after=2
        )
        per_seq.monitor(BiasedSource(0.62, seed=88), num_sequences=8)
        batched.monitor(BiasedSource(0.62, seed=88), num_sequences=8, batch_size=3)
        assert per_seq.failure_rate() > 0.0  # the scenario actually fails
        assert [e.state for e in per_seq.history] == [e.state for e in batched.history]
        assert [e.report.failing_tests for e in per_seq.history] == [
            e.report.failing_tests for e in batched.history
        ]
        assert per_seq.failure_rate() == batched.failure_rate()
        assert per_seq.first_failed_index == batched.first_failed_index
        assert per_seq.first_suspect_index == batched.first_suspect_index
        assert per_seq.first_failing_tests == batched.first_failing_tests
        assert per_seq.failing_test_counts() == batched.failing_test_counts()
        assert (
            per_seq.detection_latency_sequences()
            == batched.detection_latency_sequences()
        )


class TestMonitorScenarios:
    def test_intermittent_bursts_raise_suspicion(self):
        """A bursty source fails some sequences and is flagged SUSPECT."""
        monitor = OnTheFlyMonitor(
            OnTheFlyPlatform("n128_light"), suspect_after=1, fail_after=3
        )
        source = BurstFailureSource(burst_rate=0.02, burst_length=96, seed=66)
        monitor.monitor(source, num_sequences=20)
        assert monitor.failure_rate() > 0.0

    def test_aging_detected_eventually(self):
        """Slow aging drift passes at first and is caught once it accumulates."""
        monitor = OnTheFlyMonitor(
            OnTheFlyPlatform("n128_light"), suspect_after=1, fail_after=2
        )
        source = AgingSource(drift_per_bit=2e-4, seed=67)
        events = monitor.monitor(source, num_sequences=12)
        assert events[0].report.passed  # young source looks fine
        assert monitor.state is HealthState.FAILED  # old source caught


class TestMonitorStream:
    """Push-driven streaming sessions: bit-identity with the pull loop,
    arbitrary chunking, overlapping strides and O(history) memory."""

    def _trajectory(self, monitor):
        return [
            (e.sequence_index, e.state, e.consecutive_failures,
             tuple(e.report.failing_tests))
            for e in monitor.history
        ]

    def _stream_bits(self, num_windows, seed=88, rate=0.62):
        return BiasedSource(rate, seed=seed).generate(128 * num_windows).bits

    def test_stream_matches_pull_loop(self):
        pulled = OnTheFlyMonitor(
            OnTheFlyPlatform("n128_light"), suspect_after=1, fail_after=2
        )
        streamed = OnTheFlyMonitor(
            OnTheFlyPlatform("n128_light"), suspect_after=1, fail_after=2
        )
        pulled.monitor(BiasedSource(0.62, seed=88), num_sequences=8)
        streamed.monitor_stream(BiasedSource(0.62, seed=88), num_windows=8)
        assert pulled.failure_rate() > 0.0
        assert self._trajectory(pulled) == self._trajectory(streamed)
        assert pulled.first_failed_index == streamed.first_failed_index
        assert pulled.failing_test_counts() == streamed.failing_test_counts()

    def test_chunk_sizes_do_not_change_the_trajectory(self):
        """63/64/65-bit chunks (word-boundary stress) and single bits all
        produce the window evaluations of whole-window pushes."""
        bits = self._stream_bits(6)
        whole = OnTheFlyMonitor(OnTheFlyPlatform("n128_light"), fail_after=2)
        chopped = OnTheFlyMonitor(OnTheFlyPlatform("n128_light"), fail_after=2)
        whole_stream = whole.open_stream()
        for start in range(0, bits.size, 128):
            whole_stream.push(bits[start : start + 128])
        chopped_stream = chopped.open_stream()
        sizes = [63, 64, 65, 1, 127, 128]
        offset = index = 0
        while offset < bits.size:
            take = min(sizes[index % len(sizes)], bits.size - offset)
            chopped_stream.push(bits[offset : offset + take])
            offset += take
            index += 1
        assert whole_stream.windows_evaluated == 6
        assert chopped_stream.windows_evaluated == 6
        assert self._trajectory(whole) == self._trajectory(chopped)
        for left, right in zip(whole.history, chopped.history):
            left_stats = {t: v.statistic for t, v in left.report.verdicts.items()}
            right_stats = {t: v.statistic for t, v in right.report.verdicts.items()}
            assert left_stats == right_stats

    def test_overlapping_stride_evaluates_trailing_windows(self):
        bits = self._stream_bits(4, seed=91)
        monitor = OnTheFlyMonitor(OnTheFlyPlatform("n128_light"), fail_after=2)
        stream = monitor.open_stream(stride=32, history_bits=256)
        stream.push(bits)
        # One evaluation when the window fills, then one per 32 new bits.
        assert stream.windows_evaluated == 1 + (bits.size - 128) // 32
        # Each evaluated window must equal the recompute on that slice.
        reference = OnTheFlyPlatform("n128_light")
        for event in monitor.history:
            end = 128 + event.sequence_index * 32
            report = reference.evaluate_batch(bits[end - 128 : end][None, :])[0]
            got = {t: v.statistic for t, v in event.report.verdicts.items()}
            want = {t: v.statistic for t, v in report.verdicts.items()}
            assert got == want

    def test_window_equals_history_is_constant_memory(self):
        monitor = OnTheFlyMonitor(OnTheFlyPlatform("n128_light"), fail_after=2)
        stream = monitor.open_stream()  # history_bits defaults to n
        assert stream.history_bits == stream.n == 128
        bits = self._stream_bits(12, seed=92)
        stream.push(bits[:128])
        baseline = stream.ring_nbytes
        for start in range(128, bits.size, 64):
            stream.push(bits[start : start + 64])
            assert stream.ring_nbytes == baseline
        assert stream.bits_seen == bits.size
        assert stream.windows_evaluated == 12

    def test_packed_word_pushes_hit_the_no_unpack_path(self):
        from repro.engine import pack_matrix

        bits = self._stream_bits(2, seed=93)
        via_bits = OnTheFlyMonitor(OnTheFlyPlatform("n128_light"), fail_after=2)
        via_words = OnTheFlyMonitor(OnTheFlyPlatform("n128_light"), fail_after=2)
        bit_stream = via_bits.open_stream()
        word_stream = via_words.open_stream()
        for start in range(0, bits.size, 64):
            chunk = bits[start : start + 64]
            bit_stream.push(chunk)
            word_stream.push(pack_matrix(chunk[None, :]))
        assert word_stream.windows_evaluated == 2
        assert self._trajectory(via_bits) == self._trajectory(via_words)

    def test_stream_parameter_validation(self):
        monitor = OnTheFlyMonitor(OnTheFlyPlatform("n128_light"))
        with pytest.raises(ValueError):
            monitor.open_stream(stride=0)
        with pytest.raises(ValueError):
            monitor.open_stream(history_bits=127)
        with pytest.raises(ValueError):
            monitor.monitor_stream(IdealSource(seed=1), num_windows=0)

    def test_bits_until_next_window_counts_down(self):
        monitor = OnTheFlyMonitor(OnTheFlyPlatform("n128_light"))
        stream = monitor.open_stream(stride=50)
        assert stream.bits_until_next_window == 128
        stream.push(self._stream_bits(1, seed=94)[:100])
        assert stream.bits_until_next_window == 28
        stream.push(self._stream_bits(1, seed=95)[:28])
        assert stream.bits_until_next_window == 50
