"""Framework-level tests: suppressions, baseline round-trip, CLI exit codes."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline, BaselineEntry, TODO_JUSTIFICATION
from repro.analysis.cli import main as analysis_main
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.framework import (
    CheckerRegistry,
    Checker,
    Rule,
    analyze_source,
    classify_path,
    collect_files,
    scan_suppressions,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: A snippet that fires DET001 wherever it is placed.
UNSEEDED = "import numpy as np\nrng = np.random.default_rng()\n"


class TestClassifyPath:
    def test_library_scope(self):
        assert "library" in classify_path("src/repro/engine/packed.py")
        assert "engine" in classify_path("src/repro/engine/packed.py")
        assert "fleet" in classify_path("src/repro/fleet/scheduler.py")

    def test_tmp_fixture_trees_still_classify(self):
        # Fixture tests write under tmp_path/src/repro/... — substring
        # matching keeps the scope tags working there.
        tags = classify_path("/tmp/pytest-x/src/repro/fleet/svc.py")
        assert {"library", "fleet"}.issubset(tags)

    def test_top_level_scopes(self):
        assert "benchmarks" in classify_path("benchmarks/bench_packed.py")
        assert "examples" in classify_path("examples/fleet_demo.py")
        assert "tests" in classify_path("tests/test_engine.py")

    def test_unscoped_file_has_no_tags(self):
        assert classify_path("setup.py") == set()


class TestSuppressions:
    def test_scan_single_and_multi_rule(self):
        lines = [
            "x = 1  # repro: ignore[DET001]",
            "y = 2",
            "z = 3  # repro: ignore[PKD001, PKD002]",
        ]
        mapping = scan_suppressions(lines)
        assert mapping == {1: {"DET001"}, 3: {"PKD001", "PKD002"}}

    def test_suppressed_finding_moves_to_suppressed_list(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro: ignore[DET001]\n"
        )
        ctx = analyze_source(source, "src/repro/fixture.py")
        assert not [f for f in ctx.findings if f.rule == "DET001"]
        assert [f for f in ctx.suppressed if f.rule == "DET001"]

    def test_suppression_only_covers_its_own_line(self):
        source = (
            "import numpy as np\n"
            "# repro: ignore[DET001]\n"
            "rng = np.random.default_rng()\n"
        )
        ctx = analyze_source(source, "src/repro/fixture.py")
        assert [f for f in ctx.findings if f.rule == "DET001"]

    def test_select_isolates_one_rule(self):
        source = "import random\nimport numpy as np\nr = np.random.default_rng()\n"
        ctx = analyze_source(source, "src/repro/fixture.py", select=["DET003"])
        assert {f.rule for f in ctx.findings} == {"DET003"}


class TestRegistry:
    def test_duplicate_rule_id_rejected(self):
        registry = CheckerRegistry()

        rule = Rule(id="X001", family="x", severity=Severity.ERROR,
                    summary="s", invariant="i")

        @registry.register
        class First(Checker):
            rules = (rule,)

        with pytest.raises(ValueError, match="duplicate rule id"):
            @registry.register
            class Second(Checker):
                rules = (rule,)

    def test_custom_registry_is_isolated(self):
        registry = CheckerRegistry()
        ctx = analyze_source(UNSEEDED, "src/repro/fixture.py", registry=registry)
        assert ctx.findings == []


class TestCollectFiles:
    def test_walks_skips_hidden_and_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-312.py").write_text("")
        (tmp_path / ".git").mkdir()
        (tmp_path / ".git" / "hook.py").write_text("")
        (tmp_path / "notes.txt").write_text("")
        files = collect_files([str(tmp_path)])
        assert [Path(f).name for f in files] == ["a.py"]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            collect_files(["no/such/dir"])


class TestExitCodes:
    def _finding(self, severity):
        return Finding(rule="X", severity=severity, path="p.py", line=1,
                       column=1, message="m", snippet="s")

    def test_clean_report_exits_zero(self):
        assert AnalysisReport().exit_code(strict=False) == 0

    def test_errors_gate(self):
        report = AnalysisReport(findings=[self._finding(Severity.ERROR)])
        assert report.exit_code(strict=False) == 1

    def test_warnings_gate_only_under_strict(self):
        report = AnalysisReport(findings=[self._finding(Severity.WARNING)])
        assert report.exit_code(strict=False) == 0
        assert report.exit_code(strict=True) == 1

    def test_baseline_errors_exit_two(self):
        report = AnalysisReport(baseline_errors=["stale"])
        assert report.exit_code(strict=False) == 2

    def test_json_document_shape(self):
        report = AnalysisReport(findings=[self._finding(Severity.ERROR)],
                                files_scanned=3)
        doc = report.to_dict()
        assert doc["summary"]["files_scanned"] == 3
        assert doc["summary"]["errors"] == 1
        entry = doc["findings"][0]
        assert {"rule", "severity", "path", "line", "column", "message",
                "snippet"} <= set(entry)


class TestBaseline:
    def _entry(self, **overrides):
        fields = dict(rule="DET001", path="src/repro/x.py", line=2,
                      snippet="rng = np.random.default_rng()",
                      justification="needed for the legacy replay fixture")
        fields.update(overrides)
        return BaselineEntry(**fields)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline([self._entry()]).save(str(path))
        loaded = Baseline.load(str(path))
        assert loaded.entries == [self._entry()]

    def test_missing_justification_invalidates(self):
        for bad in ("", "   ", TODO_JUSTIFICATION):
            errors = Baseline([self._entry(justification=bad)]).validation_errors()
            assert errors, bad

    def test_stale_when_file_missing(self):
        errors = Baseline([self._entry(path="gone/away.py")]).staleness_errors()
        assert "no longer exists" in errors[0]

    def test_stale_when_line_out_of_range(self, tmp_path, monkeypatch):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        errors = Baseline([self._entry(path="mod.py", line=99)]).staleness_errors()
        assert "references line 99" in errors[0]

    def test_stale_when_snippet_changed(self, tmp_path, monkeypatch):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\nsomething_else = 2\n")
        monkeypatch.chdir(tmp_path)
        errors = Baseline([self._entry(path="mod.py", line=2)]).staleness_errors()
        assert "the line changed" in errors[0]

    def test_partition_matches_exact_finding(self):
        finding = Finding(rule="DET001", severity=Severity.ERROR,
                          path="src/repro/x.py", line=2, column=7, message="m",
                          snippet="rng = np.random.default_rng()")
        live, baselined, errors = Baseline([self._entry()]).partition([finding])
        assert live == [] and baselined == [finding] and errors == []

    def test_partition_reports_fixed_entries_as_stale(self):
        live, baselined, errors = Baseline([self._entry()]).partition([])
        assert "no current finding matches" in errors[0]

    def test_from_findings_carries_justifications_across_line_moves(self):
        finding = Finding(rule="DET001", severity=Severity.ERROR,
                          path="src/repro/x.py", line=40, column=7, message="m",
                          snippet="rng = np.random.default_rng()")
        fresh = Baseline.from_findings([finding], previous=Baseline([self._entry()]))
        assert fresh.entries[0].line == 40
        assert fresh.entries[0].justification == self._entry().justification

    def test_from_findings_inserts_todo_for_new_entries(self):
        finding = Finding(rule="PKD001", severity=Severity.ERROR,
                          path="src/repro/y.py", line=1, column=1, message="m",
                          snippet="w << 3")
        fresh = Baseline.from_findings([finding])
        assert fresh.entries[0].justification == TODO_JUSTIFICATION


class TestCliEndToEnd:
    def _run(self, *argv, out=None):
        import io

        out = out if out is not None else io.StringIO()
        code = analysis_main(list(argv), out=out)
        return code, out.getvalue()

    def test_violating_fixture_fails(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(UNSEEDED)
        code, text = self._run(str(bad), "--no-baseline")
        assert code == 1
        assert "DET001" in text

    def test_clean_fixture_passes(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("import numpy as np\nrng = np.random.default_rng(42)\n")
        code, text = self._run(str(good), "--no-baseline")
        assert code == 0

    def test_syntax_error_exits_two(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        code, text = self._run(str(broken), "--no-baseline")
        assert code == 2
        assert "does not parse" in text

    def test_unknown_rule_select_exits_two(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        code, text = self._run(str(good), "--select", "NOPE01")
        assert code == 2

    def test_json_report_artifact(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(UNSEEDED)
        artifact = tmp_path / "report.json"
        code, _ = self._run(str(bad), "--no-baseline", "--format", "json",
                            "--json-report", str(artifact))
        doc = json.loads(artifact.read_text())
        assert doc["summary"]["errors"] >= 1
        assert any(f["rule"] == "DET001" for f in doc["findings"])

    def test_update_baseline_then_clean_run(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(UNSEEDED)
        baseline = tmp_path / "baseline.json"
        code, text = self._run(str(bad), "--baseline", str(baseline),
                               "--update-baseline")
        assert code == 0 and baseline.is_file()
        # The TODO placeholder must fail the gate until a human justifies it.
        code, text = self._run(str(bad), "--baseline", str(baseline))
        assert code == 2
        data = json.loads(baseline.read_text())
        data["findings"][0]["justification"] = "accepted: fixture exercises DET001"
        baseline.write_text(json.dumps(data))
        code, text = self._run(str(bad), "--baseline", str(baseline))
        assert code == 0
        assert "1 baselined" in text

    def test_baselined_entry_goes_stale_when_fixed(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(UNSEEDED)
        baseline = tmp_path / "baseline.json"
        self._run(str(bad), "--baseline", str(baseline), "--update-baseline")
        data = json.loads(baseline.read_text())
        data["findings"][0]["justification"] = "fixture"
        baseline.write_text(json.dumps(data))
        bad.write_text("import numpy as np\nrng = np.random.default_rng(7)\n")
        code, text = self._run(str(bad), "--baseline", str(baseline))
        assert code == 2
        assert "stale baseline entry" in text

    def test_list_rules_names_every_family(self):
        code, text = self._run("--list-rules")
        assert code == 0
        for family in ("determinism", "packed-kernel", "lock-discipline",
                       "api-hygiene"):
            assert family in text


class TestShippedTreeIsClean:
    def test_real_tree_exits_zero(self):
        """The acceptance gate: the shipped tree passes its own pass."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src", "benchmarks",
             "examples"],
            cwd=str(REPO_ROOT),
            capture_output=True,
            text=True,
            env=env,
        )
        assert result.returncode == 0, result.stdout + result.stderr
