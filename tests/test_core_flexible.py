"""Tests of the runtime-selectable sequence length platform (future work §V)."""

import pytest

from repro.core.flexible import FlexibleLengthPlatform
from repro.core.platform import OnTheFlyPlatform
from repro.eval import estimate_fpga
from repro.hwtests import DesignParameters, UnifiedTestingBlock
from repro.trng import BiasedSource, IdealSource, StuckAtSource


@pytest.fixture(scope="module")
def flexible():
    return FlexibleLengthPlatform(
        supported_lengths=(128, 4096), tests=(1, 2, 3, 4, 13), initial_length=128
    )


class TestConfiguration:
    def test_default_lengths_are_the_papers(self):
        platform = FlexibleLengthPlatform()
        assert platform.supported_lengths == (128, 65536, 1048576)
        assert platform.active_length == 1048576

    def test_invalid_lengths_rejected(self):
        with pytest.raises(ValueError):
            FlexibleLengthPlatform(supported_lengths=(100,))
        with pytest.raises(ValueError):
            FlexibleLengthPlatform(supported_lengths=())
        with pytest.raises(ValueError):
            FlexibleLengthPlatform(supported_lengths=(64,))

    def test_initial_length_must_be_supported(self):
        with pytest.raises(ValueError):
            FlexibleLengthPlatform(supported_lengths=(128, 4096), initial_length=256)

    def test_reconfigure(self, flexible):
        flexible.reconfigure(4096)
        assert flexible.active_length == 4096
        flexible.reconfigure(128)
        assert flexible.active_length == 128

    def test_reconfigure_unsupported_rejected(self, flexible):
        with pytest.raises(ValueError):
            flexible.reconfigure(2048)

    def test_repr(self, flexible):
        assert "FlexibleLengthPlatform" in repr(flexible)


class TestBehaviour:
    def test_matches_fixed_platform_of_same_length(self):
        flexible = FlexibleLengthPlatform(
            supported_lengths=(128, 4096), tests=(1, 2, 3, 4, 13), initial_length=4096
        )
        bits = IdealSource(seed=90).generate(4096)
        flexible_report = flexible.evaluate_sequence(bits)
        fixed = OnTheFlyPlatform(flexible._design_for(4096))
        fixed_report = fixed.evaluate_sequence(bits, accelerated=True)
        assert flexible_report.failing_tests == fixed_report.failing_tests
        assert flexible_report.hardware_values == fixed_report.hardware_values

    def test_quick_then_long_monitoring(self, flexible):
        """The use case of the future-work feature: the same hardware first
        runs a quick 128-bit check, then is reconfigured for a longer test."""
        flexible.reconfigure(128)
        quick = flexible.evaluate_source(StuckAtSource(0))
        assert not quick.passed
        flexible.reconfigure(4096)
        weak = BiasedSource(0.55, seed=91)
        long_report = flexible.evaluate_sequence(weak.generate(4096))
        assert not long_report.passed
        assert long_report.n == 4096

    def test_evaluate_source_uses_active_length(self, flexible):
        flexible.reconfigure(128)
        report = flexible.evaluate_source(IdealSource(seed=92))
        assert report.n == 128

    def test_set_alpha_propagates(self, flexible):
        flexible.set_alpha(0.001)
        assert flexible.alpha == 0.001
        flexible.reconfigure(128)
        report = flexible.evaluate_source(IdealSource(seed=93))
        assert report.alpha == 0.001
        flexible.set_alpha(0.01)


class TestResources:
    def test_overhead_is_positive_but_modest(self):
        platform = FlexibleLengthPlatform(supported_lengths=(128, 65536))
        flexible_slices, fixed_slices, overhead = platform.overhead_versus_fixed()
        assert flexible_slices >= fixed_slices
        assert overhead < 0.20  # the flexibility premium stays below 20 %

    def test_resources_at_least_max_length_design(self):
        platform = FlexibleLengthPlatform(supported_lengths=(128, 65536))
        fixed = UnifiedTestingBlock(
            DesignParameters.for_length(65536), tests=platform.tests
        ).resources()
        assert platform.resources().flip_flops >= fixed.flip_flops
        assert platform.resources().lut_estimate >= fixed.lut_estimate

    def test_overhead_grows_with_number_of_lengths(self):
        two = FlexibleLengthPlatform(supported_lengths=(128, 65536))
        three = FlexibleLengthPlatform(supported_lengths=(128, 4096, 65536))
        assert (
            three.configuration_overhead().lut_estimate
            > two.configuration_overhead().lut_estimate
        )

    def test_fpga_estimate_labelled(self):
        platform = FlexibleLengthPlatform(supported_lengths=(128, 65536))
        estimate = platform.fpga_estimate()
        assert "flexible" in estimate.label
        assert estimate.max_frequency_mhz > 100
