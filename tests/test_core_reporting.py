"""Tests of alarm-wire vs value-based reporting under probing attacks."""

import pytest

from repro.core.platform import OnTheFlyPlatform
from repro.core.reporting import (
    AlarmWireReporter,
    TamperedRegisterFile,
    ValueBasedReporter,
    compare_reporting_under_probing,
)
from repro.trng import IdealSource, ProbingAttack, StuckAtSource


@pytest.fixture(scope="module")
def platform():
    return OnTheFlyPlatform("n128_light")


class TestAlarmWireReporter:
    def test_reports_genuine_failures(self, platform):
        report = platform.evaluate_source(StuckAtSource(0))
        assert AlarmWireReporter().alarm(report) is True

    def test_no_alarm_for_healthy_source(self, platform):
        report = platform.evaluate_source(IdealSource(seed=70))
        assert AlarmWireReporter().alarm(report) is False

    def test_grounded_alarm_hides_failures(self, platform):
        """The paper's motivating weakness: grounding the wire masks failures."""
        report = platform.evaluate_source(StuckAtSource(0))
        assert AlarmWireReporter(ProbingAttack("ground")).alarm(report) is False

    def test_vdd_alarm_causes_false_alarms(self, platform):
        report = platform.evaluate_source(IdealSource(seed=71))
        assert AlarmWireReporter(ProbingAttack("vdd")).alarm(report) is True


class TestTamperedRegisterFile:
    def test_ground_forces_zero(self, platform):
        platform.evaluate_source(IdealSource(seed=72))
        tampered = TamperedRegisterFile(platform.hardware.register_file, ProbingAttack("ground"))
        assert all(value == 0 for value in tampered.dump().values())

    def test_vdd_forces_all_ones(self, platform):
        platform.evaluate_source(IdealSource(seed=73))
        tampered = TamperedRegisterFile(platform.hardware.register_file, ProbingAttack("vdd"))
        for name, value in tampered.dump().items():
            assert value == (1 << tampered.width_of(name)) - 1

    def test_preserves_register_map(self, platform):
        platform.evaluate_source(IdealSource(seed=74))
        original = platform.hardware.register_file
        tampered = TamperedRegisterFile(original, ProbingAttack("ground"))
        assert tampered.memory_map() == original.memory_map()


class TestValueBasedReporter:
    def test_detects_failure_without_probing(self, platform):
        platform.evaluate_source(StuckAtSource(0))
        reporter = ValueBasedReporter(platform)
        assert reporter.failure_detected()

    def test_detects_probing_via_consistency(self, platform):
        platform.evaluate_source(StuckAtSource(0))
        reporter = ValueBasedReporter(platform, probing=ProbingAttack("ground"))
        report = reporter.report()
        assert report.consistency_violations
        assert not report.passed


class TestReportingComparison:
    def test_value_based_survives_probing(self, platform):
        """The headline security claim, end to end."""
        comparison = compare_reporting_under_probing(
            platform, StuckAtSource(0), ProbingAttack("ground")
        )
        assert comparison.source_is_bad
        assert comparison.alarm_wire_detects is True
        assert comparison.alarm_wire_detects_under_probing is False  # attack wins
        assert comparison.value_based_detects is True
        assert comparison.value_based_detects_under_probing is True  # attack loses
        assert comparison.consistency_violations_under_probing > 0

    def test_comparison_as_dict(self, platform):
        comparison = compare_reporting_under_probing(platform, StuckAtSource(1))
        data = comparison.as_dict()
        assert set(data) == {
            "source_is_bad",
            "alarm_wire_detects",
            "alarm_wire_detects_under_probing",
            "value_based_detects",
            "value_based_detects_under_probing",
            "consistency_violations_under_probing",
        }
