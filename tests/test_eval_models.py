"""Tests of the FPGA/ASIC/latency estimators and the standalone baseline."""

import pytest

from repro.core.configs import get_design, list_designs
from repro.eval import (
    estimate_asic,
    estimate_fpga,
    latency_report,
    standalone_baseline,
    throughput_mbit_per_s,
    unified_vs_standalone,
)
from repro.eval.fpga import SPARTAN6_MODEL, FpgaTechnologyModel
from repro.hwtests import DesignParameters, UnifiedTestingBlock
from repro.sw.cycles import CYCLE_PROFILES, estimate_cycles
from repro.sw.processor import InstructionCounts


def _resources(name):
    design = get_design(name)
    return UnifiedTestingBlock(design.parameters, tests=design.tests).resources()


class TestFpgaEstimation:
    def test_basic_fields(self):
        estimate = estimate_fpga(_resources("n65536_high"))
        assert estimate.slices > 0
        assert estimate.flip_flops > 0
        assert estimate.luts > 0
        assert 0 < estimate.utilisation_percent < 100
        row = estimate.as_row()
        assert {"design", "slices", "ff", "lut", "max_freq_mhz"} <= set(row)

    def test_all_designs_exceed_100mhz(self):
        """Section IV claim: every design sustains > 100 Mbit/s (1 bit/cycle)."""
        for design in list_designs():
            block = UnifiedTestingBlock(design.parameters, tests=design.tests)
            estimate = estimate_fpga(block.resources())
            assert estimate.max_frequency_mhz > 100, design.name

    def test_slices_ordering_light_medium_high(self):
        light = estimate_fpga(_resources("n65536_light")).slices
        medium = estimate_fpga(_resources("n65536_medium")).slices
        high = estimate_fpga(_resources("n65536_high")).slices
        assert light < medium < high

    def test_slices_grow_with_sequence_length(self):
        assert (
            estimate_fpga(_resources("n128_light")).slices
            < estimate_fpga(_resources("n65536_light")).slices
            < estimate_fpga(_resources("n1048576_light")).slices
        )

    def test_fmax_decreases_with_design_size(self):
        small = estimate_fpga(_resources("n128_light")).max_frequency_mhz
        large = estimate_fpga(_resources("n1048576_high")).max_frequency_mhz
        assert large < small

    def test_smallest_design_close_to_paper(self):
        """The 128-bit light design lands near the published 52 slices."""
        slices = estimate_fpga(_resources("n128_light")).slices
        assert 40 <= slices <= 70

    def test_custom_technology_model(self):
        loose = FpgaTechnologyModel(name="loose", luts_per_slice=2.0)
        default = estimate_fpga(_resources("n128_light"))
        custom = estimate_fpga(_resources("n128_light"), model=loose)
        assert custom.slices >= default.slices

    def test_throughput_equals_fmax(self):
        estimate = estimate_fpga(_resources("n128_light"))
        assert throughput_mbit_per_s(estimate) == estimate.max_frequency_mhz


class TestAsicEstimation:
    def test_positive_and_ordered(self):
        light = estimate_asic(_resources("n65536_light")).gate_equivalents
        high = estimate_asic(_resources("n65536_high")).gate_equivalents
        assert 0 < light < high

    def test_smallest_design_near_paper_value(self):
        """Paper: 1210 GE for the 128-bit light design."""
        ge = estimate_asic(_resources("n128_light")).gate_equivalents
        assert 900 <= ge <= 1700

    def test_largest_design_near_paper_value(self):
        """Paper: 12416 GE for the 2^20-bit high design."""
        ge = estimate_asic(_resources("n1048576_high")).gate_equivalents
        assert 9000 <= ge <= 16000

    def test_as_row(self):
        row = estimate_asic(_resources("n128_light")).as_row()
        assert {"design", "ge", "ff"} <= set(row)


class TestCycleModels:
    def test_profiles_available(self):
        assert {"openmsp430_hw_mult", "openmsp430_sw_mult", "embedded_32bit"} <= set(CYCLE_PROFILES)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            estimate_cycles(InstructionCounts(), profile="z80")

    def test_software_multiplier_is_much_slower(self):
        counts = InstructionCounts(add=100, mul=50, sqr=20, read=30)
        hw = estimate_cycles(counts, "openmsp430_hw_mult")
        sw = estimate_cycles(counts, "openmsp430_sw_mult")
        assert sw > 3 * hw

    def test_zero_counts_zero_cycles(self):
        assert estimate_cycles(InstructionCounts()) == 0.0


class TestLatencyReport:
    def test_report_fields_and_ratio(self):
        counts = InstructionCounts(add=300, sub=50, mul=60, sqr=60, shift=20, comp=50, lut=24, read=60)
        report = latency_report("n65536_medium", 65536, counts)
        assert report.instruction_total == counts.total()
        assert report.software_cycles > 0
        assert report.latency_ratio < 1.0  # SW latency far below generation time
        assert {"design", "sw_cycles", "generation_time_us"} <= set(report.as_row())

    def test_invalid_profile(self):
        with pytest.raises(ValueError):
            latency_report("x", 128, InstructionCounts(), profile="unknown")


class TestStandaloneBaseline:
    def test_per_test_estimates(self):
        params = DesignParameters.for_length(65536)
        estimates = standalone_baseline(params, (1, 2, 3, 4, 7, 13))
        assert len(estimates) == 6
        assert all(item.fpga.slices > 0 for item in estimates)
        # Tests needing a multiplier datapath carry extra evaluation logic.
        by_test = {item.test_number: item for item in estimates}
        assert by_test[2].evaluation_luts > by_test[1].evaluation_luts

    def test_unified_saves_area(self):
        """Table IV shape: the unified design uses fewer slices than the sum
        of standalone implementations."""
        params = DesignParameters.for_length(65536)
        comparison = unified_vs_standalone(
            params, (1, 2, 3, 4, 7, 13), software_latency_cycles=5000.0
        )
        assert comparison["unified_slices"] < comparison["standalone_slices_total"]
        assert comparison["slice_saving_percent"] > 10.0
        assert comparison["unified_latency_cycles"] > comparison["standalone_latency_cycles"]

    def test_unsupported_test_rejected(self):
        params = DesignParameters.for_length(65536)
        with pytest.raises(ValueError):
            standalone_baseline(params, (5,))
