"""Statistical behaviour of the reference tests (beyond known answers).

Two families of checks:

* under the null hypothesis (ideal source) the P-values are roughly uniform
  on [0, 1] — verified with a coarse Kolmogorov–Smirnov bound over a few
  hundred sequences, which is enough to catch systematic biases such as a
  mis-scaled statistic or a wrong degrees-of-freedom parameter;
* the empirical type-1 error rate at α = 0.01 stays near 1 %.

The sample counts are deliberately modest to keep the suite fast; the bounds
are loose accordingly (they would catch factor-level errors, not subtle
mis-calibration).
"""

import numpy as np
import pytest

from repro.nist import (
    approximate_entropy_test,
    block_frequency_test,
    cumulative_sums_test,
    frequency_test,
    longest_run_test,
    runs_test,
    serial_test,
)

NUM_SEQUENCES = 200
SEQUENCE_BITS = 1024


@pytest.fixture(scope="module")
def null_sequences():
    rng = np.random.default_rng(123456)
    return [rng.integers(0, 2, SEQUENCE_BITS, dtype=np.uint8) for _ in range(NUM_SEQUENCES)]


def _p_values(test, sequences, **kwargs):
    return np.array([test(bits, **kwargs).p_value for bits in sequences])


def _ks_distance(p_values):
    """Kolmogorov-Smirnov distance of a sample against the uniform CDF."""
    sorted_p = np.sort(p_values)
    n = sorted_p.size
    cdf = np.arange(1, n + 1) / n
    return float(np.max(np.abs(cdf - sorted_p)))


# A very loose KS bound: for n = 200 the 1% critical value is ~0.115; allow
# 0.20 so that discreteness of some statistics does not trip the check while
# factor-level errors (which push the distance towards 0.5+) still do.
KS_BOUND = 0.20


class TestPValueUniformity:
    @pytest.mark.parametrize(
        "test,kwargs",
        [
            (frequency_test, {}),
            (block_frequency_test, {"block_length": 128}),
            (runs_test, {}),
            (serial_test, {"m": 4}),
            (approximate_entropy_test, {"m": 3}),
            (cumulative_sums_test, {}),
        ],
        ids=["frequency", "block_frequency", "runs", "serial", "approximate_entropy", "cusum"],
    )
    def test_null_p_values_look_uniform(self, null_sequences, test, kwargs):
        p_values = _p_values(test, null_sequences, **kwargs)
        assert np.all((p_values >= 0.0) & (p_values <= 1.0))
        assert _ks_distance(p_values) < KS_BOUND

    def test_longest_run_p_values_bounded(self, null_sequences):
        # The longest-run statistic is strongly discrete at M=8 / 128 blocks,
        # so only the range and the mean are checked.
        p_values = _p_values(longest_run_test, null_sequences, block_length=8)
        assert np.all((p_values >= 0.0) & (p_values <= 1.0))
        assert 0.3 < p_values.mean() < 0.7


class TestTypeOneError:
    @pytest.mark.parametrize(
        "test,kwargs",
        [
            (frequency_test, {}),
            (runs_test, {}),
            (serial_test, {"m": 4}),
            (cumulative_sums_test, {}),
        ],
        ids=["frequency", "runs", "serial", "cusum"],
    )
    def test_rejection_rate_near_alpha(self, null_sequences, test, kwargs):
        alpha = 0.01
        rejections = sum(
            0 if test(bits, **kwargs).passed(alpha) else 1 for bits in null_sequences
        )
        # Expected 2 rejections out of 200; allow up to 9 (binomial 99.9th
        # percentile is ~8) and require that the test is not trivially
        # rejecting everything or nothing pathologically.
        assert rejections <= 9

    def test_smaller_alpha_rejects_less(self, null_sequences):
        strict = sum(0 if frequency_test(b).passed(0.01) else 1 for b in null_sequences)
        loose = sum(0 if frequency_test(b).passed(0.001) else 1 for b in null_sequences)
        assert loose <= strict


class TestMonotoneSensitivity:
    def test_frequency_p_value_decreases_with_bias(self):
        rng = np.random.default_rng(777)
        p_values = []
        for bias in (0.50, 0.55, 0.60, 0.70):
            bits = (rng.random(SEQUENCE_BITS) < bias).astype(np.uint8)
            p_values.append(frequency_test(bits).p_value)
        assert p_values[0] > p_values[-1]
        assert p_values[-1] < 1e-6

    def test_serial_p_value_decreases_with_correlation(self):
        rng = np.random.default_rng(778)
        p_values = []
        for repeat in (0.5, 0.7, 0.9):
            bits = np.empty(SEQUENCE_BITS, dtype=np.uint8)
            bits[0] = rng.integers(0, 2)
            for i in range(1, SEQUENCE_BITS):
                if rng.random() < repeat:
                    bits[i] = bits[i - 1]
                else:
                    bits[i] = 1 - bits[i - 1]
            p_values.append(serial_test(bits, m=4).min_p_value)
        assert p_values[0] > p_values[2]
        assert p_values[2] < 1e-6
