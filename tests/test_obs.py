"""Unit tests of the observability core: metrics primitives, spans, export."""

import json
import re
import threading

import pytest

import repro.obs as obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        counter = registry.counter("c_total", "help")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("c_total", "help")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_children_are_independent(self, registry):
        counter = registry.counter("c_total", "help", labels=("path",))
        counter.inc(path="inline")
        counter.inc(3, path="batched")
        assert counter.value(path="inline") == 1.0
        assert counter.value(path="batched") == 3.0
        assert counter.value(path="pooled") == 0.0

    def test_wrong_label_set_rejected(self, registry):
        counter = registry.counter("c_total", "help", labels=("path",))
        with pytest.raises(ValueError):
            counter.inc(route="x")
        with pytest.raises(ValueError):
            counter.inc()

    def test_eight_thread_hammer_is_exact(self, registry):
        counter = registry.counter("c_total", "help", labels=("worker",))
        threads = 8
        per_thread = 5000

        def hammer(index):
            for _ in range(per_thread):
                counter.inc(worker=str(index % 2))

        pool = [threading.Thread(target=hammer, args=(i,)) for i in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        total = counter.value(worker="0") + counter.value(worker="1")
        assert total == threads * per_thread


class TestGauge:
    def test_set_and_add(self, registry):
        gauge = registry.gauge("g", "help")
        gauge.set(4.0)
        gauge.add(-1.5)
        assert gauge.value() == 2.5
        gauge.set(0.25)
        assert gauge.value() == 0.25


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self, registry):
        histogram = registry.histogram("h_seconds", "help", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count() == 4
        assert histogram.total() == pytest.approx(55.55)
        text = registry.render_text()
        assert 'h_seconds_bucket{le="0.1"} 1' in text
        assert 'h_seconds_bucket{le="1"} 2' in text
        assert 'h_seconds_bucket{le="10"} 3' in text
        assert 'h_seconds_bucket{le="+Inf"} 4' in text

    def test_boundary_value_is_inclusive(self, registry):
        histogram = registry.histogram("h_seconds", "help", buckets=(1.0,))
        histogram.observe(1.0)
        assert 'h_seconds_bucket{le="1"} 1' in registry.render_text()

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("h", "help", buckets=(2.0, 1.0))

    def test_default_latency_buckets_are_log_spaced(self):
        bounds = obs.DEFAULT_LATENCY_BUCKETS
        assert bounds == tuple(sorted(bounds))
        assert bounds[0] == 1e-6
        assert bounds[-1] == 50.0
        # 1-2-5 per decade, rendered without float fuzz.
        assert 5e-6 in bounds and 0.02 in bounds


class TestRegistry:
    def test_get_or_create_is_idempotent(self, registry):
        first = registry.counter("c_total", "help", labels=("a",))
        second = registry.counter("c_total", "help", labels=("a",))
        assert first is second

    def test_conflicting_reregistration_rejected(self, registry):
        registry.counter("name", "help")
        with pytest.raises(ValueError):
            registry.gauge("name", "help")
        with pytest.raises(ValueError):
            registry.counter("name", "help", labels=("x",))

    def test_invalid_metric_name_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("bad-name", "help")

    def test_reset_clears_values_but_keeps_registrations(self, registry):
        counter = registry.counter("c_total", "help")
        counter.inc(7)
        registry.reset()
        assert counter.value() == 0.0
        assert registry.counter("c_total", "help") is counter

    def test_snapshot_is_json_ready(self, registry):
        registry.counter("c_total", "help", labels=("k",)).inc(2, k="v")
        registry.histogram("h_seconds", "help", buckets=(1.0,)).observe(0.5)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        names = {metric["name"] for metric in snapshot["metrics"]}
        assert {"c_total", "h_seconds"} <= names


#: One exposition line: name{labels} value  (labels optional, value a float,
#: integer or +/-Inf/NaN spelling).
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})? "
    r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$"
)


class TestExpositionFormat:
    def test_every_line_is_help_type_or_sample(self, registry):
        registry.counter("c_total", "with \\ and \n newline", labels=("k",)).inc(
            1, k='quote " backslash \\ newline \n'
        )
        registry.gauge("g", "plain").set(1.5)
        registry.histogram("h_seconds", "hist", buckets=(0.1, 1.0)).observe(0.2)
        seen_types = {}
        for line in registry.render_text().splitlines():
            if line.startswith("# HELP "):
                assert re.match(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$", line)
                assert "\n" not in line
            elif line.startswith("# TYPE "):
                name, kind = line.split()[2:4]
                assert kind in ("counter", "gauge", "histogram")
                seen_types[name] = kind
            else:
                assert _SAMPLE_RE.match(line), f"malformed sample line: {line!r}"
        assert seen_types == {
            "c_total": "counter", "g": "gauge", "h_seconds": "histogram",
        }

    def test_histogram_emits_sum_and_count(self, registry):
        registry.histogram("h_seconds", "hist", buckets=(1.0,)).observe(0.5)
        text = registry.render_text()
        assert "h_seconds_sum 0.5" in text
        assert "h_seconds_count 1" in text


class TestEnableFlag:
    def test_disabled_blocks_updates_and_recording(self, registry):
        counter = registry.counter("c_total", "help")
        tracer = Tracer()
        with obs.disabled():
            counter.inc(5)
            with tracer.span("root") as span:
                pass
        assert counter.value() == 0.0
        assert tracer.traces() == ()
        # Spans still measure time while disabled (the scheduler's round
        # timer reads duration_s unconditionally).
        assert span.duration_s >= 0.0
        counter.inc()
        assert counter.value() == 1.0

    def test_set_enabled_round_trip(self):
        assert obs.is_enabled()
        obs.set_enabled(False)
        try:
            assert not obs.is_enabled()
        finally:
            obs.set_enabled(True)


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root", kind="test") as root:
            with tracer.span("child-a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child-b"):
                pass
        assert root.stage_names() == ["root", "child-a", "grandchild", "child-b"]
        assert tracer.traces() == (root,)
        assert root.attributes == {"kind": "test"}
        assert root.duration_s >= sum(c.duration_s for c in root.children)

    def test_export_start_times_relative_to_root(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        exported = tracer.export()[0]
        assert exported["start_s"] == 0.0
        child = exported["children"][0]
        assert child["start_s"] >= 0.0
        assert child["error"] is None
        json.dumps(exported)  # JSON-ready

    def test_exception_recorded_and_stack_unwound(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                with tracer.span("child"):
                    raise RuntimeError("boom")
        root = tracer.traces()[0]
        assert root.error == "RuntimeError"
        assert root.children[0].error == "RuntimeError"
        assert tracer.current() is None

    def test_ring_is_bounded(self):
        tracer = Tracer(capacity=4)
        for index in range(10):
            with tracer.span(f"root-{index}"):
                pass
        names = [root.name for root in tracer.traces()]
        assert names == ["root-6", "root-7", "root-8", "root-9"]

    def test_threads_do_not_interleave_trees(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker(tag):
            with tracer.span(f"root-{tag}"):
                barrier.wait(timeout=5)
                with tracer.span(f"child-{tag}"):
                    pass

        threads = [threading.Thread(target=worker, args=(t,)) for t in "ab"]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = tracer.traces()
        assert len(roots) == 2
        for root in roots:
            tag = root.name[-1]
            assert [c.name for c in root.children] == [f"child-{tag}"]

    def test_clear_drops_recorded_traces(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        tracer.clear()
        assert tracer.traces() == ()
