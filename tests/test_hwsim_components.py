"""Tests of the hardware primitives and resource accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hwsim import (
    Counter,
    EqualityComparator,
    PatternCounterBank,
    PatternDetector,
    Register,
    RegisterFile,
    ResourceReport,
    ShiftRegister,
    UpDownCounter,
    component_inventory,
)


class TestRegister:
    def test_load_and_read(self):
        reg = Register("r", 8)
        reg.load(0xAB)
        assert reg.value == 0xAB

    def test_wraps_to_width(self):
        reg = Register("r", 4)
        reg.load(0x1F)
        assert reg.value == 0xF

    def test_reset_value(self):
        reg = Register("r", 8, reset_value=0x55)
        reg.load(0)
        reg.reset()
        assert reg.value == 0x55

    def test_force_is_load(self):
        reg = Register("r", 8)
        reg.force(7)
        assert reg.value == 7

    def test_resources(self):
        reg = Register("r", 12)
        assert reg.flip_flops == 12
        assert reg.lut_estimate == 0.0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            Register("r", 0)


class TestCounter:
    def test_counts_only_when_enabled(self):
        counter = Counter("c", 8)
        counter.increment(True)
        counter.increment(False)
        counter.increment(True)
        assert counter.value == 2

    def test_wraps_at_width(self):
        counter = Counter("c", 2)
        for _ in range(5):
            counter.increment()
        assert counter.value == 1

    def test_clear(self):
        counter = Counter("c", 4)
        counter.increment()
        counter.clear()
        assert counter.value == 0

    def test_force_range_checked(self):
        counter = Counter("c", 4)
        counter.force(15)
        assert counter.value == 15
        with pytest.raises(ValueError):
            counter.force(16)

    def test_resources(self):
        counter = Counter("c", 10)
        assert counter.flip_flops == 10
        assert counter.lut_estimate == 10.0

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_counts_match_increments(self, increments):
        counter = Counter("c", 16)
        for _ in range(increments):
            counter.increment()
        assert counter.value == increments


class TestUpDownCounter:
    def test_signed_counting(self):
        counter = UpDownCounter("u", 8)
        counter.count(up=False)
        counter.count(up=False)
        counter.count(up=True)
        assert counter.value == -1

    def test_range_properties(self):
        counter = UpDownCounter("u", 8)
        assert counter.min_value == -128
        assert counter.max_value == 127

    def test_force_signed(self):
        counter = UpDownCounter("u", 8)
        counter.force(-5)
        assert counter.value == -5
        with pytest.raises(ValueError):
            counter.force(200)

    def test_resources(self):
        counter = UpDownCounter("u", 8)
        assert counter.flip_flops == 8
        assert counter.lut_estimate == 12.0

    @given(st.lists(st.booleans(), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_tracks_walk_exactly(self, ups):
        counter = UpDownCounter("u", 12)
        expected = 0
        for up in ups:
            counter.count(up)
            expected += 1 if up else -1
        assert counter.value == expected


class TestShiftRegister:
    def test_shift_in_msb_is_oldest(self):
        sr = ShiftRegister("s", 4)
        for bit in (1, 0, 1, 1):
            sr.shift_in(bit)
        assert sr.value == 0b1011
        assert sr.bits() == [1, 0, 1, 1]

    def test_full_flag(self):
        sr = ShiftRegister("s", 3)
        assert not sr.full
        for _ in range(3):
            sr.shift_in(1)
        assert sr.full

    def test_old_bits_fall_off(self):
        sr = ShiftRegister("s", 2)
        for bit in (1, 1, 0, 0):
            sr.shift_in(bit)
        assert sr.value == 0b00

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            ShiftRegister("s", 2).shift_in(2)

    def test_clear(self):
        sr = ShiftRegister("s", 4)
        sr.shift_in(1)
        sr.clear()
        assert sr.value == 0
        assert not sr.full


class TestComparatorAndDetector:
    def test_equality_comparator(self):
        cmp = EqualityComparator("eq", 4, 0b1010)
        assert cmp.matches(0b1010)
        assert not cmp.matches(0b1011)

    def test_comparator_constant_range(self):
        with pytest.raises(ValueError):
            EqualityComparator("eq", 3, 8)

    def test_comparator_resources(self):
        assert EqualityComparator("eq", 9, 1).flip_flops == 0
        assert EqualityComparator("eq", 9, 1).lut_estimate >= 1

    def test_pattern_detector_own_register(self):
        detector = PatternDetector("d", (1, 0, 1))
        results = [detector.shift_in(b) for b in (1, 0, 1)]
        assert results == [False, False, True]
        assert detector.flip_flops == 3

    def test_pattern_detector_shared_register(self):
        shared = ShiftRegister("shared", 3)
        detector = PatternDetector("d", (1, 1, 1), shared_shift_register=shared)
        for _ in range(3):
            shared.shift_in(1)
        assert detector.matches()
        assert detector.flip_flops == 0  # shared register not accounted here

    def test_pattern_detector_width_mismatch(self):
        shared = ShiftRegister("shared", 4)
        with pytest.raises(ValueError):
            PatternDetector("d", (1, 1, 1), shared_shift_register=shared)

    def test_pattern_detector_invalid_pattern(self):
        with pytest.raises(ValueError):
            PatternDetector("d", ())


class TestPatternCounterBank:
    def test_records_by_value(self):
        bank = PatternCounterBank("b", 2, 8)
        bank.record(0b10)
        bank.record(0b10)
        bank.record(0b01)
        assert bank.counts() == [0, 1, 2, 0]

    def test_value_out_of_range(self):
        bank = PatternCounterBank("b", 2, 8)
        with pytest.raises(ValueError):
            bank.record(4)

    def test_reset(self):
        bank = PatternCounterBank("b", 2, 8)
        bank.record(1)
        bank.reset()
        assert bank.counts() == [0, 0, 0, 0]

    def test_resources_scale_with_size(self):
        small = PatternCounterBank("s", 2, 8)
        large = PatternCounterBank("l", 4, 8)
        assert large.flip_flops == 4 * small.flip_flops
        assert small.flip_flops == 4 * 8


class TestResourceReport:
    def test_from_components(self):
        components = [Counter("a", 8), Register("b", 4), ShiftRegister("c", 9)]
        report = ResourceReport.from_components(components, label="x", readout_values=3)
        assert report.flip_flops == 21
        assert report.max_counter_width == 8
        assert report.readout_values == 3
        assert report.components == {"counter": 1, "register": 1, "shift_register": 1}
        assert report.total_components() == 3

    def test_merge(self):
        a = ResourceReport(flip_flops=10, lut_estimate=5.0, max_counter_width=8,
                           readout_values=2, components={"counter": 1}, label="a")
        b = ResourceReport(flip_flops=20, lut_estimate=7.0, max_counter_width=12,
                           readout_values=3, components={"counter": 2, "register": 1})
        merged = a.merge(b)
        assert merged.flip_flops == 30
        assert merged.lut_estimate == 12.0
        assert merged.max_counter_width == 12
        assert merged.readout_values == 5
        assert merged.components == {"counter": 3, "register": 1}
        assert merged.label == "a"

    def test_component_inventory(self):
        rows = component_inventory([Counter("a", 8)])
        assert rows[0]["name"] == "a"
        assert rows[0]["kind"] == "counter"
        assert rows[0]["flip_flops"] == 8


class TestRegisterFile:
    def _make(self):
        regfile = RegisterFile(bus_width=16)
        counter = Counter("c", 20)
        counter.force(123456)
        regfile.add("wide", 20, lambda: counter.value)
        regfile.add("narrow", 8, lambda: 42)
        return regfile

    def test_read_by_name_and_address(self):
        regfile = self._make()
        assert regfile.read("wide") == 123456
        assert regfile.read_by_address(1) == 42

    def test_duplicate_name_rejected(self):
        regfile = self._make()
        with pytest.raises(ValueError):
            regfile.add("wide", 8, lambda: 0)

    def test_unknown_reads_raise(self):
        regfile = self._make()
        with pytest.raises(KeyError):
            regfile.read("missing")
        with pytest.raises(KeyError):
            regfile.read_by_address(99)

    def test_dump_and_names(self):
        regfile = self._make()
        assert regfile.names() == ["wide", "narrow"]
        assert regfile.dump() == {"wide": 123456, "narrow": 42}

    def test_words_required(self):
        regfile = self._make()
        assert regfile.words_required("wide") == 2
        assert regfile.words_required("narrow") == 1
        assert regfile.total_read_words() == 3

    def test_memory_map(self):
        rows = self._make().memory_map()
        assert rows[0] == {"address": 0, "name": "wide", "width": 20}

    def test_mux_component_cost_scales(self):
        small = RegisterFile()
        small.add("a", 8, lambda: 0)
        big = RegisterFile()
        for i in range(20):
            big.add(f"v{i}", 16, lambda: 0)
        assert big.mux_component().lut_estimate > small.mux_component().lut_estimate

    def test_address_space_exhaustion(self):
        regfile = RegisterFile(address_bits=2)
        for i in range(4):
            regfile.add(f"v{i}", 8, lambda: 0)
        with pytest.raises(ValueError):
            regfile.add("overflow", 8, lambda: 0)
