"""Fixture tests of the api-hygiene family (API001-API003)."""

from repro.analysis.framework import analyze_source

ENGINE = "src/repro/engine/fixture.py"


def rules(source, path=ENGINE):
    ctx = analyze_source(source, path)
    return [f.rule for f in ctx.findings]


class TestApi001Annotations:
    def test_missing_parameter_annotation_fires(self):
        assert "API001" in rules("def run(matrix) -> int:\n    return 0\n")

    def test_missing_return_annotation_fires(self):
        assert "API001" in rules("def run(matrix: object):\n    return 0\n")

    def test_fully_annotated_is_clean(self):
        assert "API001" not in rules("def run(matrix: object) -> int:\n    return 0\n")

    def test_private_helpers_are_exempt(self):
        assert "API001" not in rules("def _helper(x):\n    return x\n")

    def test_self_needs_no_annotation(self):
        source = (
            "class Engine:\n"
            "    def run(self, matrix: object) -> int:\n"
            "        return 0\n"
        )
        assert "API001" not in rules(source)

    def test_nested_functions_are_exempt(self):
        source = (
            "def run(matrix: object) -> int:\n"
            "    def inner(x):\n"
            "        return x\n"
            "    return inner(0)\n"
        )
        assert "API001" not in rules(source)

    def test_scope_is_engine_fleet_analysis_only(self):
        source = "def run(matrix):\n    return 0\n"
        assert "API001" not in rules(source, path="src/repro/trng/fixture.py")
        assert "API001" in rules(source, path="src/repro/fleet/fixture.py")
        assert "API001" in rules(source, path="src/repro/analysis/fixture.py")


class TestApi002HelpDrift:
    def test_choice_absent_from_help_fires(self):
        source = (
            "parser.add_argument('--backend', choices=('packed', 'uint8'),\n"
            "                    help='use the packed backend')\n"
        )
        assert "API002" in rules(source)

    def test_all_choices_named_is_clean(self):
        source = (
            "parser.add_argument('--backend', choices=('packed', 'uint8'),\n"
            "                    help=\"word backend: 'packed' or 'uint8'\")\n"
        )
        assert "API002" not in rules(source)

    def test_dynamic_choices_are_not_checked(self):
        source = (
            "parser.add_argument('--test', choices=sorted(REGISTRY),\n"
            "                    help='which test to run')\n"
        )
        assert "API002" not in rules(source)


class TestApi003PoolPicklability:
    def test_lambda_to_pool_map_fires(self):
        source = "results = pool.map(lambda shard: shard.run(), shards)\n"
        assert "API003" in rules(source)

    def test_nested_def_to_executor_submit_fires(self):
        source = (
            "def fan_out(executor, shards):\n"
            "    def work(shard):\n"
            "        return shard.run()\n"
            "    return [executor.submit(work, s) for s in shards]\n"
        )
        assert "API003" in rules(source)

    def test_module_level_callable_is_clean(self):
        source = (
            "def fan_out(pool, shards):\n"
            "    return pool.map(_shard_worker, shards)\n"
        )
        assert "API003" not in rules(source)

    def test_non_pool_receivers_are_ignored(self):
        source = "result = mapping.map(lambda item: item, items)\n"
        assert "API003" not in rules(source)
