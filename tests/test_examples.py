"""The example scripts run end to end (smoke tests).

The examples double as documentation; these tests keep them working.  The two
quick ones are executed in-process, the longer ones as subprocesses with a
generous timeout and are marked slow.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 600) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExampleScripts:
    def test_examples_directory_contents(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "attack_detection.py",
            "design_space_exploration.py",
            "continuous_monitoring.py",
            "detection_campaign.py",
            "fleet_monitoring.py",
        } <= names

    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "Healthy source" in result.stdout
        assert "Biased source" in result.stdout
        assert "FAIL" in result.stdout

    def test_design_space_exploration(self):
        result = run_example("design_space_exploration.py")
        assert result.returncode == 0, result.stderr
        assert "n1048576_high" in result.stdout
        assert "Design selection" in result.stdout

    @pytest.mark.slow
    def test_attack_detection(self):
        result = run_example("attack_detection.py")
        assert result.returncode == 0, result.stderr
        assert "Frequency-injection attack" in result.stdout
        assert "value-based reporting" in result.stdout.lower()

    def test_detection_campaign(self):
        result = run_example("detection_campaign.py")
        assert result.returncode == 0, result.stderr
        assert "Detection campaign" in result.stdout
        assert "false-alarm rate" in result.stdout
        assert "wire-cut" in result.stdout

    def test_fleet_monitoring(self):
        result = run_example("fleet_monitoring.py")
        assert result.returncode == 0, result.stderr
        assert "Fleet monitoring" in result.stdout
        assert "wire-cut" in result.stdout
        assert "register -> ingest -> health -> summary" in result.stdout
        assert "health: failed" in result.stdout

    @pytest.mark.slow
    def test_continuous_monitoring(self):
        result = run_example("continuous_monitoring.py")
        assert result.returncode == 0, result.stderr
        assert "final state: failed" in result.stdout
