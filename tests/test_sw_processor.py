"""Tests of the 16-bit software-platform model (instruction counting)."""

import pytest

from repro.hwsim.register_file import RegisterFile
from repro.sw.processor import InstructionCounts, SoftwareProcessor, SWValue


class TestInstructionCounts:
    def test_total(self):
        counts = InstructionCounts(add=2, mul=3, read=5)
        assert counts.total() == 10

    def test_as_dict_keys(self):
        assert set(InstructionCounts().as_dict()) == {
            "ADD", "SUB", "MUL", "SQR", "SHIFT", "COMP", "LUT", "READ"
        }

    def test_merge(self):
        merged = InstructionCounts(add=1, lut=2).merge(InstructionCounts(add=3, read=4))
        assert merged.add == 4
        assert merged.lut == 2
        assert merged.read == 4


class TestSWValue:
    def test_words(self):
        assert SWValue(0, 16).words == 1
        assert SWValue(0, 17).words == 2
        assert SWValue(0, 48).words == 3

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            SWValue(0, 0)


class TestSoftwareProcessor:
    def test_word_size_validation(self):
        with pytest.raises(ValueError):
            SoftwareProcessor(word_bits=12)

    def test_add_single_word(self):
        cpu = SoftwareProcessor()
        result = cpu.add(cpu.constant(5, 8), cpu.constant(7, 8))
        assert result.value == 12
        assert cpu.counts.add == 1

    def test_add_multi_word(self):
        cpu = SoftwareProcessor()
        cpu.add(cpu.constant(1, 30), cpu.constant(2, 30))
        assert cpu.counts.add == 2  # 31-bit result needs two 16-bit words

    def test_sub(self):
        cpu = SoftwareProcessor()
        result = cpu.sub(cpu.constant(5, 8), cpu.constant(9, 8))
        assert result.value == -4
        assert cpu.counts.sub == 1

    def test_mul_counts_schoolbook(self):
        cpu = SoftwareProcessor()
        result = cpu.mul(cpu.constant(300, 24), cpu.constant(70000, 24))
        assert result.value == 300 * 70000
        # 24-bit operands are 2 words each: 4 word multiplies, 3 accumulations.
        assert cpu.counts.mul == 4
        assert cpu.counts.add == 3

    def test_square_cheaper_than_mul(self):
        mul_cpu = SoftwareProcessor()
        mul_cpu.mul(mul_cpu.constant(1000, 32), mul_cpu.constant(1000, 32))
        sqr_cpu = SoftwareProcessor()
        sqr_cpu.square(sqr_cpu.constant(1000, 32))
        assert sqr_cpu.counts.sqr < mul_cpu.counts.mul
        assert sqr_cpu.counts.sqr == 3  # 2-word operand: w(w+1)/2

    def test_shift_counts(self):
        cpu = SoftwareProcessor()
        value = cpu.shift_left(cpu.constant(3, 20), 4)
        assert value.value == 48
        assert cpu.counts.shift == 2
        back = cpu.shift_right(value, 4)
        assert back.value == 3

    def test_shift_negative_amount_rejected(self):
        cpu = SoftwareProcessor()
        with pytest.raises(ValueError):
            cpu.shift_left(cpu.constant(1, 8), -1)

    def test_comparisons(self):
        cpu = SoftwareProcessor()
        a, b = cpu.constant(3, 8), cpu.constant(5, 8)
        assert cpu.compare_le(a, b)
        assert not cpu.compare_ge(a, b)
        assert cpu.compare_lt(a, b)
        assert cpu.counts.comp == 3

    def test_absolute(self):
        cpu = SoftwareProcessor()
        assert cpu.absolute(cpu.constant(-5, 8)).value == 5
        assert cpu.absolute(cpu.constant(5, 8)).value == 5
        assert cpu.counts.comp == 2
        assert cpu.counts.sub == 1  # only the negative case negates

    def test_maximum(self):
        cpu = SoftwareProcessor()
        assert cpu.maximum(cpu.constant(3, 8), cpu.constant(9, 8)).value == 9
        assert cpu.counts.comp == 1

    def test_accumulate(self):
        cpu = SoftwareProcessor()
        values = [cpu.constant(i, 8) for i in range(5)]
        assert cpu.accumulate(values).value == 10
        assert cpu.counts.add == 4

    def test_accumulate_empty(self):
        cpu = SoftwareProcessor()
        assert cpu.accumulate([]).value == 0
        assert cpu.counts.add == 0

    def test_lut_lookup(self):
        cpu = SoftwareProcessor()
        assert cpu.lut_lookup([1.5, 2.5], 1).value == 2.5
        assert cpu.counts.lut == 1
        with pytest.raises(IndexError):
            cpu.lut_lookup([1.0], 3)

    def test_constants_are_free(self):
        cpu = SoftwareProcessor()
        cpu.constant(123, 16)
        assert cpu.counts.total() == 0

    def test_read_counts_bus_words(self):
        regfile = RegisterFile(bus_width=16)
        regfile.add("narrow", 8, lambda: 17)
        regfile.add("wide", 21, lambda: 100000)
        cpu = SoftwareProcessor()
        assert cpu.read(regfile, "narrow").value == 17
        assert cpu.counts.read == 1
        assert cpu.read(regfile, "wide").value == 100000
        assert cpu.counts.read == 3  # 21 bits -> 2 extra bus words

    def test_read_all(self):
        regfile = RegisterFile(bus_width=16)
        regfile.add("a", 8, lambda: 1)
        regfile.add("b", 8, lambda: 2)
        cpu = SoftwareProcessor()
        values = cpu.read_all(regfile, ["a", "b"])
        assert values["a"].value == 1 and values["b"].value == 2
        assert cpu.counts.read == 2

    def test_reset_counts(self):
        cpu = SoftwareProcessor()
        cpu.add(cpu.constant(1, 8), cpu.constant(1, 8))
        cpu.reset_counts()
        assert cpu.counts.total() == 0

    def test_wider_word_size_reduces_counts(self):
        cpu16 = SoftwareProcessor(word_bits=16)
        cpu32 = SoftwareProcessor(word_bits=32)
        a16 = cpu16.constant(10**7, 32)
        a32 = cpu32.constant(10**7, 32)
        cpu16.mul(a16, a16)
        cpu32.mul(a32, a32)
        assert cpu32.counts.mul < cpu16.counts.mul
