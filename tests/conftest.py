"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.configs import get_design
from repro.core.platform import OnTheFlyPlatform
from repro.hwtests.parameters import DesignParameters
from repro.trng.ideal import IdealSource


@pytest.fixture(scope="session")
def ideal_bits_1024():
    """1024 ideal bits (fixed seed) as a numpy array."""
    return IdealSource(seed=1001).generate(1024).bits


@pytest.fixture(scope="session")
def ideal_bits_4096():
    """4096 ideal bits (fixed seed) as a numpy array."""
    return IdealSource(seed=2002).generate(4096).bits


@pytest.fixture(scope="session")
def ideal_bits_65536():
    """65536 ideal bits (fixed seed) as a numpy array."""
    return IdealSource(seed=3003).generate(65536).bits


@pytest.fixture(scope="session")
def params_4096():
    """Design parameters for a small power-of-two length used in unit tests."""
    return DesignParameters.for_length(4096)


@pytest.fixture(scope="session")
def params_65536():
    """Design parameters for the paper's middle sequence length."""
    return DesignParameters.for_length(65536)


@pytest.fixture(scope="session")
def platform_65536_high():
    """The full nine-test platform at n = 65536 (shared, read-only usage)."""
    return OnTheFlyPlatform("n65536_high", alpha=0.01)


@pytest.fixture(scope="session")
def report_65536_high_ideal(platform_65536_high, ideal_bits_65536):
    """One evaluated ideal sequence on the full 65536-bit design.

    Session-scoped because the cycle-accurate evaluation of 65536 bits takes
    on the order of a second; tests must not mutate the returned report.
    """
    return platform_65536_high.evaluate_sequence(ideal_bits_65536)


@pytest.fixture(scope="session")
def design_65536_high():
    return get_design("n65536_high")


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running integration test")
