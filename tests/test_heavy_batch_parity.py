"""Bit-identity of the batch-native heavy kernels against the scalar suite.

The five heavyweight NIST tests (rank, DFT, universal, linear complexity,
random excursions + variant) run through :mod:`repro.engine.heavy`'s
batch-native kernels on the packed backend.  These tests pin the contract of
that path on deliberately awkward inputs — lengths that are not multiples of
64 (live word-padding bits), degenerate all-zeros / all-ones streams,
single-row batches, inapplicably short sequences — and the dispatch
semantics: packed batches record ``"batched"``, the uint8 backend stays
``"inline"``, a :class:`~repro.engine.heavy.BatchFallback` geometry falls
back per-sequence, and error messages match the scalar reference verbatim.
"""

import numpy as np
import pytest

from repro.engine import run_batch
from repro.engine.heavy import BatchFallback, batch_rank
from repro.engine.context import BatchContext
from repro.engine.packed import pack_matrix
from repro.engine.registry import NIST_NUMBER_TO_ID
from repro.nist.dft import dft_test
from repro.nist.linear_complexity import linear_complexity_test
from repro.nist.random_excursions import random_excursions_test
from repro.nist.random_excursions_variant import random_excursions_variant_test
from repro.nist.rank import binary_matrix_rank_test
from repro.nist.universal import universal_test

#: The five heavyweight tests with batch-native kernels.
HEAVY_TESTS = [5, 6, 9, 10, 14, 15]

#: Scalar reference entry point per NIST number.
REFERENCES = {
    5: binary_matrix_rank_test,
    6: dft_test,
    9: universal_test,
    10: linear_complexity_test,
    14: random_excursions_test,
    15: random_excursions_variant_test,
}

#: Parameters that make every heavy test applicable at a few kilobits.
SMALL_PARAMS = {
    9: {"block_length": 6, "init_blocks": 32},
    10: {"block_length": 64},
}


def _rows(seed: int, rows: int, n: int) -> np.ndarray:
    if seed < 0:  # constant streams
        return np.full((rows, n), -seed - 1, dtype=np.uint8)
    return np.random.default_rng(seed).integers(0, 2, size=(rows, n), dtype=np.uint8)


def _assert_identical(result, reference):
    assert result.name == reference.name
    assert result.statistic == reference.statistic
    assert result.p_value == reference.p_value
    assert result.p_values == reference.p_values
    assert repr(result.details) == repr(reference.details)


def _check_parity(matrix: np.ndarray, tests=HEAVY_TESTS, params=SMALL_PARAMS):
    """Packed-batch reports must equal the scalar references bit for bit."""
    reports = run_batch(pack_matrix(matrix), tests=tests, parameters=params)
    assert len(reports) == matrix.shape[0]
    for row, report in enumerate(reports):
        for number in tests:
            test_id = NIST_NUMBER_TO_ID[number]
            reference = REFERENCES[number](matrix[row], **params.get(number, {}))
            _assert_identical(report.results[test_id], reference)
            assert report.execution_paths[test_id] == "batched"
    return reports


class TestAwkwardShapeParity:
    def test_non_multiple_of_64_length(self):
        # 4096 + 37 bits: the last packed word carries 37 live bits and 27
        # zero-pad bits that every kernel must mask out.
        _check_parity(_rows(1, rows=5, n=4096 + 37))

    def test_word_aligned_length(self):
        _check_parity(_rows(2, rows=4, n=4096))

    def test_single_row_batch(self):
        _check_parity(_rows(3, rows=1, n=2048 + 13))

    def test_all_zeros_and_all_ones(self):
        # Degenerate streams: rank 0 matrices, a DC-only spectrum, zero
        # linear complexity (all-zeros), single-cycle excursion walks.
        _check_parity(_rows(-1, rows=2, n=1500))  # all zeros
        _check_parity(_rows(-2, rows=2, n=1500))  # all ones

    def test_mixed_degenerate_and_random_rows(self):
        matrix = np.vstack(
            [
                _rows(-1, rows=1, n=3333),
                _rows(7, rows=2, n=3333),
                _rows(-2, rows=1, n=3333),
            ]
        )
        _check_parity(matrix)


class TestShortSequenceErrors:
    def test_error_messages_match_scalar(self):
        # 100 bits: too short for rank (needs 1024) and universal's default
        # parameters; the per-report error strings must match the scalar
        # ValueError messages verbatim.
        matrix = _rows(4, rows=3, n=100)
        reports = run_batch(pack_matrix(matrix), tests=[5, 9])
        for row, report in enumerate(reports):
            for number in (5, 9):
                test_id = NIST_NUMBER_TO_ID[number]
                with pytest.raises(ValueError) as excinfo:
                    REFERENCES[number](matrix[row])
                assert report.errors[test_id] == str(excinfo.value)
                assert test_id not in report.results

    def test_skip_errors_false_raises_scalar_error(self):
        matrix = _rows(5, rows=2, n=100)
        with pytest.raises(ValueError, match="need at least 1024 bits"):
            run_batch(pack_matrix(matrix), tests=[5], skip_errors=False)


class TestDispatchSemantics:
    def test_uint8_backend_stays_inline(self):
        matrix = _rows(6, rows=3, n=2048)
        reports = run_batch(
            matrix, tests=HEAVY_TESTS, parameters=SMALL_PARAMS, backend="uint8"
        )
        for row, report in enumerate(reports):
            for number in HEAVY_TESTS:
                test_id = NIST_NUMBER_TO_ID[number]
                assert report.execution_paths[test_id] == "inline"
                reference = REFERENCES[number](
                    matrix[row], **SMALL_PARAMS.get(number, {})
                )
                _assert_identical(report.results[test_id], reference)

    def test_batch_fallback_geometry_runs_inline(self):
        # Non-32x32 rank matrices are outside the packed kernel's fast path:
        # batch_rank raises BatchFallback and the executor falls back to the
        # per-sequence scalar, still bit-identical.
        matrix = _rows(8, rows=3, n=2048)
        batch = BatchContext(pack_matrix(matrix))
        with pytest.raises(BatchFallback):
            batch_rank(batch, matrix_rows=16, matrix_cols=16)
        params = {5: {"matrix_rows": 16, "matrix_cols": 16}}
        reports = run_batch(pack_matrix(matrix), tests=[5], parameters=params)
        test_id = NIST_NUMBER_TO_ID[5]
        for row, report in enumerate(reports):
            assert report.execution_paths[test_id] == "inline"
            reference = binary_matrix_rank_test(
                matrix[row], matrix_rows=16, matrix_cols=16
            )
            _assert_identical(report.results[test_id], reference)

    def test_batch_fallback_geometry_pools_when_opted_in(self):
        matrix = _rows(9, rows=2, n=2048)
        params = {5: {"matrix_rows": 16, "matrix_cols": 16}}
        reports = run_batch(
            pack_matrix(matrix), tests=[5], parameters=params, processes=2
        )
        test_id = NIST_NUMBER_TO_ID[5]
        for row, report in enumerate(reports):
            assert report.execution_paths[test_id] == "pooled"
            reference = binary_matrix_rank_test(
                matrix[row], matrix_rows=16, matrix_cols=16
            )
            _assert_identical(report.results[test_id], reference)

    def test_packed_batch_never_pools_heavy_tests(self):
        # processes > 1 is a fallback knob only: on the packed batch path
        # the heavy tests still take their batch-native kernels.
        matrix = _rows(10, rows=2, n=2048)
        reports = run_batch(
            pack_matrix(matrix),
            tests=HEAVY_TESTS,
            parameters=SMALL_PARAMS,
            processes=2,
        )
        for report in reports:
            for number in HEAVY_TESTS:
                assert report.execution_paths[NIST_NUMBER_TO_ID[number]] == "batched"
