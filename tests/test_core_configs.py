"""Tests of the eight published design points."""

import pytest

from repro.core.configs import STANDARD_DESIGNS, get_design, list_designs
from repro.hwtests.parameters import is_power_of_two


class TestStandardDesigns:
    def test_exactly_eight_designs(self):
        assert len(STANDARD_DESIGNS) == 8
        assert len(list_designs()) == 8

    def test_three_sequence_lengths(self):
        lengths = {design.n for design in list_designs()}
        assert lengths == {128, 65536, 1048576}

    def test_lookup_by_name(self):
        design = get_design("n65536_medium")
        assert design.n == 65536
        assert design.tests == (1, 2, 3, 4, 7, 13)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_design("n512_light")

    def test_every_design_has_core_tests(self):
        """Tests 1, 2, 3, 4 and 13 appear in all eight designs (8 dots each
        in Table III)."""
        for design in list_designs():
            for number in (1, 2, 3, 4, 13):
                assert number in design.tests

    def test_table3_dot_counts(self):
        """Per-test dot counts across the eight designs match Table III."""
        counts = {t: 0 for t in (1, 2, 3, 4, 7, 8, 11, 12, 13)}
        for design in list_designs():
            for number in design.tests:
                counts[number] += 1
        assert counts == {1: 8, 2: 8, 3: 8, 4: 8, 7: 4, 8: 2, 11: 3, 12: 3, 13: 8}

    def test_extreme_designs_match_abstract(self):
        """52-slice design has 5 tests; 552-slice design has 9 tests."""
        assert get_design("n128_light").num_tests == 5
        assert get_design("n1048576_high").num_tests == 9

    def test_128_supports_up_to_seven_tests(self):
        assert get_design("n128_medium").num_tests == 7

    def test_table4_design_tests(self):
        """The design compared against [13] contains tests 1,2,3,4,7,13."""
        assert set(get_design("n65536_medium").tests) == {1, 2, 3, 4, 7, 13}

    def test_high_profiles_have_all_nine(self):
        for name in ("n65536_high", "n1048576_high"):
            assert get_design(name).num_tests == 9

    def test_profiles_are_consistent(self):
        for design in list_designs():
            assert design.profile in ("light", "medium", "high")
            if design.profile == "light":
                assert design.num_tests == 5

    def test_parameters_are_derivable(self):
        for design in list_designs():
            params = design.parameters
            assert params.n == design.n
            assert is_power_of_two(params.block_frequency_block_length)

    def test_descriptions_present(self):
        for design in list_designs():
            assert design.description

    def test_serial_and_apen_travel_together(self):
        """Test 12 reuses test 11's counters, so they always co-occur."""
        for design in list_designs():
            assert (11 in design.tests) == (12 in design.tests)
