"""End-to-end integration scenarios crossing all subsystems.

These follow the threat catalogue of Section II-B: an attack or failure is
applied to a modelled TRNG, the platform monitors it on the fly, and the
failure must be flagged — while a healthy source keeps passing.
"""

import pytest

from repro.core.monitor import HealthState, OnTheFlyMonitor
from repro.core.platform import OnTheFlyPlatform
from repro.core.reporting import compare_reporting_under_probing
from repro.eval import estimate_fpga, latency_report
from repro.nist import NistSuite
from repro.trng import (
    AlternatingSource,
    BiasedSource,
    CorrelatedSource,
    EMInjectionAttack,
    FrequencyInjectionAttack,
    IdealSource,
    ProbingAttack,
    RingOscillatorTRNG,
    StuckAtSource,
)


class TestFullDetectionChain:
    def test_frequency_injection_attack_detected_mid_stream(self):
        """A frequency-injection attack that locks the RO mid-sequence is
        caught by the platform within one monitored sequence of the attack
        becoming active."""
        platform = OnTheFlyPlatform("n128_medium")
        trng = RingOscillatorTRNG(seed=80)
        attack = FrequencyInjectionAttack(trng, start_bit=3 * 128)
        monitor = OnTheFlyMonitor(platform, suspect_after=1, fail_after=2)
        events = monitor.monitor(attack, num_sequences=8)
        # Healthy before the attack starts...
        assert events[0].report.passed
        assert events[1].report.passed
        # ...and flagged after it becomes active.
        assert monitor.state is HealthState.FAILED
        assert monitor.detection_latency_bits() is not None

    def test_em_injection_detected(self):
        platform = OnTheFlyPlatform("n128_medium")
        attack = EMInjectionAttack(IdealSource(seed=81), coupling=0.9, carrier_period=2, seed=82)
        report = platform.evaluate_source(attack)
        assert not report.passed

    def test_wire_cut_detected_immediately(self):
        platform = OnTheFlyPlatform("n128_light")
        monitor = OnTheFlyMonitor(platform, suspect_after=1, fail_after=1)
        monitor.monitor(StuckAtSource(0), num_sequences=1)
        assert monitor.state is HealthState.FAILED
        assert monitor.detection_latency_bits() == 128

    def test_probing_the_readout_does_not_hide_a_dead_source(self):
        platform = OnTheFlyPlatform("n128_light")
        comparison = compare_reporting_under_probing(
            platform, StuckAtSource(0), ProbingAttack("ground")
        )
        assert not comparison.alarm_wire_detects_under_probing
        assert comparison.value_based_detects_under_probing

    def test_healthy_oscillator_keeps_passing(self):
        platform = OnTheFlyPlatform("n128_medium")
        monitor = OnTheFlyMonitor(platform, suspect_after=2, fail_after=3)
        monitor.monitor(RingOscillatorTRNG(seed=83), num_sequences=10)
        assert monitor.state is HealthState.HEALTHY


class TestPlatformAgainstReferenceSuite:
    def test_platform_and_reference_agree_on_verdict(self, platform_65536_high, ideal_bits_65536,
                                                      report_65536_high_ideal):
        """The full 65536-bit design and the reference suite agree on an
        ideal sequence (both accept), using the same parameters."""
        params = platform_65536_high.design.parameters
        suite = NistSuite(
            tests=[1, 2, 3, 4, 7, 8, 11, 13],
            parameters={
                2: {"block_length": params.block_frequency_block_length},
                4: {"block_length": params.longest_run_block_length},
                7: {
                    "template": params.nonoverlapping_template,
                    "num_blocks": params.nonoverlapping_num_blocks,
                },
                8: {
                    "template": params.overlapping_template,
                    "block_length": params.overlapping_block_length,
                },
                11: {"m": params.serial_m},
            },
        )
        reference = suite.run(ideal_bits_65536)
        assert report_65536_high_ideal.passed
        assert reference.passed(alpha=0.01)
        for number, result in reference.results.items():
            assert report_65536_high_ideal.verdicts[number].passed == result.passed(0.01)

    def test_instruction_counts_populated(self, report_65536_high_ideal):
        counts = report_65536_high_ideal.instruction_counts
        assert counts.lut == 24  # the ApEn PWL terms
        assert counts.read > 50
        assert counts.total() > 500


class TestDesignSpaceConsistency:
    def test_bigger_designs_cost_more_and_check_more(self):
        weak = BiasedSource(0.53, seed=84)
        light = OnTheFlyPlatform("n128_light")
        heavy = OnTheFlyPlatform("n65536_light")
        light_report = light.evaluate_source(weak)
        weak.reset()
        heavy_report = heavy.evaluate_sequence(weak.generate(65536), accelerated=True)
        # The small quick design misses a 3% bias that the longer test catches.
        assert light_report.passed
        assert not heavy_report.passed
        # And the longer design costs more area.
        assert (
            estimate_fpga(heavy.hardware.resources()).slices
            > estimate_fpga(light.hardware.resources()).slices
        )

    def test_software_latency_stays_below_generation_time(self, report_65536_high_ideal):
        report = latency_report(
            "n65536_high", 65536, report_65536_high_ideal.instruction_counts
        )
        assert report.latency_ratio < 0.5

    @pytest.mark.slow
    def test_type1_error_rate_is_small(self):
        """False-alarm rate of the whole 5-test platform stays near the level
        implied by alpha (9 decisions per sequence at alpha = 0.01)."""
        platform = OnTheFlyPlatform("n65536_light", alpha=0.01)
        failures = 0
        trials = 40
        for seed in range(trials):
            bits = IdealSource(seed=7000 + seed).generate(65536)
            if not platform.evaluate_sequence(bits, accelerated=True).passed:
                failures += 1
        assert failures <= 5

    def test_detection_matrix_of_failure_modes(self):
        """Every catalogued failure mode is caught by the full design."""
        platform = OnTheFlyPlatform("n65536_high")
        sources = [
            BiasedSource(0.6, seed=85),
            CorrelatedSource(0.75, seed=86),
            AlternatingSource(),
            StuckAtSource(1),
        ]
        for source in sources:
            bits = source.generate(65536)
            report = platform.evaluate_sequence(bits, accelerated=True)
            assert not report.passed, source.name
