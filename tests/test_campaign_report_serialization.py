"""Serialization contract of :class:`~repro.campaign.report.CampaignReport`.

The campaign's JSON/CSV artefacts are consumed across PRs (benchmark
trajectories, dashboards); these tests pin the round-trip and the CSV column
contract so an export-format regression cannot land silently.
"""

import csv
import json

import pytest

from repro.campaign import CampaignConfig, CampaignReport, run_campaign
from repro.campaign.report import SUMMARY_COLUMNS


@pytest.fixture(scope="module")
def report():
    return run_campaign(CampaignConfig(
        designs=("n128_light",),
        scenarios=("healthy-ideal", "wire-cut", "biased-0.70", "aging-drift"),
        trials=2,
        sequences_per_trial=4,
        seed=20150309,
    ))


class TestJsonRoundTrip:
    def test_from_json_equals_original(self, report):
        assert CampaignReport.from_json(report.to_json()) == report

    def test_round_trip_preserves_cell_types(self, report):
        restored = CampaignReport.from_json(report.to_json())
        for original, loaded in zip(report.cells, restored.cells):
            assert loaded.tests == original.tests
            assert isinstance(loaded.tests, tuple)
            assert loaded.attribution == original.attribution
            assert all(isinstance(k, int) for k in loaded.attribution)
            assert all(isinstance(k, int) for k in loaded.first_detectors)

    def test_json_is_deterministic(self, report):
        assert report.to_json() == CampaignReport.from_json(report.to_json()).to_json()

    def test_config_block_round_trips(self, report):
        data = json.loads(report.to_json())
        assert data["config"]["seed"] == 20150309
        restored = CampaignReport.from_dict(data)
        assert restored.designs == report.designs
        assert restored.scenarios == report.scenarios


class TestCsvContract:
    def test_header_matches_summary_columns(self, report):
        header = report.to_csv().splitlines()[0]
        assert header == ",".join(SUMMARY_COLUMNS)

    def test_summary_rows_carry_exactly_the_columns(self, report):
        for row in report.summary_rows():
            assert tuple(row) == SUMMARY_COLUMNS

    def test_one_csv_row_per_cell(self, report):
        rows = list(csv.DictReader(report.to_csv().splitlines()))
        assert len(rows) == len(report.cells)
        assert [row["scenario"] for row in rows] == [c.scenario for c in report.cells]


class TestSavedArtefactsReload:
    def test_save_json_reloads_cleanly(self, report, tmp_path):
        path = tmp_path / "campaign.json"
        report.save_json(path)
        assert CampaignReport.from_json(path.read_text()) == report
        # the artefact is plain JSON, loadable without repro imports
        assert json.loads(path.read_text())["config"]["trials"] == 2

    def test_save_csv_reloads_cleanly(self, report, tmp_path):
        path = tmp_path / "campaign.csv"
        report.save_csv(path)
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(report.cells)
        assert set(rows[0]) == set(SUMMARY_COLUMNS)
        detect_probs = [float(row["detect_prob"]) for row in rows]
        assert all(0.0 <= p <= 1.0 for p in detect_probs)
