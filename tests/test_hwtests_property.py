"""Property-based tests: the hardware model equals the reference on random inputs.

These use small power-of-two sequence lengths so that hypothesis can explore
many cases quickly; the larger-scale equivalence is covered by the
integration tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hwtests import DesignParameters, UnifiedTestingBlock
from repro.hwtests.cusum import CusumHW
from repro.hwtests.runs import RunsHW
from repro.hwtests.serial import SerialHW
from repro.nist.common import pattern_counts
from repro.nist.cusum import random_walk_extremes
from repro.nist.runs import count_runs

PARAMS_128 = DesignParameters.for_length(128)

bit_arrays_128 = st.lists(st.integers(0, 1), min_size=128, max_size=128).map(
    lambda bits: np.array(bits, dtype=np.uint8)
)


def drive(unit, bits):
    for index, bit in enumerate(bits):
        unit.process_bit(int(bit), index)
    unit.finalize()
    return unit


class TestHardwareReferenceProperties:
    @given(bit_arrays_128)
    @settings(max_examples=30, deadline=None)
    def test_cusum_extremes_match(self, bits):
        unit = drive(CusumHW(PARAMS_128), bits)
        assert (unit.s_max, unit.s_min, unit.s_final) == random_walk_extremes(bits)

    @given(bit_arrays_128)
    @settings(max_examples=30, deadline=None)
    def test_runs_match(self, bits):
        unit = drive(RunsHW(PARAMS_128), bits)
        assert unit.runs == count_runs(bits)

    @given(bit_arrays_128)
    @settings(max_examples=20, deadline=None)
    def test_serial_counts_match(self, bits):
        unit = drive(SerialHW(PARAMS_128), bits)
        for length in (4, 3, 2):
            assert unit.pattern_counts(length) == pattern_counts(bits, length, cyclic=True).tolist()

    @given(bit_arrays_128)
    @settings(max_examples=15, deadline=None)
    def test_functional_model_equals_cycle_accurate(self, bits):
        tests = (1, 2, 3, 4, 11, 12, 13)
        cycle = UnifiedTestingBlock(PARAMS_128, tests=tests).process_sequence(bits)
        fast = UnifiedTestingBlock(PARAMS_128, tests=tests).accelerated_process_sequence(bits)
        assert cycle.hardware_values() == fast.hardware_values()

    @given(bit_arrays_128)
    @settings(max_examples=20, deadline=None)
    def test_walk_invariants(self, bits):
        """Structural invariants the consistency check relies on."""
        unit = drive(CusumHW(PARAMS_128), bits)
        assert unit.s_min <= unit.s_final <= unit.s_max
        assert abs(unit.s_final) <= 128
        assert (unit.s_final - 128) % 2 == 0
        assert unit.derived_ones == int(bits.sum())

    @given(bit_arrays_128)
    @settings(max_examples=20, deadline=None)
    def test_block_counter_invariants(self, bits):
        block = UnifiedTestingBlock(PARAMS_128, tests=(2, 4, 13)).process_sequence(bits)
        values = block.hardware_values()
        eps = [v for k, v in values.items() if k.startswith("t2_eps_")]
        assert sum(eps) == int(bits.sum())
        categories = [v for k, v in values.items() if k.startswith("t4_nu_")]
        assert sum(categories) == 128 // PARAMS_128.longest_run_block_length
