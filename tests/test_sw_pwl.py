"""Tests of the 32-segment PWL approximation of x·log(x) (Fig. 3)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sw.processor import SoftwareProcessor
from repro.sw.pwl import PiecewiseLinearXLogX, xlogx


class TestExactFunction:
    def test_endpoints(self):
        assert xlogx(0.0) == 0.0
        assert xlogx(1.0) == 0.0

    def test_peak_at_one_over_e(self):
        assert xlogx(1.0 / math.e) == pytest.approx(1.0 / math.e)

    def test_domain_check(self):
        with pytest.raises(ValueError):
            xlogx(-0.1)
        with pytest.raises(ValueError):
            xlogx(1.5)


class TestPWL:
    def test_exact_at_breakpoints(self):
        pwl = PiecewiseLinearXLogX(segments=32)
        for x in pwl.breakpoints:
            assert pwl.evaluate(float(x)) == pytest.approx(xlogx(float(x)), abs=1e-12)

    def test_segment_index(self):
        pwl = PiecewiseLinearXLogX(segments=32)
        assert pwl.segment_index(0.0) == 0
        assert pwl.segment_index(1.0) == 31
        assert pwl.segment_index(1.0 / 16.0) == 2
        with pytest.raises(ValueError):
            pwl.segment_index(1.5)

    def test_paper_error_claim(self):
        """Fig. 3: the 32-segment approximation has a small error.

        The measured maximum error is ≈ 3 % of the function's peak (attained
        inside the first segment); outside the first segment it is far below
        1 % of the peak.
        """
        profile = PiecewiseLinearXLogX(segments=32).error_profile()
        assert profile["max_error_relative_to_peak"] < 0.035
        assert profile["max_abs_error_outside_first_segment"] < 0.004
        assert profile["argmax"] < 1.0 / 32.0

    def test_more_segments_reduce_error(self):
        coarse = PiecewiseLinearXLogX(segments=8).error_profile()
        fine = PiecewiseLinearXLogX(segments=64).error_profile()
        assert fine["max_abs_error"] < coarse["max_abs_error"]

    def test_custom_breakpoints(self):
        points = [0.0, 0.01, 0.05, 0.25, 1.0]
        pwl = PiecewiseLinearXLogX(segments=4, breakpoints=points)
        assert pwl.evaluate(0.25) == pytest.approx(xlogx(0.25), abs=1e-12)

    def test_invalid_breakpoints(self):
        with pytest.raises(ValueError):
            PiecewiseLinearXLogX(segments=2, breakpoints=[0.0, 1.0])
        with pytest.raises(ValueError):
            PiecewiseLinearXLogX(segments=2, breakpoints=[0.0, 0.9, 0.8])
        with pytest.raises(ValueError):
            PiecewiseLinearXLogX(segments=0)

    def test_evaluate_counted_charges_lut_mul_add(self):
        pwl = PiecewiseLinearXLogX(segments=32)
        cpu = SoftwareProcessor()
        value = pwl.evaluate_counted(0.3, cpu)
        assert value == pytest.approx(pwl.evaluate(0.3), abs=1e-9)
        assert cpu.counts.lut == 1
        assert cpu.counts.mul >= 1
        assert cpu.counts.add >= 1

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_error_bound_property(self, x):
        pwl = PiecewiseLinearXLogX(segments=32)
        assert abs(pwl.evaluate(x) - xlogx(x)) <= 0.012

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_approximation_is_nonnegative_underestimate(self, x):
        """Chords of a concave function never exceed it (and stay >= 0 on the
        uniform grid because the endpoints are non-negative)."""
        pwl = PiecewiseLinearXLogX(segments=32)
        assert pwl.evaluate(x) <= xlogx(x) + 1e-12
        assert pwl.evaluate(x) >= -1e-12
