"""Golden engine/reference parity tests.

The acceptance bar of the engine refactor: every test run through a
``SequenceContext`` (solo or batch-backed, pooled or inline) must produce
*bit-identical* ``TestResult.p_values`` to the pre-existing direct reference
functions, on ideal, biased and correlated sources alike.
"""

import numpy as np
import pytest

from repro.engine import DEFAULT_REGISTRY, SequenceContext, run_batch
from repro.fips.battery import (
    FIPS_BLOCK_BITS,
    FipsBattery,
    fips_battery,
    long_run_test_from_context,
    monobit_test_from_context,
    poker_test_from_context,
    runs_test_from_context,
)
from repro.nist.approximate_entropy import approximate_entropy_test
from repro.nist.block_frequency import block_frequency_test
from repro.nist.cusum import cumulative_sums_test
from repro.nist.dft import dft_test
from repro.nist.frequency import frequency_test
from repro.nist.linear_complexity import linear_complexity_test
from repro.nist.longest_run import longest_run_test
from repro.nist.nonoverlapping import non_overlapping_template_test
from repro.nist.overlapping import overlapping_template_test
from repro.nist.random_excursions import random_excursions_test
from repro.nist.random_excursions_variant import random_excursions_variant_test
from repro.nist.rank import binary_matrix_rank_test
from repro.nist.runs import runs_test
from repro.nist.serial import serial_test
from repro.nist.suite import NistSuite
from repro.nist.universal import universal_test
from repro.trng import BiasedSource, CorrelatedSource, IdealSource

#: The direct reference entry points, by NIST number (the golden model).
REFERENCE_TESTS = {
    1: frequency_test,
    2: block_frequency_test,
    3: runs_test,
    4: longest_run_test,
    5: binary_matrix_rank_test,
    6: dft_test,
    7: non_overlapping_template_test,
    8: overlapping_template_test,
    9: universal_test,
    10: linear_complexity_test,
    11: serial_test,
    12: approximate_entropy_test,
    13: cumulative_sums_test,
    14: random_excursions_test,
    15: random_excursions_variant_test,
}

N = 16384


def _sources():
    return {
        "ideal": IdealSource(seed=1111),
        "biased": BiasedSource(0.55, seed=2222),
        "correlated": CorrelatedSource(0.75, seed=3333),
    }


@pytest.fixture(scope="module")
def golden_sequences():
    """One fixed sequence per source kind."""
    return {name: source.generate(N).bits for name, source in _sources().items()}


@pytest.fixture(scope="module")
def reference_outcomes(golden_sequences):
    """Reference results and errors per source, straight from the golden model."""
    outcomes = {}
    for name, bits in golden_sequences.items():
        results, errors = {}, {}
        for number, reference in REFERENCE_TESTS.items():
            try:
                results[number] = reference(bits)
            except ValueError as exc:
                errors[number] = str(exc)
        outcomes[name] = (results, errors)
    return outcomes


def _assert_identical(result, reference, label):
    assert result.p_values == reference.p_values, label
    assert result.statistic == reference.statistic, label
    assert result.p_value == reference.p_value, label
    assert result.name == reference.name, label


class TestContextParity:
    """Registry runners on a solo SequenceContext vs direct reference calls."""

    @pytest.mark.parametrize("source_name", ["ideal", "biased", "correlated"])
    def test_all_tests_bit_identical(self, golden_sequences, reference_outcomes, source_name):
        bits = golden_sequences[source_name]
        results, errors = reference_outcomes[source_name]
        context = SequenceContext(bits)
        for number in REFERENCE_TESTS:
            test = DEFAULT_REGISTRY.resolve(number)
            if number in errors:
                with pytest.raises(ValueError):
                    test.run(context)
            else:
                _assert_identical(test.run(context), results[number], (source_name, number))

    def test_error_messages_identical(self, golden_sequences, reference_outcomes):
        bits = golden_sequences["ideal"]
        _, errors = reference_outcomes["ideal"]
        context = SequenceContext(bits)
        for number, message in errors.items():
            test = DEFAULT_REGISTRY.resolve(number)
            with pytest.raises(ValueError) as excinfo:
                test.run(context)
            assert str(excinfo.value) == message


class TestBatchParity:
    """run_batch (shared BatchContext) vs direct reference calls."""

    def test_batch_bit_identical_across_sources(self, golden_sequences, reference_outcomes):
        names = list(golden_sequences)
        reports = run_batch([golden_sequences[name] for name in names])
        for name, report in zip(names, reports):
            results, errors = reference_outcomes[name]
            for number in REFERENCE_TESTS:
                test_id = DEFAULT_REGISTRY.resolve(number).id
                if number in errors:
                    assert report.errors[test_id] == errors[number]
                else:
                    _assert_identical(
                        report.results[test_id], results[number], (name, number)
                    )

    def test_pool_path_bit_identical(self, golden_sequences, reference_outcomes):
        bits = golden_sequences["ideal"]
        results, errors = reference_outcomes["ideal"]
        reports = run_batch([bits, bits], tests=[5, 6, 9, 10], processes=2)
        for report in reports:
            for number in (5, 6, 9, 10):
                test_id = DEFAULT_REGISTRY.resolve(number).id
                if number in errors:
                    assert report.errors[test_id] == errors[number]
                else:
                    _assert_identical(
                        report.results[test_id], results[number], ("pool", number)
                    )

    def test_mixed_lengths_fall_back_per_sequence(self):
        short = IdealSource(seed=777).generate(1024).bits
        long = IdealSource(seed=778).generate(2048).bits
        reports = run_batch([short, long], tests=[1, 3, 13])
        for bits, report in zip([short, long], reports):
            assert report.n == bits.size
            _assert_identical(
                report.results["nist.frequency"], frequency_test(bits), "mixed"
            )

    def test_suite_run_batch_matches_suite_run(self, golden_sequences):
        suite = NistSuite(
            tests=[1, 2, 3, 4, 7, 8, 11, 12, 13],
            parameters={2: {"block_length": 256}, 11: {"m": 5}},
        )
        sequences = list(golden_sequences.values())
        batch_reports = suite.run_batch(sequences)
        for bits, batch_report in zip(sequences, batch_reports):
            solo_report = suite.run(bits)
            assert solo_report.p_values() == batch_report.p_values()
            for number in suite.tests:
                _assert_identical(
                    batch_report.results[number], solo_report.results[number], number
                )


class TestFipsParity:
    """FIPS battery via engine contexts vs the direct reference functions."""

    @pytest.fixture(scope="class")
    def fips_blocks(self):
        return {
            name: source.generate(FIPS_BLOCK_BITS).bits
            for name, source in _sources().items()
        }

    def test_context_tests_match_reference(self, fips_blocks):
        for name, block in fips_blocks.items():
            context = SequenceContext(block)
            reference = fips_battery(block)
            engine_results = [
                monobit_test_from_context(context),
                poker_test_from_context(context),
                runs_test_from_context(context),
                long_run_test_from_context(context),
            ]
            for engine_result, reference_result in zip(engine_results, reference.results):
                assert engine_result == reference_result, (name, reference_result.name)

    def test_battery_run_batch_matches_reference(self, fips_blocks):
        blocks = list(fips_blocks.values())
        for block, report in zip(blocks, FipsBattery().run_batch(blocks)):
            assert report == fips_battery(block)

    def test_registry_exposes_fips_as_test_results(self, fips_blocks):
        report = run_batch(
            [fips_blocks["correlated"]],
            tests=["fips.monobit", "fips.poker", "fips.runs", "fips.long_run"],
        )[0]
        reference = fips_battery(fips_blocks["correlated"])
        for test_id, reference_result in zip(
            ["fips.monobit", "fips.poker", "fips.runs", "fips.long_run"],
            reference.results,
        ):
            result = report.results[test_id]
            assert result.statistic == reference_result.statistic
            assert result.passed() == reference_result.passed
