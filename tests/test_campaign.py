"""Tests of the detection-campaign subsystem: catalogue, runner, report."""

import csv
import io
import json

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignReport,
    DEFAULT_CATALOG,
    SCENARIO_CATEGORIES,
    ScenarioCatalog,
    ScenarioSpec,
    build_default_catalog,
    run_campaign,
)
from repro.eval.attribution import (
    attribution_rows,
    attribution_tests,
    format_attribution_table,
)
from repro.trng import IdealSource, StuckAtSource


SMALL_CONFIG = CampaignConfig(
    designs=("n128_light", "n128_medium"),
    scenarios=(
        "healthy-ideal", "wire-cut", "stuck-at-1", "alternating",
        "biased-0.70", "freq-injection-staged",
    ),
    trials=2,
    sequences_per_trial=5,
    seed=42,
)


@pytest.fixture(scope="module")
def small_report():
    return run_campaign(SMALL_CONFIG)


class TestScenarioCatalog:
    def test_default_catalogue_covers_the_threat_classes(self):
        assert len(DEFAULT_CATALOG.threats()) >= 8
        assert len(DEFAULT_CATALOG.controls()) >= 2
        categories = {spec.category for spec in DEFAULT_CATALOG}
        assert categories == set(SCENARIO_CATEGORIES)

    def test_expected_labels_present(self):
        for label in (
            "healthy-ideal", "wire-cut", "stuck-at-1", "alternating",
            "burst-failure", "biased-0.60", "correlated-0.75",
            "freq-injection", "freq-injection-staged", "em-injection",
            "aging-drift",
        ):
            assert label in DEFAULT_CATALOG

    def test_builders_produce_fresh_deterministic_sources(self):
        spec = DEFAULT_CATALOG.get("biased-0.60")
        first = spec.build(7, 128).generate(64)
        second = spec.build(7, 128).generate(64)
        assert first == second

    def test_staged_attack_scales_with_design_length(self):
        spec = DEFAULT_CATALOG.get("freq-injection-staged")
        assert spec.build(1, 128).start_bit == 256
        assert spec.build(1, 65536).start_bit == 131072

    def test_scenario_bridge_to_attack_scenario(self):
        scenario = DEFAULT_CATALOG.get("wire-cut").scenario(seed=0, n=128)
        assert scenario.label == "wire-cut"
        assert scenario.expected_detectable
        assert scenario.source.next_bit() == 0

    def test_unknown_label_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            DEFAULT_CATALOG.get("nonexistent")

    def test_select_by_category(self):
        failures = DEFAULT_CATALOG.select(categories=["failure"])
        assert {spec.label for spec in failures} >= {"wire-cut", "stuck-at-1"}
        with pytest.raises(ValueError):
            DEFAULT_CATALOG.select(categories=["bogus"])

    def test_duplicate_registration_rejected(self):
        catalog = ScenarioCatalog()
        spec = ScenarioSpec("x", "failure", lambda seed, n: StuckAtSource(0))
        catalog.register(spec)
        with pytest.raises(ValueError):
            catalog.register(spec)
        catalog.register(
            ScenarioSpec("x", "failure", lambda seed, n: StuckAtSource(1)),
            replace=True,
        )
        assert len(catalog) == 1

    def test_invalid_category_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec("x", "bogus", lambda seed, n: StuckAtSource(0))

    def test_build_default_catalog_returns_fresh_instance(self):
        assert build_default_catalog() is not DEFAULT_CATALOG
        assert build_default_catalog().labels() == DEFAULT_CATALOG.labels()


class TestRunCampaign:
    def test_one_cell_per_design_scenario_pair(self, small_report):
        assert len(small_report.cells) == 2 * 6
        keys = [(cell.design, cell.scenario) for cell in small_report.cells]
        assert len(set(keys)) == len(keys)
        # design-major, configured order
        assert keys[0][0] == "n128_light"
        assert keys[6][0] == "n128_medium"

    def test_total_failures_detected_at_policy_latency(self, small_report):
        for cell in small_report.cells:
            if cell.scenario in ("wire-cut", "stuck-at-1", "alternating"):
                assert cell.detection_probability == 1.0, cell.scenario
                # fail_after=2 consecutive failing sequences => 2 * n bits
                assert cell.mean_latency_sequences == 2.0
                assert cell.mean_latency_bits == 2.0 * cell.n

    def test_staged_attack_detected_after_stage(self, small_report):
        for cell in small_report.cells:
            if cell.scenario == "freq-injection-staged":
                assert cell.detection_probability == 1.0
                # injection starts at 2n bits: detection needs >= 4 sequences
                assert cell.mean_latency_sequences >= 4.0

    def test_healthy_control_false_alarm_rate_low(self, small_report):
        for cell in small_report.control_cells():
            assert cell.false_alarm_rate is not None
            assert cell.false_alarm_rate <= 0.3
            assert cell.detection_probability <= 0.5
        for cell in small_report.threat_cells():
            assert cell.false_alarm_rate is None

    def test_attribution_identifies_detectors(self, small_report):
        for cell in small_report.cells:
            if cell.scenario == "alternating":
                # perfectly balanced: frequency test must NOT flag it, the
                # runs test must (the paper's motivating example).
                assert 1 not in cell.attribution
                assert 3 in cell.attribution
                assert set(cell.attribution) <= set(cell.tests)
                assert cell.first_detectors

    def test_reproducible_under_fixed_seed(self, small_report):
        again = run_campaign(SMALL_CONFIG)
        assert again.to_json() == small_report.to_json()

    def test_trial_seeds_deterministic_and_distinct(self):
        from repro.campaign.runner import _trial_seed

        seed = _trial_seed(0, "n128_light", "wire-cut", 0)
        assert seed == _trial_seed(0, "n128_light", "wire-cut", 0)
        assert seed not in {
            _trial_seed(0, "n128_light", "wire-cut", 1),
            _trial_seed(1, "n128_light", "wire-cut", 0),
            _trial_seed(0, "n128_medium", "wire-cut", 0),
            _trial_seed(0, "n128_light", "stuck-at-1", 0),
        }

    def test_custom_catalog(self):
        catalog = ScenarioCatalog()
        catalog.register(ScenarioSpec("dead", "failure", lambda seed, n: StuckAtSource(0)))
        catalog.register(ScenarioSpec(
            "ok", "healthy", lambda seed, n: IdealSource(seed=seed),
            expected_detectable=False,
        ))
        report = run_campaign(
            CampaignConfig(designs=("n128_light",), trials=1, sequences_per_trial=3),
            catalog=catalog,
        )
        assert [cell.scenario for cell in report.cells] == ["dead", "ok"]
        assert report.cells[0].detection_probability == 1.0

    def test_on_cell_callback_streams_cells_in_order(self):
        seen = []
        report = run_campaign(
            CampaignConfig(
                designs=("n128_light",), scenarios=("wire-cut", "healthy-ideal"),
                trials=1, sequences_per_trial=3,
            ),
            on_cell=seen.append,
        )
        assert seen == report.cells

    def test_config_validation(self):
        with pytest.raises(ValueError):
            run_campaign(CampaignConfig(designs=()))
        with pytest.raises(ValueError):
            run_campaign(CampaignConfig(trials=0))
        with pytest.raises(ValueError):
            run_campaign(CampaignConfig(sequences_per_trial=0))
        with pytest.raises(KeyError):
            run_campaign(CampaignConfig(designs=("bogus_design",)))
        with pytest.raises(ValueError):
            run_campaign(CampaignConfig(scenarios=("bogus-scenario",)))

    @pytest.mark.slow
    def test_process_pool_matches_sequential(self):
        config = CampaignConfig(
            designs=("n128_light",),
            scenarios=("wire-cut", "healthy-ideal", "biased-0.70"),
            trials=2, sequences_per_trial=4, seed=3,
        )
        sequential = run_campaign(config)
        pooled = run_campaign(
            CampaignConfig(**{**base_config_dict(config), "processes": 2})
        )
        assert pooled.to_dict()["cells"] == sequential.to_dict()["cells"]


def base_config_dict(config: CampaignConfig) -> dict:
    return {
        "designs": config.designs,
        "scenarios": config.scenarios,
        "trials": config.trials,
        "sequences_per_trial": config.sequences_per_trial,
        "alpha": config.alpha,
        "suspect_after": config.suspect_after,
        "fail_after": config.fail_after,
        "seed": config.seed,
        "processes": config.processes,
    }


class TestCampaignReport:
    def test_json_round_trip(self, small_report):
        restored = CampaignReport.from_json(small_report.to_json())
        assert restored.to_json() == small_report.to_json()
        assert restored.cells[0].attribution == small_report.cells[0].attribution

    def test_json_is_valid_and_complete(self, small_report):
        data = json.loads(small_report.to_json())
        assert data["config"]["seed"] == 42
        assert len(data["cells"]) == len(small_report.cells)
        cell = data["cells"][0]
        for key in ("detection_probability", "mean_latency_bits",
                    "sequence_failure_rate", "attribution", "false_alarm_rate"):
            assert key in cell

    def test_save_json_and_csv(self, small_report, tmp_path):
        json_path = tmp_path / "campaign.json"
        csv_path = tmp_path / "campaign.csv"
        small_report.save_json(json_path)
        small_report.save_csv(csv_path)
        assert json.loads(json_path.read_text())["config"]["trials"] == 2
        rows = list(csv.DictReader(io.StringIO(csv_path.read_text())))
        assert len(rows) == len(small_report.cells)
        assert rows[0]["scenario"] == small_report.cells[0].scenario

    def test_format_table_contains_every_cell(self, small_report):
        text = small_report.format_table()
        assert "detect_prob" in text and "false_alarm" in text
        for cell in small_report.cells:
            assert cell.scenario in text

    def test_control_false_alarm_rate_per_design(self, small_report):
        for design in small_report.designs:
            rate = small_report.control_false_alarm_rate(design)
            assert rate is not None and 0.0 <= rate <= 0.3
        assert small_report.control_false_alarm_rate("not_a_design") is None

    def test_detected_everywhere(self, small_report):
        everywhere = small_report.detected_everywhere()
        assert "wire-cut" in everywhere
        assert "healthy-ideal" not in everywhere

    def test_golden_summary_row_shape(self, small_report):
        row = small_report.summary_rows()[0]
        assert set(row) == {
            "scenario", "category", "design", "n", "detect_prob",
            "latency_seqs", "latency_bits", "seq_fail_rate", "false_alarm",
            "detected_by",
        }


class TestAttributionTables:
    def test_attribution_tests_union(self, small_report):
        numbers = attribution_tests(small_report.cells)
        assert set(numbers) == {1, 2, 3, 4, 11, 12, 13}

    def test_rows_mark_unimplemented_vs_silent_tests(self, small_report):
        rows, columns = attribution_rows(small_report.threat_cells())
        assert columns[0] == "scenario" and columns[-1] == "first"
        by_key = {(row["scenario"], row["design"]): row for row in rows}
        light_alternating = by_key[("alternating", "n128_light")]
        assert light_alternating["t11"] == ""  # not implemented by the design
        assert light_alternating["t1"] == "."  # implemented, never flagged
        assert light_alternating["t3"] == "2/2"

    def test_format_attribution_table(self, small_report):
        text = format_attribution_table(small_report.threat_cells())
        assert "t3" in text and "wire-cut" in text
