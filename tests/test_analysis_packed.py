"""Fixture tests of the packed-kernel family (PKD001-PKD003)."""

from repro.analysis.framework import analyze_source

LIB = "src/repro/engine/fixture.py"


def rules(source, path=LIB):
    ctx = analyze_source(source, path)
    return [f.rule for f in ctx.findings]


class TestPkd001RawIntShift:
    def test_raw_int_shift_on_words_fires(self):
        assert "PKD001" in rules("shifted = words >> 3\n")
        assert "PKD001" in rules("carry = packed.words << 1\n")

    def test_raw_int_mask_fires(self):
        assert "PKD001" in rules("tail = words & 0xFF\n")
        assert "PKD001" in rules("merged = 1 | word_row\n")

    def test_wrapped_scalar_is_clean(self):
        assert "PKD001" not in rules(
            "import numpy as np\nshifted = words >> np.uint64(3)\n"
        )
        assert "PKD001" not in rules(
            "import numpy as np\ntail = words & np.uint64(0xFF)\n"
        )

    def test_non_word_arrays_are_not_flagged(self):
        assert "PKD001" not in rules("flags = status >> 3\n")
        assert "PKD001" not in rules("index = (n + 7) >> 3\n")


class TestPkd002TailHandling:
    def test_kernel_ignoring_bit_length_warns(self):
        source = (
            "def ones(packed):\n"
            "    return popcount(packed.words).sum(axis=1)\n"
        )
        assert "PKD002" in rules(source)

    def test_kernel_reading_n_is_clean(self):
        source = (
            "def ones(packed):\n"
            "    total = popcount(packed.words).sum(axis=1)\n"
            "    return total[: packed.n]\n"
        )
        assert "PKD002" not in rules(source)

    def test_supports_guard_counts_as_tail_handling(self):
        source = (
            "def block_ones(packed, block_length):\n"
            "    if not supports_block_ones(block_length, 128):\n"
            "        raise ValueError\n"
            "    return packed.words\n"
        )
        assert "PKD002" not in rules(source)

    def test_annotation_marks_the_parameter(self):
        source = (
            "def kernel(matrix: PackedMatrix):\n"
            "    return matrix.words.sum()\n"
        )
        assert "PKD002" in rules(source)

    def test_is_warning_only_outside_strict(self):
        source = (
            "def ones(packed):\n"
            "    return packed.words.sum()\n"
        )
        ctx = analyze_source(source, LIB)
        warning = [f for f in ctx.findings if f.rule == "PKD002"][0]
        assert warning.severity.value == "warning"


class TestPkd003PackingHomes:
    def test_packbits_outside_homes_fires(self):
        assert "PKD003" in rules("import numpy as np\nw = np.packbits(bits)\n")
        assert "PKD003" in rules(
            "import numpy as np\nbits = np.unpackbits(words.view(np.uint8))\n"
        )

    def test_sanctioned_homes_are_exempt(self):
        source = "import numpy as np\nw = np.packbits(bits)\n"
        for home in (
            "src/repro/engine/packed.py",
            "src/repro/engine/heavy.py",
            "src/repro/nist/common.py",
        ):
            assert "PKD003" not in rules(source, path=home), home

    def test_sanctioned_wrappers_are_clean(self):
        source = "from repro.engine.packed import pack_matrix\nm = pack_matrix(bits)\n"
        assert "PKD003" not in rules(source)


class TestRingIdentifiers:
    """The streaming contexts' rings count as word arrays (PKD001 scope)."""

    def test_raw_int_shift_on_ring_fires(self):
        assert "PKD001" in rules("evicted = ring >> 3\n")
        assert "PKD001" in rules("low = self._words_ring & 0x7\n")

    def test_wrapped_ring_scalar_is_clean(self):
        assert "PKD001" not in rules(
            "import numpy as np\nevicted = ring >> np.uint64(3)\n"
        )

    def test_string_identifiers_are_excluded(self):
        # "ring" is a substring of "string": bit-string formatters are not
        # word arrays and must stay unflagged.
        assert "PKD001" not in rules("flags = bit_string >> 3\n")
        assert "PKD001" not in rules("padded = substring & 0xFF\n")

    def test_streaming_module_is_in_scope(self):
        source = "import numpy as np\nevicted = ring >> 3\n"
        assert "PKD001" in rules(source, path="src/repro/engine/streaming.py")
