"""Per-unit tests: each hardware test unit against the NIST reference code."""

import numpy as np
import pytest

from repro.hwsim.register_file import RegisterFile
from repro.hwtests import (
    ApproximateEntropyHW,
    BlockFrequencyHW,
    CusumHW,
    DesignParameters,
    FrequencyHW,
    GlobalBitCounter,
    LongestRunHW,
    NonOverlappingTemplateHW,
    OverlappingTemplateHW,
    RunsHW,
    SerialHW,
)
from repro.nist.common import chunk, pattern_counts
from repro.nist.cusum import random_walk_extremes
from repro.nist.longest_run import LONGEST_RUN_TABLES, category_index, longest_run_of_ones
from repro.nist.nonoverlapping import count_non_overlapping
from repro.nist.overlapping import count_overlapping
from repro.nist.runs import count_runs
from repro.trng import BiasedSource, IdealSource


def drive(unit, bits):
    """Feed a full sequence through a unit, bit by bit, then finalize."""
    for index, bit in enumerate(bits):
        unit.process_bit(int(bit), index)
    unit.finalize()
    return unit


@pytest.fixture(scope="module")
def params():
    return DesignParameters.for_length(4096)


@pytest.fixture(scope="module", params=[0, 1, 2])
def bits(request):
    """Three different 4096-bit workloads: ideal, biased, ideal."""
    sources = {
        0: IdealSource(seed=100),
        1: BiasedSource(0.7, seed=101),
        2: IdealSource(seed=102),
    }
    return sources[request.param].generate(4096).bits


class TestGlobalBitCounter:
    def test_counts_bits(self):
        counter = GlobalBitCounter(128)
        for _ in range(5):
            counter.clock()
        assert counter.bits_received == 5
        assert not counter.sequence_complete

    def test_sequence_complete(self):
        counter = GlobalBitCounter(128)
        for _ in range(128):
            counter.clock()
        assert counter.sequence_complete

    def test_block_boundary_power_of_two(self):
        counter = GlobalBitCounter(64)
        boundaries = []
        for i in range(32):
            counter.clock()
            boundaries.append(counter.block_boundary(8))
        assert [i + 1 for i, b in enumerate(boundaries) if b] == [8, 16, 24, 32]

    def test_block_boundary_requires_power_of_two(self):
        counter = GlobalBitCounter(64)
        with pytest.raises(ValueError):
            counter.block_boundary(6)

    def test_rejects_non_power_of_two_length(self):
        with pytest.raises(ValueError):
            GlobalBitCounter(100)

    def test_reset(self):
        counter = GlobalBitCounter(64)
        counter.clock()
        counter.reset()
        assert counter.bits_received == 0


class TestFrequencyHW:
    def test_matches_reference(self, params, bits):
        unit = drive(FrequencyHW(params), bits)
        assert unit.ones == int(bits.sum())

    def test_exports(self, params, bits):
        unit = drive(FrequencyHW(params), bits)
        assert unit.exported_values()["t1_n_ones"] == int(bits.sum())

    def test_counter_never_wraps(self, params):
        unit = drive(FrequencyHW(params), np.ones(4096, dtype=np.uint8))
        assert unit.ones == 4096


class TestRunsHW:
    def test_matches_reference(self, params, bits):
        unit = drive(RunsHW(params), bits)
        assert unit.runs == count_runs(bits)

    def test_constant_sequence_single_run(self, params):
        unit = drive(RunsHW(params), np.zeros(4096, dtype=np.uint8))
        assert unit.runs == 1

    def test_alternating_sequence(self, params):
        bits = np.tile([0, 1], 2048).astype(np.uint8)
        unit = drive(RunsHW(params), bits)
        assert unit.runs == 4096

    def test_reset(self, params, bits):
        unit = drive(RunsHW(params), bits)
        unit.reset()
        assert unit.runs == 0


class TestCusumHW:
    def test_matches_reference(self, params, bits):
        unit = drive(CusumHW(params), bits)
        s_max, s_min, s_final = random_walk_extremes(bits)
        assert (unit.s_max, unit.s_min, unit.s_final) == (s_max, s_min, s_final)

    def test_derived_ones(self, params, bits):
        unit = drive(CusumHW(params), bits)
        assert unit.derived_ones == int(bits.sum())

    def test_all_zeros_extremes(self, params):
        unit = drive(CusumHW(params), np.zeros(4096, dtype=np.uint8))
        assert unit.s_final == -4096
        assert unit.s_min == -4096
        assert unit.s_max == -1

    def test_exports_are_raw_twos_complement(self, params):
        unit = drive(CusumHW(params), np.zeros(16, dtype=np.uint8))
        exported = unit.exported_values()
        width = unit._walk.width
        assert exported["t13_s_final"] == (1 << width) - 16


class TestBlockFrequencyHW:
    def test_matches_reference(self, params, bits):
        unit = drive(BlockFrequencyHW(params), bits)
        expected = [int(b.sum()) for b in chunk(bits, params.block_frequency_block_length)]
        assert unit.ones_per_block == expected

    def test_number_of_exports(self, params):
        unit = BlockFrequencyHW(params)
        assert len(unit.exported_values()) == params.block_frequency_num_blocks

    def test_all_ones_blocks(self, params):
        unit = drive(BlockFrequencyHW(params), np.ones(4096, dtype=np.uint8))
        assert unit.ones_per_block == [params.block_frequency_block_length] * 8


class TestLongestRunHW:
    def test_matches_reference(self, params, bits):
        unit = drive(LongestRunHW(params), bits)
        m = params.longest_run_block_length
        _k, v_values, _pi = LONGEST_RUN_TABLES[m]
        expected = [0] * len(unit.category_counts)
        for block in chunk(bits, m):
            expected[category_index(longest_run_of_ones(block), v_values)] += 1
        assert unit.category_counts == expected

    def test_category_counts_sum_to_blocks(self, params, bits):
        unit = drive(LongestRunHW(params), bits)
        assert sum(unit.category_counts) == params.n // params.longest_run_block_length

    def test_all_ones_lands_in_top_category(self, params):
        unit = drive(LongestRunHW(params), np.ones(4096, dtype=np.uint8))
        assert unit.category_counts[-1] == params.n // params.longest_run_block_length

    def test_invalid_block_length_rejected(self):
        # DesignParameters validates the allowed values itself; bypass the
        # frozen-dataclass validation to check the unit's own guard.
        params = DesignParameters.for_length(4096)
        object.__setattr__(params, "longest_run_block_length", 64)
        with pytest.raises(ValueError):
            LongestRunHW(params)


class TestNonOverlappingHW:
    def test_matches_reference(self, params, bits):
        unit = drive(NonOverlappingTemplateHW(params), bits)
        blocks = chunk(bits, params.nonoverlapping_block_length)
        expected = [count_non_overlapping(b, params.nonoverlapping_template) for b in blocks]
        assert unit.block_counts == expected

    def test_no_matches_in_all_ones(self, params):
        # The default template 000000001 cannot occur in an all-ones stream.
        unit = drive(NonOverlappingTemplateHW(params), np.ones(4096, dtype=np.uint8))
        assert unit.block_counts == [0] * params.nonoverlapping_num_blocks

    def test_matches_do_not_cross_blocks(self, params):
        # Place the template straddling the first block boundary; it must not
        # be counted in either block.
        m = params.nonoverlapping_block_length
        bits = np.zeros(4096, dtype=np.uint8)
        bits[m - 5] = 1  # breaks any template ending before the boundary
        bits[m + 3] = 1  # '000000001' ending 4 bits into block 2 straddles it
        unit = drive(NonOverlappingTemplateHW(params), bits)
        blocks = chunk(bits, m)
        expected = [count_non_overlapping(b, params.nonoverlapping_template) for b in blocks]
        assert unit.block_counts == expected


class TestOverlappingHW:
    def test_matches_reference(self, params, bits):
        unit = drive(OverlappingTemplateHW(params), bits)
        expected = [0] * (unit.K + 1)
        for block in chunk(bits, params.overlapping_block_length)[: unit.num_blocks]:
            expected[min(count_overlapping(block, params.overlapping_template), unit.K)] += 1
        assert unit.category_counts == expected

    def test_all_ones_max_category(self, params):
        unit = drive(OverlappingTemplateHW(params), np.ones(4096, dtype=np.uint8))
        assert unit.category_counts[-1] == params.overlapping_num_blocks

    def test_category_counts_sum_to_blocks(self, params, bits):
        unit = drive(OverlappingTemplateHW(params), bits)
        assert sum(unit.category_counts) == params.overlapping_num_blocks


class TestSerialHW:
    @pytest.mark.parametrize("length", [4, 3, 2])
    def test_matches_reference(self, params, bits, length):
        unit = drive(SerialHW(params), bits)
        assert unit.pattern_counts(length) == pattern_counts(bits, length, cyclic=True).tolist()

    def test_counts_sum_to_n(self, params, bits):
        unit = drive(SerialHW(params), bits)
        for length in (4, 3, 2):
            assert sum(unit.pattern_counts(length)) == params.n

    def test_finalize_idempotent(self, params, bits):
        unit = drive(SerialHW(params), bits)
        counts = unit.pattern_counts(4)
        unit.finalize()
        assert unit.pattern_counts(4) == counts

    def test_unknown_length_rejected(self, params, bits):
        unit = drive(SerialHW(params), bits)
        with pytest.raises(ValueError):
            unit.pattern_counts(7)

    def test_counters_sized_for_worst_case(self, params):
        # A constant stream must not overflow any pattern counter.
        unit = drive(SerialHW(params), np.ones(4096, dtype=np.uint8))
        assert unit.pattern_counts(4)[0b1111] == 4096


class TestApproximateEntropyHW:
    def test_shared_mode_has_no_hardware(self, params, bits):
        serial = SerialHW(params)
        apen = ApproximateEntropyHW(params, serial_unit=serial)
        assert apen.shares_serial_counters
        assert apen.components() == []
        assert apen.resources().flip_flops == 0

    def test_shared_mode_returns_serial_counts(self, params, bits):
        serial = drive(SerialHW(params), bits)
        apen = ApproximateEntropyHW(params, serial_unit=serial)
        assert apen.pattern_counts(3) == serial.pattern_counts(3)
        assert apen.pattern_counts(4) == serial.pattern_counts(4)

    def test_standalone_matches_reference(self, params, bits):
        apen = drive(ApproximateEntropyHW(params), bits)
        assert apen.pattern_counts(3) == pattern_counts(bits, 3, cyclic=True).tolist()
        assert apen.pattern_counts(4) == pattern_counts(bits, 4, cyclic=True).tolist()

    def test_standalone_has_hardware(self, params):
        apen = ApproximateEntropyHW(params)
        assert apen.resources().flip_flops > 0
        assert len(apen.exported_values()) == 8 + 16
