"""Known-answer tests of the reference NIST implementations.

The expected values are the worked examples from NIST SP 800-22 (rev 1a),
sections 2.1.4–2.15.4.  Where the spec's example uses parameters our
implementation computes on the fly (e.g. the overlapping-template
probabilities), the example is reproduced only when the derivation matches.
"""

import pytest

from repro.nist import (
    approximate_entropy_test,
    binary_matrix_rank_test,
    block_frequency_test,
    cumulative_sums_test,
    dft_test,
    frequency_test,
    linear_complexity_test,
    longest_run_test,
    non_overlapping_template_test,
    random_excursions_test,
    random_excursions_variant_test,
    runs_test,
    serial_test,
    universal_test,
)
from repro.nist.linear_complexity import berlekamp_massey

#: First 100 bits of the binary expansion of pi's fractional part, the sample
#: sequence used throughout SP 800-22 section 2 examples.
PI_100 = (
    "11001001000011111101101010100010001000010110100011"
    "00001000110100110001001100011001100010100010111000"
)


class TestFrequencyKnownAnswers:
    def test_small_example(self):
        # SP 800-22 2.1.4: eps = 1011010101, S = 2, P-value = 0.527089.
        result = frequency_test("1011010101")
        assert result.details["partial_sum"] == 2
        assert result.p_value == pytest.approx(0.527089, abs=1e-6)

    def test_pi_100_example(self):
        # SP 800-22 2.1.8: 100 bits of pi, P-value = 0.109599.
        result = frequency_test(PI_100)
        assert result.p_value == pytest.approx(0.109599, abs=1e-5)


class TestBlockFrequencyKnownAnswers:
    def test_small_example(self):
        # SP 800-22 2.2.4: eps = 0110011010, M = 3, chi2 = 1, P = 0.801252.
        result = block_frequency_test("0110011010", block_length=3)
        assert result.statistic == pytest.approx(1.0, abs=1e-9)
        assert result.p_value == pytest.approx(0.801252, abs=1e-6)

    def test_pi_100_example(self):
        # SP 800-22 2.2.8: 100 bits of pi, M = 10, P = 0.706438.
        result = block_frequency_test(PI_100, block_length=10)
        assert result.p_value == pytest.approx(0.706438, abs=1e-5)


class TestRunsKnownAnswers:
    def test_small_example(self):
        # SP 800-22 2.3.4: eps = 1001101011, V = 7, P = 0.147232.
        result = runs_test("1001101011")
        assert result.details["runs"] == 7
        assert result.p_value == pytest.approx(0.147232, abs=1e-6)

    def test_pi_100_example(self):
        # SP 800-22 2.3.8: 100 bits of pi, P = 0.500798.
        result = runs_test(PI_100)
        assert result.p_value == pytest.approx(0.500798, abs=1e-5)


class TestLongestRunKnownAnswer:
    def test_128_bit_example(self):
        # SP 800-22 2.4.8: the 128-bit example sequence, M = 8, P ≈ 0.180609.
        eps = (
            "11001100000101010110110001001100111000000000001001"
            "00110101010001000100111101011010000000110101111100"
            "1100111001101101100010110010"
        )
        result = longest_run_test(eps, block_length=8)
        assert result.details["categories"] == [4, 9, 3, 0]
        assert result.p_value == pytest.approx(0.180609, abs=1e-4)


class TestRankKnownAnswer:
    def test_small_example(self):
        # SP 800-22 2.5.4: eps = 01011001001010101101, M = Q = 3, N = 2;
        # ranks 2 and 3 give counts full = 1, full-1 = 1, rest = 0.  The
        # spec's worked P-value (0.741948) plugs in the *rounded* asymptotic
        # probabilities (0.2888, 0.5776, 0.1336); we evaluate the exact
        # section-3.5 product formulas for M = Q = 3, which shifts the
        # P-value while keeping the identical integer rank histogram.
        result = binary_matrix_rank_test(
            "01011001001010101101", matrix_rows=3, matrix_cols=3
        )
        assert result.details["counts"] == {"full": 1, "full_minus_1": 1, "rest": 0}
        assert result.details["num_matrices"] == 2
        assert result.details["discarded_bits"] == 2
        assert result.p_value == pytest.approx(0.8209616256861869, abs=1e-12)

    def test_too_short_sequence_raises(self):
        with pytest.raises(ValueError, match="need at least 1024 bits"):
            binary_matrix_rank_test("1" * 1023)


class TestDftKnownAnswer:
    def test_small_example(self):
        # SP 800-22 2.6.4: eps = 1001010011, T ≈ 5.47, expected N0 = 4.75.
        # The spec's example counts N1 = 4 sub-threshold peaks (it drops the
        # DC bin, P = 0.029523); our reference keeps the full first half of
        # the spectrum including bin 0, giving N1 = 5 on the same sequence.
        result = dft_test("1001010011")
        assert result.details["expected_below"] == pytest.approx(4.75, abs=1e-12)
        assert result.details["observed_below"] == 5.0
        assert result.p_value == pytest.approx(0.4681599098544281, abs=1e-12)

    def test_too_short_sequence_raises(self):
        with pytest.raises(ValueError, match="at least 2 bits"):
            dft_test("1")


class TestUniversalKnownAnswer:
    def test_too_short_sequence_raises(self):
        # Maurer's test needs Q = 10 * 2^L initialisation blocks; the
        # smallest recommended parameterisation (L = 6) already requires
        # 387,840 bits, so every SP 800-22 toy example is out of range.
        with pytest.raises(ValueError, match="387,840 bits"):
            universal_test("0" * 100)


class TestLinearComplexityKnownAnswers:
    def test_berlekamp_massey_example(self):
        # SP 800-22 2.10.4: eps = 1101011110001 (n = 13) has linear
        # complexity L = 4 (LFSR <1 + x^3 + x^4>).
        assert berlekamp_massey("1101011110001") == 4

    def test_single_block_complexities(self):
        # The full test over one 13-bit block must report that same L = 4
        # through the chi-squared machinery.
        result = linear_complexity_test("1101011110001", block_length=13)
        assert result.details["complexities"] == [4]
        assert result.details["num_blocks"] == 1

    def test_block_length_validation(self):
        with pytest.raises(ValueError, match="block_length must be at least 4"):
            linear_complexity_test("1" * 100, block_length=3)


class TestNonOverlappingKnownAnswer:
    def test_small_example(self):
        # SP 800-22 2.7.4: eps = 10100100101110010110 (n=20), B = 001,
        # N = 2 blocks of M = 10: W1 = 2, W2 = 1, P = 0.344154.
        result = non_overlapping_template_test(
            "10100100101110010110", template=(0, 0, 1), num_blocks=2
        )
        assert result.details["counts"] == [2, 1]
        assert result.p_value == pytest.approx(0.344154, abs=1e-4)


class TestSerialKnownAnswers:
    def test_small_example(self):
        # SP 800-22 2.11.4: eps = 0011011101, m = 3:
        # del-psi2 = 1.6, del2-psi2 = 0.8, P1 = 0.808792, P2 = 0.670320.
        result = serial_test("0011011101", m=3)
        assert result.details["del1"] == pytest.approx(1.6, abs=1e-9)
        assert result.details["del2"] == pytest.approx(0.8, abs=1e-9)
        assert result.p_values[0] == pytest.approx(0.808792, abs=1e-5)
        assert result.p_values[1] == pytest.approx(0.670320, abs=1e-5)

    def test_pi_100_consistency(self):
        # For the 100-bit pi prefix the serial test should comfortably accept
        # the randomness hypothesis at every NIST-recommended alpha.
        result = serial_test(PI_100, m=3)
        assert result.passed(0.01)
        assert all(0.0 <= p <= 1.0 for p in result.p_values)


class TestApproximateEntropyKnownAnswers:
    def test_small_example(self):
        # SP 800-22 2.12.4: eps = 0100110101, m = 3, P = 0.261961.
        result = approximate_entropy_test("0100110101", m=3)
        assert result.p_value == pytest.approx(0.261961, abs=1e-4)

    def test_pi_100_example(self):
        # SP 800-22 2.12.8: 100 bits of pi, m = 2, P = 0.235301.
        result = approximate_entropy_test(PI_100, m=2)
        assert result.p_value == pytest.approx(0.235301, abs=1e-4)


class TestCusumKnownAnswers:
    def test_small_example_forward(self):
        # SP 800-22 2.13.4: eps = 1011010111, z = 4, P = 0.4116588.
        result = cumulative_sums_test("1011010111", mode=0)
        assert result.details["z"] == 4
        assert result.p_value == pytest.approx(0.4116588, abs=1e-6)

    def test_pi_100_example_both_modes(self):
        # SP 800-22 2.13.8: 100 bits of pi: forward P = 0.219194,
        # backward P = 0.114866.
        forward = cumulative_sums_test(PI_100, mode=0)
        backward = cumulative_sums_test(PI_100, mode=1)
        assert forward.p_value == pytest.approx(0.219194, abs=1e-5)
        assert backward.p_value == pytest.approx(0.114866, abs=1e-5)


class TestRandomExcursionsKnownAnswers:
    def test_small_example_state_plus_one(self):
        # SP 800-22 2.14.4: eps = 0110110101, J = 3; for state x = +1 the
        # chi-squared is 4.333033 with P = 0.502529.
        result = random_excursions_test("0110110101")
        assert result.details["num_cycles"] == 3
        index = result.details["states"].index(1)
        # The spec's worked example uses the rounded pi table (0.0312 instead
        # of 0.03125), hence the loose tolerance against exact probabilities.
        assert result.details["statistics"][index] == pytest.approx(4.333033, abs=1e-3)
        assert result.p_values[index] == pytest.approx(0.502529, abs=1e-3)

    def test_variant_small_example_state_plus_one(self):
        # SP 800-22 2.15.4: same eps; for state x = +1, count = 4, J = 3,
        # P = 0.683091.
        result = random_excursions_variant_test("0110110101")
        assert result.details["num_cycles"] == 3
        assert result.details["counts"][1] == 4
        index = result.details["states"].index(1)
        assert result.p_values[index] == pytest.approx(0.683091, abs=1e-4)
