"""Tests of the unified testing block (Fig. 2): construction, sharing, I/O."""

import numpy as np
import pytest

from repro.core.configs import list_designs
from repro.hwtests import DesignParameters, SharingOptions, UnifiedTestingBlock
from repro.hwtests.parameters import is_power_of_two, clog2, counter_width
from repro.trng import IdealSource

ALL_TESTS = (1, 2, 3, 4, 7, 8, 11, 12, 13)


@pytest.fixture(scope="module")
def params():
    return DesignParameters.for_length(4096)


@pytest.fixture(scope="module")
def bits():
    return IdealSource(seed=404).generate(4096).bits


@pytest.fixture(scope="module")
def full_block(params, bits):
    block = UnifiedTestingBlock(params, tests=ALL_TESTS)
    block.process_sequence(bits)
    return block


class TestParametersHelpers:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(65536)
        assert not is_power_of_two(0)
        assert not is_power_of_two(96)

    def test_clog2(self):
        assert clog2(2) == 1
        assert clog2(1024) == 10
        assert clog2(1025) == 11
        with pytest.raises(ValueError):
            clog2(0)

    def test_counter_width(self):
        assert counter_width(0) == 1
        assert counter_width(1) == 1
        assert counter_width(255) == 8
        assert counter_width(256) == 9

    def test_design_parameters_validation(self):
        with pytest.raises(ValueError):
            DesignParameters(n=100)  # not a power of two
        with pytest.raises(ValueError):
            DesignParameters(n=128, block_frequency_num_blocks=3)
        with pytest.raises(ValueError):
            DesignParameters(n=128, longest_run_block_length=64)
        with pytest.raises(ValueError):
            DesignParameters.for_length(64)

    def test_derived_values(self):
        params = DesignParameters.for_length(65536)
        assert params.block_frequency_block_length == 8192
        assert params.longest_run_num_blocks == 512
        assert params.nonoverlapping_block_length == 8192
        assert params.overlapping_num_blocks == 64

    def test_for_length_all_paper_lengths(self):
        assert DesignParameters.for_length(128).longest_run_block_length == 8
        assert DesignParameters.for_length(65536).longest_run_block_length == 128
        assert DesignParameters.for_length(1048576).longest_run_block_length == 512

    def test_sharing_all_disabled(self):
        options = SharingOptions.all_disabled()
        assert not options.omit_ones_counter
        assert not options.shared_shift_register


class TestBlockConstruction:
    def test_rejects_unsupported_tests(self, params):
        with pytest.raises(ValueError):
            UnifiedTestingBlock(params, tests=[5])
        with pytest.raises(ValueError):
            UnifiedTestingBlock(params, tests=[])

    def test_all_standard_designs_construct(self):
        for design in list_designs():
            block = UnifiedTestingBlock(design.parameters, tests=design.tests)
            assert block.resources().flip_flops > 0

    def test_frequency_counter_omitted_when_shared(self, params):
        shared = UnifiedTestingBlock(params, tests=[1, 13])
        assert 1 not in shared.units  # ones derived from the cusum counter
        assert 13 in shared.units

    def test_frequency_counter_present_without_cusum(self, params):
        block = UnifiedTestingBlock(params, tests=[1])
        assert 1 in block.units

    def test_frequency_counter_present_when_sharing_disabled(self, params):
        block = UnifiedTestingBlock(
            params, tests=[1, 13], sharing=SharingOptions(omit_ones_counter=False)
        )
        assert 1 in block.units

    def test_apen_shares_serial_counters(self, params):
        block = UnifiedTestingBlock(params, tests=[11, 12])
        assert block.units[12].shares_serial_counters
        assert block.units[12].resources().flip_flops == 0

    def test_apen_standalone_when_sharing_disabled(self, params):
        block = UnifiedTestingBlock(
            params,
            tests=[11, 12],
            sharing=SharingOptions(unified_approximate_entropy=False),
        )
        assert not block.units[12].shares_serial_counters
        assert block.units[12].resources().flip_flops > 0

    def test_template_tests_share_one_shift_register(self, params):
        block = UnifiedTestingBlock(params, tests=[7, 8])
        inventory = block.component_inventory()
        shift_registers = [row for row in inventory if row["kind"] == "shift_register"]
        assert len(shift_registers) == 1

    def test_separate_shift_registers_when_sharing_disabled(self, params):
        block = UnifiedTestingBlock(
            params, tests=[7, 8], sharing=SharingOptions(shared_shift_register=False)
        )
        inventory = block.component_inventory()
        shift_registers = [row for row in inventory if row["kind"] == "shift_register"]
        assert len(shift_registers) == 2

    def test_register_map_addresses_are_unique(self, full_block):
        addresses = [row["address"] for row in full_block.memory_map()]
        assert len(addresses) == len(set(addresses))

    def test_repr(self, full_block):
        assert "UnifiedTestingBlock" in repr(full_block)


class TestBlockSharingSavings:
    def test_sharing_reduces_flip_flops(self, params):
        unified = UnifiedTestingBlock(params, tests=ALL_TESTS).resources()
        separate = UnifiedTestingBlock(
            params, tests=ALL_TESTS, sharing=SharingOptions.all_disabled()
        ).resources()
        assert unified.flip_flops < separate.flip_flops
        assert unified.lut_estimate < separate.lut_estimate

    @pytest.mark.parametrize(
        "disabled_field",
        [
            "omit_ones_counter",
            "unified_approximate_entropy",
            "shared_shift_register",
        ],
    )
    def test_each_trick_saves_flip_flops(self, params, disabled_field):
        unified = UnifiedTestingBlock(params, tests=ALL_TESTS).resources()
        kwargs = {disabled_field: False}
        ablated = UnifiedTestingBlock(
            params, tests=ALL_TESTS, sharing=SharingOptions(**kwargs)
        ).resources()
        assert unified.flip_flops <= ablated.flip_flops


class TestBlockProcessing:
    def test_rejects_invalid_bit(self, params):
        block = UnifiedTestingBlock(params, tests=[13])
        with pytest.raises(ValueError):
            block.process_bit(2)

    def test_rejects_wrong_sequence_length(self, params):
        block = UnifiedTestingBlock(params, tests=[13])
        with pytest.raises(ValueError):
            block.process_sequence([0, 1, 0])

    def test_rejects_bits_after_completion(self, params, bits):
        block = UnifiedTestingBlock(params, tests=[13]).process_sequence(bits)
        with pytest.raises(RuntimeError):
            block.process_bit(1)

    def test_reset_allows_reuse(self, params, bits):
        block = UnifiedTestingBlock(params, tests=[1, 2, 3, 4, 13])
        first = dict(block.process_sequence(bits).hardware_values())
        block.reset()
        assert block.bits_processed == 0
        second = dict(block.process_sequence(bits).hardware_values())
        assert first == second

    def test_bits_processed_counter(self, params):
        block = UnifiedTestingBlock(params, tests=[13])
        for bit in (0, 1, 1):
            block.process_bit(bit)
        assert block.bits_processed == 3
        assert not block.sequence_complete

    def test_finalize_idempotent(self, params, bits):
        block = UnifiedTestingBlock(params, tests=ALL_TESTS).process_sequence(bits)
        values = block.hardware_values()
        block.finalize()
        assert block.hardware_values() == values


class TestBlockResources:
    def test_resources_scale_with_sequence_length(self):
        small = UnifiedTestingBlock(DesignParameters.for_length(128), tests=(1, 2, 3, 4, 13))
        large = UnifiedTestingBlock(DesignParameters.for_length(65536), tests=(1, 2, 3, 4, 13))
        assert large.resources().flip_flops > small.resources().flip_flops

    def test_resources_scale_with_test_count(self, params):
        light = UnifiedTestingBlock(params, tests=(1, 2, 3, 4, 13))
        high = UnifiedTestingBlock(params, tests=ALL_TESTS)
        assert high.resources().flip_flops > light.resources().flip_flops
        assert high.resources().readout_values > light.resources().readout_values

    def test_readout_values_match_register_file(self, full_block):
        assert full_block.resources().readout_values == len(full_block.register_file)

    def test_paper_flip_flop_budgets_shape(self):
        """FF counts stay within ~25% of the published Table III values."""
        published = {
            "n128_light": 110,
            "n65536_light": 307,
            "n65536_medium": 375,
            "n1048576_high": 1156,
        }
        for design in list_designs():
            if design.name not in published:
                continue
            block = UnifiedTestingBlock(design.parameters, tests=design.tests)
            measured = block.resources().flip_flops
            assert measured == pytest.approx(published[design.name], rel=0.25)
