"""Tests of the replay / capture adapters."""

import numpy as np
import pytest

from repro.nist.common import BitSequence
from repro.trng import CaptureSource, IdealSource, ReplaySource
from repro.trng.capture import ReplaySource as ReplaySourceDirect


class TestReplaySource:
    def test_replays_bit_string(self):
        source = ReplaySource("10110")
        assert [source.next_bit() for _ in range(5)] == [1, 0, 1, 1, 0]

    def test_replays_bytes_msb_first(self):
        source = ReplaySource(b"\xA0")  # 1010 0000
        assert [source.next_bit() for _ in range(4)] == [1, 0, 1, 0]

    def test_exhaustion_raises_without_loop(self):
        source = ReplaySource("10")
        source.generate(2)
        with pytest.raises(RuntimeError):
            source.next_bit()

    def test_loop_recycles(self):
        source = ReplaySource("10", loop=True)
        assert source.generate(6).to01() == "101010"
        assert source.remaining_bits is None

    def test_remaining_bits(self):
        source = ReplaySource("1010")
        source.next_bit()
        assert source.remaining_bits == 3
        assert source.total_bits == 4

    def test_reset(self):
        source = ReplaySource("110")
        source.generate(3)
        source.reset()
        assert source.next_bit() == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReplaySource("")

    def test_from_file_round_trip(self, tmp_path):
        path = tmp_path / "capture.bin"
        path.write_bytes(b"\xFF\x00")
        source = ReplaySource.from_file(path)
        assert source.total_bits == 16
        assert source.generate(16).to01() == "1111111100000000"

    def test_from_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(ValueError):
            ReplaySource.from_file(path)

    def test_same_class_from_both_import_paths(self):
        assert ReplaySource is ReplaySourceDirect


class TestCaptureSource:
    def test_captures_what_it_emits(self):
        capture = CaptureSource(IdealSource(seed=1))
        bits = capture.generate(64)
        assert capture.captured_bits == 64
        assert capture.captured() == bits

    def test_max_bits_limit(self):
        capture = CaptureSource(IdealSource(seed=2), max_bits=16)
        capture.generate(64)
        assert capture.captured_bits == 16

    def test_invalid_max_bits(self):
        with pytest.raises(ValueError):
            CaptureSource(IdealSource(seed=3), max_bits=0)

    def test_clear_keeps_source_state(self):
        capture = CaptureSource(IdealSource(seed=4))
        first = capture.generate(16)
        capture.clear()
        second = capture.generate(16)
        assert capture.captured_bits == 16
        assert capture.captured() == second
        assert first != second or len(first) == len(second)

    def test_save_and_replay_round_trip(self, tmp_path):
        capture = CaptureSource(IdealSource(seed=5))
        original = capture.generate(64)
        path = tmp_path / "dump.bin"
        written = capture.save(path)
        assert written == 8
        replay = ReplaySource.from_file(path)
        assert replay.generate(64) == original

    def test_save_pads_partial_byte(self, tmp_path):
        capture = CaptureSource(IdealSource(seed=6))
        capture.generate(10)
        path = tmp_path / "dump.bin"
        assert capture.save(path) == 2  # 10 bits -> 2 bytes

    def test_reset_resets_both(self):
        capture = CaptureSource(IdealSource(seed=7))
        first = capture.generate(32)
        capture.reset()
        assert capture.captured_bits == 0
        assert capture.generate(32) == first

    def test_capture_feeds_reference_suite(self):
        """The certification flow: capture on-the-fly, re-check offline."""
        from repro.nist import run_all_tests

        capture = CaptureSource(IdealSource(seed=8))
        capture.generate(2048)
        report = run_all_tests(capture.captured().bits, tests=[1, 2, 3, 13])
        assert report.passed(0.001)
