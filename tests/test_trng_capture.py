"""Tests of the replay / capture adapters."""

import numpy as np
import pytest

from repro.nist.common import BitSequence
from repro.trng import CaptureSource, IdealSource, ReplaySource
from repro.trng.capture import ReplaySource as ReplaySourceDirect


class TestReplaySource:
    def test_replays_bit_string(self):
        source = ReplaySource("10110")
        assert [source.next_bit() for _ in range(5)] == [1, 0, 1, 1, 0]

    def test_replays_bytes_msb_first(self):
        source = ReplaySource(b"\xA0")  # 1010 0000
        assert [source.next_bit() for _ in range(4)] == [1, 0, 1, 0]

    def test_exhaustion_raises_without_loop(self):
        source = ReplaySource("10")
        source.generate(2)
        with pytest.raises(RuntimeError):
            source.next_bit()

    def test_loop_recycles(self):
        source = ReplaySource("10", loop=True)
        assert source.generate(6).to01() == "101010"
        assert source.remaining_bits is None

    def test_remaining_bits(self):
        source = ReplaySource("1010")
        source.next_bit()
        assert source.remaining_bits == 3
        assert source.total_bits == 4

    def test_reset(self):
        source = ReplaySource("110")
        source.generate(3)
        source.reset()
        assert source.next_bit() == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReplaySource("")

    def test_from_file_round_trip(self, tmp_path):
        path = tmp_path / "capture.bin"
        path.write_bytes(b"\xFF\x00")
        source = ReplaySource.from_file(path)
        assert source.total_bits == 16
        assert source.generate(16).to01() == "1111111100000000"

    def test_from_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(ValueError):
            ReplaySource.from_file(path)

    def test_same_class_from_both_import_paths(self):
        assert ReplaySource is ReplaySourceDirect


class TestCaptureSource:
    def test_captures_what_it_emits(self):
        capture = CaptureSource(IdealSource(seed=1))
        bits = capture.generate(64)
        assert capture.captured_bits == 64
        assert capture.captured() == bits

    def test_max_bits_limit(self):
        capture = CaptureSource(IdealSource(seed=2), max_bits=16)
        capture.generate(64)
        assert capture.captured_bits == 16

    def test_invalid_max_bits(self):
        with pytest.raises(ValueError):
            CaptureSource(IdealSource(seed=3), max_bits=0)

    def test_clear_keeps_source_state(self):
        capture = CaptureSource(IdealSource(seed=4))
        first = capture.generate(16)
        capture.clear()
        second = capture.generate(16)
        assert capture.captured_bits == 16
        assert capture.captured() == second
        assert first != second or len(first) == len(second)

    def test_save_and_replay_round_trip(self, tmp_path):
        capture = CaptureSource(IdealSource(seed=5))
        original = capture.generate(64)
        path = tmp_path / "dump.bin"
        written = capture.save(path)
        assert written == 64  # exact bit count, not bytes
        replay = ReplaySource.from_file(path)
        assert replay.generate(64) == original

    def test_save_reports_exact_bits_of_partial_byte(self, tmp_path):
        capture = CaptureSource(IdealSource(seed=6))
        capture.generate(10)
        path = tmp_path / "dump.bin"
        assert capture.save(path) == 10  # 10 bits (stored as 2 padded bytes)
        assert path.stat().st_size == 2

    def test_partial_byte_round_trip_is_lossless(self, tmp_path):
        """Regression: the zero-pad bits of the last byte must not replay as
        data — a 13-bit capture used to come back as 16 bits."""
        capture = CaptureSource(IdealSource(seed=9))
        original = capture.generate(13)
        path = tmp_path / "dump.bin"
        bit_count = capture.save(path)
        assert bit_count == 13
        replay = ReplaySource.from_file(path, bit_length=bit_count)
        assert replay.total_bits == 13
        assert replay.generate(13) == original
        with pytest.raises(RuntimeError):
            replay.next_bit()  # the pad bits are gone, not replayable

    def test_from_file_without_bit_length_keeps_padded_bits(self, tmp_path):
        capture = CaptureSource(IdealSource(seed=10))
        capture.generate(13)
        path = tmp_path / "dump.bin"
        capture.save(path)
        assert ReplaySource.from_file(path).total_bits == 16

    def test_bit_length_validation(self, tmp_path):
        path = tmp_path / "dump.bin"
        path.write_bytes(b"\xFF")
        with pytest.raises(ValueError):
            ReplaySource.from_file(path, bit_length=0)
        with pytest.raises(ValueError):
            ReplaySource.from_file(path, bit_length=9)
        with pytest.raises(ValueError):
            ReplaySource("1010", bit_length=5)
        assert ReplaySource("1010", bit_length=3).total_bits == 3

    def test_reset_resets_both(self):
        capture = CaptureSource(IdealSource(seed=7))
        first = capture.generate(32)
        capture.reset()
        assert capture.captured_bits == 0
        assert capture.generate(32) == first

    def test_capture_feeds_reference_suite(self):
        """The certification flow: capture on-the-fly, re-check offline."""
        from repro.nist import run_all_tests

        capture = CaptureSource(IdealSource(seed=8))
        capture.generate(2048)
        report = run_all_tests(capture.captured().bits, tests=[1, 2, 3, 13])
        assert report.passed(0.001)
