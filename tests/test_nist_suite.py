"""Tests of the NIST suite driver and the individual tests' edge cases."""

import numpy as np
import pytest

from repro.nist import (
    NistSuite,
    binary_matrix_rank_test,
    block_frequency_test,
    cumulative_sums_test,
    dft_test,
    frequency_test,
    linear_complexity_test,
    longest_run_test,
    non_overlapping_template_test,
    overlapping_template_test,
    run_all_tests,
    runs_test,
    serial_test,
    universal_test,
)
from repro.nist.nonoverlapping import aperiodic_templates, count_non_overlapping
from repro.nist.overlapping import count_overlapping, overlapping_probabilities
from repro.nist.rank import rank_probabilities
from repro.nist.suite import HW_SUITABLE_TESTS, NIST_TEST_NAMES
from repro.trng.ideal import IdealSource


class TestSuiteDriver:
    def test_all_fifteen_registered(self):
        assert sorted(NIST_TEST_NAMES) == list(range(1, 16))

    def test_hw_suitable_selection_matches_table1(self):
        assert HW_SUITABLE_TESTS == (1, 2, 3, 4, 7, 8, 11, 12, 13)

    def test_unknown_test_number_rejected(self):
        with pytest.raises(ValueError):
            NistSuite(tests=[1, 99])

    def test_subset_run(self, ideal_bits_1024):
        report = NistSuite(tests=[1, 3, 13]).run(ideal_bits_1024)
        assert sorted(report.results) == [1, 3, 13]
        assert not report.errors

    def test_errors_are_collected_not_raised(self):
        # 64 bits are far too short for the universal test.
        report = NistSuite(tests=[9]).run([0, 1] * 32)
        assert 9 in report.errors
        assert not report.results

    def test_errors_raised_when_requested(self):
        with pytest.raises(ValueError):
            NistSuite(tests=[9], skip_errors=False).run([0, 1] * 32)

    def test_parameters_forwarded(self, ideal_bits_1024):
        report = NistSuite(tests=[2], parameters={2: {"block_length": 64}}).run(
            ideal_bits_1024
        )
        assert report.results[2].details["block_length"] == 64

    def test_summary_rows(self, ideal_bits_1024):
        report = run_all_tests(ideal_bits_1024, tests=[1, 2, 3])
        rows = report.summary_rows()
        assert len(rows) == 3
        assert {row["test"] for row in rows} == {1, 2, 3}

    def test_failing_tests_listing(self):
        report = run_all_tests([1] * 256, tests=[1, 3])
        assert 1 in report.failing_tests()
        assert not report.passed()

    def test_ideal_sequence_passes(self, ideal_bits_65536):
        report = run_all_tests(ideal_bits_65536, tests=[1, 2, 3, 4, 7, 8, 11, 12, 13])
        assert report.passed(alpha=0.001)

    def test_p_values_dict(self, ideal_bits_1024):
        report = run_all_tests(ideal_bits_1024, tests=[1, 13])
        assert set(report.p_values()) == {1, 13}


class TestFrequencyEdgeCases:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            frequency_test([])

    def test_all_ones_fails(self):
        assert not frequency_test([1] * 200).passed(0.01)

    def test_balanced_passes(self):
        assert frequency_test([0, 1] * 100).passed(0.01)

    def test_details_consistent(self):
        result = frequency_test("1110")
        assert result.details["ones"] == 3
        assert result.details["partial_sum"] == 2


class TestBlockFrequencyEdgeCases:
    def test_block_longer_than_sequence(self):
        with pytest.raises(ValueError):
            block_frequency_test("1010", block_length=8)

    def test_invalid_block_length(self):
        with pytest.raises(ValueError):
            block_frequency_test("1010", block_length=0)

    def test_partial_block_discarded(self):
        result = block_frequency_test("101010101", block_length=4)
        assert result.details["num_blocks"] == 2
        assert result.details["discarded_bits"] == 1

    def test_alternating_blocks_detected(self):
        # Blocks of all ones and all zeros: locally very biased.
        bits = ([1] * 16 + [0] * 16) * 8
        assert not block_frequency_test(bits, block_length=16).passed(0.01)


class TestRunsEdgeCases:
    def test_pretest_failure_gives_zero_p(self):
        result = runs_test([1] * 100)
        assert result.p_value == 0.0
        assert not result.details["pretest_passed"]

    def test_alternating_fails(self):
        assert not runs_test([0, 1] * 500).passed(0.01)

    def test_single_bit(self):
        result = runs_test([1])
        assert result.details["runs"] == 1


class TestLongestRunEdgeCases:
    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            longest_run_test([0, 1] * 32)

    def test_invalid_block_length(self):
        with pytest.raises(ValueError):
            longest_run_test([0, 1] * 256, block_length=7)

    def test_category_counts_sum_to_blocks(self, ideal_bits_1024):
        result = longest_run_test(ideal_bits_1024, block_length=8)
        assert sum(result.details["categories"]) == result.details["num_blocks"]

    def test_all_ones_fails(self):
        assert not longest_run_test([1] * 1024, block_length=8).passed(0.01)


class TestTemplateTests:
    def test_aperiodic_templates_are_aperiodic(self):
        templates = aperiodic_templates(4)
        assert (0, 0, 0, 1) in templates
        assert (0, 1, 0, 1) not in templates  # period 2
        assert (1, 1, 1, 1) not in templates  # period 1

    def test_count_non_overlapping_skips_after_match(self):
        # "111" in "111111": non-overlapping occurrences = 2.
        assert count_non_overlapping([1] * 6, (1, 1, 1)) == 2

    def test_count_overlapping_slides(self):
        # "111" in "111111": overlapping occurrences = 4.
        assert count_overlapping([1] * 6, (1, 1, 1)) == 4

    def test_non_overlapping_block_too_short(self):
        with pytest.raises(ValueError):
            non_overlapping_template_test([0, 1] * 8, num_blocks=4)

    def test_non_overlapping_counts_in_details(self, ideal_bits_4096):
        result = non_overlapping_template_test(ideal_bits_4096, num_blocks=8)
        assert len(result.details["counts"]) == 8

    def test_overlapping_probabilities_sum_to_one(self):
        pi = overlapping_probabilities(1024, 9)
        assert sum(pi) == pytest.approx(1.0, abs=1e-9)
        assert all(p > 0 for p in pi)

    def test_overlapping_probabilities_close_to_nist_reference(self):
        # For M = 1032, m = 9 the NIST spec tabulates
        # (0.364091, 0.185659, 0.139381, 0.100571, 0.070432, 0.139865).
        # The spec's table comes from an exact recursion; the compound-Poisson
        # closed form used here agrees to a few parts in a thousand, which is
        # ample for the category expectations of the chi-squared statistic.
        pi = overlapping_probabilities(1032, 9)
        reference = [0.364091, 0.185659, 0.139381, 0.100571, 0.070432, 0.139865]
        assert pi == pytest.approx(reference, abs=5e-3)

    def test_overlapping_sequence_too_short(self):
        with pytest.raises(ValueError):
            overlapping_template_test([0, 1] * 100, block_length=1024)

    def test_all_ones_fails_overlapping(self):
        assert not overlapping_template_test(
            [1] * 8192, block_length=1024
        ).passed(0.01)


class TestSerialAndApEnEdgeCases:
    def test_serial_m_too_small(self):
        with pytest.raises(ValueError):
            serial_test([0, 1] * 16, m=1)

    def test_serial_sequence_too_short(self):
        with pytest.raises(ValueError):
            serial_test([0, 1, 1], m=4)

    def test_serial_two_p_values(self, ideal_bits_1024):
        result = serial_test(ideal_bits_1024, m=4)
        assert len(result.p_values) == 2

    def test_alternating_fails_serial(self):
        assert not serial_test([0, 1] * 512, m=4).passed(0.01)


class TestCusumEdgeCases:
    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            cumulative_sums_test([1, 0, 1], mode=2)

    def test_forward_and_backward_differ_in_general(self, ideal_bits_1024):
        forward = cumulative_sums_test(ideal_bits_1024, mode=0)
        backward = cumulative_sums_test(ideal_bits_1024, mode=1)
        assert forward.details["z"] >= 1
        assert backward.details["z"] >= 1

    def test_all_ones_fails(self):
        assert not cumulative_sums_test([1] * 256).passed(0.01)

    def test_walk_extremes_in_details(self):
        # Walk of 1011010111: 1,0,1,2,1,2,1,2,3,4 -> max 4, min 0, final 4.
        result = cumulative_sums_test("1011010111")
        assert result.details["s_max"] == 4
        assert result.details["s_min"] == 0
        assert result.details["s_final"] == 4


class TestNonHwSuitableTests:
    """The six tests the paper excludes still work as reference baselines."""

    def test_rank_probabilities_32x32(self):
        p_full, p_minus1, p_rest = rank_probabilities(32, 32)
        assert p_full == pytest.approx(0.2888, abs=1e-3)
        assert p_minus1 == pytest.approx(0.5776, abs=1e-3)
        assert p_rest == pytest.approx(0.1336, abs=1e-3)

    def test_rank_test_needs_enough_bits(self):
        with pytest.raises(ValueError):
            binary_matrix_rank_test([0, 1] * 100)

    def test_rank_test_on_ideal(self, ideal_bits_65536):
        result = binary_matrix_rank_test(ideal_bits_65536)
        assert result.details["num_matrices"] == 64
        assert result.passed(0.001)

    def test_dft_on_ideal(self, ideal_bits_4096):
        assert dft_test(ideal_bits_4096).passed(0.001)

    def test_dft_on_periodic_fails(self):
        assert not dft_test([1, 0, 0, 0] * 1024).passed(0.01)

    def test_dft_too_short(self):
        with pytest.raises(ValueError):
            dft_test([1])

    def test_universal_too_short(self):
        with pytest.raises(ValueError):
            universal_test([0, 1] * 100)

    def test_universal_with_explicit_parameters(self, ideal_bits_65536):
        result = universal_test(ideal_bits_65536, block_length=6, init_blocks=640)
        assert result.passed(0.001)
        assert result.details["L"] == 6

    def test_linear_complexity_block_too_small(self):
        with pytest.raises(ValueError):
            linear_complexity_test([0, 1] * 100, block_length=2)

    def test_linear_complexity_on_ideal(self, ideal_bits_65536):
        result = linear_complexity_test(ideal_bits_65536, block_length=512)
        assert result.details["num_blocks"] == 128
        assert result.passed(0.001)

    def test_linear_complexity_on_lfsr_fails(self):
        # A short-LFSR stream has tiny linear complexity in every block.
        state = [1, 0, 0, 1, 1]
        out = []
        for _ in range(32768):
            out.append(state[-1])
            feedback = state[4] ^ state[2]
            state = [feedback] + state[:-1]
        result = linear_complexity_test(out, block_length=512)
        assert not result.passed(0.01)


class TestRandomExcursionsSuite:
    def test_runs_on_ideal(self, ideal_bits_65536):
        report = run_all_tests(ideal_bits_65536, tests=[14, 15])
        # With 65536 bits J is usually below the recommendation but the test
        # still runs; the decision should be an acceptance for an ideal source.
        for result in report.results.values():
            assert result.passed(0.001)

    def test_stuck_source_has_no_cycles(self):
        from repro.nist import random_excursions_test

        with pytest.raises(ValueError):
            random_excursions_test([1] * 0)
