"""Tests of the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.trng import CaptureSource, IdealSource


def run_cli(argv):
    """Run the CLI capturing its output; returns (exit_code, text)."""
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("designs", "evaluate", "monitor"):
            assert parser.parse_args([command]).command == command

    def test_suite_requires_capture(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["suite"])


class TestDesignsCommand:
    def test_lists_all_eight_designs(self):
        code, text = run_cli(["designs"])
        assert code == 0
        for name in ("n128_light", "n65536_high", "n1048576_high"):
            assert name in text


class TestEvaluateCommand:
    def test_ideal_simulated_source_passes(self):
        code, text = run_cli(
            ["evaluate", "--design", "n128_light", "--source", "ideal", "--seed", "3"]
        )
        assert code == 0
        assert "PASS" in text

    def test_stuck_source_fails_with_exit_code_one(self):
        code, text = run_cli(["evaluate", "--design", "n128_light", "--source", "stuck"])
        assert code == 1
        assert "FAIL" in text

    def test_biased_source_with_parameter(self):
        code, text = run_cli(
            ["evaluate", "--design", "n128_light", "--source", "biased",
             "--parameter", "0.9", "--seed", "1"]
        )
        assert code == 1

    def test_capture_file_evaluation(self, tmp_path):
        capture = CaptureSource(IdealSource(seed=11))
        capture.generate(128)
        path = tmp_path / "trng.bin"
        capture.save(path)
        code, text = run_cli(
            ["evaluate", "--design", "n128_light", "--capture", str(path)]
        )
        assert code in (0, 1)
        assert "n128_light" in text

    def test_capture_too_short_is_an_error(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(b"\x55" * 4)  # 32 bits only
        code, text = run_cli(
            ["evaluate", "--design", "n128_light", "--capture", str(path)]
        )
        assert code == 2
        assert "error" in text


class TestMonitorCommand:
    def test_monitor_ideal_source(self):
        code, text = run_cli(
            ["monitor", "--design", "n128_light", "--source", "ideal",
             "--sequences", "3", "--seed", "5"]
        )
        assert code in (0, 1)
        assert "final state" in text

    def test_monitor_dead_source_reports_failure(self):
        code, text = run_cli(
            ["monitor", "--design", "n128_light", "--source", "stuck", "--sequences", "3"]
        )
        assert code == 1
        assert "failed" in text


class TestSuiteCommand:
    def test_reference_suite_on_capture(self, tmp_path):
        capture = CaptureSource(IdealSource(seed=12))
        capture.generate(4096)
        path = tmp_path / "long.bin"
        capture.save(path)
        code, text = run_cli(["suite", str(path), "--alpha", "0.001"])
        assert code in (0, 1)
        assert "Frequency (Monobit) Test" in text
        assert "skipped" in text  # the universal test cannot run on 4096 bits
