"""Tests of the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.trng import CaptureSource, IdealSource


def run_cli(argv):
    """Run the CLI capturing its output; returns (exit_code, text)."""
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("designs", "evaluate", "monitor", "campaign"):
            assert parser.parse_args([command]).command == command
        assert parser.parse_args(["fleet", "run"]).command == "fleet"

    def test_source_help_lists_scenario_labels(self, monkeypatch):
        """Every registered catalogue scenario is documented in --help."""
        from repro.campaign import DEFAULT_CATALOG

        # argparse wraps help to the terminal width and breaks on hyphens,
        # which would split labels like "freq-injection"; format wide.
        monkeypatch.setenv("COLUMNS", "500")
        parser = build_parser()
        subcommands = parser._subparsers._group_actions[0].choices
        for name in ("evaluate", "monitor"):
            help_text = subcommands[name].format_help()
            assert "scenario:<label>" in help_text
            for label in DEFAULT_CATALOG.labels():
                assert label in help_text, f"{label} missing from {name} --help"

    def test_suite_requires_capture(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["suite"])


class TestDesignsCommand:
    def test_lists_all_eight_designs(self):
        code, text = run_cli(["designs"])
        assert code == 0
        for name in ("n128_light", "n65536_high", "n1048576_high"):
            assert name in text


class TestEvaluateCommand:
    def test_ideal_simulated_source_passes(self):
        code, text = run_cli(
            ["evaluate", "--design", "n128_light", "--source", "ideal", "--seed", "3"]
        )
        assert code == 0
        assert "PASS" in text

    def test_stuck_source_fails_with_exit_code_one(self):
        code, text = run_cli(["evaluate", "--design", "n128_light", "--source", "stuck"])
        assert code == 1
        assert "FAIL" in text

    def test_biased_source_with_parameter(self):
        code, text = run_cli(
            ["evaluate", "--design", "n128_light", "--source", "biased",
             "--parameter", "0.9", "--seed", "1"]
        )
        assert code == 1

    def test_capture_file_evaluation(self, tmp_path):
        capture = CaptureSource(IdealSource(seed=11))
        capture.generate(128)
        path = tmp_path / "trng.bin"
        capture.save(path)
        code, text = run_cli(
            ["evaluate", "--design", "n128_light", "--capture", str(path)]
        )
        assert code in (0, 1)
        assert "n128_light" in text

    def test_capture_too_short_is_an_error(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(b"\x55" * 4)  # 32 bits only
        code, text = run_cli(
            ["evaluate", "--design", "n128_light", "--capture", str(path)]
        )
        assert code == 2
        assert "error" in text

    def test_scenario_source_reaches_catalogue_threats(self):
        code, text = run_cli(
            ["evaluate", "--design", "n128_light", "--source", "scenario:wire-cut"]
        )
        assert code == 1
        assert "DeadSource" in text and "FAIL" in text

    def test_scenario_source_healthy_control(self):
        code, text = run_cli(
            ["evaluate", "--design", "n128_light",
             "--source", "scenario:healthy-ideal", "--seed", "3"]
        )
        assert code == 0
        assert "PASS" in text

    def test_unknown_scenario_label_is_an_error(self):
        code, text = run_cli(
            ["evaluate", "--design", "n128_light", "--source", "scenario:bogus"]
        )
        assert code == 2
        assert "unknown scenario" in text and "wire-cut" in text

    def test_unknown_source_is_an_error(self):
        code, text = run_cli(
            ["evaluate", "--design", "n128_light", "--source", "bogus"]
        )
        assert code == 2
        assert "unknown simulated source" in text

    def test_stuck_invalid_parameter_is_an_error(self):
        """Regression: --parameter 0.5 used to be silently coerced to a
        stuck-at-0 source; now it is rejected with a clear message."""
        code, text = run_cli(
            ["evaluate", "--design", "n128_light", "--source", "stuck",
             "--parameter", "0.5"]
        )
        assert code == 2
        assert "stuck source needs --parameter 0 or 1" in text

    def test_stuck_parameter_one_is_honoured(self):
        code, text = run_cli(
            ["evaluate", "--design", "n128_light", "--source", "stuck",
             "--parameter", "1"]
        )
        assert code == 1
        assert "FAIL" in text


class TestMonitorCommand:
    def test_monitor_ideal_source(self):
        code, text = run_cli(
            ["monitor", "--design", "n128_light", "--source", "ideal",
             "--sequences", "3", "--seed", "5"]
        )
        assert code in (0, 1)
        assert "final state" in text

    def test_monitor_dead_source_reports_failure(self):
        code, text = run_cli(
            ["monitor", "--design", "n128_light", "--source", "stuck", "--sequences", "3"]
        )
        assert code == 1
        assert "failed" in text

    def test_recovered_blip_exits_zero(self):
        """Regression: the exit code used to be keyed off failure_rate() > 0,
        so a healthy source losing one sequence at rate ~alpha made the whole
        monitoring run report failure.  Seed 1 fails exactly one of eight
        sequences and recovers; the final HealthState (and exit code) must be
        healthy."""
        code, text = run_cli(
            ["monitor", "--design", "n128_light", "--source", "ideal",
             "--sequences", "8", "--seed", "1"]
        )
        assert "fail" in text  # the blip really happened...
        assert "final state: healthy" in text  # ...and was recovered from
        assert code == 0

    def test_suspect_final_state_exits_nonzero(self):
        """A run that *ends* degraded (dead source, one sequence => SUSPECT
        under suspect_after=1) keeps a non-zero exit code."""
        code, text = run_cli(
            ["monitor", "--design", "n128_light", "--source", "stuck", "--sequences", "1"]
        )
        assert code == 1
        assert "final state: suspect" in text

    def test_monitor_scenario_source(self):
        code, text = run_cli(
            ["monitor", "--design", "n128_light",
             "--source", "scenario:stuck-at-1", "--sequences", "3"]
        )
        assert code == 1
        assert "final state: failed" in text

    def test_monitor_stuck_invalid_parameter_is_an_error(self):
        code, text = run_cli(
            ["monitor", "--source", "stuck", "--parameter", "2", "--sequences", "1"]
        )
        assert code == 2
        assert "stuck source needs --parameter 0 or 1" in text


class TestFleetCommand:
    def run_small(self, *extra):
        return run_cli(
            ["fleet", "run", "--devices", "24", "--rounds", "3",
             "--design", "n128_light", "--seed", "9",
             "--mix", "healthy-ideal:0.8,wire-cut:0.1,biased-0.70:0.1", *extra]
        )

    def test_fleet_run_reports_rounds_and_table(self):
        code, text = self.run_small()
        assert code == 0
        assert "fleet: 24 devices on n128_light" in text
        assert "round   0" in text and "round   2" in text
        assert "wire-cut" in text and "detect_prob" in text
        assert "healthy-device false-alarm rate" in text
        assert "devices/s" in text

    def test_fleet_run_reproducible_modulo_timing(self):
        import re

        def strip_timing(text):
            return re.sub(r"[\d,.]+ devices/s", "<rate>", text)

        first = self.run_small()
        second = self.run_small()
        assert first[0] == second[0] == 0
        assert strip_timing(first[1]) == strip_timing(second[1])

    def test_fleet_json_and_csv_export(self, tmp_path):
        import json

        json_path = tmp_path / "fleet.json"
        csv_path = tmp_path / "fleet.csv"
        code, text = self.run_small("--json", str(json_path), "--csv", str(csv_path))
        assert code == 0
        data = json.loads(json_path.read_text())
        assert data["config"]["num_devices"] == 24
        assert len(data["rounds"]) == 3
        assert csv_path.read_text().splitlines()[0].startswith("scenario,category,")

    def test_fleet_unknown_design_is_an_error(self):
        code, text = run_cli(["fleet", "run", "--design", "bogus", "--devices", "4"])
        assert code == 2
        assert "error" in text

    def test_fleet_bad_mix_is_an_error(self):
        code, text = run_cli(
            ["fleet", "run", "--devices", "4", "--mix", "not-a-threat:1.0"]
        )
        assert code == 2
        assert "error" in text

    def test_fleet_run_zero_rounds_is_an_error(self):
        """Regression: `fleet run --rounds 0` used to succeed silently with
        no report and no --json/--csv artifacts."""
        code, text = run_cli(["fleet", "run", "--devices", "4", "--rounds", "0"])
        assert code == 2
        assert "--rounds must be >= 1" in text

    def test_fleet_bad_processes_is_an_error(self):
        code, text = run_cli(
            ["fleet", "run", "--devices", "4", "--rounds", "1", "--processes", "0"]
        )
        assert code == 2
        assert "processes must be positive" in text

    def test_fleet_serve_zero_rounds_with_export_is_an_error(self):
        """Regression: serve --rounds 0 --json silently wrote no artifact."""
        code, text = run_cli(
            ["fleet", "serve", "--devices", "4", "--rounds", "0",
             "--json", "/tmp/never-written.json"]
        )
        assert code == 2
        assert "at least one round" in text


class TestCampaignCommand:
    def run_small(self, *extra):
        return run_cli(
            ["campaign", "--designs", "n128_light,n128_medium",
             "--scenarios", "healthy-ideal,wire-cut,alternating,biased-0.70",
             "--trials", "1", "--sequences", "4", "--seed", "7", *extra]
        )

    def test_campaign_emits_detection_table(self):
        code, text = self.run_small()
        assert code == 0
        assert "detect_prob" in text and "latency_bits" in text
        assert "wire-cut" in text and "alternating" in text
        assert "per-test attribution" in text
        assert "healthy-control false-alarm rate [n128_light]" in text
        assert "healthy-control false-alarm rate [n128_medium]" in text

    def test_campaign_reproducible_under_fixed_seed(self):
        first = self.run_small()
        second = self.run_small()
        assert first == second

    def test_campaign_json_and_csv_export(self, tmp_path):
        import csv as csv_module
        import json

        json_path = tmp_path / "report.json"
        csv_path = tmp_path / "summary.csv"
        code, text = self.run_small("--json", str(json_path), "--csv", str(csv_path))
        assert code == 0
        data = json.loads(json_path.read_text())
        assert len(data["cells"]) == 2 * 4
        assert data["config"]["seed"] == 7
        with open(csv_path) as handle:
            rows = list(csv_module.DictReader(handle))
        assert len(rows) == 2 * 4
        assert {row["scenario"] for row in rows} == {
            "healthy-ideal", "wire-cut", "alternating", "biased-0.70",
        }

    def test_campaign_category_selector(self):
        code, text = run_cli(
            ["campaign", "--designs", "n128_light", "--scenarios", "failure",
             "--trials", "1", "--sequences", "4"]
        )
        assert code == 0
        assert "wire-cut" in text and "stuck-at-1" in text
        assert "healthy-ideal" not in text

    def test_campaign_unknown_design_is_an_error(self):
        code, text = run_cli(["campaign", "--designs", "bogus", "--trials", "1"])
        assert code == 2
        assert "error" in text

    def test_campaign_unknown_scenario_is_an_error(self):
        code, text = run_cli(
            ["campaign", "--designs", "n128_light", "--scenarios", "bogus-threat"]
        )
        assert code == 2
        assert "error" in text


class TestSuiteCommand:
    def test_reference_suite_on_capture(self, tmp_path):
        capture = CaptureSource(IdealSource(seed=12))
        capture.generate(4096)
        path = tmp_path / "long.bin"
        capture.save(path)
        code, text = run_cli(["suite", str(path), "--alpha", "0.001"])
        assert code in (0, 1)
        assert "Frequency (Monobit) Test" in text
        assert "skipped" in text  # the universal test cannot run on 4096 bits

    def test_suite_bits_flag_drops_byte_padding(self, tmp_path):
        """Regression: an odd-length capture replayed its zero-pad bits as
        data; --bits (the count returned by save) restores the exact stream."""
        capture = CaptureSource(IdealSource(seed=13))
        capture.generate(2052)
        path = tmp_path / "odd.bin"
        bit_count = capture.save(path)
        assert bit_count == 2052
        code, text = run_cli(["suite", str(path), "--bits", "2052"])
        assert code in (0, 1)
        assert "(2052 bits)" in text
        code, text = run_cli(["suite", str(path)])
        assert "(2056 bits)" in text  # without --bits the padding is data

    def test_suite_invalid_bits_is_an_error(self, tmp_path):
        path = tmp_path / "cap.bin"
        path.write_bytes(b"\xAA" * 16)
        code, text = run_cli(["suite", str(path), "--bits", "1000"])
        assert code == 2
        assert "error" in text

    def test_evaluate_capture_with_bits(self, tmp_path):
        capture = CaptureSource(IdealSource(seed=14))
        capture.generate(130)
        path = tmp_path / "cap.bin"
        bit_count = capture.save(path)
        code, text = run_cli(
            ["evaluate", "--design", "n128_light", "--capture", str(path),
             "--bits", str(bit_count)]
        )
        assert code in (0, 1)
        code, text = run_cli(
            ["evaluate", "--design", "n128_light", "--capture", str(path),
             "--bits", "999"]
        )
        assert code == 2
        assert "error" in text


class TestStreamingFlags:
    """--streaming wiring: path banner, flag validation, fleet mode."""

    def test_monitor_streaming_runs_and_prints_the_path(self):
        code, text = run_cli(
            ["monitor", "--design", "n128_light", "--source", "ideal",
             "--sequences", "3", "--seed", "5", "--streaming"]
        )
        assert code in (0, 1)
        assert "streaming packed-ring window roll (--streaming)" in text
        assert "final state" in text

    def test_monitor_streaming_matches_pull_loop_output(self):
        base = ["monitor", "--design", "n128_light", "--source", "ideal",
                "--sequences", "4", "--seed", "7"]
        code_pull, text_pull = run_cli(base)
        code_stream, text_stream = run_cli(base + ["--streaming"])
        assert code_pull == code_stream
        # Per-sequence verdict lines are identical; only the path banner differs.
        pull_lines = [l for l in text_pull.splitlines() if l.startswith("sequence")]
        stream_lines = [l for l in text_stream.splitlines() if l.startswith("sequence")]
        assert pull_lines == stream_lines

    def test_monitor_streaming_with_stride_and_history(self):
        code, text = run_cli(
            ["monitor", "--design", "n128_light", "--source", "ideal",
             "--sequences", "4", "--seed", "5", "--streaming",
             "--stride", "64", "--history-bits", "256"]
        )
        assert code in (0, 1)
        assert "final state" in text

    def test_stride_without_streaming_is_an_error(self):
        code, text = run_cli(
            ["monitor", "--source", "ideal", "--sequences", "2", "--stride", "64"]
        )
        assert code == 2
        assert "--stride/--history-bits require --streaming" in text

    def test_history_bits_without_streaming_is_an_error(self):
        code, text = run_cli(
            ["monitor", "--source", "ideal", "--sequences", "2",
             "--history-bits", "256"]
        )
        assert code == 2

    def test_streaming_conflicts_with_rtl_fidelity(self):
        code, text = run_cli(
            ["monitor", "--source", "ideal", "--sequences", "2",
             "--streaming", "--rtl-fidelity"]
        )
        assert code == 2
        assert "cannot drive the bit-serial" in text

    def test_history_bits_below_window_is_an_error(self):
        code, text = run_cli(
            ["monitor", "--design", "n128_light", "--source", "ideal",
             "--sequences", "2", "--streaming", "--history-bits", "64"]
        )
        assert code == 2
        assert "history_bits must be at least" in text

    def test_fleet_run_streaming_mode(self):
        code, text = run_cli(
            ["fleet", "run", "--devices", "16", "--rounds", "2", "--seed", "9",
             "--streaming",
             "--mix", "healthy-ideal:0.9,wire-cut:0.1"]
        )
        assert code == 0
        assert "fleet: 16 devices on n128_light" in text
        assert "wire-cut" in text
