"""Fixture tests of the determinism family (DET001-DET005)."""

from repro.analysis.framework import analyze_source

LIB = "src/repro/fixture.py"


def rules(source, path=LIB, select=None):
    ctx = analyze_source(source, path, select=select)
    return [f.rule for f in ctx.findings]


class TestDet001UnseededRng:
    def test_unseeded_default_rng_fires(self):
        assert "DET001" in rules("import numpy as np\nr = np.random.default_rng()\n")

    def test_seed_none_still_fires(self):
        assert "DET001" in rules(
            "import numpy as np\nr = np.random.default_rng(None)\n"
        )
        assert "DET001" in rules(
            "import numpy as np\nr = np.random.default_rng(seed=None)\n"
        )

    def test_seeded_is_clean(self):
        assert "DET001" not in rules(
            "import numpy as np\nr = np.random.default_rng(1234)\n"
        )
        assert "DET001" not in rules(
            "import numpy as np\nr = np.random.default_rng(seed=settings.seed)\n"
        )

    def test_bit_generators_need_seeds_too(self):
        assert "DET001" in rules("import numpy as np\ng = np.random.PCG64()\n")
        assert "DET001" in rules("import numpy as np\ns = np.random.SeedSequence()\n")
        assert "DET001" not in rules(
            "import numpy as np\ns = np.random.SeedSequence(entropy=7)\n"
        )

    def test_bare_default_rng_import_form(self):
        source = "from numpy.random import default_rng\nr = default_rng()\n"
        assert "DET001" in rules(source)

    def test_fires_in_benchmarks_and_examples_too(self):
        source = "import numpy as np\nr = np.random.default_rng()\n"
        assert "DET001" in rules(source, path="benchmarks/bench_x.py")
        assert "DET001" in rules(source, path="examples/demo.py")


class TestDet002LegacyNumpyRandom:
    def test_legacy_global_draw_fires(self):
        assert "DET002" in rules("import numpy as np\nx = np.random.rand(4)\n")
        assert "DET002" in rules("import numpy as np\nnp.random.seed(0)\n")

    def test_generator_draws_are_clean(self):
        source = (
            "import numpy as np\n"
            "r = np.random.default_rng(9)\n"
            "x = r.integers(0, 2, size=128)\n"
        )
        assert "DET002" not in rules(source)


class TestDet003StdlibRandom:
    def test_import_fires(self):
        assert "DET003" in rules("import random\n")
        assert "DET003" in rules("from random import shuffle\n")

    def test_similarly_named_modules_clean(self):
        assert "DET003" not in rules("import randomness_tools\n")


class TestDet004EntropySources:
    def test_wall_clock_fires_in_library(self):
        assert "DET004" in rules("import time\nseed = time.time()\n")
        assert "DET004" in rules("import os\nblob = os.urandom(16)\n")
        assert "DET004" in rules("import secrets\n")

    def test_perf_counter_timing_is_fine(self):
        assert "DET004" not in rules("import time\nt0 = time.perf_counter()\n")

    def test_scope_excludes_tests(self):
        # Entropy in the test tree is not library code.
        assert "DET004" not in rules("import time\nseed = time.time()\n",
                                     path="tests/test_x.py")


class TestDet005BuiltinHash:
    def test_hash_warns_in_library(self):
        assert "DET005" in rules("key = hash('device-7')\n")

    def test_dunder_hash_is_exempt(self):
        source = (
            "class Key:\n"
            "    def __hash__(self):\n"
            "        return hash((self.a, self.b))\n"
        )
        assert "DET005" not in rules(source)
