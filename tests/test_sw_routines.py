"""Tests of the software verification routines.

The central property is *decision equivalence*: for every test the paper
implements (except the approximate-entropy test, whose hardware-friendly
statistic intentionally deviates through the PWL approximation and its guard
band), the decision taken by (hardware counters → software routine →
precomputed critical value) must equal the decision of the full-precision
reference NIST implementation at the same level of significance.
"""

import numpy as np
import pytest

from repro.hwtests import DesignParameters, UnifiedTestingBlock
from repro.nist import (
    block_frequency_test,
    cumulative_sums_test,
    frequency_test,
    longest_run_test,
    non_overlapping_template_test,
    overlapping_template_test,
    runs_test,
    serial_test,
)
from repro.sw.routines import SoftwareVerifier
from repro.trng import BiasedSource, CorrelatedSource, IdealSource, StuckAtSource

ALL_TESTS = (1, 2, 3, 4, 7, 8, 11, 12, 13)
N = 4096


@pytest.fixture(scope="module")
def params():
    return DesignParameters.for_length(N)


def evaluate(params, bits, alpha=0.01):
    """Run the HW block (functional path) and the SW verifier on one sequence."""
    block = UnifiedTestingBlock(params, tests=ALL_TESTS).accelerated_process_sequence(bits)
    verifier = SoftwareVerifier(params, tests=ALL_TESTS, alpha=alpha)
    verdicts = verifier.verify(block.register_file)
    return block, verifier, verdicts


def reference_decisions(params, bits, alpha=0.01):
    """Reference NIST decisions with the same parameters as the hardware."""
    decisions = {
        1: frequency_test(bits).passed(alpha),
        2: block_frequency_test(bits, params.block_frequency_block_length).passed(alpha),
        3: runs_test(bits).passed(alpha),
        4: longest_run_test(bits, params.longest_run_block_length).passed(alpha),
        7: non_overlapping_template_test(
            bits, params.nonoverlapping_template, params.nonoverlapping_num_blocks
        ).passed(alpha),
        8: overlapping_template_test(
            bits, params.overlapping_template, params.overlapping_block_length
        ).passed(alpha),
        11: serial_test(bits, params.serial_m).passed(alpha),
        13: (
            cumulative_sums_test(bits, mode=0).passed(alpha)
            and cumulative_sums_test(bits, mode=1).passed(alpha)
        ),
    }
    return decisions


WORKLOADS = [
    ("ideal-0", IdealSource(seed=900)),
    ("ideal-1", IdealSource(seed=901)),
    ("ideal-2", IdealSource(seed=902)),
    ("biased-0.55", BiasedSource(0.55, seed=903)),
    ("biased-0.65", BiasedSource(0.65, seed=904)),
    ("correlated-0.7", CorrelatedSource(0.7, seed=905)),
    ("correlated-0.55", CorrelatedSource(0.55, seed=906)),
    ("stuck", StuckAtSource(1)),
]


class TestDecisionEquivalence:
    @pytest.mark.parametrize("label,source", WORKLOADS, ids=[w[0] for w in WORKLOADS])
    @pytest.mark.parametrize("alpha", [0.01, 0.001])
    def test_matches_reference(self, params, label, source, alpha):
        source.reset()
        bits = source.generate(N).bits
        _, _, verdicts = evaluate(params, bits, alpha)
        expected = reference_decisions(params, bits, alpha)
        for test_number, expected_decision in expected.items():
            assert verdicts[test_number].passed == expected_decision, (
                f"test {test_number} on {label} at alpha={alpha}: "
                f"hw/sw={verdicts[test_number].passed} reference={expected_decision}"
            )

    def test_statistics_match_reference_values(self, params):
        """Beyond the decision, the χ²-style statistics agree numerically."""
        bits = IdealSource(seed=910).generate(N).bits
        _, _, verdicts = evaluate(params, bits)
        assert verdicts[2].statistic == pytest.approx(
            params.block_frequency_block_length
            * block_frequency_test(bits, params.block_frequency_block_length).statistic,
            rel=1e-9,
        )
        assert verdicts[4].statistic == pytest.approx(
            longest_run_test(bits, params.longest_run_block_length).statistic, rel=1e-9
        )
        assert verdicts[7].statistic == pytest.approx(
            non_overlapping_template_test(
                bits, params.nonoverlapping_template, params.nonoverlapping_num_blocks
            ).statistic,
            rel=1e-9,
        )
        assert verdicts[11].details["del1"] == pytest.approx(
            serial_test(bits, params.serial_m).details["del1"], rel=1e-9
        )
        assert verdicts[13].details["z_forward"] == cumulative_sums_test(bits).details["z"]


class TestApproximateEntropyRoutine:
    def test_accepts_ideal_sources(self, params):
        for seed in (920, 921, 922, 923):
            bits = IdealSource(seed=seed).generate(N).bits
            _, _, verdicts = evaluate(params, bits)
            assert verdicts[12].passed

    def test_rejects_gross_failures(self, params):
        for source in (StuckAtSource(0), CorrelatedSource(0.85, seed=924)):
            bits = source.generate(N).bits
            _, _, verdicts = evaluate(params, bits)
            assert not verdicts[12].passed

    def test_statistic_close_to_reference_for_moderate_n(self, params):
        from repro.nist import approximate_entropy_test

        bits = IdealSource(seed=925).generate(N).bits
        _, _, verdicts = evaluate(params, bits)
        reference = approximate_entropy_test(bits, m=params.serial_m - 1).statistic
        # PWL-induced deviation stays well below the guard band.
        assert abs(verdicts[12].statistic - reference) < 100.0


class TestVerifierMechanics:
    def test_unknown_test_rejected(self, params):
        with pytest.raises(ValueError):
            SoftwareVerifier(params, tests=[5])

    def test_per_test_instruction_breakdown(self, params):
        bits = IdealSource(seed=930).generate(N).bits
        _, verifier, verdicts = evaluate(params, bits)
        for verdict in verdicts.values():
            assert "instructions" in verdict.details
        total = verifier.instruction_counts()
        assert total.total() == sum(
            sum(v.details["instructions"].values()) for v in verdicts.values()
        )

    def test_lut_count_is_24_with_apen(self, params):
        bits = IdealSource(seed=931).generate(N).bits
        _, verifier, _ = evaluate(params, bits)
        assert verifier.instruction_counts().lut == 24

    def test_no_lut_without_apen(self, params):
        bits = IdealSource(seed=932).generate(N).bits
        block = UnifiedTestingBlock(params, tests=(1, 2, 3, 4, 13)).accelerated_process_sequence(bits)
        verifier = SoftwareVerifier(params, tests=(1, 2, 3, 4, 13))
        verifier.verify(block.register_file)
        assert verifier.instruction_counts().lut == 0

    def test_reads_are_cached_within_one_pass(self, params):
        """Each exported word is transferred at most once per verification."""
        bits = IdealSource(seed=933).generate(N).bits
        block, verifier, _ = (lambda r: r)(evaluate(params, bits))
        reads = verifier.instruction_counts().read
        assert reads <= block.register_file.total_read_words()

    def test_frequency_from_dedicated_counter(self, params):
        """Designs without the cusum test still verify the frequency test."""
        bits = IdealSource(seed=934).generate(N).bits
        block = UnifiedTestingBlock(params, tests=(1, 2)).accelerated_process_sequence(bits)
        verifier = SoftwareVerifier(params, tests=(1, 2))
        verdicts = verifier.verify(block.register_file)
        assert verdicts[1].passed == frequency_test(bits).passed(0.01)

    def test_alpha_only_affects_software(self, params):
        bits = BiasedSource(0.52, seed=935).generate(N).bits
        block = UnifiedTestingBlock(params, tests=ALL_TESTS).accelerated_process_sequence(bits)
        strict = SoftwareVerifier(params, tests=ALL_TESTS, alpha=0.01).verify(block.register_file)
        loose = SoftwareVerifier(params, tests=ALL_TESTS, alpha=0.001).verify(block.register_file)
        # A looser alpha can only turn failures into passes, never the reverse.
        for number in strict:
            if strict[number].passed:
                assert loose[number].passed


class TestConsistencyCheck:
    def _verifier_and_block(self, params, bits):
        block = UnifiedTestingBlock(params, tests=ALL_TESTS).accelerated_process_sequence(bits)
        return SoftwareVerifier(params, tests=ALL_TESTS), block

    def test_clean_readout_has_no_violations(self, params):
        bits = IdealSource(seed=940).generate(N).bits
        verifier, block = self._verifier_and_block(params, bits)
        assert verifier.consistency_check(block.register_file) == []

    def test_clean_readout_of_failed_source_still_consistent(self, params):
        """A genuinely bad source fails tests but the read-out is coherent."""
        bits = StuckAtSource(1).generate(N).bits
        verifier, block = self._verifier_and_block(params, bits)
        assert verifier.consistency_check(block.register_file) == []

    def test_grounded_readout_detected(self, params):
        from repro.core.reporting import TamperedRegisterFile
        from repro.trng import ProbingAttack

        bits = IdealSource(seed=941).generate(N).bits
        verifier, block = self._verifier_and_block(params, bits)
        tampered = TamperedRegisterFile(block.register_file, ProbingAttack("ground"))
        assert verifier.consistency_check(tampered) != []

    def test_pulled_up_readout_detected(self, params):
        from repro.core.reporting import TamperedRegisterFile
        from repro.trng import ProbingAttack

        bits = IdealSource(seed=942).generate(N).bits
        verifier, block = self._verifier_and_block(params, bits)
        tampered = TamperedRegisterFile(block.register_file, ProbingAttack("vdd"))
        assert verifier.consistency_check(tampered) != []

    def test_grounded_readout_detected_in_light_design(self, params):
        """Even the 5-test light design exposes enough structure to catch probing."""
        from repro.core.reporting import TamperedRegisterFile
        from repro.trng import ProbingAttack

        bits = IdealSource(seed=943).generate(N).bits
        block = UnifiedTestingBlock(params, tests=(1, 2, 3, 4, 13)).accelerated_process_sequence(bits)
        verifier = SoftwareVerifier(params, tests=(1, 2, 3, 4, 13))
        tampered = TamperedRegisterFile(block.register_file, ProbingAttack("ground"))
        assert verifier.consistency_check(tampered) != []
