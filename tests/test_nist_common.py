"""Unit tests for repro.nist.common (bit handling and shared statistics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nist.common import (
    BitSequence,
    TestResult,
    berlekamp_massey,
    binary_matrix_rank,
    bits_from_bytes,
    bits_from_int,
    bits_to_int,
    chunk,
    erfc,
    igamc,
    normal_cdf,
    pattern_counts,
    psi_squared,
    to_bits,
)


class TestToBits:
    def test_from_string(self):
        assert to_bits("1011").tolist() == [1, 0, 1, 1]

    def test_from_string_with_whitespace(self):
        assert to_bits("10 11\n01").tolist() == [1, 0, 1, 1, 0, 1]

    def test_from_invalid_string(self):
        with pytest.raises(ValueError):
            to_bits("10201")

    def test_from_list(self):
        assert to_bits([0, 1, 1, 0]).tolist() == [0, 1, 1, 0]

    def test_from_bool_array(self):
        assert to_bits(np.array([True, False, True])).tolist() == [1, 0, 1]

    def test_from_bytes_msb_first(self):
        assert to_bits(b"\x80").tolist() == [1, 0, 0, 0, 0, 0, 0, 0]
        assert to_bits(b"\x01").tolist() == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_rejects_non_binary_values(self):
        with pytest.raises(ValueError):
            to_bits([0, 1, 2])

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            to_bits([0, -1])

    def test_from_bitsequence_is_passthrough(self):
        seq = BitSequence("1100")
        assert to_bits(seq) is seq.bits

    def test_empty_sequence(self):
        assert to_bits("").size == 0


class TestBitConversions:
    def test_bits_from_int_round_trip(self):
        assert bits_to_int(bits_from_int(0b10110, 5)) == 0b10110

    def test_bits_from_int_width_check(self):
        with pytest.raises(ValueError):
            bits_from_int(16, 4)

    def test_bits_from_int_rejects_negative(self):
        with pytest.raises(ValueError):
            bits_from_int(-1, 4)

    def test_bits_from_bytes_length(self):
        assert bits_from_bytes(b"\x00\xff").size == 16

    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_round_trip_property(self, value):
        assert bits_to_int(bits_from_int(value, 20)) == value

    def test_wide_values_beyond_64_bits(self):
        # The vectorised conversions must handle arbitrary-precision ints.
        value = (1 << 200) | (1 << 67) | 5
        bits = bits_from_int(value, 201)
        assert bits.size == 201
        assert bits_to_int(bits) == value

    def test_non_byte_aligned_widths(self):
        for width in (1, 3, 7, 9, 13):
            for value in (0, 1, (1 << width) - 1):
                assert bits_to_int(bits_from_int(value, width)) == value

    def test_bits_to_int_empty_is_zero(self):
        assert bits_to_int([]) == 0

    def test_bits_from_int_result_is_writable(self):
        bits = bits_from_int(5, 4)
        bits[0] = 1  # must be an owned, writable array
        assert bits.tolist() == [1, 1, 0, 1]


class TestBitSequence:
    def test_basic_properties(self):
        seq = BitSequence("1101")
        assert len(seq) == 4
        assert seq.ones == 3
        assert seq.zeros == 1
        assert seq.proportion == 0.75

    def test_pm1_mapping(self):
        seq = BitSequence("10")
        assert seq.as_pm1().tolist() == [1, -1]

    def test_to01(self):
        assert BitSequence([1, 0, 0, 1]).to01() == "1001"

    def test_slicing_returns_bitsequence(self):
        seq = BitSequence("110010")
        assert isinstance(seq[1:4], BitSequence)
        assert seq[1:4].to01() == "100"

    def test_indexing_returns_int(self):
        assert BitSequence("10")[0] == 1

    def test_equality_and_hash(self):
        a = BitSequence("1010")
        b = BitSequence([1, 0, 1, 0])
        assert a == b
        assert hash(a) == hash(b)

    def test_concat(self):
        assert BitSequence("10").concat("01").to01() == "1001"

    def test_immutable(self):
        seq = BitSequence("1010")
        with pytest.raises(ValueError):
            seq.bits[0] = 0

    def test_empty(self):
        seq = BitSequence("")
        assert len(seq) == 0
        assert seq.proportion == 0.0

    def test_ones_cached(self):
        seq = BitSequence("110110")
        assert seq.ones == 4
        # Repeated accessors reuse the cached count (and stay consistent).
        assert seq.ones == 4
        assert seq.zeros == 2
        assert seq.proportion == pytest.approx(4 / 6)


class TestTestResult:
    def test_passed_threshold(self):
        result = TestResult("x", 1.0, 0.05)
        assert result.passed(0.01)
        assert not result.passed(0.10)

    def test_multiple_p_values_all_must_pass(self):
        result = TestResult("x", 1.0, 0.5, p_values=[0.5, 0.005])
        assert not result.passed(0.01)
        assert result.min_p_value == 0.005

    def test_invalid_alpha(self):
        result = TestResult("x", 1.0, 0.5)
        with pytest.raises(ValueError):
            result.passed(0.0)

    def test_default_p_values_populated(self):
        result = TestResult("x", 1.0, 0.3)
        assert result.p_values == [0.3]


class TestSpecialFunctions:
    def test_igamc_limits(self):
        assert igamc(1.0, 0.0) == pytest.approx(1.0)
        assert igamc(1.0, 50.0) == pytest.approx(0.0, abs=1e-12)

    def test_igamc_known_value(self):
        # Q(a=1, x) = exp(-x).
        assert igamc(1.0, 1.0) == pytest.approx(np.exp(-1.0), rel=1e-12)

    def test_igamc_invalid_arguments(self):
        with pytest.raises(ValueError):
            igamc(0.0, 1.0)
        with pytest.raises(ValueError):
            igamc(1.0, -1.0)

    def test_erfc_symmetry(self):
        assert erfc(0.0) == pytest.approx(1.0)
        assert erfc(1.0) + erfc(-1.0) == pytest.approx(2.0)

    def test_normal_cdf(self):
        assert normal_cdf(0.0) == pytest.approx(0.5)
        assert normal_cdf(10.0) == pytest.approx(1.0)
        assert normal_cdf(-10.0) == pytest.approx(0.0, abs=1e-12)


class TestPatternCounts:
    def test_simple_cyclic(self):
        # 0011 cyclically: windows 00,01,11,10 each once.
        counts = pattern_counts("0011", 2, cyclic=True)
        assert counts.tolist() == [1, 1, 1, 1]

    def test_non_cyclic(self):
        counts = pattern_counts("0011", 2, cyclic=False)
        # windows: 00, 01, 11 -> indices 0, 1, 3.
        assert counts.tolist() == [1, 1, 0, 1]

    def test_counts_sum_to_n_cyclic(self):
        bits = np.random.default_rng(0).integers(0, 2, 200)
        for m in (1, 2, 3, 4):
            assert pattern_counts(bits, m, cyclic=True).sum() == 200

    def test_m_zero(self):
        assert pattern_counts("1010", 0).tolist() == [4]

    def test_m_larger_than_n_raises(self):
        with pytest.raises(ValueError):
            pattern_counts("10", 3)

    def test_negative_m_raises(self):
        with pytest.raises(ValueError):
            pattern_counts("10", -1)

    def test_all_ones(self):
        counts = pattern_counts("1111", 2, cyclic=True)
        assert counts.tolist() == [0, 0, 0, 4]

    @given(st.lists(st.integers(0, 1), min_size=8, max_size=64), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_cyclic_sum_property(self, bits, m):
        assert pattern_counts(bits, m, cyclic=True).sum() == len(bits)

    @given(st.lists(st.integers(0, 1), min_size=8, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_marginalisation_property(self, bits):
        """Cyclic (m+1)-bit counts marginalise exactly to m-bit counts."""
        c3 = pattern_counts(bits, 3, cyclic=True)
        c4 = pattern_counts(bits, 4, cyclic=True)
        for prefix in range(8):
            assert c3[prefix] == c4[2 * prefix] + c4[2 * prefix + 1]


class TestPsiSquared:
    def test_zero_for_m_zero(self):
        assert psi_squared("1010", 0) == 0.0

    def test_uniform_patterns_give_zero(self):
        # 0011 has each 2-bit pattern exactly once cyclically -> psi2 = 0.
        assert psi_squared("0011", 2) == pytest.approx(0.0)

    def test_constant_sequence_maximal(self):
        # all-ones: one pattern appears n times: psi2 = 2^m*n - n.
        n = 32
        assert psi_squared("1" * n, 2) == pytest.approx(4 * n - n)

    def test_nist_example(self):
        # SP 800-22 serial-test example: eps = 0011011101, m = 3.
        bits = "0011011101"
        assert psi_squared(bits, 3) == pytest.approx(2.8, abs=1e-9)
        assert psi_squared(bits, 2) == pytest.approx(1.2, abs=1e-9)
        assert psi_squared(bits, 1) == pytest.approx(0.4, abs=1e-9)


class TestBerlekampMassey:
    def test_zero_sequence(self):
        assert berlekamp_massey([0, 0, 0, 0]) == 0

    def test_single_one(self):
        # 0001 requires an LFSR of length 4.
        assert berlekamp_massey([0, 0, 0, 1]) == 4

    def test_alternating(self):
        assert berlekamp_massey([1, 0, 1, 0, 1, 0, 1, 0]) == 2

    def test_lfsr_sequence(self):
        # x^4 + x + 1 LFSR (period 15) has linear complexity 4.
        state = [1, 0, 0, 0]
        out = []
        for _ in range(30):
            out.append(state[-1])
            feedback = state[3] ^ state[0]
            state = [feedback] + state[:-1]
        assert berlekamp_massey(out) == 4

    def test_empty(self):
        assert berlekamp_massey([]) == 0

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_complexity_bounds(self, bits):
        complexity = berlekamp_massey(bits)
        assert 0 <= complexity <= len(bits)


class TestBinaryMatrixRank:
    def test_identity_full_rank(self):
        assert binary_matrix_rank(np.eye(5, dtype=int)) == 5

    def test_zero_matrix(self):
        assert binary_matrix_rank(np.zeros((4, 4), dtype=int)) == 0

    def test_duplicate_rows(self):
        matrix = np.array([[1, 0, 1], [1, 0, 1], [0, 1, 0]])
        assert binary_matrix_rank(matrix) == 2

    def test_gf2_not_real_rank(self):
        # Over the reals this matrix has rank 2; over GF(2) row1+row2=row3.
        matrix = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]])
        assert binary_matrix_rank(matrix) == 2

    def test_rectangular(self):
        matrix = np.array([[1, 0, 0, 1], [0, 1, 0, 1]])
        assert binary_matrix_rank(matrix) == 2

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            binary_matrix_rank(np.array([1, 0, 1]))

    @given(st.integers(0, 2**16 - 1))
    @settings(max_examples=30, deadline=None)
    def test_rank_bounds_property(self, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 2, (6, 4))
        rank = binary_matrix_rank(matrix)
        assert 0 <= rank <= 4


class TestChunk:
    def test_even_split(self):
        blocks = chunk("110100", 2)
        assert [b.tolist() for b in blocks] == [[1, 1], [0, 1], [0, 0]]

    def test_discard_partial(self):
        assert len(chunk("11010", 2)) == 2

    def test_keep_partial(self):
        blocks = chunk("11010", 2, discard_partial=False)
        assert len(blocks) == 3
        assert blocks[-1].tolist() == [0]

    def test_invalid_block_length(self):
        with pytest.raises(ValueError):
            chunk("1101", 0)
