"""Packed-bitplane backend: round-trips and bit-exact parity with uint8.

The 64-bits-per-word kernels of :mod:`repro.engine.packed` must produce
*bit-identical* statistics (and therefore P-values) to the byte-per-bit
reference paths for every matrix shape — including the awkward ones: ``n``
not a multiple of 64 (tail bits in the last word), a single row, an empty
tail, all-zeros and all-ones rows.  These tests sweep those shapes with
seeded random matrices and hypothesis-generated sequences.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import packed as P
from repro.engine.batch import run_batch
from repro.engine.context import BatchContext
from repro.trng.ideal import IdealSource

#: Shapes chosen to stress the word-boundary logic: multiples of 64,
#: off-by-one around them, sub-word rows, and byte-but-not-word multiples.
AWKWARD_SHAPES = [
    (1, 1), (1, 63), (1, 64), (1, 65), (3, 7), (2, 127), (4, 128),
    (5, 129), (1, 1000), (3, 20000), (2, 4096), (7, 130),
]


def random_matrix(rows, n, seed=0, p=0.5):
    rng = np.random.default_rng(seed)
    return (rng.random((rows, n)) < p).astype(np.uint8)


def special_matrices(rows, n):
    yield np.zeros((rows, n), dtype=np.uint8)
    yield np.ones((rows, n), dtype=np.uint8)
    yield random_matrix(rows, n, seed=rows * 1000 + n)
    yield random_matrix(rows, n, seed=rows * 1000 + n + 1, p=0.9)


class TestRoundTrip:
    @pytest.mark.parametrize("rows,n", AWKWARD_SHAPES)
    def test_pack_unpack_exact(self, rows, n):
        for matrix in special_matrices(rows, n):
            packed = P.pack_matrix(matrix)
            assert packed.num_words == (n + 63) // 64
            assert np.array_equal(P.unpack_matrix(packed), matrix)

    def test_empty_rows_and_zero_bits(self):
        empty = np.zeros((0, 40), dtype=np.uint8)
        assert P.unpack_matrix(P.pack_matrix(empty)).shape == (0, 40)
        zero_bits = np.zeros((3, 0), dtype=np.uint8)
        packed = P.pack_matrix(zero_bits)
        assert packed.num_words == 0
        assert P.unpack_matrix(packed).shape == (3, 0)

    def test_nbytes_is_an_eighth(self):
        matrix = random_matrix(16, 4096)
        assert P.pack_matrix(matrix).nbytes == matrix.nbytes // 8

    def test_keep_source_skips_unpack(self):
        matrix = random_matrix(2, 100)
        packed = P.pack_matrix(matrix, keep_source=True)
        assert packed.unpack() is matrix

    def test_rejects_non_bits_and_bad_tail(self):
        with pytest.raises(ValueError, match="only 0 and 1"):
            P.pack_matrix(np.full((2, 8), 2, dtype=np.uint8))
        with pytest.raises(ValueError, match="2-D"):
            P.pack_matrix(np.zeros(8, dtype=np.uint8))
        dirty = np.full((1, 1), 0xFF, dtype="<u8")
        with pytest.raises(ValueError, match="tail bits"):
            P.PackedMatrix(dirty, 4)

    @given(st.lists(st.integers(0, 1), min_size=0, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, bits):
        matrix = np.array([bits], dtype=np.uint8)
        assert np.array_equal(P.unpack_matrix(P.pack_matrix(matrix)), matrix)


class TestPopcount:
    def test_lut_fallback_matches_bitwise_count(self):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 1 << 63, size=(5, 17), dtype=np.uint64)
        via_lut = P.popcount(values, force_lut=True)
        assert via_lut.dtype == np.uint8
        assert np.array_equal(via_lut, np.bitwise_count(values))

    def test_lut_fallback_other_dtypes(self):
        for dtype in (np.uint8, np.uint16, np.uint32):
            values = np.arange(200, dtype=dtype)
            assert np.array_equal(
                P.popcount(values, force_lut=True), np.bitwise_count(values)
            )


class TestKernelParity:
    """Each packed kernel against the uint8 reference, shape by shape."""

    @pytest.mark.parametrize("rows,n", AWKWARD_SHAPES)
    def test_ones_count(self, rows, n):
        for matrix in special_matrices(rows, n):
            assert np.array_equal(
                P.ones_count(P.pack_matrix(matrix)),
                matrix.sum(axis=1, dtype=np.int64),
            )

    @pytest.mark.parametrize("rows,n", AWKWARD_SHAPES)
    def test_transition_counts(self, rows, n):
        for matrix in special_matrices(rows, n):
            reference = np.count_nonzero(
                np.diff(matrix.astype(np.int8), axis=1), axis=1
            ).astype(np.int64)
            assert np.array_equal(
                P.transition_counts(P.pack_matrix(matrix)), reference
            )

    @pytest.mark.parametrize("rows,n", AWKWARD_SHAPES)
    def test_walk_extremes(self, rows, n):
        for matrix in special_matrices(rows, n):
            walk = np.cumsum(2 * matrix.astype(np.int64) - 1, axis=1)
            s_max, s_min, s_final = P.walk_extremes(P.pack_matrix(matrix))
            assert np.array_equal(s_max, walk.max(axis=1))
            assert np.array_equal(s_min, walk.min(axis=1))
            assert np.array_equal(s_final, walk[:, -1])

    @pytest.mark.parametrize("rows,n", AWKWARD_SHAPES)
    def test_last_bits(self, rows, n):
        for matrix in special_matrices(rows, n):
            assert np.array_equal(P.last_bits(P.pack_matrix(matrix)), matrix[:, -1])

    @pytest.mark.parametrize("block_length", [8, 16, 32, 64, 128, 4096])
    def test_block_ones(self, block_length):
        n = block_length * 3 + (block_length // 2)  # trailing partial block
        matrix = random_matrix(4, n, seed=block_length)
        packed = P.pack_matrix(matrix)
        assert P.supports_block_ones(block_length, n)
        num_blocks = n // block_length
        reference = (
            matrix[:, : num_blocks * block_length]
            .reshape(4, num_blocks, block_length)
            .sum(axis=2, dtype=np.int64)
        )
        assert np.array_equal(P.block_ones(packed, block_length), reference)

    def test_block_ones_unsupported_geometry(self):
        matrix = random_matrix(2, 100)
        assert not P.supports_block_ones(20, 100)
        with pytest.raises(ValueError, match="no packed kernel"):
            P.block_ones(P.pack_matrix(matrix), 20)

    @pytest.mark.parametrize("block_length", [8, 128, 512, 1000, 10000])
    def test_block_longest_one_runs(self, block_length):
        n = block_length * 2 + block_length // 4
        for matrix in special_matrices(3, n):
            packed = P.pack_matrix(matrix)
            assert P.supports_block_longest_one_runs(block_length, n)
            result = P.block_longest_one_runs(packed, block_length)
            num_blocks = n // block_length
            for row in range(matrix.shape[0]):
                for block in range(num_blocks):
                    bits = matrix[row, block * block_length : (block + 1) * block_length]
                    # Longest run of ones, by run-length encoding.
                    longest = max(
                        (len(s) for s in "".join(map(str, bits)).split("0")),
                        default=0,
                    )
                    assert result[row, block] == longest

    def test_walk_extremes_rejects_empty(self):
        with pytest.raises(ValueError):
            P.walk_extremes(P.pack_matrix(np.zeros((2, 0), dtype=np.uint8)))
        with pytest.raises(ValueError):
            P.last_bits(P.pack_matrix(np.zeros((2, 0), dtype=np.uint8)))


class TestBatchContextParity:
    """The two backends are bit-identical through the context layer."""

    @pytest.mark.parametrize("rows,n", [(3, 100), (1, 4096), (5, 20000), (2, 127)])
    def test_shared_statistics_match(self, rows, n):
        matrix = random_matrix(rows, n, seed=n)
        packed_ctx = BatchContext(matrix, backend="packed")
        uint8_ctx = BatchContext(matrix, backend="uint8")
        assert np.array_equal(packed_ctx.ones(), uint8_ctx.ones())
        assert np.array_equal(packed_ctx.num_runs(), uint8_ctx.num_runs())
        for fast, slow in zip(packed_ctx.walk_extremes(), uint8_ctx.walk_extremes()):
            assert np.array_equal(fast, slow)
        for block_length in (8, 16, 32, 64):
            if block_length <= n:
                assert np.array_equal(
                    packed_ctx.block_sums(block_length),
                    uint8_ctx.block_sums(block_length),
                )
                assert np.array_equal(
                    packed_ctx.block_longest_one_runs(block_length),
                    uint8_ctx.block_longest_one_runs(block_length),
                )

    def test_unsupported_block_length_falls_back(self):
        matrix = random_matrix(2, 100, seed=5)
        ctx = BatchContext(matrix, backend="packed")
        reference = BatchContext(matrix, backend="uint8")
        # 20 has no packed kernel; the context must silently use uint8.
        assert np.array_equal(ctx.block_sums(20), reference.block_sums(20))

    def test_prepacked_input_defers_unpack(self):
        matrix = random_matrix(4, 4096, seed=9)
        packed = P.pack_matrix(matrix)  # no retained source
        ctx = BatchContext(packed, backend="packed")
        assert ctx._matrix is None
        ctx.ones()
        ctx.walk_extremes()
        ctx.num_runs()
        assert ctx._matrix is None  # packed kernels never touched the bytes
        assert np.array_equal(ctx.matrix, matrix)  # ...but unpack on demand

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            BatchContext(np.zeros((1, 8), dtype=np.uint8), backend="simd")


class TestEngineParity:
    """run_batch: identical P-values, whatever the backend or container."""

    TESTS = [1, 2, 3, 4, 11, 12, 13]

    def p_values(self, reports):
        return [
            {test_id: result.p_values for test_id, result in report.results.items()}
            for report in reports
        ]

    @pytest.mark.parametrize("n", [128, 4096])
    def test_backends_bit_identical(self, n):
        matrix = IdealSource(seed=42).generate_matrix(8, n)
        packed_reports = run_batch(matrix, tests=self.TESTS, backend="packed")
        uint8_reports = run_batch(matrix, tests=self.TESTS, backend="uint8")
        assert self.p_values(packed_reports) == self.p_values(uint8_reports)
        assert all(report.backend == "packed" for report in packed_reports)
        assert all(report.backend == "uint8" for report in uint8_reports)

    def test_prepacked_input_matches_uint8_matrix(self):
        source = IdealSource(seed=77)
        matrix = source.generate_matrix(6, 2048)
        source.reset()
        prepacked = source.generate_matrix(6, 2048, packed=True)
        assert isinstance(prepacked, P.PackedMatrix)
        assert np.array_equal(prepacked.unpack(), matrix)  # same stream
        from_packed = run_batch(prepacked, tests=self.TESTS)
        from_matrix = run_batch(matrix, tests=self.TESTS)
        assert self.p_values(from_packed) == self.p_values(from_matrix)

    def test_run_batch_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_batch(np.zeros((2, 128), dtype=np.uint8), backend="simd")

    def test_empty_prepacked_batch(self):
        packed = P.pack_matrix(np.zeros((0, 128), dtype=np.uint8))
        assert run_batch(packed, tests=[1]) == []
