"""Fixture tests of the lock-discipline family (LCK001, LCK002)."""

from repro.analysis.framework import analyze_source

LIB = "src/repro/fleet/fixture.py"


def rules(source, path=LIB):
    ctx = analyze_source(source, path, select=["LCK001", "LCK002"])
    return [f.rule for f in ctx.findings]


#: Minimal shape of the real FleetScheduler bug this family caught: a
#: service-facing method mutating shared state without taking the lock.
UNLOCKED_WRITE = """
import threading

class Scheduler:
    def __init__(self):
        self.lock = threading.RLock()
        self.execution_paths = {}

    def evaluate(self, matrix):
        self.execution_paths.update({"frequency": "packed"})
        return []
"""

LOCKED_WRITE = """
import threading

class Scheduler:
    def __init__(self):
        self.lock = threading.RLock()
        self.execution_paths = {}

    def evaluate(self, matrix):
        with self.lock:
            self.execution_paths.update({"frequency": "packed"})
        return []
"""


class TestLck001UnlockedWrites:
    def test_unlocked_mutator_call_fires(self):
        assert "LCK001" in rules(UNLOCKED_WRITE)

    def test_locked_write_is_clean(self):
        assert "LCK001" not in rules(LOCKED_WRITE)

    def test_unlocked_assignment_fires(self):
        source = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def close(self):\n"
            "        self._closed = True\n"
        )
        assert "LCK001" in rules(source)

    def test_init_writes_are_exempt(self):
        source = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._closed = False\n"
        )
        assert "LCK001" not in rules(source)

    def test_classes_without_locks_are_ignored(self):
        source = (
            "class Plain:\n"
            "    def bump(self):\n"
            "        self.count = self.count + 1\n"
        )
        assert rules(source) == []

    def test_shared_lock_alias_marks_the_class(self):
        # FleetService aliases the scheduler's lock; discipline still applies.
        source = (
            "class Service:\n"
            "    def __init__(self, scheduler):\n"
            "        self._lock = scheduler.lock\n"
            "    def touch(self):\n"
            "        self.hits = 1\n"
        )
        assert "LCK001" in rules(source)

    def test_injection_locking_physics_is_not_threading(self):
        # The TRNG domain has injection-*locked* oscillators; lock_strength
        # is a float, not a mutex, and must not trigger lock discipline.
        source = (
            "class RingOscillator:\n"
            "    def __init__(self):\n"
            "        self.lock_strength = 0.4\n"
            "    def couple(self, k):\n"
            "        self.phase = k\n"
        )
        assert rules(source) == []


class TestLck002EvalUnderLock:
    def test_evaluation_under_lock_fires(self):
        source = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self.lock = threading.RLock()\n"
            "    def round(self, matrix):\n"
            "        with self.lock:\n"
            "            return self.evaluate_matrix(matrix)\n"
        )
        assert "LCK002" in rules(source)

    def test_run_batch_under_lock_fires(self):
        source = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self.lock = threading.Lock()\n"
            "    def go(self, m):\n"
            "        with self.lock:\n"
            "            reports = run_batch(m)\n"
            "        return reports\n"
        )
        assert "LCK002" in rules(source)

    def test_evaluation_outside_lock_is_clean(self):
        source = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self.lock = threading.Lock()\n"
            "    def go(self, m):\n"
            "        reports = run_batch(m)\n"
            "        with self.lock:\n"
            "            self.results = reports\n"
            "        return reports\n"
        )
        assert "LCK002" not in rules(source)

    def test_lock_released_before_second_call(self):
        source = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self.lock = threading.Lock()\n"
            "    def go(self, m):\n"
            "        with self.lock:\n"
            "            payload = self.snapshot\n"
            "        return run_batch(payload)\n"
        )
        assert "LCK002" not in rules(source)
