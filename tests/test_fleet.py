"""Tests of the fleet monitoring subsystem (registry, scheduler, report)."""

import numpy as np
import pytest

from repro.core.monitor import HealthState
from repro.fleet import (
    DeviceRegistry,
    FleetMix,
    FleetReport,
    FleetScheduler,
    FleetVerdict,
)
from repro.fleet.report import SUMMARY_COLUMNS, percentile


MIX = FleetMix.healthy_with_threats(
    0.9, threats=("wire-cut", "biased-0.70", "freq-injection")
)


def small_fleet(num_devices=40, seed=11, **kwargs):
    registry = DeviceRegistry("n128_light", alpha=0.01, **kwargs)
    registry.populate(num_devices, MIX, seed=seed)
    return registry


class TestFleetMix:
    def test_counts_are_exact(self):
        counts = FleetMix.healthy_with_threats(0.95).counts(1000)
        assert sum(counts.values()) == 1000
        assert counts["healthy-ideal"] == 950

    def test_counts_cover_every_scenario_when_room(self):
        counts = MIX.counts(40)
        assert sum(counts.values()) == 40
        assert counts["healthy-ideal"] == 36

    def test_parse_round_trips(self):
        mix = FleetMix.parse("healthy-ideal:0.8, wire-cut:0.1, biased-0.60:0.1")
        assert mix.labels == ("healthy-ideal", "wire-cut", "biased-0.60")
        assert FleetMix.from_dict(mix.to_dict()) == mix

    def test_parse_rejects_bad_entries(self):
        with pytest.raises(ValueError):
            FleetMix.parse("no-weight")
        with pytest.raises(ValueError):
            FleetMix.parse("label:not-a-number")

    def test_rejects_non_positive_weights_and_duplicates(self):
        with pytest.raises(ValueError):
            FleetMix((("healthy-ideal", 0.0),))
        with pytest.raises(ValueError):
            FleetMix((("a", 0.5), ("a", 0.5)))

    def test_healthy_fraction_validated(self):
        with pytest.raises(ValueError):
            FleetMix.healthy_with_threats(1.0)


class TestDeviceRegistry:
    def test_populate_is_deterministic(self):
        first = small_fleet(seed=3)
        second = small_fleet(seed=3)
        assert first.device_ids() == second.device_ids()
        assert [d.scenario for d in first] == [d.scenario for d in second]
        assert [d.seed for d in first] == [d.seed for d in second]

    def test_different_seeds_change_placement(self):
        first = small_fleet(seed=3)
        second = small_fleet(seed=4)
        assert [d.scenario for d in first] != [d.scenario for d in second]

    def test_unknown_scenario_label_fails_fast(self):
        registry = DeviceRegistry("n128_light")
        with pytest.raises(ValueError):
            registry.populate(10, FleetMix((("bogus-threat", 1.0),)), seed=0)
        assert len(registry) == 0  # nothing half-registered

    def test_duplicate_device_id_rejected(self):
        registry = DeviceRegistry("n128_light")
        registry.register("edge-1")
        with pytest.raises(ValueError):
            registry.register("edge-1")

    def test_external_device_has_no_source(self):
        registry = DeviceRegistry("n128_light")
        device = registry.register("edge-1")
        assert not device.simulated
        assert device.category == "external"
        assert registry.simulated_devices() == []

    def test_health_counts_start_healthy(self):
        registry = small_fleet()
        counts = registry.health_counts()
        assert counts == {"healthy": 40, "suspect": 0, "failed": 0}

    def test_snapshot_is_json_ready(self):
        import json

        registry = small_fleet(num_devices=5)
        snapshot = next(iter(registry)).snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["state"] == "healthy"


class TestFleetScheduler:
    def test_round_advances_every_simulated_device(self):
        registry = small_fleet()
        scheduler = FleetScheduler(registry)
        fleet_round = scheduler.run_round()
        assert all(d.monitor.sequences_monitored == 1 for d in registry)
        assert sum(fleet_round.health.values()) == len(registry)

    def test_threats_get_detected_and_health_degrades(self):
        registry = small_fleet()
        scheduler = FleetScheduler(registry)
        scheduler.run(4)
        for device in registry:
            if device.scenario == "wire-cut":
                assert device.state is HealthState.FAILED
                assert device.monitor.detection_latency_sequences() == 2
                assert 1 in (device.monitor.first_failing_tests or ())

    def test_run_is_reproducible(self):
        reports = []
        for _ in range(2):
            registry = small_fleet(seed=9)
            reports.append(FleetScheduler(registry).run(3))
        # wall-clock fields differ run to run; the statistical content must not
        a, b = reports
        assert [s.to_dict() for s in a.scenarios] == [s.to_dict() for s in b.scenarios]
        assert [r.health for r in a.rounds] == [r.health for r in b.rounds]

    def test_verdicts_match_health_trajectory_of_per_device_monitoring(self):
        """The multiplexed round folds the same verdict stream into each
        device as dedicated per-device engine monitoring would."""
        registry = small_fleet(num_devices=10, seed=21)
        scheduler = FleetScheduler(registry)
        # Clone the fleet and advance each clone device independently.
        clone = small_fleet(num_devices=10, seed=21)
        rounds = 3
        scheduler.run(rounds)
        for device in clone.simulated_devices():
            matrix = device.source.generate_matrix(rounds, clone.n)
            for verdict in FleetScheduler(clone).evaluate_matrix(matrix):
                device.monitor.observe(verdict)
        for multiplexed, independent in zip(registry, clone):
            assert multiplexed.device_id == independent.device_id
            assert multiplexed.state is independent.state
            assert (
                multiplexed.monitor.failure_rate()
                == independent.monitor.failure_rate()
            )

    def test_sharded_rounds_match_inline(self):
        inline = small_fleet(seed=17)
        sharded = small_fleet(seed=17)
        FleetScheduler(inline).run(2)
        with FleetScheduler(sharded, processes=2, min_shard_devices=4) as scheduler:
            scheduler.run(2)
        for a, b in zip(inline, sharded):
            assert a.state is b.state
            assert a.monitor.failure_rate() == b.monitor.failure_rate()

    def test_backends_and_containers_agree_on_sharded_verdicts(self):
        """Any (backend, container) combination yields identical verdicts.

        Regression: a prepacked matrix handed to a sharded uint8-backend
        scheduler used to ship packed words that the workers decoded as
        uint8 bytes.
        """
        from repro.engine.packed import pack_matrix
        from repro.trng.ideal import IdealSource

        matrix = IdealSource(seed=21).generate_matrix(8, 128)
        verdicts = []
        for backend in ("packed", "uint8"):
            for container in (matrix, pack_matrix(matrix)):
                with FleetScheduler(
                    small_fleet(num_devices=8, seed=6),
                    processes=2, min_shard_devices=4, backend=backend,
                ) as scheduler:
                    verdicts.append(scheduler.evaluate_matrix(container))
        assert all(v == verdicts[0] for v in verdicts[1:])

    def test_evaluate_matrix_verdict_reduction(self):
        registry = DeviceRegistry("n128_light")
        scheduler = FleetScheduler(registry)
        dead = np.zeros((1, 128), dtype=np.uint8)
        (verdict,) = scheduler.evaluate_matrix(dead)
        assert isinstance(verdict, FleetVerdict)
        assert not verdict.passed
        assert verdict.failing_tests == (1, 2, 3, 4, 13)

    def test_ingest_requires_whole_sequences(self):
        registry = small_fleet(num_devices=4)
        scheduler = FleetScheduler(registry)
        device_id = registry.device_ids()[0]
        with pytest.raises(ValueError):
            scheduler.ingest(device_id, np.zeros(5, dtype=np.uint8))
        events = scheduler.ingest(device_id, np.zeros(256, dtype=np.uint8))
        assert len(events) == 2
        assert registry.get(device_id).state is HealthState.FAILED

    def test_empty_fleet_round_is_an_error(self):
        with pytest.raises(ValueError):
            FleetScheduler(DeviceRegistry("n128_light")).run_round()


class TestFleetReport:
    @pytest.fixture(scope="class")
    def report(self):
        registry = small_fleet(seed=5)
        return FleetScheduler(registry).run(4)

    def test_health_trajectory_spans_rounds(self, report):
        trajectory = report.health_trajectory()
        assert len(trajectory) == 4
        assert all(sum(mix.values()) == 40 for mix in trajectory)
        assert report.final_health() == trajectory[-1]

    def test_scenario_stats_cover_the_mix(self, report):
        assert {s.scenario for s in report.scenarios} == set(MIX.labels)
        assert sum(s.devices for s in report.scenarios) == 40
        wire_cut = next(s for s in report.scenarios if s.scenario == "wire-cut")
        assert wire_cut.detection_probability == 1.0
        assert wire_cut.latency_percentiles[50] == 2

    def test_false_alarm_rate_is_low_for_healthy_fleet(self, report):
        rate = report.false_alarm_rate()
        assert rate is not None
        assert rate < 0.3  # 5 tests at alpha=0.01: per-sequence ~5%

    def test_json_round_trip(self, report):
        assert FleetReport.from_json(report.to_json()) == report

    def test_csv_columns_stable(self, report):
        header = report.to_csv().splitlines()[0]
        assert header == ",".join(SUMMARY_COLUMNS)

    def test_save_outputs_reload(self, report, tmp_path):
        import csv as csv_module
        import json

        json_path = tmp_path / "fleet.json"
        csv_path = tmp_path / "fleet.csv"
        report.save_json(json_path)
        report.save_csv(csv_path)
        assert FleetReport.from_json(json_path.read_text()) == report
        with open(csv_path) as handle:
            rows = list(csv_module.DictReader(handle))
        assert len(rows) == len(report.scenarios)
        assert json.loads(json_path.read_text())["config"]["num_devices"] == 40

    def test_format_table_lists_every_scenario(self, report):
        table = report.format_table()
        for label in MIX.labels:
            assert label in table

    def test_devices_per_second_positive(self, report):
        assert report.devices_per_second() > 0


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 50) is None

    def test_nearest_rank(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert percentile(values, 50) == 5
        assert percentile(values, 90) == 9
        assert percentile(values, 99) == 10
        assert percentile(values, 0) == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestStreamingScheduler:
    """Streaming mode: rolled fleet rounds and arbitrary-chunk ingest."""

    def _health_trajectory(self, scheduler, rounds):
        trajectory = []
        for _ in range(rounds):
            fleet_round = scheduler.run_round()
            trajectory.append(
                (fleet_round.failing_sequences, dict(fleet_round.health))
            )
        return trajectory

    def test_streaming_rounds_match_matrix_rounds(self):
        matrix_mode = FleetScheduler(small_fleet(num_devices=24, seed=7))
        streaming = FleetScheduler(
            small_fleet(num_devices=24, seed=7), streaming=True
        )
        left = self._health_trajectory(matrix_mode, 4)
        right = self._health_trajectory(streaming, 4)
        assert left == right
        assert any(failing > 0 for failing, _ in left)  # threats really fire
        assert streaming.report().streaming is True
        assert matrix_mode.report().streaming is False

    def test_streaming_report_flag_survives_serialization(self):
        scheduler = FleetScheduler(small_fleet(num_devices=8, seed=5), streaming=True)
        scheduler.run_round()
        report = scheduler.report()
        assert FleetReport.from_dict(report.to_dict()).streaming is True

    def test_ingest_accepts_arbitrary_chunks(self):
        registry = small_fleet(num_devices=8, seed=21)
        device_id = registry.device_ids()[0]
        scheduler = FleetScheduler(registry, streaming=True)
        n = registry.n
        rng = np.random.default_rng(99)
        bits = rng.integers(0, 2, size=2 * n + 37, dtype=np.uint8)
        events = []
        offset = 0
        for size in (63, 64, 65, 1, n, 2 * n):
            take = min(size, bits.size - offset)
            if take == 0:
                break
            events.extend(scheduler.ingest(device_id, bits[offset : offset + take]))
            offset += take
        # Two full sequences were completed; 37 bits pend in the ring.
        assert len(events) == 2
        assert scheduler.pending_bits(device_id) == 37
        # The streamed verdicts equal the matrix-mode evaluation of the
        # same two sequences.
        reference = FleetScheduler(small_fleet(num_devices=8, seed=21))
        ref_events = reference.ingest(device_id, bits[: 2 * n])
        assert [e.report.failing_tests for e in events] == [
            e.report.failing_tests for e in ref_events
        ]
        assert [e.state for e in events] == [e.state for e in ref_events]

    def test_streaming_ingest_rejects_empty(self):
        registry = small_fleet(num_devices=4, seed=2)
        scheduler = FleetScheduler(registry, streaming=True)
        with pytest.raises(ValueError):
            scheduler.ingest(registry.device_ids()[0], np.zeros(0, dtype=np.uint8))

    def test_pending_bits_outside_streaming_mode(self):
        registry = small_fleet(num_devices=4, seed=3)
        scheduler = FleetScheduler(registry)
        device_id = registry.device_ids()[0]
        assert scheduler.pending_bits(device_id) == 0
        with pytest.raises(ValueError):
            scheduler.ingest(device_id, np.zeros(37, dtype=np.uint8))
        with pytest.raises(KeyError):
            scheduler.pending_bits("no-such-device")
