"""Degradation-path tests of the fleet service: caps, shedding, quarantine.

The happy paths live in ``tests/test_fleet_service.py``; this module pins
the graceful-degradation contracts added with the durability layer — body
caps (413), structured errors, truncated bodies, backpressure (429 +
``Retry-After``), draining (503), per-device quarantine (403), sequenced
ingest over HTTP, and the client-side half of those contracts.
"""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.fleet import (
    DeviceRegistry,
    FleetClient,
    FleetScheduler,
    FleetServiceError,
    serve,
)
from repro.fleet.service import FleetService, ServiceError, _retry_headers

GOOD_BITS = "01" * 64  # one n=128 sequence


@pytest.fixture(scope="module")
def harness():
    registry = DeviceRegistry("n128_light", alpha=0.01)
    scheduler = FleetScheduler(registry)
    server = serve(
        scheduler,
        host="127.0.0.1",
        port=0,
        max_body_bytes=4096,
        retry_after_s=0.25,
        quarantine_after=2,
    )
    host, port = server.server_address
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}", server.service, (host, port)
    server.shutdown()
    server.server_close()
    scheduler.close()
    thread.join(timeout=5)


def call(base, method, path, payload=None, raw_body=None):
    """One request; returns (status, decoded JSON body, headers)."""
    if raw_body is not None:
        data = raw_body
    else:
        data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


def register(base, device_id):
    status, body, _ = call(base, "POST", "/devices", {"device_id": device_id})
    assert status == 201, body
    return body


class TestBodyLimits:
    def test_oversized_body_is_413(self, harness):
        base, _, _ = harness
        register(base, "cap-413")
        status, body, _ = call(
            base, "POST", "/ingest",
            {"device_id": "cap-413", "bits": "01" * 4096},
        )
        assert status == 413
        assert "4096 bytes" in body["error"]

    def test_invalid_json_is_a_structured_400(self, harness):
        base, _, _ = harness
        status, body, _ = call(base, "POST", "/ingest", raw_body=b"{not json")
        assert status == 400
        assert body["error"].startswith("invalid JSON body")

    def test_non_object_json_body_is_400(self, harness):
        base, _, _ = harness
        status, body, _ = call(base, "POST", "/ingest", raw_body=b"[1, 2]")
        assert status == 400
        assert body["error"] == "JSON body must be an object"

    def test_empty_body_is_400(self, harness):
        base, _, _ = harness
        status, body, _ = call(base, "POST", "/ingest", raw_body=b"")
        assert status == 400
        assert body["error"] == "request body required"

    def test_truncated_body_is_400_not_a_hang(self, harness):
        # A client that lies about Content-Length and dies mid-body must get
        # a clean 400, not block the worker or half-parse the fragment.
        _, _, (host, port) = harness
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(
                b"POST /ingest HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 500\r\n"
                b"\r\n"
                b'{"device_id":'
            )
            sock.shutdown(socket.SHUT_WR)
            reply = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                reply += chunk
        status_line, _, rest = reply.partition(b"\r\n")
        assert b"400" in status_line
        assert b"truncated request body" in rest

    def test_unknown_routes_are_json_404s(self, harness):
        base, _, _ = harness
        status, body, _ = call(base, "GET", "/nope")
        assert status == 404 and "unknown path" in body["error"]
        status, body, _ = call(base, "POST", "/nope", {"x": 1})
        assert status == 404 and "unknown path" in body["error"]

    def test_unhandled_exception_becomes_500(self, harness, monkeypatch):
        base, service, _ = harness

        def boom():
            raise RuntimeError("synthetic facade bug")

        monkeypatch.setattr(service, "fleet_summary", boom)
        status, body, _ = call(base, "GET", "/fleet/summary")
        assert status == 500
        assert body == {"error": "internal server error"}


class TestBackpressure:
    def test_zero_capacity_sheds_with_429_and_retry_after(
        self, harness, monkeypatch
    ):
        base, service, _ = harness
        register(base, "shed-429")
        monkeypatch.setattr(service, "max_inflight_ingests", 0)
        status, body, headers = call(
            base, "POST", "/ingest", {"device_id": "shed-429", "bits": GOOD_BITS}
        )
        assert status == 429
        assert "capacity" in body["error"]
        assert headers["Retry-After"] == "0.25"

    def test_draining_sheds_with_503_and_retry_after(self, harness, monkeypatch):
        base, service, _ = harness
        register(base, "shed-503")
        monkeypatch.setattr(service, "_draining", True)
        status, body, headers = call(
            base, "POST", "/ingest", {"device_id": "shed-503", "bits": GOOD_BITS}
        )
        assert status == 503
        assert body["error"] == "service is draining"
        assert headers["Retry-After"] == "0.25"

    def test_non_ingest_routes_keep_working_while_draining(
        self, harness, monkeypatch
    ):
        base, service, _ = harness
        monkeypatch.setattr(service, "_draining", True)
        status, body, _ = call(base, "GET", "/fleet/summary")
        assert status == 200 and "num_devices" in body

    def test_drain_waits_for_inflight_and_returns_clean(self):
        registry = DeviceRegistry("n128_light", alpha=0.01)
        service = FleetService(FleetScheduler(registry))
        service._admit_ingest()
        assert not service.drain(timeout=0.05)  # dirty: one still in flight
        service._release_ingest()
        assert service.drain(timeout=1.0)

    def test_retry_after_header_formatting(self):
        assert _retry_headers(ServiceError(429, "x", retry_after=1.5)) == (
            ("Retry-After", "1.5"),
        )
        assert _retry_headers(ServiceError(400, "x")) == ()

    def test_policy_validation(self):
        registry = DeviceRegistry("n128_light", alpha=0.01)
        scheduler = FleetScheduler(registry)
        with pytest.raises(ValueError):
            FleetService(scheduler, max_body_bytes=0)
        with pytest.raises(ValueError):
            FleetService(scheduler, max_inflight_ingests=-1)
        with pytest.raises(ValueError):
            FleetService(scheduler, quarantine_after=0)


class TestQuarantine:
    def test_repeatedly_malformed_device_is_cut_off(self, harness):
        base, _, _ = harness
        register(base, "abuser")
        for _ in range(2):  # quarantine_after=2
            status, body, _ = call(
                base, "POST", "/ingest", {"device_id": "abuser", "bits": "0x1"}
            )
            assert status == 400
        status, body, _ = call(
            base, "POST", "/ingest", {"device_id": "abuser", "bits": GOOD_BITS}
        )
        assert status == 403
        assert "quarantined" in body["error"]

    def test_one_good_ingest_resets_the_malformed_count(self, harness):
        base, _, _ = harness
        register(base, "wobbly")
        status, _, _ = call(
            base, "POST", "/ingest", {"device_id": "wobbly", "bits": "0x1"}
        )
        assert status == 400
        status, _, _ = call(
            base, "POST", "/ingest", {"device_id": "wobbly", "bits": GOOD_BITS}
        )
        assert status == 200
        status, _, _ = call(
            base, "POST", "/ingest", {"device_id": "wobbly", "bits": "0x1"}
        )
        assert status == 400  # count restarted: still below the threshold
        status, _, _ = call(
            base, "POST", "/ingest", {"device_id": "wobbly", "bits": GOOD_BITS}
        )
        assert status == 200

    def test_malformed_counts_do_not_cross_devices(self, harness):
        base, _, _ = harness
        register(base, "noisy-1")
        register(base, "noisy-2")
        for device in ("noisy-1", "noisy-2"):
            status, _, _ = call(
                base, "POST", "/ingest", {"device_id": device, "bits": "0x1"}
            )
            assert status == 400
        status, _, _ = call(
            base, "POST", "/ingest", {"device_id": "noisy-1", "bits": GOOD_BITS}
        )
        assert status == 200


class TestSequencedIngestOverHttp:
    def test_seq_success_duplicate_and_gap(self, harness):
        base, _, _ = harness
        register(base, "seq-dev")
        status, body, _ = call(
            base, "POST", "/ingest",
            {"device_id": "seq-dev", "bits": GOOD_BITS, "seq": 0},
        )
        assert status == 200 and body["last_seq"] == 0

        # Blind retry of the same chunk: idempotent success, no re-evaluation.
        status, body, _ = call(
            base, "POST", "/ingest",
            {"device_id": "seq-dev", "bits": GOOD_BITS, "seq": 0},
        )
        assert status == 200
        assert body["duplicate"] is True and body["sequences"] == 0
        assert body["last_seq"] == 0 and body["health"]["device_id"] == "seq-dev"

        # A gap is a hard conflict the client must not paper over.
        status, body, _ = call(
            base, "POST", "/ingest",
            {"device_id": "seq-dev", "bits": GOOD_BITS, "seq": 5},
        )
        assert status == 409 and "expected ingest seq 1" in body["error"]

        status, body, _ = call(
            base, "POST", "/ingest",
            {"device_id": "seq-dev", "bits": GOOD_BITS, "seq": 1},
        )
        assert status == 200 and body["last_seq"] == 1

    @pytest.mark.parametrize("bad_seq", [-1, True, "3", 1.5])
    def test_invalid_seq_is_400(self, harness, bad_seq):
        base, _, _ = harness
        register(base, f"seq-bad-{str(bad_seq).replace('.', '_')}")
        status, body, _ = call(
            base, "POST", "/ingest",
            {"device_id": "seq-dev", "bits": GOOD_BITS, "seq": bad_seq},
        )
        assert status == 400
        assert "seq must be a non-negative integer" in body["error"]


class TestFleetClient:
    def test_retries_transient_failures_then_succeeds(self, harness, monkeypatch):
        base, service, _ = harness
        register(base, "flaky")
        inner = service.handle_post
        failures = {"left": 2}

        def fail_twice(path, payload):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise ServiceError(503, "synthetic flake", retry_after=0.01)
            return inner(path, payload)

        monkeypatch.setattr(service, "handle_post", fail_twice)
        client = FleetClient(base, retries=3, backoff_s=0.01, backoff_cap_s=0.02)
        body = client.ingest("flaky", GOOD_BITS)
        assert body["sequences"] == 1
        assert failures["left"] == 0

    def test_client_errors_are_not_retried(self, harness):
        base, _, _ = harness
        register(base, "client-400")
        client = FleetClient(base, retries=3, backoff_s=0.01)
        with pytest.raises(FleetServiceError) as excinfo:
            client.ingest("client-400", "not-bits")
        assert excinfo.value.status == 400

    def test_retry_exhaustion_surfaces_the_last_status(self, harness, monkeypatch):
        base, service, _ = harness
        monkeypatch.setattr(service, "max_inflight_ingests", 0)
        monkeypatch.setattr(service, "retry_after_s", 0.01)
        register(base, "full-up")
        client = FleetClient(base, retries=1, backoff_s=0.01)
        with pytest.raises(FleetServiceError) as excinfo:
            client.ingest("full-up", GOOD_BITS)
        assert excinfo.value.status == 429

    def test_register_exist_ok_reads_as_success(self, harness):
        base, _, _ = harness
        client = FleetClient(base, retries=0)
        first = client.register_device("idem", seed=9)
        again = client.register_device("idem", exist_ok=True)
        assert first["device_id"] == again["device_id"] == "idem"
        with pytest.raises(FleetServiceError) as excinfo:
            client.register_device("idem")
        assert excinfo.value.status == 409

    def test_unreachable_service_raises_503_after_retries(self):
        client = FleetClient(
            "http://127.0.0.1:9", timeout_s=0.2, retries=1, backoff_s=0.01
        )
        with pytest.raises(FleetServiceError) as excinfo:
            client.fleet_summary()
        assert excinfo.value.status == 503
        assert "unreachable" in excinfo.value.message

    def test_client_validation(self):
        with pytest.raises(ValueError):
            FleetClient("http://x", retries=-1)
