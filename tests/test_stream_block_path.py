"""End-to-end tests of the block-streaming path through the consumers.

The platform, monitor, flexible platform, engine and campaign layers all
pull whole blocks from the source by default; the bit-serial RTL-fidelity
path stays available behind ``accelerated=False`` and must produce identical
verdicts for the same seed (the source layer's split invariance guarantees
both paths consume the same stream).
"""

import io

import numpy as np
import pytest

from repro.campaign import DEFAULT_CATALOG
from repro.cli import main
from repro.core.flexible import FlexibleLengthPlatform
from repro.core.monitor import OnTheFlyMonitor
from repro.core.platform import OnTheFlyPlatform
from repro.engine import run_batch
from repro.engine.context import BatchContext
from repro.trng import BiasedSource, CorrelatedSource, IdealSource


@pytest.fixture(scope="module")
def platform():
    return OnTheFlyPlatform("n128_medium", alpha=0.01)


class TestPlatformBlockPath:
    def test_vectorized_path_is_the_default(self, platform):
        # The default evaluate_source pulls one block; the source is left
        # exactly n bits into its stream (no per-bit shim buffering).
        source = IdealSource(seed=81)
        platform.evaluate_source(source)
        rest = source.generate_block(64)
        expected = IdealSource(seed=81).generate_block(128 + 64)[128:]
        assert np.array_equal(rest, expected)

    @pytest.mark.parametrize("factory", [
        lambda: IdealSource(seed=82),
        lambda: BiasedSource(0.8, seed=83),
        lambda: CorrelatedSource(0.9, seed=84),
    ])
    def test_rtl_fidelity_path_matches_block_path(self, platform, factory):
        fast = platform.evaluate_source(factory(), accelerated=True)
        slow = platform.evaluate_source(factory(), accelerated=False)
        assert fast.hardware_values == slow.hardware_values
        assert fast.verdicts == slow.verdicts

    def test_evaluate_batch_accepts_source_matrix(self, platform):
        matrix = IdealSource(seed=85).generate_matrix(4, 128)
        from_matrix = platform.evaluate_batch(matrix)
        from_list = platform.evaluate_batch(
            list(IdealSource(seed=85).generate_matrix(4, 128))
        )
        assert [r.verdicts for r in from_matrix] == [r.verdicts for r in from_list]

    def test_evaluate_batch_rejects_non_2d_matrix(self, platform):
        with pytest.raises(ValueError, match="2-D"):
            platform.evaluate_batch(np.zeros(128, dtype=np.uint8))


class TestMonitorBlockPath:
    def test_per_bit_and_block_trajectories_identical(self):
        def run(accelerated, batch_size=None):
            monitor = OnTheFlyMonitor(OnTheFlyPlatform("n128_light"))
            monitor.monitor(
                BiasedSource(0.7, seed=86), num_sequences=6,
                batch_size=batch_size, accelerated=accelerated,
            )
            return [(e.state, e.report.failing_tests) for e in monitor.history]

        block = run(accelerated=True)
        rtl = run(accelerated=False)
        batched = run(accelerated=True, batch_size=6)
        assert block == rtl == batched

    def test_batch_path_honours_rtl_fidelity(self):
        # accelerated=False must reach the cycle-accurate process_bit path
        # even when the monitor drains the source in batches.
        platform = OnTheFlyPlatform("n128_light")
        calls = {"bits": 0}
        original = platform.hardware.process_bit

        def counting(bit):
            calls["bits"] += 1
            return original(bit)

        platform.hardware.process_bit = counting
        monitor = OnTheFlyMonitor(platform)
        monitor.monitor(
            IdealSource(seed=90), num_sequences=4, batch_size=2, accelerated=False
        )
        assert calls["bits"] == 4 * 128


class TestFlexiblePlatformBlockPath:
    def test_accelerated_flag_passthrough(self):
        flexible = FlexibleLengthPlatform(supported_lengths=(128, 256), initial_length=128)
        fast = flexible.evaluate_source(IdealSource(seed=87))
        slow = flexible.evaluate_source(IdealSource(seed=87), accelerated=False)
        assert fast.hardware_values == slow.hardware_values


class TestEngineMatrixInput:
    def test_run_batch_accepts_source_matrix(self):
        matrix = IdealSource(seed=88).generate_matrix(3, 1024)
        from_matrix = run_batch(matrix, tests=[1, 3, 13])
        from_list = run_batch(list(matrix), tests=[1, 3, 13])
        assert [r.p_values() for r in from_matrix] == [r.p_values() for r in from_list]

    def test_batch_context_from_blocks(self):
        blocks = [IdealSource(seed=89 + i).generate_block(256) for i in range(3)]
        context = BatchContext.from_blocks(blocks)
        assert context.num_sequences == 3 and context.n == 256
        assert int(context.ones()[0]) == int(blocks[0].sum())

    def test_as_matrix_rejects_non_bits(self):
        with pytest.raises(ValueError, match="0 and 1"):
            BatchContext.as_matrix(np.full((2, 8), 3, dtype=np.uint8))


class TestCampaignMatrixBuilders:
    def test_build_matrix_is_one_contiguous_stream(self):
        spec = DEFAULT_CATALOG.get("biased-0.60")
        matrix = spec.build_matrix(5, 128, 4)
        assert matrix.shape == (4, 128)
        assert np.array_equal(
            matrix.ravel(), spec.build(5, 128).generate_block(4 * 128)
        )

    def test_staged_attack_unfolds_across_rows(self):
        spec = DEFAULT_CATALOG.get("freq-injection-staged")
        matrix = spec.build_matrix(7, 128, 4)
        source = spec.build(7, 128)
        assert np.array_equal(matrix.ravel(), source.generate_block(4 * 128))
        assert source.active  # 4 sequences > the 2-sequence onset


class TestCliStreamingDefaults:
    def test_monitor_reports_vectorized_default(self):
        out = io.StringIO()
        main(["monitor", "--sequences", "2", "--seed", "3"], out=out)
        assert "vectorized block streaming (default)" in out.getvalue()

    def test_monitor_rtl_fidelity_flag(self):
        out = io.StringIO()
        main(["monitor", "--sequences", "2", "--seed", "3", "--rtl-fidelity"], out=out)
        assert "bit-serial RTL model" in out.getvalue()

    def test_monitor_paths_agree_sequence_by_sequence(self):
        fast, slow = io.StringIO(), io.StringIO()
        argv = ["monitor", "--sequences", "4", "--seed", "3", "--source", "correlated"]
        code_fast = main(argv, out=fast)
        code_slow = main(argv + ["--rtl-fidelity"], out=slow)
        assert code_fast == code_slow
        strip = lambda text: [line for line in text.splitlines() if not line.startswith("hardware path")]
        assert strip(fast.getvalue()) == strip(slow.getvalue())
