"""End-to-end tests of the fleet HTTP/JSON service over a real socket."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.fleet import DeviceRegistry, FleetMix, FleetScheduler, serve
from repro.fleet.service import FleetService, ServiceError
from repro.trng.failures import DeadSource
from repro.trng.ideal import IdealSource


def bits_string(source, num_bits):
    return "".join(str(bit) for bit in source.generate_block(num_bits))


@pytest.fixture(scope="module")
def server_base():
    registry = DeviceRegistry("n128_light", alpha=0.01)
    registry.populate(12, FleetMix.healthy_with_threats(0.9), seed=2)
    scheduler = FleetScheduler(registry)
    scheduler.run(2)
    server = serve(scheduler, host="127.0.0.1", port=0)
    host, port = server.server_address
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def call(base, method, path, payload=None):
    """One HTTP request; returns (status, decoded JSON body)."""
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestServiceEndToEnd:
    def test_register_ingest_health_summary(self, server_base):
        """The acceptance flow: register -> ingest -> health -> summary."""
        status, body = call(
            server_base, "POST", "/devices", {"device_id": "edge-dead"}
        )
        assert status == 201
        assert body["state"] == "healthy" and not body["simulated"]

        status, body = call(
            server_base, "POST", "/ingest",
            {"device_id": "edge-dead", "bits": bits_string(DeadSource(), 256)},
        )
        assert status == 200
        assert body["sequences"] == 2
        assert [v["passed"] for v in body["verdicts"]] == [False, False]
        assert body["verdicts"][-1]["state"] == "failed"
        assert 1 in body["verdicts"][0]["failing_tests"]

        status, body = call(server_base, "GET", "/devices/edge-dead/health")
        assert status == 200
        assert body["state"] == "failed"
        assert body["detection_latency_sequences"] == 2

        status, body = call(server_base, "GET", "/fleet/summary")
        assert status == 200
        assert body["num_devices"] == 13  # 12 simulated + the registered one
        assert body["rounds_completed"] == 2
        assert body["health"]["failed"] >= 1
        assert sum(body["health"].values()) == 13
        assert any(s["scenario"] == "external" for s in body["scenarios"])

    def test_healthy_ingest_keeps_device_healthy(self, server_base):
        call(server_base, "POST", "/devices", {"device_id": "edge-ok"})
        status, body = call(
            server_base, "POST", "/ingest",
            {"device_id": "edge-ok", "bits": bits_string(IdealSource(seed=3), 128)},
        )
        assert status == 200
        assert body["health"]["state"] in ("healthy", "suspect")

    def test_register_with_scenario_builds_simulated_device(self, server_base):
        status, body = call(
            server_base, "POST", "/devices",
            {"device_id": "edge-sim", "scenario": "wire-cut", "seed": 1},
        )
        assert status == 201
        assert body["simulated"] and body["scenario"] == "wire-cut"

    def test_duplicate_registration_conflicts(self, server_base):
        call(server_base, "POST", "/devices", {"device_id": "edge-dup"})
        status, body = call(
            server_base, "POST", "/devices", {"device_id": "edge-dup"}
        )
        assert status == 409
        assert "already registered" in body["error"]

    def test_unknown_device_404(self, server_base):
        status, body = call(server_base, "GET", "/devices/missing/health")
        assert status == 404
        status, body = call(
            server_base, "POST", "/ingest", {"device_id": "missing", "bits": "0" * 128}
        )
        assert status == 404

    def test_bad_requests_400(self, server_base):
        # self-contained: register this test's own device first
        status, _ = call(server_base, "POST", "/devices", {"device_id": "edge-400"})
        assert status == 201
        status, _ = call(server_base, "POST", "/ingest", {"device_id": "edge-400"})
        assert status == 400
        status, body = call(
            server_base, "POST", "/ingest",
            {"device_id": "edge-400", "bits": "01x"},
        )
        assert status == 400 and "0" in body["error"]
        status, _ = call(
            server_base, "POST", "/ingest", {"device_id": "edge-400", "bits": "01"}
        )
        assert status == 400
        status, _ = call(
            server_base, "POST", "/devices", {"device_id": "edge-bad-scenario",
                                              "scenario": "not-a-threat"}
        )
        assert status == 400
        status, body = call(
            server_base, "POST", "/devices", {"device_id": "not url safe"}
        )
        assert status == 400 and "URL-safe" in body["error"]

    def test_unknown_paths_404(self, server_base):
        assert call(server_base, "GET", "/nope")[0] == 404
        assert call(server_base, "POST", "/nope", {})[0] == 404

    def test_non_json_body_400(self, server_base):
        request = urllib.request.Request(
            server_base + "/ingest", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_malformed_content_length_400(self, server_base):
        """Regression: a non-numeric Content-Length used to raise an
        unhandled ValueError, dropping the connection with no response."""
        import http.client
        from urllib.parse import urlsplit

        parts = urlsplit(server_base)
        connection = http.client.HTTPConnection(parts.hostname, parts.port, timeout=10)
        connection.putrequest("POST", "/ingest")
        connection.putheader("Content-Length", "abc")
        connection.endheaders()
        response = connection.getresponse()
        assert response.status == 400
        assert "Content-Length" in json.loads(response.read())["error"]
        connection.close()


class TestServiceConcurrency:
    """Two connections at once: threaded serving with bounded lock holds."""

    def test_slow_summary_does_not_block_ingest(self):
        registry = DeviceRegistry("n128_light", alpha=0.01)
        registry.populate(8, FleetMix.healthy_with_threats(0.9), seed=4)
        scheduler = FleetScheduler(registry)
        scheduler.run(1)
        server = serve(scheduler, host="127.0.0.1", port=0)
        service = server.service
        summary_entered = threading.Event()
        summary_release = threading.Event()
        real_summary = service.fleet_summary

        def slow_summary():
            # Model a slow summary request (huge fleet, slow client): the
            # aggregation completes, then the handler parks before
            # responding.  Nothing here holds the scheduler lock.
            result = real_summary()
            summary_entered.set()
            assert summary_release.wait(timeout=10), "never released"
            return result

        service.fleet_summary = slow_summary
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        base = f"http://{host}:{port}"
        try:
            summary_result = {}

            def do_get():
                summary_result["response"] = call(base, "GET", "/fleet/summary")

            getter = threading.Thread(target=do_get, daemon=True)
            getter.start()
            assert summary_entered.wait(timeout=10), "GET /fleet/summary never started"

            # Connection 2, while connection 1 is parked mid-summary: the
            # full register + ingest + health flow must complete.
            status, _ = call(base, "POST", "/devices", {"device_id": "edge-conc"})
            assert status == 201
            status, body = call(
                base, "POST", "/ingest",
                {"device_id": "edge-conc",
                 "bits": bits_string(IdealSource(seed=5), 256)},
            )
            assert status == 200 and body["sequences"] == 2
            status, body = call(base, "GET", "/devices/edge-conc/health")
            assert status == 200
            assert summary_result == {}, "summary should still be parked"

            summary_release.set()
            getter.join(timeout=10)
            status, body = summary_result["response"]
            assert status == 200
            assert body["rounds_completed"] == 1
            assert body["backend"] == "packed"
        finally:
            summary_release.set()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            scheduler.close()


class TestServiceFacade:
    """The facade is callable without sockets (unit-level checks)."""

    def make_service(self):
        registry = DeviceRegistry("n128_light")
        registry.populate(4, FleetMix.healthy_with_threats(0.9), seed=0)
        return FleetService(FleetScheduler(registry))

    def test_register_validates_payload_types(self):
        service = self.make_service()
        for payload in ({}, {"device_id": ""}, {"device_id": 7},
                        {"device_id": "x", "scenario": 3},
                        {"device_id": "x", "seed": "nope"}):
            with pytest.raises(ServiceError) as excinfo:
                service.register_device(payload)
            assert excinfo.value.status in (400, 409)

    def test_summary_without_rounds(self):
        service = self.make_service()
        summary = service.fleet_summary()
        assert summary["rounds_completed"] == 0
        assert summary["devices_per_s"] is None
        assert summary["num_devices"] == 4


class TestStreamingService:
    """Streaming scheduler behind the service: chunked ingest + pending_bits."""

    def make_service(self):
        registry = DeviceRegistry("n128_light")
        registry.populate(4, FleetMix.healthy_with_threats(0.9), seed=0)
        return FleetService(FleetScheduler(registry, streaming=True))

    def test_partial_chunk_pends_then_completes(self):
        service = self.make_service()
        device_id = service.registry.device_ids()[0]
        first = bits_string(IdealSource(seed=41), 100)
        response = service.ingest({"device_id": device_id, "bits": first})
        assert response["sequences"] == 0
        assert response["verdicts"] == []
        assert response["pending_bits"] == 100
        second = bits_string(IdealSource(seed=42), 28)
        response = service.ingest({"device_id": device_id, "bits": second})
        assert response["sequences"] == 1
        assert response["pending_bits"] == 0

    def test_arbitrary_chunk_sizes_accepted(self):
        service = self.make_service()
        device_id = service.registry.device_ids()[1]
        # 1-bit chunks would be rejected by the matrix path; streaming
        # ingest takes them and reports the growing remainder.
        for index in range(3):
            response = service.ingest({"device_id": device_id, "bits": "1"})
            assert response["pending_bits"] == index + 1

    def test_summary_reports_streaming_mode(self):
        service = self.make_service()
        assert service.fleet_summary()["streaming"] is True

    def test_matrix_mode_has_no_pending_bits_field(self):
        registry = DeviceRegistry("n128_light")
        registry.populate(2, FleetMix.healthy_with_threats(0.9), seed=1)
        service = FleetService(FleetScheduler(registry))
        device_id = registry.device_ids()[0]
        response = service.ingest(
            {"device_id": device_id, "bits": bits_string(IdealSource(seed=43), 128)}
        )
        assert "pending_bits" not in response
        assert service.fleet_summary()["streaming"] is False
