"""Fixture tests of OBS001 and the repro.obs wall-clock home exemption."""

from repro.analysis.framework import analyze_source


def rules(source, path, select=None):
    ctx = analyze_source(source, path, select=select)
    return [f.rule for f in ctx.findings]


CLOCK = "import time\nt0 = time.perf_counter()\n"


class TestObs001Scope:
    def test_fires_in_every_instrumented_layer(self):
        for path in (
            "src/repro/engine/timing.py",
            "src/repro/fleet/scheduler.py",
            "src/repro/campaign/runner.py",
            "src/repro/cli.py",
        ):
            assert "OBS001" in rules(CLOCK, path), path

    def test_covers_the_monotonic_and_wall_clock_family(self):
        for call in ("time.monotonic()", "time.perf_counter_ns()", "time.time()"):
            source = f"import time\nt0 = {call}\n"
            assert "OBS001" in rules(source, "src/repro/engine/batch.py"), call

    def test_obs_home_is_sanctioned(self):
        assert "OBS001" not in rules(CLOCK, "src/repro/obs/tracing.py")
        assert "OBS001" not in rules(CLOCK, "src/repro/obs/metrics.py")

    def test_uninstrumented_library_corners_stay_free(self):
        assert "OBS001" not in rules(CLOCK, "src/repro/trng/ideal.py")
        assert "OBS001" not in rules(CLOCK, "src/repro/eval/attribution.py")

    def test_out_of_scope_trees_are_exempt(self):
        # scopes=("library",): benchmarks and tests time ad hoc by design.
        assert "OBS001" not in rules(CLOCK, "benchmarks/bench_engine.py")
        assert "OBS001" not in rules(CLOCK, "tests/test_engine_batch.py")

    def test_span_durations_are_the_sanctioned_alternative(self):
        source = (
            "import repro.obs as obs\n"
            "with obs.span('stage') as stage:\n"
            "    pass\n"
            "elapsed = stage.duration_s\n"
        )
        assert rules(source, "src/repro/engine/batch.py", select=("OBS001",)) == []


class TestDet004WallclockHome:
    def test_wall_clock_entropy_sanctioned_inside_obs(self):
        assert "DET004" not in rules(
            "import time\nnow = time.time()\n", "src/repro/obs/metrics.py"
        )
        assert "DET004" not in rules(
            "import datetime\nnow = datetime.datetime.now()\n",
            "src/repro/obs/tracing.py",
        )

    def test_wall_clock_entropy_still_flagged_elsewhere(self):
        assert "DET004" in rules(
            "import time\nnow = time.time()\n", "src/repro/engine/batch.py"
        )

    def test_os_entropy_never_exempt_even_in_obs(self):
        assert "DET004" in rules(
            "import os\nkey = os.urandom(8)\n", "src/repro/obs/metrics.py"
        )
        assert "DET004" in rules(
            "import uuid\nrun_id = uuid.uuid4()\n", "src/repro/obs/tracing.py"
        )

    def test_shipped_obs_modules_are_clean(self):
        import pathlib

        for name in ("metrics.py", "tracing.py", "__init__.py"):
            path = pathlib.Path("src/repro/obs") / name
            findings = rules(path.read_text(), path.as_posix())
            assert findings == [], (name, findings)
