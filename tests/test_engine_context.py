"""Unit tests of the shared-statistic contexts (SequenceContext/BatchContext)."""

import numpy as np
import pytest

from repro.engine import BatchContext, SequenceContext
from repro.fips.battery import _run_lengths
from repro.nist.common import pattern_counts
from repro.nist.cusum import random_walk_extremes
from repro.nist.longest_run import longest_run_of_ones
from repro.nist.runs import count_runs
from repro.trng import AlternatingSource, BiasedSource, IdealSource


@pytest.fixture(scope="module")
def sample_bits():
    return IdealSource(seed=4242).generate(2048).bits


@pytest.fixture(scope="module")
def sample_rows():
    """Diverse equal-length rows: ideal, biased, alternating, constant."""
    rows = [
        IdealSource(seed=9001).generate(1024).bits,
        BiasedSource(0.7, seed=9002).generate(1024).bits,
        AlternatingSource().generate(1024).bits,
        np.ones(1024, dtype=np.uint8),
        np.zeros(1024, dtype=np.uint8),
    ]
    return rows


class TestSequenceContext:
    def test_basic_counts(self, sample_bits):
        context = SequenceContext(sample_bits)
        assert context.n == sample_bits.size
        assert context.ones == int(sample_bits.sum())
        assert context.zeros == context.n - context.ones

    def test_walk_extremes_match_reference(self, sample_bits):
        context = SequenceContext(sample_bits)
        assert context.walk_extremes() == random_walk_extremes(sample_bits)

    def test_num_runs_matches_reference(self, sample_bits):
        context = SequenceContext(sample_bits)
        assert context.num_runs() == count_runs(sample_bits)

    @pytest.mark.parametrize("block_length", [8, 64, 100, 128])
    def test_block_sums_match_chunked_sums(self, sample_bits, block_length):
        context = SequenceContext(sample_bits)
        sums = context.block_sums(block_length)
        num_blocks = sample_bits.size // block_length
        expected = [
            int(sample_bits[i * block_length : (i + 1) * block_length].sum())
            for i in range(num_blocks)
        ]
        assert sums.tolist() == expected

    @pytest.mark.parametrize("block_length", [8, 128])
    def test_block_longest_one_runs_match_reference(self, sample_bits, block_length):
        context = SequenceContext(sample_bits)
        per_block = context.block_longest_one_runs(block_length)
        num_blocks = sample_bits.size // block_length
        expected = [
            longest_run_of_ones(sample_bits[i * block_length : (i + 1) * block_length])
            for i in range(num_blocks)
        ]
        assert per_block.tolist() == expected

    @pytest.mark.parametrize("m", [1, 2, 3, 4, 6])
    @pytest.mark.parametrize("cyclic", [True, False])
    def test_pattern_counts_match_reference(self, sample_bits, m, cyclic):
        context = SequenceContext(sample_bits)
        expected = pattern_counts(sample_bits, m, cyclic=cyclic)
        assert np.array_equal(context.pattern_counts(m, cyclic=cyclic), expected)

    def test_window_values_match_bruteforce(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        context = SequenceContext(bits)
        values = context.window_values(3)
        expected = [int("".join(map(str, bits[i : i + 3])), 2) for i in range(6)]
        assert values.tolist() == expected

    def test_block_value_counts_match_bruteforce(self, sample_bits):
        context = SequenceContext(sample_bits)
        counts = context.block_value_counts(4)
        nibbles = sample_bits[: (sample_bits.size // 4) * 4].reshape(-1, 4)
        expected = np.bincount(nibbles @ np.array([8, 4, 2, 1]), minlength=16)
        assert np.array_equal(counts, expected)

    def test_run_length_histogram_matches_fips_reference(self, sample_bits):
        context = SequenceContext(sample_bits)
        assert context.run_length_histogram(cap=6) == _run_lengths(sample_bits)

    def test_longest_run_overall(self):
        context = SequenceContext("1100011110001")
        assert context.longest_run() == 4
        assert SequenceContext(np.zeros(7, dtype=np.uint8)).longest_run() == 7

    def test_memoization_returns_same_object(self, sample_bits):
        context = SequenceContext(sample_bits)
        assert context.pattern_counts(4) is context.pattern_counts(4)
        assert context.block_sums(128) is context.block_sums(128)

    def test_accepts_any_bitslike(self):
        assert SequenceContext("1011").ones == 3
        assert SequenceContext([1, 0, 1, 1]).ones == 3


class TestBatchContext:
    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            BatchContext(np.zeros(16, dtype=np.uint8))

    def test_row_out_of_range(self, sample_rows):
        batch = BatchContext(np.vstack(sample_rows))
        with pytest.raises(IndexError):
            batch.context(len(sample_rows))

    def test_every_statistic_matches_solo_context(self, sample_rows):
        batch = BatchContext(np.vstack(sample_rows))
        for row, context in zip(sample_rows, batch.contexts()):
            solo = SequenceContext(row)
            assert context.ones == solo.ones
            assert context.walk_extremes() == solo.walk_extremes()
            assert context.num_runs() == solo.num_runs()
            assert np.array_equal(context.block_sums(128), solo.block_sums(128))
            assert np.array_equal(
                context.block_longest_one_runs(8), solo.block_longest_one_runs(8)
            )
            for m in (1, 3, 4):
                assert np.array_equal(
                    context.pattern_counts(m), solo.pattern_counts(m)
                )
            assert np.array_equal(context.window_values(9), solo.window_values(9))
            assert np.array_equal(
                context.block_value_counts(4), solo.block_value_counts(4)
            )
            assert context.run_length_histogram() == solo.run_length_histogram()
            assert context.longest_run() == solo.longest_run()

    def test_batch_statistics_are_shared(self, sample_rows):
        batch = BatchContext(np.vstack(sample_rows))
        first = batch.ones()
        assert batch.ones() is first  # computed once for the whole batch
