"""The chaos harness's crash-recovery invariant, run end to end.

Each test boots the real ``fleet serve`` process with snapshotting, feeds
it deterministic chunks with injected faults, kills it with SIGKILL at a
seeded point, restarts it with ``--restore``, and asserts the recovered
fleet's per-device health verdicts are bit-identical to an uninterrupted
in-process control run.  This is the PR's acceptance invariant; the CI
chaos-smoke job runs the same harness through the CLI.
"""

import pytest

from repro.fleet.chaos import ChaosConfig, ChaosResult, run_chaos


@pytest.mark.parametrize("streaming", [False, True], ids=["matrix", "streaming"])
def test_kill9_recovery_matches_uninterrupted_run(streaming):
    config = ChaosConfig(
        devices=2,
        chunks_per_device=3,
        seed=13,
        streaming=streaming,
        snapshot_interval_s=0.1,
    )
    result = run_chaos(config)
    assert result.mismatches == [], result.mismatches
    assert result.matched
    assert result.killed  # the harness must actually have crashed the service
    assert result.clean_shutdown  # ...and the final shutdown must drain cleanly
    assert result.total_acks == config.devices * config.chunks_per_device
    assert 0 < result.acks_before_kill <= result.total_acks
    # The WAL generation overlap retained across checkpoints means replay
    # may see duplicates; the seq contract absorbs them silently.
    assert result.replay_applied + result.replay_duplicates >= 1


def test_result_report_is_json_ready():
    result = ChaosResult(
        matched=True,
        killed=True,
        clean_shutdown=True,
        acks_before_kill=2,
        total_acks=6,
        faults_injected=3,
        fault_counts={"drop": 1, "duplicate": 2},
        replay_applied=4,
        replay_duplicates=1,
        mismatches=[],
        summary={"design": "n128_light"},
    )
    report = result.to_dict()
    assert report["matched"] and report["fault_counts"]["duplicate"] == 2
    import json

    json.dumps(report)  # must serialise without custom encoders


class TestConfigValidation:
    def test_rejects_nonpositive_devices(self):
        with pytest.raises(ValueError):
            ChaosConfig(devices=0)

    def test_rejects_nonpositive_chunks(self):
        with pytest.raises(ValueError):
            ChaosConfig(chunks_per_device=0)

    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError):
            ChaosConfig(drop_rate=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(corrupt_rate=-0.1)

    def test_rejects_nonpositive_snapshot_interval(self):
        with pytest.raises(ValueError):
            ChaosConfig(snapshot_interval_s=0.0)
