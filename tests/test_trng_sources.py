"""Tests of the entropy-source and attack simulators."""

import numpy as np
import pytest

from repro.nist import frequency_test, runs_test, serial_test
from repro.trng import (
    AgingSource,
    AlternatingSource,
    AttackScenario,
    BiasedSource,
    BurstFailureSource,
    CorrelatedSource,
    DeadSource,
    EMInjectionAttack,
    FrequencyInjectionAttack,
    IdealSource,
    OscillatingBiasSource,
    ProbingAttack,
    RingOscillatorTRNG,
    StuckAtSource,
)


class TestIdealSource:
    def test_generates_requested_length(self):
        assert len(IdealSource(seed=1).generate(100)) == 100

    def test_reproducible_with_seed(self):
        a = IdealSource(seed=5).generate(256)
        b = IdealSource(seed=5).generate(256)
        assert a == b

    def test_different_seeds_differ(self):
        assert IdealSource(seed=1).generate(256) != IdealSource(seed=2).generate(256)

    def test_reset_restarts_stream(self):
        source = IdealSource(seed=9)
        first = source.generate(64)
        source.reset()
        assert source.generate(64) == first

    def test_bit_stream_iterator(self):
        bits = list(IdealSource(seed=3).bit_stream(10))
        assert len(bits) == 10
        assert set(bits) <= {0, 1}

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            IdealSource(seed=1).generate(-1)

    def test_roughly_balanced(self):
        bits = IdealSource(seed=7).generate(10000)
        assert 0.47 < bits.proportion < 0.53

    def test_bitserial_and_vectorised_paths_consistent(self):
        source = IdealSource(seed=13)
        serial = [source.next_bit() for _ in range(64)]
        assert set(serial) <= {0, 1}


class TestBiasedSource:
    def test_bias_respected(self):
        bits = BiasedSource(0.8, seed=1).generate(20000)
        assert 0.77 < bits.proportion < 0.83

    def test_extreme_bias(self):
        assert BiasedSource(1.0, seed=1).generate(100).ones == 100
        assert BiasedSource(0.0, seed=1).generate(100).ones == 0

    def test_invalid_bias(self):
        with pytest.raises(ValueError):
            BiasedSource(1.5)

    def test_detected_by_frequency_test(self):
        bits = BiasedSource(0.6, seed=2).generate(4096)
        assert not frequency_test(bits).passed(0.01)

    def test_name_contains_bias(self):
        assert "0.6" in BiasedSource(0.6).name


class TestCorrelatedSource:
    def test_half_probability_is_balanced(self):
        bits = CorrelatedSource(0.5, seed=3).generate(20000)
        assert 0.47 < bits.proportion < 0.53

    def test_high_repeat_probability_creates_long_runs(self):
        bits = CorrelatedSource(0.95, seed=4).generate(4096)
        assert not runs_test(bits).passed(0.01)

    def test_correlation_invisible_to_frequency_test(self):
        bits = CorrelatedSource(0.9, seed=5).generate(16384)
        assert frequency_test(bits).passed(0.001)

    def test_detected_by_serial_test(self):
        bits = CorrelatedSource(0.8, seed=6).generate(16384)
        assert not serial_test(bits, m=4).passed(0.01)

    def test_reset_clears_memory(self):
        source = CorrelatedSource(0.9, seed=7)
        first = source.generate(128)
        source.reset()
        assert source.generate(128) == first

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            CorrelatedSource(-0.1)


class TestOscillatingBiasSource:
    def test_long_term_balance(self):
        bits = OscillatingBiasSource(0.3, period=1024, seed=8).generate(16384)
        # Over whole periods the average bias cancels.
        assert 0.45 < bits.proportion < 0.55

    def test_current_bias_tracks_position(self):
        source = OscillatingBiasSource(0.4, period=100, seed=9)
        assert source.current_bias() == pytest.approx(0.5)
        for _ in range(25):
            source.next_bit()
        assert source.current_bias() == pytest.approx(0.9, abs=1e-6)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            OscillatingBiasSource(0.6, period=100)
        with pytest.raises(ValueError):
            OscillatingBiasSource(0.1, period=0)


class TestFailureSources:
    def test_stuck_at_values(self):
        assert StuckAtSource(1).generate(50).ones == 50
        assert StuckAtSource(0).generate(50).ones == 0

    def test_stuck_invalid_value(self):
        with pytest.raises(ValueError):
            StuckAtSource(2)

    def test_dead_source_is_zero(self):
        assert DeadSource().generate(100).ones == 0
        assert DeadSource().name == "DeadSource"

    def test_alternating_pattern(self):
        bits = AlternatingSource(pattern=(1, 1, 0)).generate(9)
        assert bits.to01() == "110110110"

    def test_alternating_balanced_but_not_random(self):
        bits = AlternatingSource().generate(4096)
        assert frequency_test(bits).passed(0.01)
        assert not runs_test(bits).passed(0.01)

    def test_alternating_invalid_pattern(self):
        with pytest.raises(ValueError):
            AlternatingSource(pattern=())
        with pytest.raises(ValueError):
            AlternatingSource(pattern=(0, 2))

    def test_alternating_reset(self):
        source = AlternatingSource(pattern=(1, 0, 0))
        source.next_bit()
        source.reset()
        assert source.next_bit() == 1

    def test_burst_failure_has_stuck_stretches(self):
        source = BurstFailureSource(burst_rate=0.01, burst_length=64, seed=10)
        bits = source.generate(8192)
        # Bursts of 64 zeros should push the longest zero-run well above the
        # ~13 expected for an ideal 8192-bit sequence.
        zero_runs = max(
            len(run) for run in "".join(map(str, bits)).split("1")
        )
        assert zero_runs >= 64

    def test_burst_failure_parameter_validation(self):
        with pytest.raises(ValueError):
            BurstFailureSource(burst_rate=2.0)
        with pytest.raises(ValueError):
            BurstFailureSource(burst_length=0)
        with pytest.raises(ValueError):
            BurstFailureSource(stuck_value=3)


class TestRingOscillator:
    def test_healthy_oscillator_is_balanced(self):
        bits = RingOscillatorTRNG(seed=11).generate(16384)
        assert 0.47 < bits.proportion < 0.53

    def test_healthy_oscillator_passes_basic_tests(self):
        bits = RingOscillatorTRNG(seed=12).generate(16384)
        assert frequency_test(bits).passed(0.001)
        assert runs_test(bits).passed(0.001)

    def test_locked_oscillator_is_deterministic(self):
        trng = RingOscillatorTRNG(seed=13, locked=True, lock_strength=1.0)
        bits = trng.generate(4096)
        assert not serial_test(bits, m=4).passed(0.01)

    def test_lock_and_unlock(self):
        trng = RingOscillatorTRNG(seed=14)
        assert trng.effective_jitter() > 0
        trng.lock(1.0)
        assert trng.effective_jitter() == 0.0
        trng.unlock()
        assert trng.effective_jitter() > 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RingOscillatorTRNG(ratio=0)
        with pytest.raises(ValueError):
            RingOscillatorTRNG(jitter=-0.1)
        with pytest.raises(ValueError):
            RingOscillatorTRNG(lock_strength=2.0)


class TestAttackModels:
    def test_frequency_injection_starts_at_configured_bit(self):
        trng = RingOscillatorTRNG(seed=15)
        attack = FrequencyInjectionAttack(trng, start_bit=100)
        for _ in range(100):
            attack.next_bit()
        assert not attack.active
        attack.next_bit()
        assert attack.active
        assert trng.locked

    def test_frequency_injection_degrades_output(self):
        trng = RingOscillatorTRNG(seed=16)
        attack = FrequencyInjectionAttack(trng, start_bit=0)
        bits = attack.generate(4096)
        assert not serial_test(bits, m=4).passed(0.01)

    def test_frequency_injection_reset_unlocks(self):
        trng = RingOscillatorTRNG(seed=17)
        attack = FrequencyInjectionAttack(trng, start_bit=0)
        attack.generate(16)
        attack.reset()
        assert not trng.locked

    def test_em_injection_imposes_carrier(self):
        attack = EMInjectionAttack(IdealSource(seed=18), coupling=1.0, carrier_period=2, seed=19)
        bits = attack.generate(64)
        assert bits.to01() == "10" * 32

    def test_em_injection_partial_coupling(self):
        attack = EMInjectionAttack(IdealSource(seed=20), coupling=0.9, carrier_period=2, seed=21)
        bits = attack.generate(8192)
        assert not serial_test(bits, m=4).passed(0.01)

    def test_em_injection_invalid_parameters(self):
        with pytest.raises(ValueError):
            EMInjectionAttack(IdealSource(seed=1), coupling=1.5)
        with pytest.raises(ValueError):
            EMInjectionAttack(IdealSource(seed=1), carrier_period=0)

    def test_probing_attack_grounds_alarm(self):
        probe = ProbingAttack(mode="ground")
        assert probe.tamper_alarm(True) is False
        assert probe.tamper_value(12345, 16) == 0

    def test_probing_attack_vdd(self):
        probe = ProbingAttack(mode="vdd")
        assert probe.tamper_alarm(False) is True
        assert probe.tamper_value(0, 8) == 255

    def test_probing_attack_invalid_mode(self):
        with pytest.raises(ValueError):
            ProbingAttack(mode="cut")

    def test_attack_scenario_container(self):
        scenario = AttackScenario("dead", DeadSource(), "wire cut", True)
        assert scenario.label == "dead"
        assert scenario.expected_detectable


class TestAgingSource:
    def test_initially_healthy(self):
        bits = AgingSource(drift_per_bit=0.0, seed=22).generate(8192)
        assert frequency_test(bits).passed(0.001)

    def test_drift_accumulates(self):
        source = AgingSource(drift_per_bit=1e-4, seed=23)
        source.generate(4000)
        assert source.current_bias() == pytest.approx(0.9, abs=0.01)
        assert source.age_bits == 4000

    def test_bias_saturates(self):
        source = AgingSource(drift_per_bit=1.0, max_bias=0.75, seed=24)
        source.generate(10)
        assert source.current_bias() == 0.75

    def test_old_source_fails_frequency_test(self):
        source = AgingSource(drift_per_bit=5e-5, seed=25)
        source.generate(20000)  # age it
        assert not frequency_test(source.generate(8192)).passed(0.01)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AgingSource(initial_bias=1.5)
        with pytest.raises(ValueError):
            AgingSource(min_bias=0.8, max_bias=0.2)
