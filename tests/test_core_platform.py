"""Tests of the OnTheFlyPlatform (Fig. 1 wiring) and its reports."""

import pytest

from repro.core.configs import get_design
from repro.core.platform import OnTheFlyPlatform
from repro.core.results import PlatformReport
from repro.trng import BiasedSource, IdealSource, StuckAtSource


@pytest.fixture(scope="module")
def small_platform():
    return OnTheFlyPlatform("n128_medium", alpha=0.01)


class TestPlatformConstruction:
    def test_design_by_name_or_object(self):
        by_name = OnTheFlyPlatform("n128_light")
        by_object = OnTheFlyPlatform(get_design("n128_light"))
        assert by_name.design == by_object.design

    def test_unknown_design(self):
        with pytest.raises(KeyError):
            OnTheFlyPlatform("n42_light")

    def test_exposes_design_attributes(self, small_platform):
        assert small_platform.n == 128
        assert 11 in small_platform.tests

    def test_hardware_and_software_share_parameters(self, small_platform):
        assert small_platform.hardware.params == small_platform.software.params

    def test_repr(self, small_platform):
        assert "n128_medium" in repr(small_platform)


class TestEvaluation:
    def test_sequence_length_enforced(self, small_platform):
        with pytest.raises(ValueError):
            small_platform.evaluate_sequence([0, 1, 0])

    def test_ideal_sequence_passes(self, small_platform):
        report = small_platform.evaluate_sequence(IdealSource(seed=50).generate(128))
        assert isinstance(report, PlatformReport)
        assert report.passed
        assert report.failing_tests == []
        assert report.consistency_violations == []

    def test_stuck_source_fails(self, small_platform):
        report = small_platform.evaluate_source(StuckAtSource(0))
        assert not report.passed
        assert 1 in report.failing_tests
        assert 13 in report.failing_tests

    def test_report_contents(self, small_platform):
        report = small_platform.evaluate_source(IdealSource(seed=51))
        assert report.design_name == "n128_medium"
        assert report.n == 128
        assert report.alpha == 0.01
        assert set(report.verdicts) == set(small_platform.tests)
        assert report.hardware_values  # register file snapshot included
        assert report.instruction_counts.total() > 0

    def test_summary_rows(self, small_platform):
        report = small_platform.evaluate_source(IdealSource(seed=52))
        rows = report.summary_rows()
        assert len(rows) == len(small_platform.tests)
        assert all({"test", "name", "statistic", "threshold", "passed"} <= set(row) for row in rows)

    def test_accelerated_and_cycle_accurate_agree(self):
        platform = OnTheFlyPlatform("n128_light")
        bits = IdealSource(seed=53).generate(128)
        slow = platform.evaluate_sequence(bits, accelerated=False)
        fast = platform.evaluate_sequence(bits, accelerated=True)
        assert slow.hardware_values == fast.hardware_values
        assert slow.failing_tests == fast.failing_tests

    def test_repeated_evaluation_resets_hardware(self, small_platform):
        bits = IdealSource(seed=54).generate(128)
        first = small_platform.evaluate_sequence(bits)
        second = small_platform.evaluate_sequence(bits)
        assert first.hardware_values == second.hardware_values

    def test_biased_source_fails_frequency(self):
        platform = OnTheFlyPlatform("n65536_light")
        report = platform.evaluate_sequence(
            BiasedSource(0.55, seed=55).generate(65536), accelerated=True
        )
        assert 1 in report.failing_tests
        assert 13 in report.failing_tests


class TestAlphaFlexibility:
    def test_set_alpha_rebuilds_only_software(self, small_platform):
        hardware_before = small_platform.hardware
        small_platform.set_alpha(0.001)
        assert small_platform.hardware is hardware_before
        assert small_platform.software.alpha == 0.001
        small_platform.set_alpha(0.01)

    def test_alpha_changes_decisions_monotonically(self):
        platform = OnTheFlyPlatform("n65536_light")
        bits = BiasedSource(0.505, seed=56).generate(65536)
        platform.set_alpha(0.01)
        strict = platform.evaluate_sequence(bits, accelerated=True)
        platform.set_alpha(0.001)
        loose = platform.evaluate_sequence(bits, accelerated=True)
        assert set(loose.failing_tests) <= set(strict.failing_tests)
