"""Tests of the batch executor, the test registry and batched monitoring."""

import numpy as np
import pytest

from repro.core.monitor import HealthState, OnTheFlyMonitor
from repro.core.platform import OnTheFlyPlatform
from repro.engine import (
    DEFAULT_REGISTRY,
    RegisteredTest,
    SequenceContext,
    TestRegistry,
    run_batch,
)
from repro.nist.frequency import frequency_test
from repro.nist.suite import NistSuite
from repro.trng import IdealSource, StuckAtSource


@pytest.fixture(scope="module")
def batch_sequences():
    return [IdealSource(seed=100 + i).generate(2048).bits for i in range(4)]


class TestRegistryLookup:
    def test_all_layers_registered(self):
        ids = DEFAULT_REGISTRY.ids()
        assert sum(1 for test_id in ids if test_id.startswith("nist.")) == 15
        assert sum(1 for test_id in ids if test_id.startswith("fips.")) == 4
        assert "hw.platform" in ids

    def test_aliases_resolve_to_same_test(self):
        by_number = DEFAULT_REGISTRY.resolve(1)
        assert DEFAULT_REGISTRY.resolve("1") is by_number
        assert DEFAULT_REGISTRY.resolve("nist.1") is by_number
        assert DEFAULT_REGISTRY.resolve("nist.frequency") is by_number
        assert DEFAULT_REGISTRY.resolve(by_number) is by_number

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_REGISTRY.resolve("nist.nonexistent")

    def test_contains(self):
        assert "fips.poker" in DEFAULT_REGISTRY
        assert 11 in DEFAULT_REGISTRY
        assert "bogus" not in DEFAULT_REGISTRY

    def test_duplicate_registration_rejected(self):
        registry = TestRegistry()
        test = RegisteredTest(id="x", name="x", runner=lambda ctx: None)
        registry.register(test)
        with pytest.raises(ValueError):
            registry.register(RegisteredTest(id="x", name="y", runner=lambda ctx: None))
        registry.register(RegisteredTest(id="x", name="y", runner=lambda ctx: None),
                          replace=True)

    def test_custom_registry_usable_by_run_batch(self, batch_sequences):
        registry = TestRegistry()
        registry.register(
            RegisteredTest(
                id="custom.frequency",
                name="Custom",
                runner=lambda ctx: frequency_test(ctx.bits),
            )
        )
        reports = run_batch(batch_sequences[:2], tests=["custom.frequency"],
                            registry=registry)
        assert reports[0].results["custom.frequency"].p_value == frequency_test(
            batch_sequences[0]
        ).p_value


class TestRunBatch:
    def test_empty_batch(self):
        assert run_batch([]) == []

    def test_one_report_per_sequence_in_order(self, batch_sequences):
        reports = run_batch(batch_sequences, tests=[1, 3])
        assert len(reports) == len(batch_sequences)
        for bits, report in zip(batch_sequences, reports):
            assert report.n == bits.size
            assert set(report.results) == {"nist.frequency", "nist.runs"}

    def test_parameters_forwarded(self, batch_sequences):
        reports = run_batch(
            batch_sequences, tests=[2], parameters={2: {"block_length": 64}}
        )
        assert reports[0].results["nist.block_frequency"].details["block_length"] == 64

    def test_errors_collected(self):
        reports = run_batch([[0, 1] * 32], tests=[9])
        assert "nist.universal" in reports[0].errors
        assert not reports[0].results

    def test_errors_raised_when_requested(self):
        with pytest.raises(ValueError):
            run_batch([[0, 1] * 32], tests=[9], skip_errors=False)

    def test_duplicate_specs_run_once(self, batch_sequences):
        """Regression: the same test given by number and id alias used to run
        twice, silently overwriting its own result."""
        calls = []
        registry = TestRegistry()
        registry.register(
            RegisteredTest(
                id="count.frequency",
                name="Counting",
                runner=lambda ctx: calls.append(1) or frequency_test(ctx.bits),
                aliases=("cf",),
            )
        )
        reports = run_batch(
            batch_sequences[:1], tests=["count.frequency", "cf", "count.frequency"],
            registry=registry,
        )
        assert len(calls) == 1
        assert set(reports[0].results) == {"count.frequency"}

    def test_duplicate_nist_aliases_dedupe_preserving_order(self, batch_sequences):
        reports = run_batch(batch_sequences[:1], tests=[3, 1, "nist.runs", "1", 3])
        assert list(reports[0].results) == ["nist.runs", "nist.frequency"]

    def test_non_valueerror_recorded_not_raised(self, batch_sequences):
        """Regression: a non-ValueError from a test (here a TypeError from a
        bogus parameter) used to crash the whole batch despite skip_errors."""
        reports = run_batch(
            batch_sequences[:2], tests=[1, 3], parameters={1: {"bogus_kwarg": 1}}
        )
        for report in reports:
            assert "nist.frequency" in report.errors
            assert "TypeError" in report.errors["nist.frequency"]
            assert "nist.runs" in report.results  # the rest of the batch ran

    def test_non_valueerror_raised_without_skip_errors(self, batch_sequences):
        with pytest.raises(TypeError):
            run_batch(batch_sequences[:1], tests=[1],
                      parameters={1: {"bogus_kwarg": 1}}, skip_errors=False)

    def test_pooled_error_reraised_with_original_type(self, batch_sequences):
        """skip_errors=False must surface the worker's original exception
        type, matching the inline path."""
        with pytest.raises(TypeError):
            run_batch(batch_sequences[:1], tests=[5], processes=2,
                      parameters={5: {"bogus_kwarg": 1}}, skip_errors=False)

    def test_conflicting_parameter_aliases_rejected(self, batch_sequences):
        """The same test keyed under two aliases with different kwargs must be
        an error, not a silent overwrite."""
        with pytest.raises(ValueError, match="conflicting parameters"):
            run_batch(
                batch_sequences[:1], tests=[2],
                parameters={2: {"block_length": 16},
                            "nist.block_frequency": {"block_length": 32}},
            )
        # identical kwargs under two aliases are harmless
        reports = run_batch(
            batch_sequences[:1], tests=[2],
            parameters={2: {"block_length": 64},
                        "nist.block_frequency": {"block_length": 64}},
        )
        assert reports[0].results["nist.block_frequency"].details["block_length"] == 64

    def test_pooled_non_valueerror_recorded_not_raised(self, batch_sequences):
        """Regression: _pool_worker only caught ValueError, so any other
        exception from an expensive test crashed the batch via
        future.result() even with skip_errors=True."""
        reports = run_batch(
            batch_sequences, tests=[1, 5], processes=2,
            parameters={5: {"bogus_kwarg": 1}},
        )
        for report in reports:
            assert "nist.rank" in report.errors
            assert "TypeError" in report.errors["nist.rank"]
            assert "nist.frequency" in report.results

    def test_report_helpers(self, batch_sequences):
        report = run_batch([np.ones(256, dtype=np.uint8)], tests=[1, 3])[0]
        assert not report.passed()
        assert "nist.frequency" in report.failing_tests()
        assert set(report.p_values()) == {"nist.frequency", "nist.runs"}

    def test_hw_platform_through_registry(self):
        sequences = [IdealSource(seed=55).generate(128).bits for _ in range(3)]
        reports = run_batch(
            sequences, tests=["hw.platform"],
            parameters={"hw.platform": {"design": "n128_light"}},
        )
        platform = OnTheFlyPlatform("n128_light")
        for bits, report in zip(sequences, reports):
            expected = platform.evaluate_sequence(bits, accelerated=True)
            result = report.results["hw.platform"]
            assert result.passed() == expected.passed
            assert result.details["failing_tests"] == expected.failing_tests

    def test_hw_platform_wrong_length_is_error(self):
        report = run_batch(
            [np.zeros(64, dtype=np.uint8)], tests=["hw.platform"],
            parameters={"hw.platform": {"design": "n128_light"}},
        )[0]
        assert "hw.platform" in report.errors


class TestPlatformBatch:
    def test_evaluate_batch_matches_evaluate_sequence(self):
        platform = OnTheFlyPlatform("n128_light")
        sequences = [IdealSource(seed=66 + i).generate(128).bits for i in range(3)]
        batch_reports = platform.evaluate_batch(sequences)
        for bits, report in zip(sequences, batch_reports):
            solo = platform.evaluate_sequence(bits, accelerated=True)
            assert report.passed == solo.passed
            assert report.hardware_values == solo.hardware_values

    def test_evaluate_batch_validates_length(self):
        platform = OnTheFlyPlatform("n128_light")
        with pytest.raises(ValueError):
            platform.evaluate_batch([np.zeros(64, dtype=np.uint8)])


class TestBatchedMonitoring:
    def test_batched_trajectory_matches_per_sequence(self):
        per_seq = OnTheFlyMonitor(OnTheFlyPlatform("n128_light"), fail_after=2)
        batched = OnTheFlyMonitor(OnTheFlyPlatform("n128_light"), fail_after=2)
        per_seq.monitor(IdealSource(seed=321), num_sequences=6)
        batched.monitor(IdealSource(seed=321), num_sequences=6, batch_size=3)
        assert [e.state for e in per_seq.history] == [e.state for e in batched.history]
        assert per_seq.failure_rate() == batched.failure_rate()

    def test_batched_monitoring_detects_failure(self):
        monitor = OnTheFlyMonitor(OnTheFlyPlatform("n128_light"), fail_after=2)
        monitor.monitor(StuckAtSource(0), num_sequences=4, batch_size=4)
        assert monitor.state is HealthState.FAILED
        assert monitor.detection_latency_bits() == 2 * 128

    def test_invalid_batch_size(self):
        monitor = OnTheFlyMonitor(OnTheFlyPlatform("n128_light"))
        with pytest.raises(ValueError):
            monitor.monitor(IdealSource(seed=1), num_sequences=2, batch_size=0)


class TestBoundedHistory:
    def test_max_history_bounds_memory_but_keeps_exact_counters(self):
        monitor = OnTheFlyMonitor(
            OnTheFlyPlatform("n128_light"), fail_after=3, max_history=4
        )
        monitor.monitor(IdealSource(seed=11), num_sequences=10)
        assert len(monitor.history) == 4
        assert monitor.sequences_monitored == 10
        assert monitor.history[-1].sequence_index == 9

    def test_failure_rate_exact_after_eviction(self):
        observed = []
        monitor = OnTheFlyMonitor(
            OnTheFlyPlatform("n128_light"), fail_after=100, max_history=2,
            on_event=lambda event: observed.append(event.report.passed),
        )
        monitor.monitor(StuckAtSource(0), num_sequences=5)
        monitor.monitor(IdealSource(seed=12), num_sequences=5)
        assert len(monitor.history) == 2
        # Exact despite eviction: matches the rate over ALL observed events.
        expected = observed.count(False) / len(observed)
        assert expected >= 0.5  # the five stuck sequences all failed
        assert monitor.failure_rate() == pytest.approx(expected)

    def test_detection_latency_survives_eviction(self):
        monitor = OnTheFlyMonitor(
            OnTheFlyPlatform("n128_light"), fail_after=2, max_history=1
        )
        monitor.monitor(StuckAtSource(1), num_sequences=6)
        assert monitor.detection_latency_bits() == 2 * 128

    def test_reset_restores_bound_and_counters(self):
        monitor = OnTheFlyMonitor(
            OnTheFlyPlatform("n128_light"), fail_after=2, max_history=3
        )
        monitor.monitor(StuckAtSource(0), num_sequences=4)
        monitor.reset()
        assert monitor.sequences_monitored == 0
        assert monitor.failure_rate() == 0.0
        assert monitor.detection_latency_bits() is None
        assert monitor.history.maxlen == 3

    def test_invalid_max_history(self):
        with pytest.raises(ValueError):
            OnTheFlyMonitor(OnTheFlyPlatform("n128_light"), max_history=0)


class TestSuiteBatchApi:
    def test_suite_run_batch_reports_keyed_by_number(self, batch_sequences):
        suite = NistSuite(tests=[1, 11, 13])
        reports = suite.run_batch(batch_sequences)
        assert len(reports) == len(batch_sequences)
        assert sorted(reports[0].results) == [1, 11, 13]

    def test_suite_run_batch_collects_errors(self):
        suite = NistSuite(tests=[9])
        reports = suite.run_batch([[0, 1] * 32])
        assert 9 in reports[0].errors
