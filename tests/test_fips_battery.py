"""Tests of the FIPS 140-2 baseline battery."""

import numpy as np
import pytest

from repro.fips import (
    FIPS_BLOCK_BITS,
    fips_battery,
    long_run_test,
    monobit_test,
    poker_test,
    runs_test,
)
from repro.trng import AlternatingSource, BiasedSource, CorrelatedSource, IdealSource, StuckAtSource


@pytest.fixture(scope="module")
def ideal_block():
    return IdealSource(seed=8800).generate(FIPS_BLOCK_BITS).bits


class TestBlockHandling:
    def test_block_size_enforced(self):
        with pytest.raises(ValueError):
            monobit_test([0, 1] * 100)
        with pytest.raises(ValueError):
            fips_battery([0, 1] * 100)


class TestMonobit:
    def test_ideal_passes(self, ideal_block):
        assert monobit_test(ideal_block).passed

    def test_biased_fails(self):
        bits = BiasedSource(0.6, seed=8801).generate(FIPS_BLOCK_BITS)
        assert not monobit_test(bits).passed

    def test_boundaries_are_exclusive(self):
        bits = np.zeros(FIPS_BLOCK_BITS, dtype=np.uint8)
        bits[:9725] = 1
        assert not monobit_test(bits).passed
        bits[:9726] = 1
        assert monobit_test(bits).passed


class TestPoker:
    def test_ideal_passes(self, ideal_block):
        assert poker_test(ideal_block).passed

    def test_repeated_nibble_fails(self):
        bits = np.tile([1, 0, 1, 0], FIPS_BLOCK_BITS // 4).astype(np.uint8)
        assert not poker_test(bits).passed

    def test_counts_sum_to_nibbles(self, ideal_block):
        details = poker_test(ideal_block).details
        assert sum(details["counts"]) == FIPS_BLOCK_BITS // 4


class TestRuns:
    def test_ideal_passes(self, ideal_block):
        assert runs_test(ideal_block).passed

    def test_correlated_fails(self):
        bits = CorrelatedSource(0.85, seed=8802).generate(FIPS_BLOCK_BITS)
        assert not runs_test(bits).passed

    def test_alternating_fails(self):
        bits = AlternatingSource().generate(FIPS_BLOCK_BITS)
        assert not runs_test(bits).passed

    def test_histogram_structure(self, ideal_block):
        histogram = runs_test(ideal_block).details["histogram"]
        assert set(histogram) == {0, 1}
        assert set(histogram[0]) == {1, 2, 3, 4, 5, 6}


class TestLongRun:
    def test_ideal_passes(self, ideal_block):
        assert long_run_test(ideal_block).passed

    def test_embedded_long_run_fails(self, ideal_block):
        bits = np.array(ideal_block, copy=True)
        bits[1000:1026] = 1  # a run of 26 ones
        assert not long_run_test(bits).passed

    def test_run_of_25_passes(self):
        bits = IdealSource(seed=8803).generate(FIPS_BLOCK_BITS).bits.copy()
        bits[0:25] = 1
        bits[25] = 0
        result = long_run_test(bits)
        assert result.details["longest_run"] >= 25
        # only fails if some other run naturally reached 26, which is
        # essentially impossible for an ideal source
        assert result.passed


class TestBattery:
    def test_ideal_source_passes_battery(self, ideal_block):
        report = fips_battery(ideal_block)
        assert report.passed
        assert report.failing_tests() == []
        assert len(report.results) == 4

    def test_stuck_source_fails_everything(self):
        report = fips_battery(StuckAtSource(1).generate(FIPS_BLOCK_BITS))
        assert not report.passed
        assert len(report.failing_tests()) >= 3

    def test_small_bias_passes_fips_but_not_the_platform(self):
        """The baseline comparison: a 0.8% bias slips past the FIPS battery
        but is caught by the paper's 65536-bit NIST-based design."""
        from repro.core.platform import OnTheFlyPlatform

        source = BiasedSource(0.508, seed=8804)
        fips_report = fips_battery(source.generate(FIPS_BLOCK_BITS))
        source.reset()
        platform = OnTheFlyPlatform("n65536_light")
        platform_report = platform.evaluate_sequence(source.generate(65536), accelerated=True)
        assert fips_report.passed
        assert not platform_report.passed
