"""The documented public API stays importable from the package roots."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("name", sorted(repro.__all__))
    def test_every_exported_name_resolves(self, name):
        assert getattr(repro, name) is not None

    def test_core_classes_exposed(self):
        assert repro.OnTheFlyPlatform is not None
        assert repro.OnTheFlyMonitor is not None
        assert repro.FlexibleLengthPlatform is not None
        assert repro.UnifiedTestingBlock is not None

    def test_design_helpers_exposed(self):
        assert len(repro.STANDARD_DESIGNS) == 8
        assert repro.get_design("n128_light").n == 128
        assert len(repro.list_designs()) == 8


class TestSubpackageApi:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.analysis",
            "repro.campaign",
            "repro.core",
            "repro.engine",
            "repro.fleet",
            "repro.hwsim",
            "repro.hwtests",
            "repro.sw",
            "repro.nist",
            "repro.trng",
            "repro.eval",
            "repro.fips",
            "repro.cli",
        ],
    )
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert getattr(module, name) is not None, f"{module_name}.{name}"

    def test_nist_exports_all_fifteen_tests(self):
        import repro.nist as nist

        test_functions = [name for name in nist.__all__ if name.endswith("_test")]
        assert len(test_functions) == 15

    def test_trng_exports_replay_and_capture(self):
        import repro.trng as trng

        assert "ReplaySource" in trng.__all__
        assert "CaptureSource" in trng.__all__

    def test_analysis_registry_lists_every_shipped_checker(self):
        from repro.analysis import DEFAULT_REGISTRY
        from repro.analysis.checkers import (
            ApiHygieneChecker,
            DeterminismChecker,
            LockDisciplineChecker,
            ObservabilityChecker,
            PackedKernelChecker,
            RobustnessChecker,
        )

        registered = set(DEFAULT_REGISTRY.checkers())
        assert {
            ApiHygieneChecker,
            DeterminismChecker,
            LockDisciplineChecker,
            ObservabilityChecker,
            PackedKernelChecker,
            RobustnessChecker,
        } <= registered

        rule_ids = [rule.id for rule in DEFAULT_REGISTRY.rules()]
        assert sorted(rule_ids) == sorted(set(rule_ids)), "duplicate rule ids"
        assert set(rule_ids) == {
            "DET001", "DET002", "DET003", "DET004", "DET005",
            "PKD001", "PKD002", "PKD003",
            "LCK001", "LCK002",
            "API001", "API002", "API003",
            "OBS001",
            "ROB001",
        }
        assert set(DEFAULT_REGISTRY.families()) == {
            "determinism", "packed-kernel", "lock-discipline", "api-hygiene",
            "observability", "robustness",
        }

    def test_analysis_cli_surface(self, capsys):
        from repro.analysis.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["src", "--format", "json", "--strict"])
        assert args.paths == ["src"]
        assert args.format == "json" and args.strict

    def test_main_cli_exposes_lint_subcommand(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["lint", "src", "--list-rules"])
        assert args.command == "lint"
        assert args.list_rules

    def test_docstrings_present_on_public_entry_points(self):
        for obj in (
            repro.OnTheFlyPlatform,
            repro.OnTheFlyMonitor,
            repro.FlexibleLengthPlatform,
            repro.UnifiedTestingBlock,
            repro.NistSuite,
            repro.SoftwareVerifier,
            repro.CriticalValues,
        ):
            assert obj.__doc__ and obj.__doc__.strip()
