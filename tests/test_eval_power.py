"""Tests of the detection-power (type-2 error) evaluation helpers."""

import pytest

from repro.eval.power import (
    PowerPoint,
    bias_power_curve,
    correlation_power_curve,
    detection_rate,
    false_alarm_rate,
)
from repro.trng import StuckAtSource


class TestPowerPoint:
    def test_detection_rate(self):
        point = PowerPoint("d", 0.6, trials=20, detections=15)
        assert point.detection_rate == 0.75

    def test_zero_trials(self):
        assert PowerPoint("d", 0.6, 0, 0).detection_rate == 0.0


class TestDetectionRate:
    def test_total_failure_always_detected(self):
        rate = detection_rate("n128_light", lambda trial: StuckAtSource(0), trials=5)
        assert rate == 1.0

    def test_trials_validation(self):
        with pytest.raises(ValueError):
            detection_rate("n128_light", lambda trial: StuckAtSource(0), trials=0)

    def test_false_alarm_rate_is_small(self):
        # 9 decisions per sequence at alpha=0.01; expect only occasional flags.
        rate = false_alarm_rate("n128_light", trials=30, seed=500)
        assert rate <= 0.2


class TestPowerCurves:
    def test_bias_power_increases_with_bias(self):
        points = bias_power_curve("n128_light", (0.5, 0.75), trials=12, seed=600)
        assert points[0].detection_rate <= points[1].detection_rate
        assert points[1].detection_rate >= 0.9

    def test_longer_design_detects_smaller_bias(self):
        """The motivation for the 65536/2^20 designs: sensitivity grows with n."""
        small = bias_power_curve("n128_light", (0.55,), trials=12, seed=700)[0]
        large = bias_power_curve("n65536_light", (0.55,), trials=12, seed=700)[0]
        assert large.detection_rate >= small.detection_rate
        assert large.detection_rate >= 0.9

    def test_correlation_power_curve(self):
        points = correlation_power_curve("n128_medium", (0.5, 0.9), trials=10, seed=800)
        assert points[0].detection_rate <= 0.4
        assert points[1].detection_rate >= 0.9

    def test_points_record_parameters(self):
        points = bias_power_curve("n128_light", (0.6,), trials=3, seed=900)
        assert points[0].design == "n128_light"
        assert points[0].parameter == 0.6
        assert points[0].trials == 3
