"""Durability layer: snapshots, journal, replay, and state round-trips.

The load-bearing invariant throughout: ``load_state(state_dict())`` puts a
fresh object into a state *bit-identical* to the original — pinned not by
comparing internals but by running both sides forward and demanding
identical observable behaviour (health verdicts, round reports, streaming
windows).
"""

import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monitor import OnTheFlyMonitor
from repro.core.platform import OnTheFlyPlatform
from repro.engine.streaming import StreamingBatchContext, StreamingContext
from repro.fleet import (
    DeviceRegistry,
    DuplicateIngestError,
    DurableFleet,
    FleetMix,
    FleetScheduler,
    IngestSequenceGapError,
    recover_fleet,
)
from repro.fleet.durability import (
    IngestJournal,
    atomic_write_bytes,
    atomic_write_json,
    decode_state,
    encode_state,
    read_journal,
    read_snapshot,
    replay_records,
    write_snapshot,
)


def make_fleet(streaming=False, devices=8, seed=5):
    registry = DeviceRegistry("n128_light")
    mix = FleetMix.parse("healthy-ideal:0.7,biased-0.60:0.3")
    registry.populate(devices, mix, seed=seed)
    return FleetScheduler(registry, backend="packed", streaming=streaming)


def round_key(fleet_round):
    data = fleet_round.to_dict()
    data.pop("elapsed_s")
    return data


def health_map(scheduler):
    return {d.device_id: d.snapshot() for d in scheduler.registry}


# ---------------------------------------------------------------- atomic IO
class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "state.bin"
        atomic_write_bytes(target, b"one")
        assert target.read_bytes() == b"one"
        atomic_write_bytes(target, b"two")
        assert target.read_bytes() == b"two"
        # No tmp droppings left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["state.bin"]

    def test_json_helper_reports_size(self, tmp_path):
        target = tmp_path / "state.json"
        size = atomic_write_json(target, {"a": 1})
        assert target.stat().st_size == size
        assert json.loads(target.read_text()) == {"a": 1}


# ---------------------------------------------------------------- codec
class TestStateCodec:
    def test_arrays_round_trip_dtype_exact(self):
        state = {
            "words": np.arange(6, dtype=np.uint64).reshape(2, 3) << np.uint64(60),
            "sums": np.array([[-3, 7]], dtype=np.int16),
            "walk": np.array([2**40, -(2**40)], dtype=np.int64),
            "blob": b"\x00\xff pickled",
            "nested": {"list": [1, "x", None], "scalar": np.int64(9)},
        }
        decoded = decode_state(json.loads(json.dumps(encode_state(state))))
        for key in ("words", "sums", "walk"):
            assert decoded[key].dtype == state[key].dtype
            np.testing.assert_array_equal(decoded[key], state[key])
        assert decoded["blob"] == state["blob"]
        assert decoded["nested"]["list"] == [1, "x", None]
        assert decoded["nested"]["scalar"] == 9


# ---------------------------------------------------------------- journal
class TestIngestJournal:
    def test_append_and_read(self, tmp_path):
        path = tmp_path / "wal.00000000.jsonl"
        with IngestJournal(path) as journal:
            journal.append_device("dev-a", scenario=None, seed=None)
            journal.append_ingest("dev-a", np.ones(12, dtype=np.uint8), seq=0)
            journal.append_round(3)
        records, torn = read_journal(path)
        assert not torn
        assert [r["t"] for r in records] == ["device", "ingest", "round"]
        assert records[1]["seq"] == 0 and records[1]["nbits"] == 12
        assert records[2]["index"] == 3

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "wal.00000000.jsonl"
        with IngestJournal(path) as journal:
            journal.append_round(0)
            journal.append_round(1)
        raw = path.read_bytes()
        path.write_bytes(raw[:-7])  # kill -9 mid-append
        records, torn = read_journal(path)
        assert torn
        assert [r["index"] for r in records] == [0]

    def test_corrupt_crc_stops_the_read(self, tmp_path):
        path = tmp_path / "wal.00000000.jsonl"
        with IngestJournal(path) as journal:
            journal.append_round(0)
        line = path.read_text()
        path.write_text("deadbeef" + line[8:])
        records, torn = read_journal(path)
        assert torn and records == []

    def test_append_after_close_reopens(self, tmp_path):
        path = tmp_path / "wal.00000000.jsonl"
        journal = IngestJournal(path)
        journal.append_round(0)
        journal.close()
        journal.append_round(1)  # request racing a checkpoint rotation
        journal.close()
        records, torn = read_journal(path)
        assert not torn and [r["index"] for r in records] == [0, 1]


# ------------------------------------------------------- streaming round-trip
def chunked(bits, sizes):
    out, start = [], 0
    for size in sizes:
        out.append(bits[start : start + size])
        start += size
    if start < bits.size:
        out.append(bits[start:])
    return [c for c in out if c.size]


class TestStreamingStateRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        split=st.integers(min_value=1, max_value=511),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_restore_mid_stream_is_bit_identical(self, split, seed):
        """Cut a bit stream anywhere — across windows, mid-window, mid-byte;
        a context restored at the cut finishes the stream identically."""
        n = 128
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, 512, dtype=np.uint8)
        reference = StreamingContext(n, backend="packed")
        restored_feed = StreamingContext(n, backend="packed")
        reference.push(bits)
        restored_feed.push(bits[:split])
        restored = StreamingContext.from_state(restored_feed.state_dict())
        restored.push(bits[split:])
        assert restored.total_bits == reference.total_bits
        assert restored.bits_stored == reference.bits_stored
        assert restored.tail_bits == reference.tail_bits
        assert restored.window_ready == reference.window_ready
        if reference.window_ready:
            np.testing.assert_array_equal(
                restored.window_matrix().words, reference.window_matrix().words
            )
            assert restored.window_stats() == reference.window_stats()

    def test_partial_tail_byte_survives(self):
        context = StreamingContext(128, backend="packed")
        context.push(np.ones(5, dtype=np.uint8))  # < one byte pending
        clone = StreamingContext.from_state(context.state_dict())
        assert clone.total_bits == 5 and clone.tail_bits == 5
        clone.push(np.zeros(123, dtype=np.uint8))
        context.push(np.zeros(123, dtype=np.uint8))
        np.testing.assert_array_equal(
            clone.window_matrix().words, context.window_matrix().words
        )
        assert clone.window_stats() == context.window_stats()

    def test_batched_rows_round_trip(self):
        batch = StreamingBatchContext(4, 64, backend="packed")
        rng = np.random.default_rng(0)
        batch.push(rng.integers(0, 2, (4, 97), dtype=np.uint8))
        clone = StreamingBatchContext.from_state(batch.state_dict())
        extra = rng.integers(0, 2, (4, 31), dtype=np.uint8)
        batch.push(extra)
        clone.push(extra)
        np.testing.assert_array_equal(
            clone.window_matrix().words, batch.window_matrix().words
        )

    def test_geometry_mismatch_is_rejected(self):
        state = StreamingContext(128).state_dict()
        with pytest.raises(ValueError):
            StreamingContext(256).load_state(state)

    def test_version_gate(self):
        state = StreamingContext(128).state_dict()
        state["version"] = 99
        with pytest.raises(ValueError):
            StreamingContext(128).load_state(state)


# ------------------------------------------------------- monitor round-trip
class TestMonitorRoundTrip:
    def test_counters_and_state_survive(self):
        platform = OnTheFlyPlatform("n128_light", alpha=0.01)
        monitor = OnTheFlyMonitor(platform, suspect_after=1, fail_after=2)
        rng = np.random.default_rng(3)
        for _ in range(4):
            bits = (rng.random(128) < 0.95).astype(np.uint8)
            monitor.observe(platform.evaluate_sequence(bits))
        clone = OnTheFlyMonitor(platform, suspect_after=1, fail_after=2)
        clone.load_state(monitor.state_dict())
        assert clone.state == monitor.state
        assert clone.sequences_monitored == monitor.sequences_monitored
        assert clone.failures_total == monitor.failures_total
        assert clone.first_failed_index == monitor.first_failed_index
        assert clone.first_failing_tests == monitor.first_failing_tests
        # Both sides must keep folding identically.
        tail = platform.evaluate_sequence((rng.random(128) < 0.95).astype(np.uint8))
        assert monitor.observe(tail).state == clone.observe(tail).state
        assert clone.state == monitor.state
        assert clone.state_dict() == monitor.state_dict()

    def test_policy_mismatch_is_rejected(self):
        platform = OnTheFlyPlatform("n128_light", alpha=0.01)
        state = OnTheFlyMonitor(platform, suspect_after=1, fail_after=2).state_dict()
        other = OnTheFlyMonitor(platform, suspect_after=2, fail_after=3)
        with pytest.raises(ValueError):
            other.load_state(state)


# ------------------------------------------------------- scheduler round-trip
class TestSchedulerStateRoundTrip:
    @pytest.mark.parametrize("streaming", [False, True])
    def test_continued_rounds_are_bit_identical(self, streaming):
        scheduler = make_fleet(streaming=streaming)
        scheduler.run(3)
        state = scheduler.state_dict()

        registry = DeviceRegistry.from_state(state["registry"])
        clone = FleetScheduler(
            registry, backend=state["backend"], streaming=state["streaming"]
        )
        clone.load_state(state)
        assert health_map(clone) == health_map(scheduler)
        assert len(clone.rounds) == len(scheduler.rounds)
        # The restored sources carry their RNG state: the next rounds match
        # the uninterrupted fleet bit for bit.
        for _ in range(2):
            assert round_key(clone.run_round()) == round_key(scheduler.run_round())
        clone.close()
        scheduler.close()

    def test_sequenced_ingest_state_survives(self):
        scheduler = make_fleet()
        device = scheduler.registry.device_ids()[0]
        rng = np.random.default_rng(1)
        for seq in range(3):
            scheduler.ingest(device, rng.integers(0, 2, 128, dtype=np.uint8), seq=seq)
        state = scheduler.state_dict()
        clone = FleetScheduler(
            DeviceRegistry.from_state(state["registry"]), backend="packed"
        )
        clone.load_state(state)
        assert clone.last_ingest_seq(device) == 2
        with pytest.raises(DuplicateIngestError):
            clone.ingest(device, "0" * 128, seq=2)
        with pytest.raises(IngestSequenceGapError):
            clone.ingest(device, "0" * 128, seq=4)
        clone.close()
        scheduler.close()


class TestSequencedIngestContract:
    def test_duplicate_and_gap_do_not_mutate(self):
        scheduler = make_fleet()
        device = scheduler.registry.device_ids()[0]
        scheduler.ingest(device, "01" * 64, seq=0)
        before = health_map(scheduler)
        with pytest.raises(DuplicateIngestError) as dup:
            scheduler.ingest(device, "10" * 64, seq=0)
        assert dup.value.last_seq == 0 and dup.value.device_id == device
        with pytest.raises(IngestSequenceGapError):
            scheduler.ingest(device, "10" * 64, seq=2)
        assert health_map(scheduler) == before
        assert scheduler.last_ingest_seq(device) == 0
        scheduler.close()

    def test_failed_ingest_does_not_commit_the_seq(self):
        scheduler = make_fleet()
        device = scheduler.registry.device_ids()[0]
        scheduler.ingest(device, "01" * 64, seq=0)
        with pytest.raises(ValueError):
            scheduler.ingest(device, "0" * 7, seq=1)  # not a multiple of n
        # The failed chunk stays resendable under the same seq.
        assert scheduler.last_ingest_seq(device) == 0
        scheduler.ingest(device, "01" * 64, seq=1)
        assert scheduler.last_ingest_seq(device) == 1
        scheduler.close()

    def test_unsequenced_ingest_still_works(self):
        scheduler = make_fleet()
        device = scheduler.registry.device_ids()[0]
        events = scheduler.ingest(device, "01" * 64)
        assert len(events) == 1
        assert scheduler.last_ingest_seq(device) is None
        scheduler.close()


# ------------------------------------------------------- durable fleet + recovery
class TestDurableFleetRecovery:
    @pytest.mark.parametrize("streaming", [False, True])
    def test_kill_dash_nine_recovery_is_bit_identical(self, tmp_path, streaming):
        scheduler = make_fleet(streaming=streaming)
        scheduler.run_round()
        durable = DurableFleet(scheduler, tmp_path, snapshot_interval_s=None)
        durable.start()
        rng = np.random.default_rng(9)
        device = scheduler.registry.device_ids()[0]
        for seq in range(4):
            scheduler.ingest(
                device, rng.integers(0, 2, 200, dtype=np.uint8)
                if streaming else rng.integers(0, 2, 128, dtype=np.uint8),
                seq=seq,
            )
        scheduler.run_round()
        expected = health_map(scheduler)
        # No close(): this is the kill -9. Recovery = snapshot + journal.
        recovered, stats = recover_fleet(tmp_path)
        assert health_map(recovered) == expected
        assert stats.applied == 4 and stats.rounds_applied == 1
        assert recovered.last_ingest_seq(device) == 3
        assert round_key(recovered.run_round()) == round_key(scheduler.run_round())
        recovered.close()
        durable.close()
        scheduler.close()

    def test_checkpoint_rotates_and_prunes_segments(self, tmp_path):
        scheduler = make_fleet(devices=4)
        durable = DurableFleet(scheduler, tmp_path, snapshot_interval_s=None)
        durable.start()  # snapshot at generation 0, appends now to 1
        scheduler.ingest(scheduler.registry.device_ids()[0], "01" * 64, seq=0)
        durable.checkpoint()  # snapshot at 1, appends to 2, prunes < 1
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["snapshot.json", "wal.00000001.jsonl", "wal.00000002.jsonl"]
        _, generation = read_snapshot(tmp_path / "snapshot.json")
        assert generation == 1
        # Records already inside the snapshot replay as duplicates, not
        # double-applies.
        recovered, stats = recover_fleet(tmp_path)
        assert stats.duplicates == 1 and stats.applied == 0
        assert health_map(recovered) == health_map(scheduler)
        recovered.close()
        durable.close()
        scheduler.close()

    def test_round_markers_replay_idempotently(self, tmp_path):
        scheduler = make_fleet(devices=4)
        durable = DurableFleet(scheduler, tmp_path, snapshot_interval_s=None)
        durable.start()
        scheduler.run_round()  # marker in journal, round NOT in snapshot
        durable.checkpoint()  # round now in snapshot; marker retained in old segment
        scheduler.run_round()  # marker only in the live journal
        expected = [round_key(r) for r in scheduler.rounds]
        recovered, stats = recover_fleet(tmp_path)
        assert [round_key(r) for r in recovered.rounds] == expected
        assert stats.rounds_skipped == 1 and stats.rounds_applied == 1
        recovered.close()
        durable.close()
        scheduler.close()

    def test_interval_snapshots_run_in_background(self, tmp_path):
        scheduler = make_fleet(devices=4)
        durable = DurableFleet(scheduler, tmp_path, snapshot_interval_s=0.05)
        durable.start()
        generation = durable.generation
        deadline = threading.Event()
        for _ in range(100):
            if durable.generation > generation:
                break
            deadline.wait(0.05)
        assert durable.generation > generation, "interval snapshot never fired"
        durable.close()
        scheduler.close()

    def test_registration_after_snapshot_survives_via_journal(self, tmp_path):
        scheduler = make_fleet(devices=4)
        durable = DurableFleet(scheduler, tmp_path, snapshot_interval_s=None)
        durable.start()
        # The service journals registrations; emulate its write-ahead order.
        scheduler.journal.append_device("late-device", scenario=None, seed=None)
        scheduler.registry.register("late-device")
        scheduler.ingest("late-device", "01" * 64, seq=0)
        expected = health_map(scheduler)
        recovered, stats = recover_fleet(tmp_path)
        assert stats.devices_registered == 1
        assert health_map(recovered) == expected
        recovered.close()
        durable.close()
        scheduler.close()

    def test_snapshot_file_is_versioned_json(self, tmp_path):
        scheduler = make_fleet(devices=4)
        write_snapshot(tmp_path / "snap.json", scheduler, wal_generation=7)
        payload = json.loads((tmp_path / "snap.json").read_text())
        assert payload["format"] == "repro-fleet-snapshot"
        assert payload["version"] == 1 and payload["wal_generation"] == 7
        state, generation = read_snapshot(tmp_path / "snap.json")
        assert generation == 7 and state["backend"] == "packed"
        scheduler.close()

    def test_unknown_snapshot_version_is_rejected(self, tmp_path):
        scheduler = make_fleet(devices=4)
        write_snapshot(tmp_path / "snap.json", scheduler, wal_generation=0)
        payload = json.loads((tmp_path / "snap.json").read_text())
        payload["version"] = 99
        (tmp_path / "snap.json").write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            read_snapshot(tmp_path / "snap.json")
        scheduler.close()

    def test_replay_absorbs_malformed_records(self):
        scheduler = make_fleet(devices=4)
        stats = replay_records(
            scheduler,
            [
                {"t": "ingest", "device": "ghost", "seq": 0, "nbits": 4, "bits": "8A=="},
                {"t": "mystery"},
            ],
        )
        assert stats.errors == 2
        scheduler.close()
