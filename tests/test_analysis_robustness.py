"""Fixture tests of ROB001: atomic-write discipline in the fleet tier."""

from repro.analysis.framework import analyze_source


def rules(source, path, select=None):
    ctx = analyze_source(source, path, select=select)
    return [f.rule for f in ctx.findings]


BARE_WRITE = 'handle = open("state.json", "w")\n'


class TestRob001Scope:
    def test_fires_on_write_mode_open_in_fleet(self):
        assert rules(BARE_WRITE, "src/repro/fleet/scheduler.py") == ["ROB001"]

    def test_fires_on_every_truncating_mode(self):
        for mode in ("w", "wb", "w+", "x", "xb", "wt"):
            source = f'open("f", "{mode}")\n'
            found = rules(source, "src/repro/fleet/service.py")
            assert found == ["ROB001"], (mode, found)

    def test_fires_on_mode_keyword(self):
        source = 'open("f", mode="w")\n'
        assert rules(source, "src/repro/fleet/service.py") == ["ROB001"]

    def test_fires_on_path_write_helpers(self):
        for call in ('p.write_text("x")', 'p.write_bytes(b"x")'):
            source = f"from pathlib import Path\np = Path('f')\n{call}\n"
            found = rules(source, "src/repro/fleet/registry.py")
            assert found == ["ROB001"], (call, found)

    def test_append_mode_is_exempt(self):
        # The write-ahead journal appends by design: appends never truncate
        # the existing prefix, so a crash mid-append is recoverable.
        for mode in ("a", "ab", "a+"):
            assert rules(f'open("f", "{mode}")\n', "src/repro/fleet/scheduler.py") == []

    def test_read_modes_and_default_are_exempt(self):
        assert rules('open("f")\n', "src/repro/fleet/scheduler.py") == []
        assert rules('open("f", "rb")\n', "src/repro/fleet/scheduler.py") == []

    def test_dynamic_mode_is_out_of_static_reach(self):
        source = 'mode = pick()\nopen("f", mode)\n'
        assert rules(source, "src/repro/fleet/scheduler.py") == []

    def test_durability_home_is_sanctioned(self):
        # The atomic helper itself must open its tmp file for writing.
        assert rules(BARE_WRITE, "src/repro/fleet/durability.py") == []

    def test_outside_the_fleet_tier_is_exempt(self):
        assert rules(BARE_WRITE, "src/repro/core/reporting.py") == []
        assert rules(BARE_WRITE, "src/repro/campaign/report.py") == []
        assert rules(BARE_WRITE, "tests/test_fleet.py") == []

    def test_suppression_comment_works(self):
        source = 'open("f", "w")  # repro: ignore[ROB001]\n'
        assert rules(source, "src/repro/fleet/scheduler.py") == []


class TestShippedFleetTierIsClean:
    def test_fleet_modules_carry_no_bare_persistence_writes(self):
        import pathlib

        fleet_dir = pathlib.Path(__file__).resolve().parents[1] / "src/repro/fleet"
        for module in sorted(fleet_dir.glob("*.py")):
            source = module.read_text(encoding="utf-8")
            found = rules(source, f"src/repro/fleet/{module.name}", select=["ROB001"])
            assert found == [], (module.name, found)
