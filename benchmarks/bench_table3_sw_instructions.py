"""Table III (software rows) — 16-bit instruction counts of the 8 design points.

For every design point an ideal sequence of the design's length is pushed
through the hardware model (functional path) and the software verification
routine is executed on the exported values; the resulting
ADD/SUB/MUL/SQR/SHIFT/COMP/LUT/READ tally regenerates the software half of
Table III.  Counting conventions necessarily differ from the paper's hand
counts (documented in EXPERIMENTS.md), so the assertions target the shape:
counts grow with the sequence length and the number of tests, the LUT row is
exactly 24 precisely for the designs containing the approximate-entropy test,
and the READ row matches the size of the memory-mapped register file.
"""

import pytest

from repro.hwtests import UnifiedTestingBlock
from repro.sw.routines import SoftwareVerifier

#: Published software instruction counts (16-bit ISA) for reference.
PAPER_SW = {
    "n128_light": {"ADD": 9, "SUB": 8, "MUL": 4, "SQR": 8, "SHIFT": 0, "COMP": 22, "LUT": 0, "READ": 10},
    "n128_medium": {"ADD": 153, "SUB": 14, "MUL": 28, "SQR": 36, "SHIFT": 3, "COMP": 28, "LUT": 24, "READ": 24},
    "n65536_light": {"ADD": 108, "SUB": 16, "MUL": 24, "SQR": 14, "SHIFT": 0, "COMP": 42, "LUT": 0, "READ": 18},
    "n65536_medium": {"ADD": 122, "SUB": 24, "MUL": 24, "SQR": 22, "SHIFT": 8, "COMP": 44, "LUT": 0, "READ": 22},
    "n65536_high": {"ADD": 266, "SUB": 30, "MUL": 48, "SQR": 50, "SHIFT": 11, "COMP": 50, "LUT": 24, "READ": 50},
    "n1048576_light": {"ADD": 130, "SUB": 24, "MUL": 15, "SQR": 23, "SHIFT": 0, "COMP": 34, "LUT": 0, "READ": 21},
    "n1048576_medium": {"ADD": 358, "SUB": 40, "MUL": 47, "SQR": 45, "SHIFT": 8, "COMP": 42, "LUT": 0, "READ": 35},
    "n1048576_high": {"ADD": 890, "SUB": 50, "MUL": 91, "SQR": 101, "SHIFT": 11, "COMP": 48, "LUT": 24, "READ": 91},
}


def measure_instruction_counts(designs, sequences):
    rows = []
    for design in designs:
        bits = sequences[design.n]
        block = UnifiedTestingBlock(design.parameters, tests=design.tests)
        block.accelerated_process_sequence(bits)
        verifier = SoftwareVerifier(design.parameters, tests=design.tests, alpha=0.01)
        verifier.verify(block.register_file)
        counts = verifier.instruction_counts().as_dict()
        row = {"design": design.name, "tests": len(design.tests)}
        row.update(counts)
        row["TOTAL"] = sum(counts.values())
        row["paper_LUT"] = PAPER_SW[design.name]["LUT"]
        row["paper_READ"] = PAPER_SW[design.name]["READ"]
        rows.append(row)
    return rows


def test_table3_sw_instruction_counts(benchmark, save_table, all_designs, ideal_sequences):
    rows = benchmark.pedantic(
        measure_instruction_counts,
        args=(all_designs, ideal_sequences),
        rounds=1,
        iterations=1,
    )
    save_table(
        "table3_sw_instructions",
        "Table III (software) - 16-bit instruction counts per design point",
        rows,
        [
            "design", "tests", "ADD", "SUB", "MUL", "SQR", "SHIFT", "COMP",
            "LUT", "paper_LUT", "READ", "paper_READ", "TOTAL",
        ],
    )
    by_name = {row["design"]: row for row in rows}

    # The LUT row is the PWL table of the approximate-entropy test: exactly
    # 24 lookups (16 four-bit + 8 three-bit terms) in precisely the designs
    # that include test 12 — the same placement as in the paper.
    for name, row in by_name.items():
        assert row["LUT"] == PAPER_SW[name]["LUT"], name

    # Work grows with the test subset at fixed n, and with n at fixed subset.
    assert by_name["n65536_light"]["TOTAL"] < by_name["n65536_high"]["TOTAL"]
    assert by_name["n128_light"]["TOTAL"] < by_name["n1048576_light"]["TOTAL"]
    assert by_name["n1048576_high"]["TOTAL"] == max(r["TOTAL"] for r in rows)

    # Every exported value is transferred exactly once, so the READ row is at
    # least of the same order as the paper's.
    for row in rows:
        assert row["READ"] >= PAPER_SW[row["design"]]["READ"] * 0.5

    # The high designs transfer the most data, as in the paper (~90-100 words).
    assert by_name["n1048576_high"]["READ"] > by_name["n1048576_light"]["READ"]
    assert by_name["n65536_high"]["READ"] > by_name["n65536_light"]["READ"]


def test_word_size_reduces_latency(benchmark, all_designs, ideal_sequences):
    """Section IV: on 32-bit platforms considerably fewer instructions are needed."""
    design = next(d for d in all_designs if d.name == "n65536_high")
    bits = ideal_sequences[design.n]
    block = UnifiedTestingBlock(design.parameters, tests=design.tests)
    block.accelerated_process_sequence(bits)

    def total_for(word_bits):
        verifier = SoftwareVerifier(design.parameters, tests=design.tests, word_bits=word_bits)
        verifier.verify(block.register_file)
        counts = verifier.instruction_counts()
        return counts.add + counts.sub + counts.mul + counts.sqr + counts.read

    narrow = benchmark(total_for, 16)
    assert total_for(32) < narrow
