"""Future work (§V) — software-selectable sequence length.

The paper's first future-work item is letting the software choose the test
sequence length at run time.  This bench quantifies the area premium of that
flexibility (a configuration register plus block-boundary select muxes on top
of the max-length hardware) and demonstrates the operational benefit: the
same block first runs a quick 128-bit total-failure check and is then
reconfigured for a long 65 536-bit evaluation.
"""

import pytest

from repro.core.flexible import FlexibleLengthPlatform
from repro.eval import estimate_fpga
from repro.hwtests import DesignParameters, UnifiedTestingBlock
from repro.trng import BiasedSource, StuckAtSource

TESTS = (1, 2, 3, 4, 7, 8, 11, 12, 13)


def build_comparison():
    rows = []
    for lengths in ((65536,), (128, 65536), (128, 4096, 65536)):
        flexible = FlexibleLengthPlatform(supported_lengths=lengths, tests=TESTS)
        flexible_fpga = flexible.fpga_estimate()
        fixed = UnifiedTestingBlock(
            DesignParameters.for_length(max(lengths)), tests=TESTS
        )
        fixed_fpga = estimate_fpga(fixed.resources())
        rows.append(
            {
                "supported_lengths": "/".join(str(n) for n in lengths),
                "fixed_slices": fixed_fpga.slices,
                "flexible_slices": flexible_fpga.slices,
                "overhead_slices": flexible_fpga.slices - fixed_fpga.slices,
                "overhead_percent": round(
                    100.0 * (flexible_fpga.slices / fixed_fpga.slices - 1.0), 1
                ),
                "flexible_ff": flexible.resources().flip_flops,
            }
        )
    return rows


def test_flexible_length_overhead(benchmark, save_table):
    rows = benchmark(build_comparison)
    save_table(
        "flexible_length_overhead",
        "Future work - area premium of software-selectable sequence length (9 tests)",
        rows,
        [
            "supported_lengths", "fixed_slices", "flexible_slices",
            "overhead_slices", "overhead_percent", "flexible_ff",
        ],
    )
    # Flexibility costs something, but stays a small fraction of the block.
    for row in rows:
        assert row["overhead_slices"] >= 0
        assert row["overhead_percent"] < 20.0
    # Overhead grows with the number of supported lengths.
    assert rows[1]["overhead_slices"] <= rows[2]["overhead_slices"]


def test_flexible_length_operation(benchmark, save_table):
    """Quick check then long check on the same (modelled) hardware."""
    platform = FlexibleLengthPlatform(
        supported_lengths=(128, 65536), tests=(1, 2, 3, 4, 13), initial_length=128
    )

    def scenario():
        events = []
        platform.reconfigure(128)
        quick = platform.evaluate_source(StuckAtSource(0))
        events.append(("128-bit quick check of a dead source", not quick.passed))
        platform.reconfigure(65536)
        weak = BiasedSource(0.53, seed=77)
        long_report = platform.evaluate_sequence(weak.generate(65536))
        events.append(("65536-bit slow check of a 3% bias", not long_report.passed))
        platform.reconfigure(128)
        weak.reset()
        short_report = platform.evaluate_sequence(weak.generate(128))
        events.append(("128-bit quick check of the same 3% bias", not short_report.passed))
        return events

    events = benchmark.pedantic(scenario, rounds=1, iterations=1)
    rows = [{"scenario": label, "detected": detected} for label, detected in events]
    save_table(
        "flexible_length_operation",
        "Future work - reconfiguring the sequence length at run time",
        rows,
        ["scenario", "detected"],
    )
    assert rows[0]["detected"] is True     # total failure caught by the quick config
    assert rows[1]["detected"] is True     # subtle bias caught by the long config
    assert rows[2]["detected"] is False    # ...which the quick config cannot see
