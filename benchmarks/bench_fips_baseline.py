"""Baseline comparison — FIPS 140-2 battery (prior work) vs this platform.

The hardware testers that precede the paper ([7], [8]) implement the FIPS
140-2 battery.  This bench runs both the FIPS battery and the paper's
NIST-based 65 536-bit design against the same threat catalogue and shows
where the NIST-based platform earns its extra area: subtle bias and
correlation levels that slip through the fixed FIPS intervals are caught by
the longer, χ²-based on-the-fly tests.
"""

import pytest

from repro.core.platform import OnTheFlyPlatform
from repro.fips import FIPS_BLOCK_BITS, fips_battery
from repro.trng import (
    AlternatingSource,
    BiasedSource,
    CorrelatedSource,
    IdealSource,
    StuckAtSource,
)

SCENARIOS = [
    ("ideal", lambda: IdealSource(seed=9100), False),
    ("stuck-at-0", lambda: StuckAtSource(0), True),
    ("alternating", lambda: AlternatingSource(), True),
    ("biased-0.60", lambda: BiasedSource(0.60, seed=9101), True),
    ("biased-0.508", lambda: BiasedSource(0.508, seed=9102), True),
    ("correlated-0.75", lambda: CorrelatedSource(0.75, seed=9103), True),
    ("correlated-0.51", lambda: CorrelatedSource(0.51, seed=1), True),
]


def run_comparison():
    platform = OnTheFlyPlatform("n65536_high", alpha=0.01)
    rows = []
    for label, factory, is_bad in SCENARIOS:
        source = factory()
        fips_report = fips_battery(source.generate(FIPS_BLOCK_BITS))
        source.reset()
        platform_report = platform.evaluate_sequence(
            source.generate(platform.n), accelerated=True
        )
        rows.append(
            {
                "scenario": label,
                "is_bad": is_bad,
                "fips_detects": not fips_report.passed,
                "platform_detects": not platform_report.passed,
                "fips_failing": ",".join(fips_report.failing_tests()) or "-",
                "platform_failing": ",".join(map(str, platform_report.failing_tests)) or "-",
            }
        )
    return rows


def test_fips_baseline_comparison(benchmark, save_table):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    save_table(
        "fips_baseline",
        "Baseline - FIPS 140-2 battery (prior work [7],[8]) vs the n=65536 nine-test design",
        rows,
        ["scenario", "is_bad", "fips_detects", "platform_detects", "fips_failing", "platform_failing"],
    )
    by_label = {row["scenario"]: row for row in rows}

    # Neither approach false-alarms on the ideal source.
    assert not by_label["ideal"]["fips_detects"]
    assert not by_label["ideal"]["platform_detects"]
    # Both catch gross failures.
    for label in ("stuck-at-0", "alternating", "biased-0.60", "correlated-0.75"):
        assert by_label[label]["fips_detects"]
        assert by_label[label]["platform_detects"]
    # The platform catches the subtle weaknesses that FIPS misses: a 0.8 %
    # bias and a 2 % serial correlation are invisible to the fixed 20 000-bit
    # FIPS intervals but well inside the 65 536-bit chi-squared tests' reach.
    for label in ("biased-0.508", "correlated-0.51"):
        assert not by_label[label]["fips_detects"]
        assert by_label[label]["platform_detects"]
    # Every bad source is caught by the platform.
    for row in rows:
        if row["is_bad"]:
            assert row["platform_detects"], row["scenario"]
