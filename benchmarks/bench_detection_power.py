"""Detection power versus sequence length (extension of the evaluation).

The paper motivates its three sequence lengths with "quick tests for fast
detection of the total failure ... as well as slow tests for the detection of
long term statistical weaknesses" but does not quantify the sensitivity gap.
This bench estimates, by Monte Carlo over the functional hardware model, the
probability that the light designs detect a given bias level, and the false
alarm rate on an ideal source — the type-1 / type-2 error picture behind the
design space.
"""

import pytest

from repro.eval.power import bias_power_curve, false_alarm_rate

BIAS_LEVELS = (0.50, 0.52, 0.55, 0.60)
TRIALS = 20


def build_power_table():
    rows = []
    curves = {
        "n128_light": bias_power_curve("n128_light", BIAS_LEVELS, trials=TRIALS, seed=3100),
        "n65536_light": bias_power_curve("n65536_light", BIAS_LEVELS, trials=TRIALS, seed=3100),
    }
    for level_index, level in enumerate(BIAS_LEVELS):
        rows.append(
            {
                "bias P(1)": level,
                "n128_light detection": f"{curves['n128_light'][level_index].detection_rate:.2f}",
                "n65536_light detection": f"{curves['n65536_light'][level_index].detection_rate:.2f}",
            }
        )
    return rows, curves


def test_detection_power_vs_length(benchmark, save_table):
    (rows, curves) = benchmark.pedantic(build_power_table, rounds=1, iterations=1)
    save_table(
        "detection_power",
        f"Detection power vs bias level ({TRIALS} trials per point, alpha = 0.01)",
        rows,
        ["bias P(1)", "n128_light detection", "n65536_light detection"],
    )
    short = [point.detection_rate for point in curves["n128_light"]]
    long = [point.detection_rate for point in curves["n65536_light"]]
    # At P(1)=0.5 both behave like the false-alarm rate (small)...
    assert short[0] <= 0.25
    assert long[0] <= 0.25
    # ...the long design detects a 5% bias essentially always, the short one
    # largely misses it; both catch a 10% bias.
    assert long[BIAS_LEVELS.index(0.55)] >= 0.9
    assert short[BIAS_LEVELS.index(0.55)] <= 0.5
    assert long[-1] >= 0.95
    # Power is non-decreasing in the bias for the long design.
    assert long == sorted(long)


def test_false_alarm_rates(benchmark, save_table):
    def measure():
        return [
            {
                "design": name,
                "false_alarm_rate": f"{false_alarm_rate(name, trials=TRIALS, seed=3200):.2f}",
            }
            for name in ("n128_light", "n65536_light")
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_table(
        "detection_false_alarms",
        f"False-alarm (type-1) rate on an ideal source ({TRIALS} trials, alpha = 0.01)",
        rows,
        ["design", "false_alarm_rate"],
    )
    for row in rows:
        assert float(row["false_alarm_rate"]) <= 0.25
