"""Fig. 3 — the 32-segment PWL approximation of x·log(x).

Regenerates the data behind Fig. 3: the exact curve, the 32-segment
approximation, and the error profile; checks the paper's "less than 3 %
error" claim (the measured maximum error is ≈ 3 % of the function's peak,
attained inside the first segment; everywhere else it is an order of
magnitude smaller) and measures the impact of the approximation on the
approximate-entropy statistic.
"""

import numpy as np
import pytest

from repro.sw.pwl import PiecewiseLinearXLogX, xlogx


def test_fig3_pwl_error_profile(benchmark, save_table):
    pwl = PiecewiseLinearXLogX(segments=32)
    profile = benchmark(pwl.error_profile)

    # Sampled curve (16 points) for the figure reproduction.
    rows = []
    for x in np.linspace(0.0, 1.0, 17):
        exact = xlogx(float(x))
        approx = pwl.evaluate(float(x))
        rows.append(
            {
                "x": round(float(x), 4),
                "x_log_x": round(exact, 6),
                "pwl": round(approx, 6),
                "abs_error": round(abs(exact - approx), 6),
            }
        )
    rows.append({"x": "max-error point", "x_log_x": round(profile["argmax"], 6),
                 "pwl": "", "abs_error": round(profile["max_abs_error"], 6)})
    save_table(
        "fig3_pwl_approximation",
        "Fig. 3 - 32-segment PWL approximation of x*log(x) (g(x) = -x ln x)",
        rows,
        ["x", "x_log_x", "pwl", "abs_error"],
    )

    # The paper's error claim, measured.
    assert profile["segments"] == 32
    assert profile["max_error_relative_to_peak"] < 0.035
    assert profile["max_abs_error_outside_first_segment"] < 0.004
    assert profile["mean_abs_error"] < 0.001
    # The worst point sits in the first segment, i.e. for arguments that the
    # approximate-entropy routine only sees when a pattern is almost absent.
    assert profile["argmax"] < 1.0 / 32.0


def test_fig3_segment_count_tradeoff(benchmark, save_table):
    """Error as a function of the segment count (the design trade-off that
    motivates the paper's choice of 32 segments with a 5-bit index)."""

    def sweep():
        rows = []
        for segments in (8, 16, 32, 64, 128):
            profile = PiecewiseLinearXLogX(segments=segments).error_profile(samples=4001)
            rows.append(
                {
                    "segments": segments,
                    "max_abs_error": round(profile["max_abs_error"], 6),
                    "relative_to_peak": f"{100 * profile['max_error_relative_to_peak']:.2f}%",
                    "outside_first_segment": round(profile["max_abs_error_outside_first_segment"], 6),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_table(
        "fig3_segment_tradeoff",
        "Fig. 3 (extension) - PWL error vs number of segments",
        rows,
        ["segments", "max_abs_error", "relative_to_peak", "outside_first_segment"],
    )
    errors = [row["max_abs_error"] for row in rows]
    assert errors == sorted(errors, reverse=True)
