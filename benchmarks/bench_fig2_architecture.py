"""Fig. 2 — structural elaboration of the unified hardware testing block.

The figure in the paper shows the unified module containing all tests, the
shared resources and the memory-mapped read-out multiplexer.  This bench
elaborates the largest design (all nine tests) and reports its component
inventory, the register map, and checks the four sharing tricks structurally:
no dedicated ones counter, a single shared 9-bit shift register, no hardware
owned by the approximate-entropy test, and power-of-two block detection
provided by the single global bit counter.
"""

import pytest

from repro.core.configs import get_design
from repro.hwtests import UnifiedTestingBlock


def elaborate(design_name):
    design = get_design(design_name)
    block = UnifiedTestingBlock(design.parameters, tests=design.tests)
    return block


def test_fig2_unified_block_structure(benchmark, save_table):
    block = benchmark(elaborate, "n1048576_high")
    inventory = block.component_inventory()

    kind_rows = {}
    for row in inventory:
        entry = kind_rows.setdefault(
            row["kind"], {"kind": row["kind"], "count": 0, "flip_flops": 0, "lut_estimate": 0.0}
        )
        entry["count"] += 1
        entry["flip_flops"] += row["flip_flops"]
        entry["lut_estimate"] = round(entry["lut_estimate"] + row["lut_estimate"], 1)
    save_table(
        "fig2_component_inventory",
        "Fig. 2 - component inventory of the unified testing block (n = 2^20, 9 tests)",
        list(kind_rows.values()),
        ["kind", "count", "flip_flops", "lut_estimate"],
    )

    memory_map = block.memory_map()
    save_table(
        "fig2_register_map",
        "Fig. 2 - memory-mapped read-out interface (first 16 of "
        f"{len(memory_map)} addresses)",
        memory_map[:16],
        ["address", "name", "width"],
    )

    # Sharing trick 1: no dedicated ones counter (derived from the cusum walk).
    assert 1 not in block.units
    # Sharing trick 3: the approximate-entropy unit owns no hardware.
    assert block.units[12].shares_serial_counters
    assert block.units[12].resources().flip_flops == 0
    # Sharing trick 4: exactly one shift register serves tests 7, 8 and 11.
    shift_registers = [row for row in inventory if row["kind"] == "shift_register"]
    assert len(shift_registers) == 1
    # Sharing trick 2: exactly one global bit counter provides block detection.
    counters = [row for row in inventory if row["name"] == "global_bit_counter"]
    assert len(counters) == 1
    # The 7-bit read-out address space of the paper suffices for every export.
    assert len(memory_map) <= 128
    # The read-out multiplexer is accounted as a component of the block.
    assert any(row["kind"] == "readout_mux" for row in inventory)


def test_fig1_platform_wiring(benchmark):
    """Fig. 1 — the platform contains a TRNG port, the HW block and the SW
    co-processor, wired through the register file."""
    from repro.core.platform import OnTheFlyPlatform
    from repro.trng import IdealSource

    platform = OnTheFlyPlatform("n128_light")
    report = benchmark(platform.evaluate_source, IdealSource(seed=5555))
    # The software read the hardware through the memory-mapped interface.
    assert set(report.hardware_values) == set(platform.hardware.register_file.names())
    assert report.instruction_counts.read > 0
