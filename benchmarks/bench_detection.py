"""Detection-capability benchmark (extension of the paper's evaluation).

The paper's purpose — detecting failures and attacks on the fly — is not
tabulated in the paper itself; this bench produces the missing table: for the
threat catalogue of Section II-B, which tests of the full 65 536-bit design
flag each source, plus the false-alarm behaviour on an ideal source and the
alarm-wire vs value-based reporting comparison under a probing attack.
"""

import pytest

from repro.core.platform import OnTheFlyPlatform
from repro.core.reporting import compare_reporting_under_probing
from repro.trng import (
    AgingSource,
    AlternatingSource,
    AttackScenario,
    BiasedSource,
    BurstFailureSource,
    CorrelatedSource,
    EMInjectionAttack,
    FrequencyInjectionAttack,
    IdealSource,
    OscillatingBiasSource,
    ProbingAttack,
    RingOscillatorTRNG,
    StuckAtSource,
)


def scenarios():
    aged = AgingSource(drift_per_bit=2e-6, seed=7106)
    aged.generate(60000)  # pre-age the source before monitoring it
    return [
        AttackScenario("ideal", IdealSource(seed=7100), "healthy reference source", False),
        AttackScenario("ring-oscillator", RingOscillatorTRNG(seed=7101), "healthy jitter-based TRNG", False),
        AttackScenario("biased-0.60", BiasedSource(0.60, seed=7102), "supply/temperature induced bias", True),
        AttackScenario("correlated-0.75", CorrelatedSource(0.75, seed=7103), "under-sampled oscillator", True),
        AttackScenario("oscillating-bias", OscillatingBiasSource(0.25, period=8192, seed=7104),
                       "slow environmental modulation", True),
        AttackScenario("stuck-at-1", StuckAtSource(1), "latched sampling flip-flop", True),
        AttackScenario("wire-cut", StuckAtSource(0), "cut TRNG output wire", True),
        AttackScenario("alternating", AlternatingSource(), "oscillator locked to the sample clock", True),
        AttackScenario("burst-failure", BurstFailureSource(5e-4, 2048, seed=7105),
                       "intermittent total failure", True),
        AttackScenario("freq-injection", FrequencyInjectionAttack(RingOscillatorTRNG(seed=7107), start_bit=0),
                       "power-supply frequency injection [15]", True),
        AttackScenario("em-injection", EMInjectionAttack(RingOscillatorTRNG(seed=7108), coupling=0.85,
                                                         carrier_period=4, seed=7109),
                       "contactless EM injection [16]", True),
        AttackScenario("aged-source", aged, "bias drift due to aging", True),
    ]


def run_detection_matrix(platform):
    rows = []
    for scenario in scenarios():
        bits = scenario.source.generate(platform.n)
        report = platform.evaluate_sequence(bits, accelerated=True)
        rows.append(
            {
                "scenario": scenario.label,
                "description": scenario.description,
                "should_detect": scenario.expected_detectable,
                "detected": not report.passed,
                "failing_tests": ",".join(map(str, report.failing_tests)) or "-",
            }
        )
    return rows


def test_detection_matrix(benchmark, save_table):
    platform = OnTheFlyPlatform("n65536_high", alpha=0.01)
    rows = benchmark.pedantic(run_detection_matrix, args=(platform,), rounds=1, iterations=1)
    save_table(
        "detection_matrix",
        "Detection capability of the n=65536 nine-test design (alpha = 0.01)",
        rows,
        ["scenario", "description", "should_detect", "detected", "failing_tests"],
    )
    for row in rows:
        assert row["detected"] == row["should_detect"], row["scenario"]


def test_detection_probing_comparison(benchmark, save_table):
    platform = OnTheFlyPlatform("n128_light")
    comparison = benchmark.pedantic(
        compare_reporting_under_probing,
        args=(platform, StuckAtSource(0), ProbingAttack("ground")),
        rounds=1,
        iterations=1,
    )
    rows = [
        {"reporting": "single alarm wire", "detects failure": comparison.alarm_wire_detects,
         "detects under probing": comparison.alarm_wire_detects_under_probing},
        {"reporting": "value-based (this paper)", "detects failure": comparison.value_based_detects,
         "detects under probing": comparison.value_based_detects_under_probing},
    ]
    save_table(
        "detection_probing",
        "Alarm-wire vs value-based reporting under a grounding probe attack",
        rows,
        ["reporting", "detects failure", "detects under probing"],
    )
    assert not comparison.alarm_wire_detects_under_probing
    assert comparison.value_based_detects_under_probing


def test_quick_tests_catch_total_failure_within_one_short_sequence(benchmark, save_table):
    """Section II-B: quick tests (n = 128) exist for fast total-failure detection."""
    platform = OnTheFlyPlatform("n128_light")

    def run():
        rows = []
        for scenario in (
            AttackScenario("wire-cut", StuckAtSource(0), "", True),
            AttackScenario("stuck-at-1", StuckAtSource(1), "", True),
            AttackScenario("alternating", AlternatingSource(), "", True),
        ):
            report = platform.evaluate_source(scenario.source)
            rows.append(
                {
                    "scenario": scenario.label,
                    "detected_within_bits": platform.n if not report.passed else ">128",
                    "failing_tests": ",".join(map(str, report.failing_tests)),
                }
            )
            assert not report.passed
        return rows

    rows = benchmark(run)
    save_table(
        "detection_quick_tests",
        "Total-failure detection latency of the 128-bit light design",
        rows,
        ["scenario", "detected_within_bits", "failing_tests"],
    )
