"""Observability overhead benchmark: instrumented vs `obs.disabled()`.

PR 9 threaded metrics and tracing spans through the engine batch path and
the fleet round loop.  The design claim is that instrumentation is cheap
enough to leave on everywhere — per run it is a handful of counter
increments and span allocations against milliseconds of kernel work — and
this benchmark pins that claim at <= 3% for both ``run_batch`` and a
multiplexed fleet round.

**Methodology.**  Naive A/B wall-clock differencing cannot certify a 3%
bound on a shared runner: timing two *identical* arms here spreads +-6%
(cgroup throttling and steal time move the attainable minimum itself), an
order of magnitude above the effect.  The pinned ratio is instead built
from two quantities that *are* stable:

* the exact number of obs operations one workload performs — spans counted
  from the recorded trace tree, metric updates counted by wrapping the
  primitive ``inc``/``set``/``add``/``observe`` methods for one run;
* the per-operation cost of those primitives, microbenchmarked over 10^5
  iterations (deterministic to well under a microsecond).

``overhead = ops x cost / t_workload`` with ``t_workload`` the *minimum*
uninstrumented wall time (smallest denominator — the conservative choice),
and the floored speedup key is ``t / (t + overhead_cost)``, same semantics
as a measured ``t_disabled / t_enabled`` ratio: 1.0 is zero overhead, the
0.97 floor is the <= 3% contract.  Directly measured A/B wall times are
reported alongside in ``extra`` for the record.  Results land in
``benchmarks/results/BENCH_obs.json`` in the shared harness schema.
"""

import os
import time

import numpy as np

import repro.obs as obs
from bench_harness import assert_floors, write_bench_json
from repro.engine import run_batch
from repro.fleet import DeviceRegistry, FleetMix, FleetScheduler
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.trng import IdealSource

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Modeled t/(t + obs cost) must stay >= 0.97: instrumentation <= ~3%.
OVERHEAD_FLOOR = 0.97

BATCH_SEQUENCES = 32 if SMOKE else 48
BATCH_LENGTH = 4096
BATCH_TESTS = ("nist.frequency", "nist.block_frequency", "nist.runs",
               "nist.cumulative_sums", "fips.poker")
FLEET_DEVICES = 32 if SMOKE else 128
#: Wall-time samples per arm (min taken) and primitive microbench iterations.
SAMPLES = 10 if SMOKE else 20
MICRO_ITERS = 20_000 if SMOKE else 100_000
SEED = 20150309


def _min_time(workload, samples=SAMPLES):
    best = float("inf")
    for _ in range(samples):
        start = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - start)
    return best


def _primitive_costs():
    """Per-operation cost (seconds) of one span and one metric update."""
    registry = obs.registry()
    bench_counter = registry.counter("bench_obs_probe_total", "microbench probe",
                                     labels=("k",))
    bench_hist = registry.histogram("bench_obs_probe_seconds", "microbench probe",
                                    labels=("k",))

    start = time.perf_counter()
    for _ in range(MICRO_ITERS):
        with obs.span("bench", k="v"):
            pass
    span_cost = (time.perf_counter() - start) / MICRO_ITERS

    start = time.perf_counter()
    for _ in range(MICRO_ITERS):
        bench_counter.inc(1, k="v")
    counter_cost = (time.perf_counter() - start) / MICRO_ITERS

    start = time.perf_counter()
    for _ in range(MICRO_ITERS):
        bench_hist.observe(0.001, k="v")
    histogram_cost = (time.perf_counter() - start) / MICRO_ITERS

    obs.clear_traces()  # drop the 10^5 microbench roots from the ring
    # One conservative "metric update" price: the dearest of the three
    # primitive updates (gauge set is cheaper than either).
    return span_cost, max(counter_cost, histogram_cost)


class _OpCounter:
    """Counts metric updates by wrapping the primitive methods for one run."""

    _PATCHES = (
        (Counter, "inc"), (Gauge, "set"), (Gauge, "add"), (Histogram, "observe"),
    )

    def __init__(self):
        self.updates = 0
        self._originals = []

    def __enter__(self):
        for cls, name in self._PATCHES:
            original = getattr(cls, name)
            self._originals.append((cls, name, original))

            def wrapped(inner_self, *args, _original=original, **kwargs):
                self.updates += 1
                return _original(inner_self, *args, **kwargs)

            setattr(cls, name, wrapped)
        return self

    def __exit__(self, *exc):
        for cls, name, original in self._originals:
            setattr(cls, name, original)


def _count_ops(workload):
    """(spans, metric updates) one workload run performs."""
    obs.clear_traces()
    with _OpCounter() as ops:
        workload()
    spans = sum(len(root.stage_names()) for root in obs.TRACER.traces())
    obs.clear_traces()
    return spans, ops.updates


def _profile(workload):
    """Model one workload: uninstrumented time, op counts, measured A/B."""
    workload()  # warm-up: imports, kernel caches, allocator
    spans, updates = _count_ops(workload)
    enabled = _min_time(workload)
    with obs.disabled():
        disabled = _min_time(workload)
    return {"spans": spans, "updates": updates,
            "enabled": enabled, "disabled": disabled}


def _build_fleet():
    registry = DeviceRegistry("n128_light", alpha=0.01)
    registry.populate(
        FLEET_DEVICES, FleetMix.healthy_with_threats(0.95), seed=SEED
    )
    return FleetScheduler(registry)


def test_obs_overhead_within_three_percent(save_table):
    span_cost, update_cost = _primitive_costs()

    matrix = np.stack([
        IdealSource(seed=SEED + row).generate(BATCH_LENGTH).bits
        for row in range(BATCH_SEQUENCES)
    ])
    batch = _profile(lambda: run_batch(matrix, tests=BATCH_TESTS))

    scheduler = _build_fleet()
    fleet_round = _profile(scheduler.run_round)

    def modeled_ratio(profile):
        cost = profile["spans"] * span_cost + profile["updates"] * update_cost
        # The uninstrumented minimum is the smallest denominator the
        # workload can present, i.e. the most conservative overhead base.
        base = min(profile["enabled"], profile["disabled"])
        return base / (base + cost), cost

    batch_ratio, batch_cost = modeled_ratio(batch)
    round_ratio, round_cost = modeled_ratio(fleet_round)
    speedups = {
        "batch_uninstrumented_vs_instrumented": batch_ratio,
        "fleet_round_uninstrumented_vs_instrumented": round_ratio,
    }
    floors = {key: OVERHEAD_FLOOR for key in speedups}

    rows = []
    for label, profile, cost, ratio in (
        ("run_batch", batch, batch_cost, batch_ratio),
        ("fleet round", fleet_round, round_cost, round_ratio),
    ):
        rows.append({
            "workload": label,
            "spans": profile["spans"],
            "metric_updates": profile["updates"],
            "obs_cost_us": f"{cost * 1e6:.1f}",
            "workload_ms": f"{min(profile['enabled'], profile['disabled']) * 1e3:.2f}",
            "overhead_%": f"{(1 / ratio - 1) * 100:.2f}",
        })
    save_table(
        "obs_overhead",
        "Observability overhead: instrumented (default) vs obs.disabled()",
        rows,
        ("workload", "spans", "metric_updates", "obs_cost_us", "workload_ms",
         "overhead_%"),
    )
    write_bench_json(
        "obs",
        workload={
            "batch_sequences": BATCH_SEQUENCES,
            "batch_length": BATCH_LENGTH,
            "batch_tests": list(BATCH_TESTS),
            "fleet_devices": FLEET_DEVICES,
            "fleet_design": "n128_light",
            "samples": SAMPLES,
            "micro_iters": MICRO_ITERS,
            "timing": "op-count x primitive-cost over min uninstrumented time",
        },
        timings_s={
            "batch_enabled": batch["enabled"],
            "batch_disabled": batch["disabled"],
            "fleet_round_enabled": fleet_round["enabled"],
            "fleet_round_disabled": fleet_round["disabled"],
            "span_cost": span_cost,
            "metric_update_cost": update_cost,
        },
        speedups=speedups,
        floors=floors,
        smoke=SMOKE,
        extra={
            "batch_spans": batch["spans"],
            "batch_metric_updates": batch["updates"],
            "fleet_round_spans": fleet_round["spans"],
            "fleet_round_metric_updates": fleet_round["updates"],
            "measured_ab_ratio_batch": batch["disabled"] / batch["enabled"],
            "measured_ab_ratio_fleet_round":
                fleet_round["disabled"] / fleet_round["enabled"],
        },
    )
    assert_floors(speedups, floors)

    # The instrumentation the overhead pays for really fired: the profiled
    # runs recorded spans and moved the metric registry.
    assert batch["spans"] > 0 and batch["updates"] > 0
    assert fleet_round["spans"] >= 4 and fleet_round["updates"] > 0
    registry = obs.registry()
    assert registry.get("repro_engine_bits_evaluated_total").value() > 0
    assert registry.get("repro_fleet_round_latency_seconds").count() > 0
