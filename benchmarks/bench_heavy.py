"""Pool-free heavy-test benchmark: batch-native kernels vs the process pool.

Before the batch-native kernels of :mod:`repro.engine.heavy`, the five
heavyweight NIST tests (rank, DFT, universal, linear complexity, random
excursions + variant) were the engine's scaling wall: each one re-ran its
scalar reference per sequence, and the only lever was fanning those scalar
calls out over a process pool — paying pickle traffic, worker startup and
per-call Python overhead on every (test, sequence) pair.  The kernels
evaluate the whole packed batch at once (vectorised GF(2) rank, one 2-D FFT,
argsort-based universal distances, bit-sliced Berlekamp–Massey, bincount
excursion histograms), so the full heavy subset now runs pool-free.

This benchmark pins that trade: the batched path must run **>= 3x** faster
than the opt-in pooled fallback on a fleet-scale batch of 2^20-bit
sequences, with bit-identical P-values asserted before any speedup counts.
The pooled baseline is timed on a small row subset and extrapolated
linearly (per-sequence work is independent across rows), because timing the
full batch through the pool would dominate the whole benchmark run.
Machine-readable results land in ``benchmarks/results/BENCH_heavy.json``
through the shared ``bench_harness`` schema.  ``REPRO_BENCH_SMOKE=1``
shrinks the workload to CI-smoke size; the floor stays pinned.
"""

import os
import time

from bench_harness import assert_floors, write_bench_json
from repro.engine.batch import run_batch
from repro.engine.registry import NIST_NUMBER_TO_ID
from repro.trng.ideal import IdealSource

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Fleet-scale heavy workload: 256 sequences of 2^20 bits (the acceptance
#: bar), shrunk to 32 x 2^16 in smoke mode.
ROWS = 32 if SMOKE else 256
N = 65536 if SMOKE else 1 << 20
#: The five heavyweight tests (NIST numbers; 14 and 15 share the walk).
HEAVY_TESTS = [5, 6, 9, 10, 14, 15]
#: At the smoke length Maurer's default parameterisation (387,840 bits for
#: L = 6) is out of range, so the smoke run pins L explicitly; the full
#: 2^20-bit run uses the NIST-recommended defaults.
PARAMETERS = {9: {"block_length": 6}} if SMOKE else {}
#: Rows the pooled baseline is actually timed on before extrapolation.
POOL_ROWS = 4 if SMOKE else 8
POOL_PROCESSES = 4
MIN_HEAVY_SPEEDUP = 3.0
SEED = 20150309


def _p_values(reports):
    return [
        {test_id: result.p_values for test_id, result in report.results.items()}
        for report in reports
    ]


def _execution_paths(reports):
    return {
        path for report in reports for path in report.execution_paths.values()
    }


def test_heavy_batched_vs_pooled_speedup(save_table):
    packed = IdealSource(seed=SEED).generate_matrix(ROWS, N, packed=True)
    subset = packed.unpack()[:POOL_ROWS]

    # Parity gate: the batched kernels must reproduce the pooled scalar
    # references bit for bit before any timing counts.  The pooled baseline
    # runs the per-sequence scalar path in worker processes (uint8 backend:
    # no batch kernels), exactly the engine's pre-kernel behaviour.
    batched_subset = run_batch(
        packed, tests=HEAVY_TESTS, parameters=PARAMETERS
    )[:POOL_ROWS]
    pooled_subset = run_batch(
        subset,
        tests=HEAVY_TESTS,
        parameters=PARAMETERS,
        processes=POOL_PROCESSES,
        backend="uint8",
    )
    assert _p_values(batched_subset) == _p_values(pooled_subset)
    assert _execution_paths(batched_subset) == {"batched"}
    assert _execution_paths(pooled_subset) == {"pooled"}

    start = time.perf_counter()
    reports = run_batch(packed, tests=HEAVY_TESTS, parameters=PARAMETERS)
    batched_seconds = time.perf_counter() - start
    assert _execution_paths(reports) == {"batched"}
    assert all(
        NIST_NUMBER_TO_ID[number] in report.results
        for report in reports
        for number in HEAVY_TESTS
    )

    start = time.perf_counter()
    run_batch(
        subset,
        tests=HEAVY_TESTS,
        parameters=PARAMETERS,
        processes=POOL_PROCESSES,
        backend="uint8",
    )
    pooled_subset_seconds = time.perf_counter() - start
    # Rows are independent on the pooled path (one scalar call per (test,
    # sequence) pair), so the full-batch cost extrapolates linearly.
    pooled_seconds = pooled_subset_seconds * (ROWS / POOL_ROWS)
    speedup = pooled_seconds / batched_seconds

    rows = [
        {
            "path": f"pooled fallback ({POOL_PROCESSES} workers, extrapolated)",
            "batch": f"{ROWS} x {N}",
            "seconds": f"{pooled_seconds:.2f}",
            "speedup": "1.0x",
        },
        {
            "path": "batch-native kernels (pool-free)",
            "batch": f"{ROWS} x {N}",
            "seconds": f"{batched_seconds:.2f}",
            "speedup": f"{speedup:.1f}x",
        },
    ]
    save_table(
        "heavy_batched",
        f"Five heavyweight NIST tests, batch-native kernels vs process pool"
        f"{' [smoke sizes]' if SMOKE else ''}",
        rows,
        ["path", "batch", "seconds", "speedup"],
    )
    write_bench_json(
        "heavy",
        smoke=SMOKE,
        workload={
            "rows": ROWS,
            "n": N,
            "tests": HEAVY_TESTS,
            "parameters": {str(k): v for k, v in PARAMETERS.items()},
            "pool_rows_timed": POOL_ROWS,
            "pool_processes": POOL_PROCESSES,
        },
        timings_s={
            "batched_full_batch": batched_seconds,
            "pooled_subset": pooled_subset_seconds,
            "pooled_extrapolated": pooled_seconds,
        },
        speedups={"batched_vs_pooled_heavy": speedup},
        floors={"batched_vs_pooled_heavy": MIN_HEAVY_SPEEDUP},
        extra={
            "batched_sequences_per_s": ROWS / batched_seconds,
            "batched_bits_per_s": ROWS * N / batched_seconds,
        },
    )
    assert_floors(
        {"batched_vs_pooled_heavy": speedup},
        {"batched_vs_pooled_heavy": MIN_HEAVY_SPEEDUP},
    )
