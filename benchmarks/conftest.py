"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Besides the
pytest-benchmark timing, each benchmark renders its table both to stdout and
to ``benchmarks/results/<name>.txt`` so the artefacts referenced by
EXPERIMENTS.md can be reproduced with a single ``pytest benchmarks/
--benchmark-only`` run.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Sequence

import pytest

from repro.core.configs import list_designs
from repro.trng.ideal import IdealSource

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
    """Render a list of dict rows as a fixed-width text table."""
    if not rows:
        return "(no rows)"
    widths = {
        column: max(len(str(column)), max(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            " | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


@pytest.fixture(scope="session")
def save_table():
    """Persist a rendered table under benchmarks/results/ and echo it."""

    def _save(name: str, title: str, rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = f"{title}\n\n{format_table(rows, columns)}\n"
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        print("\n" + text)
        return text

    return _save


@pytest.fixture(scope="session")
def all_designs():
    """The eight design points in Table III order."""
    return list_designs()


@pytest.fixture(scope="session")
def ideal_sequences():
    """One fixed ideal sequence per sequence length, keyed by n."""
    return {
        n: IdealSource(seed=10_000 + n).generate(n).bits
        for n in (128, 65536, 1048576)
    }
