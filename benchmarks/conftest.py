"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Besides the
pytest-benchmark timing, each benchmark renders its table both to stdout and
to ``benchmarks/results/<name>.txt`` so the artefacts referenced by
EXPERIMENTS.md can be reproduced with a single ``pytest benchmarks/
--benchmark-only`` run.  Every saved table also lands as machine-readable
``benchmarks/results/<name>.json`` (title + columns + rows).  The pinned
perf contracts — the ``BENCH_*.json`` artefacts with floors, timings and
interpreter versions — go through the shared schema in ``bench_harness.py``
instead, so the speedup trajectory can be tracked across PRs by diffing one
uniform layout.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Sequence

import pytest

from repro.core.configs import list_designs
from repro.trng.ideal import IdealSource

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _jsonable(value):
    """Best-effort JSON conversion for numpy scalars and other odd cells."""
    try:
        json.dumps(value)
        return value
    except TypeError:
        if hasattr(value, "item"):
            return value.item()
        return str(value)


def save_json_result(name: str, payload: Dict[str, object]) -> pathlib.Path:
    """Persist a machine-readable benchmark artefact under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=_jsonable) + "\n")
    return path


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
    """Render a list of dict rows as a fixed-width text table."""
    if not rows:
        return "(no rows)"
    widths = {
        column: max(len(str(column)), max(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            " | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


@pytest.fixture(scope="session")
def save_table():
    """Persist a rendered table under benchmarks/results/ (as both ``.txt``
    and machine-readable ``.json``) and echo it."""

    def _save(name: str, title: str, rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = f"{title}\n\n{format_table(rows, columns)}\n"
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        save_json_result(
            name,
            {
                "title": title,
                "columns": list(columns),
                "rows": [{k: _jsonable(v) for k, v in row.items()} for row in rows],
            },
        )
        print("\n" + text)
        return text

    return _save


@pytest.fixture(scope="session")
def all_designs():
    """The eight design points in Table III order."""
    return list_designs()


@pytest.fixture(scope="session")
def ideal_sequences():
    """One fixed ideal sequence per sequence length, keyed by n."""
    return {
        n: IdealSource(seed=10_000 + n).generate(n).bits
        for n in (128, 65536, 1048576)
    }
