"""Throughput and latency claims of Section IV.

Three quantities are measured:

* the modelled hardware input rate (one bit per clock at the estimated
  maximum frequency) — the paper claims > 100 Mbit/s for every design;
* the Python simulation throughput of the cycle-accurate model (bits per
  second of wall-clock time), which is what a library user cares about when
  replaying long captures;
* the software verification latency relative to the sequence generation
  time, the paper's argument that moving arithmetic to software costs
  nothing in practice.
"""

import pytest

from repro.core.configs import get_design, list_designs
from repro.eval import estimate_fpga, latency_report, throughput_mbit_per_s
from repro.hwtests import UnifiedTestingBlock
from repro.sw.routines import SoftwareVerifier
from repro.trng import IdealSource


def test_modelled_hardware_throughput(benchmark, save_table, all_designs):
    def measure():
        rows = []
        for design in all_designs:
            block = UnifiedTestingBlock(design.parameters, tests=design.tests)
            fpga = estimate_fpga(block.resources())
            rows.append(
                {
                    "design": design.name,
                    "fmax_mhz": round(fpga.max_frequency_mhz, 1),
                    "input_rate_mbit_s": round(throughput_mbit_per_s(fpga), 1),
                    "above_100mbit": throughput_mbit_per_s(fpga) > 100,
                }
            )
        return rows

    rows = benchmark(measure)
    save_table(
        "throughput_hardware",
        "Section IV claim - sustained input bit rate of every design point",
        rows,
        ["design", "fmax_mhz", "input_rate_mbit_s", "above_100mbit"],
    )
    assert all(row["above_100mbit"] for row in rows)


def test_cycle_accurate_simulation_throughput(benchmark):
    """Bits per second of the bit-serial Python model (quality-of-life metric)."""
    design = get_design("n128_medium")
    block = UnifiedTestingBlock(design.parameters, tests=design.tests)
    bits = IdealSource(seed=6666).generate(128).bits

    def run():
        block.reset()
        block.process_sequence(bits)

    benchmark(run)


def test_functional_model_speedup(benchmark):
    """The vectorised functional model processes a 65536-bit sequence."""
    design = get_design("n65536_high")
    block = UnifiedTestingBlock(design.parameters, tests=design.tests)
    bits = IdealSource(seed=6667).generate(65536).bits

    def run():
        block.accelerated_process_sequence(bits)

    benchmark(run)


def test_software_latency_ratio(benchmark, save_table, all_designs, ideal_sequences):
    def measure():
        rows = []
        for design in all_designs:
            block = UnifiedTestingBlock(design.parameters, tests=design.tests)
            block.accelerated_process_sequence(ideal_sequences[design.n])
            verifier = SoftwareVerifier(design.parameters, tests=design.tests)
            verifier.verify(block.register_file)
            report = latency_report(design.name, design.n, verifier.instruction_counts())
            rows.append(report.as_row())
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_table(
        "throughput_sw_latency",
        "Software verification latency vs sequence generation time (10 Mbit/s TRNG)",
        rows,
        ["design", "n", "instructions", "sw_cycles", "sw_time_us", "generation_time_us", "sw_over_generation"],
    )
    # The software is never the bottleneck; for the long designs it is
    # negligible, and even for the 128-bit designs it stays below ~15x of the
    # generation time of a *single* sequence (and testing every 128-bit
    # window is not how the quick designs are operated).
    by_name = {row["design"]: row for row in rows}
    assert by_name["n65536_medium"]["sw_over_generation"] < 0.25
    assert by_name["n1048576_high"]["sw_over_generation"] < 0.1
