"""Table IV — unified HW/SW design vs standalone per-test implementations [13].

The paper compares its 65 536-bit medium design (tests 1, 2, 3, 4, 7, 13)
against the standalone implementations of Veljković et al.: the unified
design uses fewer slices (the paper reports roughly a 20 % saving against
256 slices of individual blocks) at the price of a software post-processing
latency (4909 cycles on an openMSP430) that is still far below the time
needed to generate the next 65 536-bit sequence.
"""

import pytest

from repro.core.configs import get_design
from repro.eval import latency_report, unified_vs_standalone
from repro.hwtests import UnifiedTestingBlock
from repro.sw.cycles import estimate_cycles
from repro.sw.routines import SoftwareVerifier
from repro.trng import IdealSource

#: Values published in Table IV for reference.
PAPER_TABLE4 = {
    "standalone_slices": 256,
    "standalone_latency_cycles": 21,
    "unified_latency_cycles": 4909,
    "sequence_length": 65536,
}


@pytest.fixture(scope="module")
def measured_latency_cycles():
    design = get_design("n65536_medium")
    bits = IdealSource(seed=4444).generate(design.n).bits
    block = UnifiedTestingBlock(design.parameters, tests=design.tests)
    block.accelerated_process_sequence(bits)
    verifier = SoftwareVerifier(design.parameters, tests=design.tests)
    verifier.verify(block.register_file)
    return estimate_cycles(verifier.instruction_counts(), "openmsp430_hw_mult"), verifier


def test_table4_unified_vs_standalone(benchmark, save_table, measured_latency_cycles):
    cycles, verifier = measured_latency_cycles
    design = get_design("n65536_medium")

    comparison = benchmark.pedantic(
        unified_vs_standalone,
        args=(design.parameters, design.tests, cycles),
        rounds=1,
        iterations=1,
    )

    rows = [
        {
            "quantity": "sequence length (bits)",
            "standalone [13]": "128 - 20000 (per test)",
            "unified (this repro)": comparison["sequence_length"],
            "paper (unified)": PAPER_TABLE4["sequence_length"],
        },
        {
            "quantity": "slices",
            "standalone [13]": comparison["standalone_slices_total"],
            "unified (this repro)": comparison["unified_slices"],
            "paper (unified)": 168,
        },
        {
            "quantity": "result latency (cycles)",
            "standalone [13]": PAPER_TABLE4["standalone_latency_cycles"],
            "unified (this repro)": round(comparison["unified_latency_cycles"]),
            "paper (unified)": PAPER_TABLE4["unified_latency_cycles"],
        },
        {
            "quantity": "slice saving of unification",
            "standalone [13]": "-",
            "unified (this repro)": f"{comparison['slice_saving_percent']:.0f}%",
            "paper (unified)": "~20% (vs published 256 slices)",
        },
    ]
    save_table(
        "table4_comparison",
        "Table IV - unified HW/SW design vs standalone per-test implementations",
        rows,
        ["quantity", "standalone [13]", "unified (this repro)", "paper (unified)"],
    )

    # Shape assertions: who wins and by roughly what factor.
    assert comparison["unified_slices"] < comparison["standalone_slices_total"]
    assert comparison["slice_saving_percent"] > 10.0
    # The unified design's latency is orders of magnitude above a standalone
    # block's 21 cycles...
    assert comparison["unified_latency_cycles"] > 50 * PAPER_TABLE4["standalone_latency_cycles"]
    # ...but still at most a few thousand cycles (same order as the paper's
    # 4909) and far below the 65536 cycles the TRNG needs just to produce the
    # next sequence even at one bit per cycle.
    assert comparison["unified_latency_cycles"] < 65536


def test_table4_latency_versus_generation_time(benchmark, measured_latency_cycles):
    cycles, verifier = measured_latency_cycles
    report = benchmark(
        latency_report, "n65536_medium", 65536, verifier.instruction_counts()
    )
    assert report.latency_ratio < 0.25
