"""Throughput of the unified batch engine vs per-sequence evaluation.

The engine refactor's acceptance claim: for a 256-sequence batch of the
HW-suitable test subset (Table I "Yes" rows: 1, 2, 3, 4, 7, 8, 11, 12, 13),
``run_batch`` delivers at least 3x the throughput of the seed's
per-sequence path, where every test re-scans the raw bits of one sequence
at a time (the direct reference functions the pre-engine ``NistSuite.run``
dispatched to).  The middle row shows the engine's per-sequence mode
(shared ``SequenceContext``, no batching) to separate the two effects —
statistic sharing within a sequence and vectorisation across sequences.

Parity is asserted inside the benchmark: all three paths must produce
bit-identical P-values.  The pinned contract lands in
``benchmarks/results/BENCH_engine_batch.json`` through the shared
``bench_harness`` schema.
"""

import time

from bench_harness import assert_floors, write_bench_json
from repro.nist.approximate_entropy import approximate_entropy_test
from repro.nist.block_frequency import block_frequency_test
from repro.nist.cusum import cumulative_sums_test
from repro.nist.frequency import frequency_test
from repro.nist.longest_run import longest_run_test
from repro.nist.nonoverlapping import non_overlapping_template_test
from repro.nist.overlapping import overlapping_template_test
from repro.nist.runs import runs_test
from repro.nist.serial import serial_test
from repro.nist.suite import HW_SUITABLE_TESTS, NistSuite
from repro.trng import IdealSource

#: The per-sequence reference dispatch the seed's NistSuite.run used for the
#: HW-suitable subset (each test re-derives its statistics from the bits).
REFERENCE_DISPATCH = {
    1: frequency_test,
    2: block_frequency_test,
    3: runs_test,
    4: longest_run_test,
    7: non_overlapping_template_test,
    8: overlapping_template_test,
    11: serial_test,
    12: approximate_entropy_test,
    13: cumulative_sums_test,
}

NUM_SEQUENCES = 256
SEQUENCE_BITS = 4096

#: Acceptance criterion of the engine refactor: >= 3x over the seed path.
MIN_BATCH_SPEEDUP = 3.0
#: The batched FIPS battery must at least match the per-block reference.
MIN_FIPS_SPEEDUP = 1.0


def _generate_batch():
    return [
        IdealSource(seed=31_000 + i).generate(SEQUENCE_BITS).bits
        for i in range(NUM_SEQUENCES)
    ]


def test_engine_batch_speedup(save_table):
    sequences = _generate_batch()
    suite = NistSuite(tests=HW_SUITABLE_TESTS)

    start = time.perf_counter()
    reference_results = [
        {number: fn(bits) for number, fn in REFERENCE_DISPATCH.items()}
        for bits in sequences
    ]
    seed_seconds = time.perf_counter() - start

    start = time.perf_counter()
    per_sequence_reports = [suite.run(bits) for bits in sequences]
    engine_solo_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch_reports = suite.run_batch(sequences)
    engine_batch_seconds = time.perf_counter() - start

    # Bit-identical P-values across all three paths.
    for reference, solo, batched in zip(
        reference_results, per_sequence_reports, batch_reports
    ):
        for number in HW_SUITABLE_TESTS:
            assert solo.results[number].p_values == reference[number].p_values
            assert batched.results[number].p_values == reference[number].p_values

    def row(name, seconds):
        return {
            "path": name,
            "seconds": round(seconds, 3),
            "sequences_per_s": round(NUM_SEQUENCES / seconds, 1),
            "mbit_per_s": round(NUM_SEQUENCES * SEQUENCE_BITS / seconds / 1e6, 2),
            "speedup_vs_seed": round(seed_seconds / seconds, 2),
        }

    rows = [
        row("seed per-sequence (reference re-scans)", seed_seconds),
        row("engine per-sequence (shared context)", engine_solo_seconds),
        row("engine batch (vectorised + shared)", engine_batch_seconds),
    ]
    save_table(
        "engine_batch",
        f"Unified batch engine - {NUM_SEQUENCES} sequences x {SEQUENCE_BITS} bits, "
        f"HW-suitable subset {HW_SUITABLE_TESTS}",
        rows,
        ["path", "seconds", "sequences_per_s", "mbit_per_s", "speedup_vs_seed"],
    )

    speedups = {"engine_batch_vs_seed": seed_seconds / engine_batch_seconds}
    floors = {"engine_batch_vs_seed": MIN_BATCH_SPEEDUP}
    write_bench_json(
        "engine_batch",
        workload={
            "num_sequences": NUM_SEQUENCES,
            "sequence_bits": SEQUENCE_BITS,
            "tests": list(HW_SUITABLE_TESTS),
        },
        timings_s={
            "seed_per_sequence": seed_seconds,
            "engine_per_sequence": engine_solo_seconds,
            "engine_batch": engine_batch_seconds,
        },
        speedups=speedups,
        floors=floors,
        extra={
            "engine_solo_vs_seed": seed_seconds / engine_solo_seconds,
            "sequences_per_s_batch": NUM_SEQUENCES / engine_batch_seconds,
            "mbit_per_s_batch": NUM_SEQUENCES * SEQUENCE_BITS / engine_batch_seconds / 1e6,
        },
    )
    assert_floors(speedups, floors)


def test_fips_batch_throughput(save_table):
    """Batch FIPS battery throughput (one vectorised pass per statistic)."""
    from repro.fips import FIPS_BLOCK_BITS, FipsBattery, fips_battery

    blocks = [
        IdealSource(seed=77_000 + i).generate(FIPS_BLOCK_BITS).bits for i in range(64)
    ]

    start = time.perf_counter()
    reference = [fips_battery(block) for block in blocks]
    reference_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = FipsBattery().run_batch(blocks)
    batch_seconds = time.perf_counter() - start

    assert [report.passed for report in batched] == [
        report.passed for report in reference
    ]

    rows = [
        {
            "path": "per-block reference battery",
            "seconds": round(reference_seconds, 3),
            "blocks_per_s": round(len(blocks) / reference_seconds, 1),
        },
        {
            "path": "engine batch battery",
            "seconds": round(batch_seconds, 3),
            "blocks_per_s": round(len(blocks) / batch_seconds, 1),
        },
    ]
    save_table(
        "engine_fips_batch",
        f"FIPS battery - {len(blocks)} blocks x {FIPS_BLOCK_BITS} bits",
        rows,
        ["path", "seconds", "blocks_per_s"],
    )
    speedups = {"fips_batch_vs_reference": reference_seconds / batch_seconds}
    floors = {"fips_batch_vs_reference": MIN_FIPS_SPEEDUP}
    write_bench_json(
        "engine_fips_batch",
        workload={"blocks": len(blocks), "block_bits": FIPS_BLOCK_BITS},
        timings_s={
            "reference_battery": reference_seconds,
            "batch_battery": batch_seconds,
        },
        speedups=speedups,
        floors=floors,
        extra={"blocks_per_s_batch": len(blocks) / batch_seconds},
    )
    assert_floors(speedups, floors)
