"""Detection-campaign benchmark (the scenario-diversity workload).

Where ``bench_detection.py`` spot-checks single sequences, this bench runs
the full campaign subsystem: every catalogue scenario x both 128-bit design
points, several seeded trials per cell through the engine batch path, and
renders the paper-style tables — detection probability/latency per cell and
the per-test attribution matrix — as persisted artefacts.  The wall-clock
of the campaign sweep lands in ``benchmarks/results/BENCH_campaign.json``
through the shared ``bench_harness`` schema (no speedup pair here — the
campaign has no slow-path twin — so the record carries timings and
throughput only, with an empty floors map).
"""

import time

import pytest

from bench_harness import assert_floors, write_bench_json
from repro.campaign import CampaignConfig, run_campaign
from repro.eval.attribution import attribution_rows

CONFIG = CampaignConfig(
    designs=("n128_light", "n128_medium"),
    trials=3,
    sequences_per_trial=8,
    seed=20150309,
)


@pytest.fixture(scope="module")
def campaign_report():
    return run_campaign(CONFIG)


def test_campaign_detection_matrix(benchmark, save_table):
    timings = {}

    def timed_campaign():
        start = time.perf_counter()
        result = run_campaign(CONFIG)
        timings["run_campaign"] = time.perf_counter() - start
        return result

    report = benchmark.pedantic(timed_campaign, rounds=1, iterations=1)
    save_table(
        "campaign_detection",
        "Detection campaign: probability / latency per (scenario x design) cell "
        f"({CONFIG.trials} trials x {CONFIG.sequences_per_trial} sequences, "
        f"alpha = {CONFIG.alpha}, seed = {CONFIG.seed})",
        report.summary_rows(),
        ["scenario", "category", "design", "detect_prob", "latency_seqs",
         "latency_bits", "seq_fail_rate", "false_alarm", "detected_by"],
    )
    # Total failures must be caught at the health policy's minimum latency on
    # every design, and the healthy controls must stay quiet.
    for cell in report.cells:
        if cell.category == "failure" and cell.scenario != "burst-failure":
            assert cell.detection_probability == 1.0, cell.scenario
            assert cell.mean_latency_bits == CONFIG.fail_after * cell.n
    for design in report.designs:
        assert report.control_false_alarm_rate(design) <= 0.2

    cells = len(report.cells)
    speedups: dict = {}
    floors: dict = {}
    write_bench_json(
        "campaign",
        workload={
            "designs": list(CONFIG.designs),
            "trials": CONFIG.trials,
            "sequences_per_trial": CONFIG.sequences_per_trial,
            "alpha": CONFIG.alpha,
            "seed": CONFIG.seed,
            "cells": cells,
        },
        timings_s=timings,
        speedups=speedups,
        floors=floors,
        extra={"cells_per_s": cells / timings["run_campaign"]},
    )
    assert_floors(speedups, floors)


def test_campaign_attribution_table(campaign_report, save_table):
    rows, columns = attribution_rows(campaign_report.threat_cells())
    save_table(
        "campaign_attribution",
        "Per-test attribution: trials in which each implemented test flagged "
        "each threat ('.' = implemented but silent, blank = not implemented)",
        rows,
        columns,
    )
    by_key = {(row["scenario"], row["design"]): row for row in rows}
    # The paper's motivating split: the frequency test cannot see a perfectly
    # balanced alternating source; the runs test catches it immediately.
    assert by_key[("alternating", "n128_light")]["t1"] == "."
    assert by_key[("alternating", "n128_light")]["t3"] == f"{CONFIG.trials}/{CONFIG.trials}"
