"""Streaming window-roll throughput vs the slice-and-repack recompute path.

The streaming contexts' acceptance claim (ISSUE 8): delivering the shared
statistics of a sliding monitor window from the running ring state must be
at least **5x** faster than the pre-streaming path at 75% window overlap
(stride = n/4).  Bit-identity is asserted alongside: the rolled window's
engine P-values must equal the recompute path's exactly, roll for roll.

Both paths are bounded-memory monitors over the same stream and deliver
the same statistics per window (ones, num_runs, walk extremes, last bits,
word-aligned block sums):

* the **recompute** path keeps the pre-streaming uint8 history window —
  every push shifts the buffer, and every window is re-validated,
  re-packed and re-scanned by the packed kernels from scratch;
* the **streaming** path pushes packed 64-bit words (the chunks are packed
  outside the timed region — word-native producer output), summarises each
  committed word once, and serves the window statistics from the rolled
  counters and summary rings (O(window/64) folds, no bit re-scan).

The streams run ``track_runs=False``: neither the measured statistic set
nor the cheap-test suite reads the block-longest statistic, and the run
rings are an explicit constructor opt-in costing one extra table gather
per chunk on the push path.

A second comparison times the cheap-test ``run_batch`` per window end to
end; the scalar decision math is shared by both paths, so it pins a
modest floor.  Per-device state is O(window): the ring byte size is
captured before and after the rolls and must not grow with the stream.
Results land in ``benchmarks/results/BENCH_streaming.json`` through the
shared ``bench_harness`` schema; ``REPRO_BENCH_SMOKE=1`` shrinks the
workload to CI-smoke size.
"""

import os
import time

import numpy as np

from bench_harness import assert_floors, write_bench_json
from repro.engine import BatchContext, StreamingBatchContext, run_batch
from repro.engine.packed import pack_matrix

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Devices streamed in parallel (one ring row each).
DEVICES = 8 if SMOKE else 16
#: Window size: the paper's largest design (n = 2**20) full-size, half of
#: it in smoke mode (small windows are numpy-overhead-bound on both paths
#: and stop measuring the kernels).
WINDOW_BITS = 524288 if SMOKE else 1048576
#: New bits per roll: n/4 = 75% overlap between consecutive windows.
STRIDE_BITS = WINDOW_BITS // 4
#: Window rolls per timed pass.
ROLLS = 8
#: Word-aligned block length for the block-sums statistic.
BLOCK_BITS = 128
#: Cheap-test subset for parity + the end-to-end comparison (frequency,
#: block frequency, runs, cusum — the always-on monitor core).
CHEAP_TESTS = [1, 2, 3, 13]

MIN_STATS_SPEEDUP = 5.0
MIN_RUN_BATCH_SPEEDUP = 1.2
#: Timed passes per path; the minimum is reported (standard noise floor).
PASSES = 3


def _stream_chunks():
    """Per-device stream as uint8 chunks (window seed + ROLLS strides)."""
    rng = np.random.default_rng(20150309)
    chunks = [rng.integers(0, 2, size=(DEVICES, WINDOW_BITS), dtype=np.uint8)]
    for _ in range(ROLLS):
        chunks.append(rng.integers(0, 2, size=(DEVICES, STRIDE_BITS), dtype=np.uint8))
    return chunks


def _read_stream_stats(stream: StreamingBatchContext):
    """The shared statistics of the rolled window, from the rings alone."""
    stats = stream.window_stats()
    blocks = stream.window_block_sums(BLOCK_BITS)
    assert blocks is not None
    return stats, blocks


def _read_context_stats(context: BatchContext):
    """The same statistics recomputed from a window context."""
    return (
        context.ones(),
        context.num_runs(),
        context.walk_extremes(),
        context.last_bits(),
        context.block_sums(BLOCK_BITS),
    )


def _shift_history(history: np.ndarray, chunk: np.ndarray) -> np.ndarray:
    """Bounded uint8 history roll: evict the stride, append the new bits."""
    return np.concatenate([history[:, chunk.shape[1] :], chunk], axis=1)


def test_streaming_window_roll(save_table):
    chunks = _stream_chunks()
    packed_chunks = [pack_matrix(chunk) for chunk in chunks]

    # ---------------------------------------------------------------- parity
    # Bit-identical P-values: the rolled window's engine run must equal the
    # recompute path's, window for window (untimed; every roll checked).
    parity_stream = StreamingBatchContext(DEVICES, WINDOW_BITS, track_runs=False)
    parity_history = chunks[0]
    parity_stream.push(packed_chunks[0])
    for index in range(1, len(chunks)):
        parity_stream.push(packed_chunks[index])
        parity_history = _shift_history(parity_history, chunks[index])
        rolled = run_batch(parity_stream.window_context(), tests=CHEAP_TESTS)
        recomputed = run_batch(BatchContext(parity_history), tests=CHEAP_TESTS)
        for rolled_report, recomputed_report in zip(rolled, recomputed):
            assert rolled_report.p_values() == recomputed_report.p_values()
    # The rolled statistics match the recomputed ones exactly, too.
    stats, blocks = _read_stream_stats(parity_stream)
    reference = BatchContext(parity_history)
    assert np.array_equal(stats["ones"], reference.ones())
    assert np.array_equal(stats["num_runs"], reference.num_runs())
    assert np.array_equal(blocks, reference.block_sums(BLOCK_BITS))

    # ------------------------------------------------- statistics delivery
    state_nbytes_start = state_nbytes_end = 0
    streaming_stats_seconds = float("inf")
    for _ in range(PASSES):
        stream = StreamingBatchContext(DEVICES, WINDOW_BITS, track_runs=False)
        stream.push(packed_chunks[0])
        state_nbytes_start = stream.state_nbytes
        start = time.perf_counter()
        for chunk in packed_chunks[1:]:
            stream.push(chunk)
            _read_stream_stats(stream)
        streaming_stats_seconds = min(
            streaming_stats_seconds, time.perf_counter() - start
        )
        state_nbytes_end = stream.state_nbytes

    recompute_stats_seconds = float("inf")
    for _ in range(PASSES):
        history = chunks[0]
        start = time.perf_counter()
        for chunk in chunks[1:]:
            history = _shift_history(history, chunk)
            _read_context_stats(BatchContext(history))
        recompute_stats_seconds = min(
            recompute_stats_seconds, time.perf_counter() - start
        )
    stats_speedup = recompute_stats_seconds / streaming_stats_seconds

    # Constant memory per device: the rings do not grow with the stream.
    assert state_nbytes_end == state_nbytes_start, (
        f"per-device state grew with the stream: "
        f"{state_nbytes_start} -> {state_nbytes_end} bytes"
    )

    # ------------------------------------------------- end-to-end run_batch
    streaming_e2e_seconds = float("inf")
    for _ in range(PASSES):
        stream_e2e = StreamingBatchContext(DEVICES, WINDOW_BITS, track_runs=False)
        stream_e2e.push(packed_chunks[0])
        start = time.perf_counter()
        for chunk in packed_chunks[1:]:
            stream_e2e.push(chunk)
            run_batch(stream_e2e.window_context(), tests=CHEAP_TESTS)
        streaming_e2e_seconds = min(streaming_e2e_seconds, time.perf_counter() - start)

    recompute_e2e_seconds = float("inf")
    for _ in range(PASSES):
        history = chunks[0]
        start = time.perf_counter()
        for chunk in chunks[1:]:
            history = _shift_history(history, chunk)
            run_batch(BatchContext(history), tests=CHEAP_TESTS)
        recompute_e2e_seconds = min(recompute_e2e_seconds, time.perf_counter() - start)
    e2e_speedup = recompute_e2e_seconds / streaming_e2e_seconds

    rows = [
        {
            "path": "recompute (shift + repack + rescan)",
            "stats_s": f"{recompute_stats_seconds:.3f}",
            "run_batch_s": f"{recompute_e2e_seconds:.3f}",
            "speedup": "1.0x",
        },
        {
            "path": "streaming window roll",
            "stats_s": f"{streaming_stats_seconds:.3f}",
            "run_batch_s": f"{streaming_e2e_seconds:.3f}",
            "speedup": f"{stats_speedup:.1f}x stats / {e2e_speedup:.1f}x e2e",
        },
    ]
    save_table(
        "streaming",
        f"Streaming O(1) window roll vs recompute - {DEVICES} devices, "
        f"window {WINDOW_BITS}, stride {STRIDE_BITS} (75% overlap), "
        f"{ROLLS} rolls{' [smoke sizes]' if SMOKE else ''}",
        rows,
        ["path", "stats_s", "run_batch_s", "speedup"],
    )
    speedups = {
        "streaming_stats_vs_recompute": stats_speedup,
        "streaming_run_batch_vs_recompute": e2e_speedup,
    }
    floors = {
        "streaming_stats_vs_recompute": MIN_STATS_SPEEDUP,
        "streaming_run_batch_vs_recompute": MIN_RUN_BATCH_SPEEDUP,
    }
    write_bench_json(
        "streaming",
        smoke=SMOKE,
        workload={
            "devices": DEVICES,
            "window_bits": WINDOW_BITS,
            "stride_bits": STRIDE_BITS,
            "overlap": 1.0 - STRIDE_BITS / WINDOW_BITS,
            "rolls": ROLLS,
            "block_bits": BLOCK_BITS,
            "cheap_tests": CHEAP_TESTS,
        },
        timings_s={
            "streaming_stats": streaming_stats_seconds,
            "recompute_stats": recompute_stats_seconds,
            "streaming_run_batch": streaming_e2e_seconds,
            "recompute_run_batch": recompute_e2e_seconds,
        },
        speedups=speedups,
        floors=floors,
        extra={
            "windows_per_s_streaming": ROLLS / streaming_stats_seconds,
            "state_nbytes_per_device": state_nbytes_end / DEVICES,
            "stream_bits_per_device": WINDOW_BITS + ROLLS * STRIDE_BITS,
            "state_constant_across_rolls": True,
        },
    )
    assert_floors(speedups, floors)
