"""Table III (hardware rows) — FPGA and ASIC cost of the eight design points.

Regenerates, for every design point, the Spartan-6 slice / FF / LUT /
maximum-frequency estimate and the ASIC gate-equivalent estimate, and checks
the qualitative claims the paper attaches to the table: monotone growth with
the sequence length and with the number of tests, more than 100 MHz for every
design, and the 52-slices-to-552-slices span between the smallest and largest
designs.
"""

import pytest

from repro.eval import estimate_asic, estimate_fpga
from repro.hwtests import UnifiedTestingBlock

#: Published Table III reference values (for the shape comparison recorded in
#: EXPERIMENTS.md; absolute agreement is not expected from a technology model).
PAPER_TABLE3 = {
    "n128_light": {"slices": 52, "ff": 110, "lut": 158, "fmax": 156, "ge": 1210},
    "n128_medium": {"slices": 149, "ff": 329, "lut": 471, "fmax": 147, "ge": 3632},
    "n65536_light": {"slices": 144, "ff": 307, "lut": 420, "fmax": 143, "ge": 3243},
    "n65536_medium": {"slices": 168, "ff": 375, "lut": 454, "fmax": 136, "ge": 3850},
    "n65536_high": {"slices": 377, "ff": 836, "lut": 1103, "fmax": 133, "ge": 8983},
    "n1048576_light": {"slices": 173, "ff": 379, "lut": 546, "fmax": 125, "ge": 4013},
    "n1048576_medium": {"slices": 291, "ff": 585, "lut": 828, "fmax": 122, "ge": 5993},
    "n1048576_high": {"slices": 552, "ff": 1156, "lut": 1699, "fmax": 121, "ge": 12416},
}


def build_estimates(designs):
    rows = []
    for design in designs:
        block = UnifiedTestingBlock(design.parameters, tests=design.tests)
        resources = block.resources()
        fpga = estimate_fpga(resources)
        asic = estimate_asic(resources)
        paper = PAPER_TABLE3[design.name]
        rows.append(
            {
                "design": design.name,
                "tests": len(design.tests),
                "slices": fpga.slices,
                "paper_slices": paper["slices"],
                "ff": fpga.flip_flops,
                "paper_ff": paper["ff"],
                "lut": fpga.luts,
                "paper_lut": paper["lut"],
                "fmax_mhz": round(fpga.max_frequency_mhz),
                "paper_fmax": paper["fmax"],
                "ge": asic.gate_equivalents,
                "paper_ge": paper["ge"],
            }
        )
    return rows


def test_table3_fpga_and_asic(benchmark, save_table, all_designs):
    rows = benchmark(build_estimates, all_designs)
    save_table(
        "table3_resources",
        "Table III (hardware) - measured vs paper FPGA/ASIC cost of the 8 designs",
        rows,
        [
            "design", "tests", "slices", "paper_slices", "ff", "paper_ff",
            "lut", "paper_lut", "fmax_mhz", "paper_fmax", "ge", "paper_ge",
        ],
    )
    by_name = {row["design"]: row for row in rows}

    # Shape checks the paper's narrative relies on.
    for row in rows:
        assert row["fmax_mhz"] > 100  # > 100 Mbit/s claim

    # Light < medium < high at fixed sequence length.
    for n in ("n65536", "n1048576"):
        assert by_name[f"{n}_light"]["slices"] < by_name[f"{n}_medium"]["slices"]
        assert by_name[f"{n}_medium"]["slices"] < by_name[f"{n}_high"]["slices"]

    # Cost grows with sequence length at fixed profile.
    for profile in ("light", "high"):
        if profile == "high":
            smaller, larger = "n65536_high", "n1048576_high"
            assert by_name[smaller]["slices"] < by_name[larger]["slices"]
        else:
            assert (
                by_name["n128_light"]["slices"]
                < by_name["n65536_light"]["slices"]
                < by_name["n1048576_light"]["slices"]
            )

    # The span of the design space: smallest design tens of slices, largest
    # an order of magnitude more (the paper reports 52 -> 552).
    assert by_name["n128_light"]["slices"] < 80
    assert by_name["n1048576_high"]["slices"] > 350
    assert by_name["n1048576_high"]["slices"] > 6 * by_name["n128_light"]["slices"]

    # fmax decreases from the smallest to the largest design (156 -> 121 in
    # the paper).
    assert by_name["n1048576_high"]["fmax_mhz"] < by_name["n128_light"]["fmax_mhz"]

    # Flip-flop counts — the technology-independent part of the estimate —
    # track the published values closely.
    for name, row in by_name.items():
        assert row["ff"] == pytest.approx(PAPER_TABLE3[name]["ff"], rel=0.30), name


def test_table3_asic_ordering(benchmark, all_designs):
    rows = benchmark(build_estimates, all_designs)
    ge = {row["design"]: row["ge"] for row in rows}
    assert ge["n128_light"] < ge["n65536_medium"] < ge["n1048576_high"]
    # GE within a factor ~1.5 of the published numbers at the extremes.
    assert 0.6 < ge["n128_light"] / PAPER_TABLE3["n128_light"]["ge"] < 1.6
    assert 0.6 < ge["n1048576_high"] / PAPER_TABLE3["n1048576_high"]["ge"] < 1.6
