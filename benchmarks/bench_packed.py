"""Packed-bitplane backend benchmark: 64-bit word kernels vs uint8 paths.

The engine's byte-per-bit matrices spend 8x the memory traffic the paper's
word-parallel hardware counters would; the packed backend
(:mod:`repro.engine.packed`) closes that gap by computing the shared
statistics on 64-bits-per-word popcount/shift kernels.  This benchmark pins
the two acceptance floors of the backend:

* shared-statistic batch evaluation (ones, per-block ones, runs, longest
  run per block, walk extremes over a ``(rows, n)`` batch) must run >= 3x
  faster on the packed backend than on the uint8 reference paths, and
* an end-to-end fleet round — generation, engine evaluation, health folding
  — at a 1024-device fleet on ``n65536_light`` must run >= 2x faster with a
  packed scheduler than a uint8 one,

with *bit-identical* P-values asserted between the backends before any
speedup counts.  Machine-readable results land in
``benchmarks/results/BENCH_packed.json`` through the shared
``bench_harness`` schema.  ``REPRO_BENCH_SMOKE=1`` shrinks the workloads to
CI-smoke size; the floors stay pinned.
"""

import os
import statistics
import time

from bench_harness import assert_floors, write_bench_json
from repro.engine.batch import run_batch
from repro.engine.context import BatchContext
from repro.fleet import DeviceRegistry, FleetMix, FleetScheduler
from repro.trng.ideal import IdealSource

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Shared-statistic workload: a fleet-scale batch of 2^16-bit sequences.
ROWS = 256 if SMOKE else 1024
N = 16384 if SMOKE else 65536
STAT_REPEATS = 3
#: The statistics every n65536-class design shares (block lengths are the
#: NIST parameters at this n: block frequency M=128, longest run M=128).
BLOCK_LENGTH = 128
MIN_STATS_SPEEDUP = 3.0

#: End-to-end fleet workload: the acceptance bar's 1024 devices on the
#: quick-test design whose statistics are all packed-covered.
NUM_DEVICES = 256 if SMOKE else 1024
FLEET_DESIGN = "n65536_light"
FLEET_ROUNDS = 2
FLEET_SEED = 20150309
MIN_FLEET_SPEEDUP = 2.0

#: The n65536_light test subset, for the P-value parity assertion.
PARITY_TESTS = [1, 2, 3, 4, 13]


def _evaluate_shared_statistics(matrix, backend):
    """One full shared-statistic pass, timed from a cold context."""
    start = time.perf_counter()
    context = BatchContext(matrix, backend=backend)
    context.ones()
    context.block_sums(BLOCK_LENGTH)
    context.num_runs()
    context.walk_extremes()
    context.block_longest_one_runs(BLOCK_LENGTH)
    return time.perf_counter() - start


def _median_stat_seconds(matrix, backend):
    return statistics.median(
        _evaluate_shared_statistics(matrix, backend) for _ in range(STAT_REPEATS)
    )


def _p_values(reports):
    return [
        {test_id: result.p_values for test_id, result in report.results.items()}
        for report in reports
    ]


def test_packed_shared_statistics_speedup(save_table):
    matrix = IdealSource(seed=FLEET_SEED).generate_matrix(ROWS, N)

    # Parity gate: identical P-values on both backends before speed counts.
    parity_rows = matrix[: min(ROWS, 64)]
    packed_reports = run_batch(parity_rows, tests=PARITY_TESTS, backend="packed")
    uint8_reports = run_batch(parity_rows, tests=PARITY_TESTS, backend="uint8")
    assert _p_values(packed_reports) == _p_values(uint8_reports)

    _evaluate_shared_statistics(matrix, "packed")  # warm-up (LUTs, allocator)
    uint8_seconds = _median_stat_seconds(matrix, "uint8")
    packed_seconds = _median_stat_seconds(matrix, "packed")
    speedup = uint8_seconds / packed_seconds
    bits_per_s = ROWS * N / packed_seconds

    rows = [
        {
            "backend": "uint8 (byte per bit)",
            "matrix": f"{ROWS} x {N}",
            "seconds": f"{uint8_seconds:.3f}",
            "speedup": "1.0x",
        },
        {
            "backend": "packed (64 bits per word)",
            "matrix": f"{ROWS} x {N}",
            "seconds": f"{packed_seconds:.3f}",
            "speedup": f"{speedup:.1f}x",
        },
    ]
    save_table(
        "packed_statistics",
        f"Shared-statistic batch evaluation, packed vs uint8 backend"
        f"{' [smoke sizes]' if SMOKE else ''}",
        rows,
        ["backend", "matrix", "seconds", "speedup"],
    )
    write_bench_json(
        "packed",
        smoke=SMOKE,
        workload={
            "rows": ROWS,
            "n": N,
            "block_length": BLOCK_LENGTH,
            "statistics": [
                "ones", "block_sums", "num_runs", "walk_extremes",
                "block_longest_one_runs",
            ],
            "parity_tests": PARITY_TESTS,
        },
        timings_s={
            "uint8_statistics": uint8_seconds,
            "packed_statistics": packed_seconds,
        },
        speedups={"packed_vs_uint8_statistics": speedup},
        floors={"packed_vs_uint8_statistics": MIN_STATS_SPEEDUP},
        extra={"packed_bits_per_s": bits_per_s},
    )
    assert_floors(
        {"packed_vs_uint8_statistics": speedup},
        {"packed_vs_uint8_statistics": MIN_STATS_SPEEDUP},
    )


def _build_fleet(backend):
    registry = DeviceRegistry(FLEET_DESIGN, alpha=0.01)
    registry.populate(NUM_DEVICES, FleetMix.healthy_with_threats(0.95), seed=FLEET_SEED)
    return FleetScheduler(registry, backend=backend)


def _run_rounds(scheduler):
    scheduler.run_round()  # warm-up: imports, allocator, kernel LUTs
    return statistics.median(
        scheduler.run_round().elapsed_s for _ in range(FLEET_ROUNDS)
    )


def test_packed_fleet_round_speedup(save_table):
    uint8_scheduler = _build_fleet("uint8")
    packed_scheduler = _build_fleet("packed")

    uint8_round = _run_rounds(uint8_scheduler)
    packed_round = _run_rounds(packed_scheduler)
    speedup = uint8_round / packed_round

    # Same fleet seed, same streams: the two backends must agree device for
    # device on everything the health machines derived.
    for uint8_device, packed_device in zip(
        uint8_scheduler.registry, packed_scheduler.registry
    ):
        assert uint8_device.scenario == packed_device.scenario
        assert uint8_device.state == packed_device.state
        assert (
            uint8_device.monitor.first_failed_index
            == packed_device.monitor.first_failed_index
        )
    assert packed_scheduler.report().backend == "packed"

    rows = [
        {
            "backend": "uint8 fleet round",
            "devices": NUM_DEVICES,
            "round_ms": f"{uint8_round * 1e3:,.0f}",
            "devices_per_s": f"{NUM_DEVICES / uint8_round:,.0f}",
            "speedup": "1.0x",
        },
        {
            "backend": "packed fleet round",
            "devices": NUM_DEVICES,
            "round_ms": f"{packed_round * 1e3:,.0f}",
            "devices_per_s": f"{NUM_DEVICES / packed_round:,.0f}",
            "speedup": f"{speedup:.1f}x",
        },
    ]
    save_table(
        "packed_fleet_round",
        f"End-to-end fleet rounds on {FLEET_DESIGN}, packed vs uint8 backend "
        f"({NUM_DEVICES} devices{', smoke sizes' if SMOKE else ''})",
        rows,
        ["backend", "devices", "round_ms", "devices_per_s", "speedup"],
    )
    write_bench_json(
        "packed_fleet",
        smoke=SMOKE,
        workload={
            "design": FLEET_DESIGN,
            "num_devices": NUM_DEVICES,
            "rounds": FLEET_ROUNDS,
            "mix": "healthy_with_threats(0.95)",
        },
        timings_s={
            "uint8_round": uint8_round,
            "packed_round": packed_round,
        },
        speedups={"packed_vs_uint8_fleet_round": speedup},
        floors={"packed_vs_uint8_fleet_round": MIN_FLEET_SPEEDUP},
        extra={
            "uint8_devices_per_s": NUM_DEVICES / uint8_round,
            "packed_devices_per_s": NUM_DEVICES / packed_round,
        },
    )
    uint8_scheduler.close()
    packed_scheduler.close()
    assert_floors(
        {"packed_vs_uint8_fleet_round": speedup},
        {"packed_vs_uint8_fleet_round": MIN_FLEET_SPEEDUP},
    )
