"""Fleet-scheduler benchmark: multiplexed rounds vs the naive per-device loop.

The obvious way to monitor a 512-device fleet is 512 independent
:class:`~repro.core.monitor.OnTheFlyMonitor` loops — one
``platform.evaluate_source`` per device per round, no shared work anywhere.
The :class:`~repro.fleet.scheduler.FleetScheduler` multiplexes instead: one
``(512, n)`` matrix per round through the engine's batch path, shared
vectorised statistics across the whole fleet.

Asserts the multiplexed round sustains >= 5x the naive round's throughput at
a 512-device fleet (the PR's acceptance bar), and that both paths agree on
what matters — the devices each path drives to FAILED.  Machine-readable
results land in ``benchmarks/results/BENCH_fleet.json`` alongside the other
throughput artefacts.
"""

import os
import statistics
import time

from bench_harness import assert_floors, write_bench_json
from repro.fleet import DeviceRegistry, FleetMix, FleetScheduler

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: The fleet the acceptance bar is stated at: 512 devices, mostly healthy.
NUM_DEVICES = 512
DESIGN = "n128_medium"
MIX = FleetMix.healthy_with_threats(
    0.95, threats=("wire-cut", "biased-0.60", "freq-injection", "aging-drift")
)
SEED = 20150309
#: Rounds timed per path (median-of-rounds absorbs scheduler jitter).
ROUNDS = 2 if SMOKE else 4
MIN_SPEEDUP = 5.0


def _build_fleet():
    registry = DeviceRegistry(DESIGN, alpha=0.01)
    registry.populate(NUM_DEVICES, MIX, seed=SEED)
    return registry


def _run_naive(registry, rounds):
    """The retired shape: one platform evaluation per device per round."""
    platform = registry.platform
    devices = registry.simulated_devices()
    durations = []
    for _ in range(rounds):
        start = time.perf_counter()
        for device in devices:
            report = platform.evaluate_source(device.source)
            device.monitor.observe(report)
        durations.append(time.perf_counter() - start)
    return durations


def _run_multiplexed(scheduler, rounds):
    durations = []
    for _ in range(rounds):
        fleet_round = scheduler.run_round()
        durations.append(fleet_round.elapsed_s)
    return durations


def test_fleet_multiplexed_vs_naive(benchmark, save_table):
    naive_registry = _build_fleet()
    naive_durations = _run_naive(naive_registry, ROUNDS)
    naive_round = statistics.median(naive_durations)
    naive_rate = NUM_DEVICES / naive_round

    fleet_registry = _build_fleet()
    scheduler = FleetScheduler(fleet_registry)
    scheduler.run_round()  # warm-up: engine imports, allocator, caches
    multiplexed_durations = benchmark.pedantic(
        _run_multiplexed, args=(scheduler, ROUNDS), rounds=1, iterations=1
    )
    multiplexed_round = statistics.median(multiplexed_durations)
    multiplexed_rate = NUM_DEVICES / multiplexed_round
    speedup = naive_rate and multiplexed_rate / naive_rate

    # Both paths must catch the same blatant threats before speed counts.
    # (Verdict sources differ — hardware counters vs reference p-values — so
    # the comparison is on the unambiguous populations, not healthy blips.)
    for naive_device, fleet_device in zip(naive_registry, fleet_registry):
        assert naive_device.scenario == fleet_device.scenario
        if naive_device.scenario in ("wire-cut",):
            assert naive_device.monitor.first_failed_index is not None
            assert fleet_device.monitor.first_failed_index is not None

    rows = [
        {
            "path": "naive per-device monitor loop",
            "devices": NUM_DEVICES,
            "round_ms": f"{naive_round * 1e3:,.1f}",
            "devices_per_s": f"{naive_rate:,.0f}",
            "speedup": "1.0x",
        },
        {
            "path": "multiplexed fleet round (engine batch)",
            "devices": NUM_DEVICES,
            "round_ms": f"{multiplexed_round * 1e3:,.1f}",
            "devices_per_s": f"{multiplexed_rate:,.0f}",
            "speedup": f"{speedup:.1f}x",
        },
    ]
    save_table(
        "fleet_throughput",
        f"Fleet monitoring on {DESIGN}: one multiplexed engine round vs the "
        f"naive per-device loop ({NUM_DEVICES} devices"
        f"{', smoke rounds' if SMOKE else ''})",
        rows,
        ["path", "devices", "round_ms", "devices_per_s", "speedup"],
    )
    write_bench_json(
        "fleet",
        smoke=SMOKE,
        workload={"design": DESIGN, "num_devices": NUM_DEVICES, "rounds": ROUNDS},
        timings_s={
            "naive_round": naive_round,
            "multiplexed_round": multiplexed_round,
        },
        speedups={"multiplexed_vs_naive": speedup},
        floors={"multiplexed_vs_naive": MIN_SPEEDUP},
        extra={
            "naive_devices_per_s": naive_rate,
            "multiplexed_devices_per_s": multiplexed_rate,
        },
    )
    assert_floors(
        {"multiplexed_vs_naive": speedup}, {"multiplexed_vs_naive": MIN_SPEEDUP}
    )
