"""Ablation of the four resource-sharing tricks of Section III-C.

The paper lists four area-reduction techniques (omitting the redundant ones
counter, block detection from the global counter, the unified serial /
approximate-entropy implementation, and the shared template shift register)
but does not quantify them individually.  This bench disables them one at a
time on the full nine-test design and reports the flip-flop / LUT / slice
cost of each ablation — the design-choice evidence DESIGN.md calls out.
"""

import pytest

from repro.core.configs import get_design
from repro.eval import estimate_fpga
from repro.hwtests import SharingOptions, UnifiedTestingBlock

ABLATIONS = [
    ("all tricks enabled (paper)", SharingOptions()),
    ("no trick 1: dedicated ones counter", SharingOptions(omit_ones_counter=False)),
    ("no trick 3: own ApEn pattern counters", SharingOptions(unified_approximate_entropy=False)),
    ("no trick 4: per-test shift registers", SharingOptions(shared_shift_register=False)),
    ("all tricks disabled", SharingOptions.all_disabled()),
]


def run_ablation(design_name):
    design = get_design(design_name)
    rows = []
    for label, sharing in ABLATIONS:
        block = UnifiedTestingBlock(design.parameters, tests=design.tests, sharing=sharing)
        resources = block.resources()
        fpga = estimate_fpga(resources)
        rows.append(
            {
                "configuration": label,
                "flip_flops": resources.flip_flops,
                "luts": fpga.luts,
                "slices": fpga.slices,
            }
        )
    baseline = rows[0]
    for row in rows:
        row["extra_ff_vs_paper"] = row["flip_flops"] - baseline["flip_flops"]
    return rows


def test_ablation_sharing_tricks(benchmark, save_table):
    rows = benchmark(run_ablation, "n65536_high")
    save_table(
        "ablation_sharing",
        "Ablation - cost of disabling each sharing trick (n = 65536, 9 tests)",
        rows,
        ["configuration", "flip_flops", "luts", "slices", "extra_ff_vs_paper"],
    )
    baseline = rows[0]
    fully_disabled = rows[-1]
    # The unified implementation is the cheapest configuration...
    for row in rows[1:]:
        assert row["flip_flops"] >= baseline["flip_flops"]
        assert row["slices"] >= baseline["slices"]
    # ...and disabling everything costs a substantial fraction of the block.
    assert fully_disabled.get("extra_ff_vs_paper") > 0.25 * baseline["flip_flops"]

    # Trick 3 (unified ApEn/serial counters) is the single largest saving, as
    # the counter banks dominate the high-profile designs.
    by_label = {row["configuration"]: row for row in rows}
    trick3 = by_label["no trick 3: own ApEn pattern counters"]["extra_ff_vs_paper"]
    trick1 = by_label["no trick 1: dedicated ones counter"]["extra_ff_vs_paper"]
    trick4 = by_label["no trick 4: per-test shift registers"]["extra_ff_vs_paper"]
    assert trick3 > trick1
    assert trick3 > trick4


def test_ablation_light_design(benchmark, save_table):
    """For the light designs only trick 1 applies; the saving is one counter."""
    rows = benchmark(run_ablation, "n65536_light")
    save_table(
        "ablation_sharing_light",
        "Ablation - sharing tricks on the light (5-test) design",
        rows,
        ["configuration", "flip_flops", "luts", "slices", "extra_ff_vs_paper"],
    )
    by_label = {row["configuration"]: row for row in rows}
    assert by_label["no trick 1: dedicated ones counter"]["extra_ff_vs_paper"] >= 16
    assert by_label["no trick 3: own ApEn pattern counters"]["extra_ff_vs_paper"] == 0
