"""One schema for every machine-readable ``BENCH_*.json`` artefact.

Each perf-pinning benchmark used to assemble its own ad-hoc result dict, so
tracking the speedup trajectory across PRs meant reverse-engineering a
different layout per file.  Every ``benchmarks/bench_*.py`` now writes its
``benchmarks/results/BENCH_<name>.json`` through :func:`write_bench_json`,
which enforces one layout:

``bench`` / ``schema_version``
    Artefact identity.
``python`` / ``numpy``
    Interpreter and numpy versions the numbers were measured on (perf
    deltas across PRs are meaningless without them).
``smoke``
    True when the workload was shrunk to CI-smoke size.
``workload``
    What was measured (design, matrix shape, device count, ...).
``timings_s``
    Raw wall-clock measurements, in seconds.
``speedups``
    Derived ratios, keyed by comparison name.
``floors``
    The pinned minimum for each speedup key — the regression contract.
    :func:`assert_floors` fails the benchmark when a measured speedup dips
    below its floor.
``extra``
    Optional benchmark-specific values (throughputs, rates, ...).

The plain-table artefacts (``results/<name>.txt`` / ``<name>.json``) keep
going through ``conftest.save_table``; this module only owns the pinned
``BENCH_*`` perf contracts.
"""

from __future__ import annotations

import json
import pathlib
import platform
from typing import Dict, Mapping, Optional

import numpy as np

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SCHEMA_VERSION = 1


def write_bench_json(
    name: str,
    *,
    workload: Mapping[str, object],
    timings_s: Mapping[str, float],
    speedups: Mapping[str, float],
    floors: Mapping[str, float],
    smoke: bool = False,
    extra: Optional[Mapping[str, object]] = None,
) -> pathlib.Path:
    """Persist ``benchmarks/results/BENCH_<name>.json`` in the shared schema.

    ``floors`` must provide a pinned minimum for every entry in
    ``speedups`` (and nothing else) — the schema exists to make the
    regression contract explicit, so a floorless speedup is an error.
    """
    if set(speedups) != set(floors):
        raise ValueError(
            f"speedups {sorted(speedups)} and floors {sorted(floors)} must "
            "cover the same comparison keys"
        )
    payload: Dict[str, object] = {
        "bench": name,
        "schema_version": SCHEMA_VERSION,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "smoke": smoke,
        "workload": dict(workload),
        "timings_s": {key: float(value) for key, value in timings_s.items()},
        "speedups": {key: float(value) for key, value in speedups.items()},
        "floors": {key: float(value) for key, value in floors.items()},
    }
    if extra:
        payload["extra"] = dict(extra)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def assert_floors(speedups: Mapping[str, float], floors: Mapping[str, float]) -> None:
    """Fail (AssertionError) when any measured speedup dips below its floor."""
    for key, floor in floors.items():
        measured = speedups[key]
        assert measured >= floor, (
            f"{key}: measured {measured:.2f}x is below the pinned "
            f"{floor:.1f}x floor"
        )
