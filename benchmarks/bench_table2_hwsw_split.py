"""Table II — the split of every test's calculation between HW and SW.

For each of the nine implemented tests this bench reports which values the
hardware block exports (middle column of Table II), how many read-out words
they occupy, and which instruction classes the software routine spends on the
remaining arithmetic (right column).  It also verifies the split is *lossless*:
the software statistic computed from the exported values equals the reference
statistic computed from the raw bit sequence.
"""

import pytest

from repro.hwtests import DesignParameters, UnifiedTestingBlock
from repro.nist import (
    block_frequency_test,
    longest_run_test,
    non_overlapping_template_test,
    overlapping_template_test,
    serial_test,
)
from repro.sw.routines import SoftwareVerifier
from repro.trng import IdealSource

ALL_TESTS = (1, 2, 3, 4, 7, 8, 11, 12, 13)


@pytest.fixture(scope="module")
def evaluated():
    params = DesignParameters.for_length(65536)
    bits = IdealSource(seed=2222).generate(65536).bits
    block = UnifiedTestingBlock(params, tests=ALL_TESTS).accelerated_process_sequence(bits)
    verifier = SoftwareVerifier(params, tests=ALL_TESTS, alpha=0.01)
    verdicts = verifier.verify(block.register_file)
    return params, bits, block, verifier, verdicts


def test_table2_hwsw_split(benchmark, save_table, evaluated):
    params, bits, block, verifier, _ = evaluated

    def software_pass():
        fresh = SoftwareVerifier(params, tests=ALL_TESTS, alpha=0.01)
        return fresh.verify(block.register_file)

    verdicts = benchmark(software_pass)

    prefixes = {
        1: ("t13_s_final",),   # derived from the shared cusum counter
        2: ("t2_eps_",),
        3: ("t3_n_runs", "t13_s_final"),
        4: ("t4_nu_",),
        7: ("t7_w_",),
        8: ("t8_nu_",),
        11: ("t11_nu",),
        12: ("t11_nu",),       # shared with the serial test
        13: ("t13_s_",),
    }
    rows = []
    names = block.register_file.names()
    for number in ALL_TESTS:
        exported = [n for n in names if any(n.startswith(p) for p in prefixes[number])]
        words = sum(block.register_file.words_required(n) for n in exported)
        instructions = verdicts[number].details["instructions"]
        spent = ", ".join(f"{k}:{v}" for k, v in instructions.items() if v)
        rows.append(
            {
                "test": number,
                "hw_values": len(exported),
                "readout_words": words,
                "sw_instructions": spent,
                "passed": verdicts[number].passed,
            }
        )
    save_table(
        "table2_hwsw_split",
        "Table II - hardware-exported values and software arithmetic per test (n = 65536)",
        rows,
        ["test", "hw_values", "readout_words", "sw_instructions", "passed"],
    )

    # Losslessness of the split: SW statistics equal reference statistics.
    assert verdicts[2].statistic == pytest.approx(
        params.block_frequency_block_length
        * block_frequency_test(bits, params.block_frequency_block_length).statistic,
        rel=1e-9,
    )
    assert verdicts[4].statistic == pytest.approx(
        longest_run_test(bits, params.longest_run_block_length).statistic, rel=1e-9
    )
    assert verdicts[7].statistic == pytest.approx(
        non_overlapping_template_test(
            bits, params.nonoverlapping_template, params.nonoverlapping_num_blocks
        ).statistic,
        rel=1e-9,
    )
    assert verdicts[8].statistic == pytest.approx(
        overlapping_template_test(
            bits, params.overlapping_template, params.overlapping_block_length
        ).statistic,
        rel=1e-9,
    )
    assert verdicts[11].details["del1"] == pytest.approx(
        serial_test(bits, params.serial_m).details["del1"], rel=1e-9
    )


def test_table2_every_test_has_hw_and_sw_half(benchmark, evaluated):
    _, _, block, _, verdicts = evaluated
    benchmark(block.hardware_values)
    # Every implemented test produced a verdict, and every exported value
    # belongs to some test's hardware half.
    assert set(verdicts) == set(ALL_TESTS)
    assert len(block.register_file) > 50
