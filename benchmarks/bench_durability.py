"""Durability overhead benchmark: WAL + interval snapshots vs plain ingest.

The durability layer journals every sequenced ingest write-ahead and
snapshots the whole fleet on an interval; both sit on the ingest path's
sustained cost, so they must stay nearly free.  This benchmark drives the
same deterministic workload through two live schedulers — one plain, one
with the WAL attached — timing each ingest *paired* (the two paths
alternate within every microsecond-scale window, the pair order flips
every iteration, and the relative throughput is the median of the
per-pair ratios, so machine noise lands on both sides and spikes cancel).
The
interval-snapshot cost is measured directly — one full-fleet checkpoint —
and amortised at the configured interval on top of the journalled path.
Pinned floors:

- ``durable_ingest_vs_plain`` >= 0.9x: WAL appends plus amortised interval
  snapshots may cost at most 10% of sustained ingest throughput, and
- ``restore_under_2s`` >= 1.0x: recovering the full fleet from its
  snapshot + journal (``recover_fleet``) finishes in under 2 seconds.

Recovery must also be *correct* before it is fast: the restored fleet's
per-device health verdicts are asserted bit-identical to the live one.
Machine-readable results land in ``benchmarks/results/BENCH_durability.json``.
"""

import os
import statistics
import tempfile
import time

import numpy as np

from bench_harness import assert_floors, write_bench_json
from repro.fleet import DeviceRegistry, DurableFleet, FleetScheduler, recover_fleet

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: The fleet the acceptance bar is stated at: 1024 externally-fed devices.
NUM_DEVICES = 128 if SMOKE else 1024
CHUNKS_PER_DEVICE = 2 if SMOKE else 4
#: Sequences per ingest chunk: sustained feeds batch a few sequences per
#: request (the service accepts any positive multiple of n), so the
#: per-record WAL framing amortises over a realistic payload.
SEQS_PER_CHUNK = 8
DESIGN = "n128_light"
N = 128
SEED = 20150309
#: The interval the snapshot cost is amortised at (the production cadence;
#: the CLI's ``--snapshot-interval`` is operator-chosen, this is a sensible
#: sustained-operation setting).
SNAPSHOT_INTERVAL_S = 5.0
#: Durable ingest must sustain >= 90% of plain throughput (<= 10% overhead).
MIN_RELATIVE_THROUGHPUT = 0.9
#: Restoring the whole fleet from snapshot + WAL must finish in under 2 s.
MAX_RESTORE_S = 2.0


def _chunk_bits(device_index: int, chunk_index: int) -> np.ndarray:
    """Stateless per-(device, chunk) bits, identical across both runs."""
    rng = np.random.default_rng([SEED, device_index, chunk_index])
    size = N * SEQS_PER_CHUNK
    if device_index % 8 == 7:  # a sprinkle of blatantly-biased devices
        return (rng.random(size) < 0.85).astype(np.uint8)
    return rng.integers(0, 2, size, dtype=np.uint8)


def _build_scheduler() -> FleetScheduler:
    registry = DeviceRegistry(DESIGN, alpha=0.01)
    for index in range(NUM_DEVICES):
        registry.register(f"bench-{index:04d}")
    return FleetScheduler(registry)


def _paired_ingest(plain: FleetScheduler, durable: FleetScheduler):
    """Per-ingest paired wall times; returns (plain_times, durable_times)."""
    plain_times = []
    durable_times = []
    flip = False
    for chunk_index in range(CHUNKS_PER_DEVICE):
        for device_index in range(NUM_DEVICES):
            device_id = f"bench-{device_index:04d}"
            bits = _chunk_bits(device_index, chunk_index)
            first, second = (durable, plain) if flip else (plain, durable)
            start = time.perf_counter()
            first.ingest(device_id, bits, seq=chunk_index)
            middle = time.perf_counter()
            second.ingest(device_id, bits, seq=chunk_index)
            end = time.perf_counter()
            if flip:
                durable_times.append(middle - start)
                plain_times.append(end - middle)
            else:
                plain_times.append(middle - start)
                durable_times.append(end - middle)
            flip = not flip
    return plain_times, durable_times


def _health_map(scheduler: FleetScheduler):
    return {
        device.device_id: device.snapshot() for device in scheduler.registry
    }


def test_durability_overhead_and_restore(benchmark, save_table):
    # Warm-up: engine imports, allocator, caches.
    warm = _build_scheduler()
    for device_index in range(min(NUM_DEVICES, 32)):
        warm.ingest(f"bench-{device_index:04d}", _chunk_bits(device_index, 0), seq=0)
    warm.close()

    plain = _build_scheduler()
    durable_scheduler = _build_scheduler()
    with tempfile.TemporaryDirectory(prefix="bench-durability-") as spool:
        # Journal attached from the start; the interval thread stays off so
        # its firing instants can't leak into the *paired* ingest numbers —
        # the snapshot cost is measured explicitly below and amortised.
        durable = DurableFleet(durable_scheduler, spool, snapshot_interval_s=None)
        durable.start()

        plain_times, durable_times = benchmark.pedantic(
            _paired_ingest, args=(plain, durable_scheduler), rounds=1, iterations=1
        )
        plain_s = sum(plain_times)
        journalled_s = sum(durable_times)
        # Median of the per-pair ratios: a scheduler hiccup or GC spike hits
        # one pair, not the estimate — sums would charge it to whichever
        # side it randomly landed on.
        journalled_ratio = statistics.median(
            p / d for p, d in zip(plain_times, durable_times)
        )

        snap_start = time.perf_counter()
        durable.checkpoint()
        snapshot_s = time.perf_counter() - snap_start
        durable.close(final_snapshot=True)

        # Sustained durable cost = journalled ingest + one full-fleet
        # snapshot every SNAPSHOT_INTERVAL_S of it.
        amortisation = 1.0 + snapshot_s / SNAPSHOT_INTERVAL_S
        durable_s = journalled_s * amortisation

        restore_start = time.perf_counter()
        recovered, replay = recover_fleet(spool)
        restore_s = time.perf_counter() - restore_start

        # Correctness before speed: the restored fleet must be bit-identical.
        assert _health_map(recovered) == _health_map(durable_scheduler)
        assert recovered.last_ingest_seq("bench-0000") == CHUNKS_PER_DEVICE - 1
        recovered.close()
    durable_scheduler.close()
    plain.close()

    total_ingests = NUM_DEVICES * CHUNKS_PER_DEVICE
    plain_rate = total_ingests / plain_s
    durable_rate = total_ingests / durable_s
    relative = journalled_ratio / amortisation
    restore_headroom = MAX_RESTORE_S / restore_s

    rows = [
        {
            "path": "plain scheduler ingest",
            "devices": NUM_DEVICES,
            "ingests_per_s": f"{plain_rate:,.0f}",
            "relative": "1.00x",
        },
        {
            "path": "durable ingest (WAL + amortised snapshots)",
            "devices": NUM_DEVICES,
            "ingests_per_s": f"{durable_rate:,.0f}",
            "relative": f"{relative:.2f}x",
        },
        {
            "path": "snapshot + WAL restore (recover_fleet)",
            "devices": NUM_DEVICES,
            "ingests_per_s": "-",
            "relative": f"{restore_s * 1e3:,.0f} ms",
        },
    ]
    save_table(
        "durability_overhead",
        f"Durability overhead on {DESIGN}: sustained ingest with the WAL and "
        f"amortised interval snapshots vs plain ({NUM_DEVICES} devices, "
        f"{CHUNKS_PER_DEVICE} chunks/device"
        f"{', smoke scale' if SMOKE else ''})",
        rows,
        ["path", "devices", "ingests_per_s", "relative"],
    )
    write_bench_json(
        "durability",
        smoke=SMOKE,
        workload={
            "design": DESIGN,
            "num_devices": NUM_DEVICES,
            "chunks_per_device": CHUNKS_PER_DEVICE,
            "seqs_per_chunk": SEQS_PER_CHUNK,
            "snapshot_interval_s": SNAPSHOT_INTERVAL_S,
        },
        timings_s={
            "plain_ingest": plain_s,
            "journalled_ingest": journalled_s,
            "snapshot": snapshot_s,
            "durable_ingest_amortised": durable_s,
            "restore": restore_s,
        },
        speedups={
            "durable_ingest_vs_plain": relative,
            "restore_under_2s": restore_headroom,
        },
        floors={
            "durable_ingest_vs_plain": MIN_RELATIVE_THROUGHPUT,
            "restore_under_2s": 1.0,
        },
        extra={
            "plain_ingests_per_s": plain_rate,
            "durable_ingests_per_s": durable_rate,
            "journalled_ratio_median": journalled_ratio,
            "snapshot_amortisation": amortisation,
            "restore_s": restore_s,
            "replay": replay.to_dict(),
        },
    )
    assert_floors(
        {
            "durable_ingest_vs_plain": relative,
            "restore_under_2s": restore_headroom,
        },
        {
            "durable_ingest_vs_plain": MIN_RELATIVE_THROUGHPUT,
            "restore_under_2s": 1.0,
        },
    )
