"""End-to-end stream-throughput benchmark: block path vs per-bit seed path.

The seed repository generated and analysed TRNG output one bit of Python at
a time (``EntropySource.next_bit`` feeding ``UnifiedTestingBlock.process_bit``
— the monitor path before the engine and the block-native source layer
existed).  This benchmark pits that retired hot path, still available behind
``accelerated=False`` for RTL-fidelity runs, against today's default: whole
trial matrices pulled with ``generate_matrix`` and evaluated through the
vectorised functional hardware model.

Asserts the block path sustains >= 10x the per-bit throughput on the same
monitoring workload (>= 3x in ``REPRO_BENCH_SMOKE=1`` mode, which shrinks
the workload to CI-smoke size), and that an end-to-end detection campaign —
generation, evaluation, health folding, aggregation — also clears 10x the
per-bit rate.  Machine-readable results land in
``benchmarks/results/BENCH_throughput.json`` (plus the usual table artefacts)
so the throughput trajectory is tracked across PRs.
"""

import os
import time

from bench_harness import assert_floors, write_bench_json
from repro.campaign import CampaignConfig, run_campaign
from repro.core.monitor import OnTheFlyMonitor
from repro.core.platform import OnTheFlyPlatform
from repro.trng import CorrelatedSource

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: The monitored design: long enough that per-sequence software overhead is
#: amortised and the generation + hardware path dominates both sides.
DESIGN = "n65536_light"
N = 65536
PER_BIT_SEQUENCES = 1 if SMOKE else 2
BLOCK_SEQUENCES = 4 if SMOKE else 16
CAMPAIGN_TRIALS = 1 if SMOKE else 2
CAMPAIGN_SEQUENCES = 4 if SMOKE else 6
CAMPAIGN_SCENARIOS = ("healthy-ideal", "biased-0.60", "correlated-0.75")
MIN_SPEEDUP = 3.0 if SMOKE else 10.0


def _source():
    # A Markov source: its seed-path generation cost is representative of
    # the behavioural models (one uniform draw per bit).
    return CorrelatedSource(0.6, seed=20150309)


def _run_monitor(platform, accelerated: bool, num_sequences: int):
    monitor = OnTheFlyMonitor(platform)
    start = time.perf_counter()
    monitor.monitor(
        _source(),
        num_sequences=num_sequences,
        batch_size=None if not accelerated else num_sequences,
        accelerated=accelerated,
    )
    elapsed = time.perf_counter() - start
    return elapsed, monitor


def _run_campaign():
    config = CampaignConfig(
        designs=(DESIGN,),
        scenarios=CAMPAIGN_SCENARIOS,
        trials=CAMPAIGN_TRIALS,
        sequences_per_trial=CAMPAIGN_SEQUENCES,
        seed=20150309,
    )
    start = time.perf_counter()
    report = run_campaign(config)
    elapsed = time.perf_counter() - start
    bits = len(report.cells) * CAMPAIGN_TRIALS * CAMPAIGN_SEQUENCES * N
    return elapsed, bits, report


def test_stream_throughput_block_vs_per_bit(benchmark, save_table):
    platform = OnTheFlyPlatform(DESIGN, alpha=0.01)

    per_bit_elapsed, per_bit_monitor = _run_monitor(
        platform, accelerated=False, num_sequences=PER_BIT_SEQUENCES
    )
    per_bit_rate = PER_BIT_SEQUENCES * N / per_bit_elapsed

    (block_elapsed, block_monitor) = benchmark.pedantic(
        _run_monitor, args=(platform, True, BLOCK_SEQUENCES), rounds=1, iterations=1
    )
    block_rate = BLOCK_SEQUENCES * N / block_elapsed

    campaign_elapsed, campaign_bits, campaign_report = _run_campaign()
    campaign_rate = campaign_bits / campaign_elapsed

    # Both paths walk the same seed stream: the health trajectories of the
    # overlapping prefix must agree before any speedup claim counts.
    agree = all(
        fast.report.passed == slow.report.passed
        for fast, slow in zip(block_monitor.history, per_bit_monitor.history)
    )
    assert agree

    rows = [
        {
            "path": "per-bit (seed hot path, accelerated=False)",
            "sequences": PER_BIT_SEQUENCES,
            "bits_per_s": f"{per_bit_rate:,.0f}",
            "speedup": "1.0x",
        },
        {
            "path": "block streaming (default)",
            "sequences": BLOCK_SEQUENCES,
            "bits_per_s": f"{block_rate:,.0f}",
            "speedup": f"{block_rate / per_bit_rate:.1f}x",
        },
        {
            "path": "detection campaign (end-to-end)",
            "sequences": campaign_bits // N,
            "bits_per_s": f"{campaign_rate:,.0f}",
            "speedup": f"{campaign_rate / per_bit_rate:.1f}x",
        },
    ]
    save_table(
        "stream_throughput",
        f"Stream throughput on {DESIGN} (n = {N}): vectorized block path vs "
        f"the retired per-bit Python path{' [smoke sizes]' if SMOKE else ''}",
        rows,
        ["path", "sequences", "bits_per_s", "speedup"],
    )
    speedups = {
        "block_vs_per_bit": block_rate / per_bit_rate,
        "campaign_vs_per_bit": campaign_rate / per_bit_rate,
    }
    floors = {
        "block_vs_per_bit": MIN_SPEEDUP,
        "campaign_vs_per_bit": MIN_SPEEDUP,
    }
    write_bench_json(
        "throughput",
        smoke=SMOKE,
        workload={
            "design": DESIGN,
            "n": N,
            "per_bit_sequences": PER_BIT_SEQUENCES,
            "block_sequences": BLOCK_SEQUENCES,
        },
        timings_s={
            "per_bit": per_bit_elapsed,
            "block": block_elapsed,
            "campaign": campaign_elapsed,
        },
        speedups=speedups,
        floors=floors,
        extra={
            "per_bit_bits_per_s": per_bit_rate,
            "block_bits_per_s": block_rate,
            "campaign_bits_per_s": campaign_rate,
        },
    )
    assert_floors(speedups, floors)
    # Sanity on the campaign content itself: the biased threat is caught,
    # the healthy control is quiet.
    by_scenario = {cell.scenario: cell for cell in campaign_report.cells}
    assert by_scenario["biased-0.60"].detection_probability == 1.0
    assert by_scenario["healthy-ideal"].detection_probability <= 0.5
