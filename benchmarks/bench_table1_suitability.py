"""Table I — hardware-suitability classification of the 15 NIST tests.

Regenerates the Yes/No column of Table I together with a quantitative
justification: the storage (flip-flop) cost of the suitable tests' hardware
units at n = 65536, and the storage lower bound that disqualifies the others.
"""

import pytest

from repro.hwtests.suitability import SUITABILITY_TABLE, suitability_table
from repro.nist.suite import HW_SUITABLE_TESTS


def test_table1_suitability(benchmark, save_table):
    rows = benchmark(suitability_table, 65536)

    # The classification matches the paper's Table I exactly.
    suitable = [row["test"] for row in rows if row["hw_suitable"]]
    assert tuple(suitable) == HW_SUITABLE_TESTS
    assert len(rows) == 15

    # Quantitative justification: every suitable test fits in a few hundred
    # flip-flops of simple counters, while every excluded test needs hundreds
    # of bits of storage *plus* arithmetic (Gaussian elimination, FFT
    # butterflies, logarithms, ...) that a counters-only datapath cannot offer.
    for row in rows:
        if row["hw_suitable"]:
            assert row["storage_bits"] <= 1200
        else:
            assert row["storage_bits"] >= 300

    save_table(
        "table1_suitability",
        "Table I - NIST tests and their suitability for on-the-fly hardware (n = 65536)",
        rows,
        ["test", "name", "hw_suitable", "storage_bits", "reason"],
    )


def test_table1_static_entries(benchmark):
    """The static classification is self-consistent."""
    numbers = benchmark(lambda: [entry.number for entry in SUITABILITY_TABLE])
    assert numbers == list(range(1, 16))
    assert sum(entry.hw_suitable for entry in SUITABILITY_TABLE) == 9
