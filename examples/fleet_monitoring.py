#!/usr/bin/env python3
"""Fleet monitoring: hundreds of deployed TRNGs through one engine.

The paper monitors one TRNG; a production deployment tracks thousands.
This example builds a 200-device fleet — 95% healthy, 5% seeded with
threats from the campaign catalogue — advances it in multiplexed engine
rounds (the whole fleet evaluated as one batch per round), prints the
operations view, then briefly stands up the HTTP/JSON service and walks
the register → ingest → health → summary flow a real integration would
use.

Run with:  python examples/fleet_monitoring.py
"""

import json
import threading
import urllib.request

from repro.fleet import DeviceRegistry, FleetMix, FleetScheduler, serve
from repro.trng.failures import DeadSource


def call(base, method, path, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def main() -> None:
    print("=" * 72)
    print("Fleet monitoring: 200 devices, 95% healthy, 5% threat scenarios")
    print("=" * 72)

    registry = DeviceRegistry("n128_light", alpha=0.01)
    mix = FleetMix.healthy_with_threats(
        0.95, threats=("wire-cut", "biased-0.60", "freq-injection", "aging-drift")
    )
    registry.populate(200, mix, seed=2015)
    scheduler = FleetScheduler(registry)

    for _ in range(8):
        fleet_round = scheduler.run_round()
        health = fleet_round.health
        print(
            f"round {fleet_round.index}: healthy {health['healthy']:>3}  "
            f"suspect {health['suspect']:>2}  failed {health['failed']:>2}  "
            f"({fleet_round.devices_per_s:,.0f} devices/s)"
        )

    report = scheduler.report()
    print()
    print("Per-scenario detection across the fleet:")
    print(report.format_table())
    print()
    print(f"healthy-device false-alarm rate: {report.false_alarm_rate():.3f}")
    print(f"scheduler throughput: {report.devices_per_second():,.0f} devices/s")

    # ---- the HTTP/JSON service flow -----------------------------------
    print()
    print("HTTP service flow (register -> ingest -> health -> summary):")
    server = serve(scheduler, host="127.0.0.1", port=0)
    host, port = server.server_address
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://{host}:{port}"
    try:
        registered = call(base, "POST", "/devices", {"device_id": "field-unit-7"})
        print(f"  registered {registered['device_id']!r} "
              f"(state: {registered['state']})")
        bits = "".join(str(b) for b in DeadSource().generate_block(256))
        ingested = call(base, "POST", "/ingest",
                        {"device_id": "field-unit-7", "bits": bits})
        print(f"  ingested {ingested['sequences']} sequences -> "
              f"state: {ingested['health']['state']}")
        health = call(base, "GET", "/devices/field-unit-7/health")
        print(f"  health: {health['state']} "
              f"(latency: {health['detection_latency_sequences']} sequences, "
              f"first failing tests: {health['first_failing_tests']})")
        summary = call(base, "GET", "/fleet/summary")
        print(f"  fleet summary: {summary['num_devices']} devices, "
              f"health mix {summary['health']}")
    finally:
        server.shutdown()
        server.server_close()
    print()
    print("A wire-cut field unit was caught two sequences after its bits")
    print("arrived — the same health policy the simulated fleet runs on.")


if __name__ == "__main__":
    main()
