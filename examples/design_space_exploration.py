#!/usr/bin/env python3
"""Design-space exploration: reproduce the trade-offs behind Table III.

For each of the eight published design points this script reports the
estimated FPGA cost (Spartan-6 slices, flip-flops, LUTs, maximum frequency),
the ASIC cost (gate equivalents), and the software cost (16-bit instruction
counts and openMSP430 cycle estimate), then picks a design for a given area
budget — the kind of decision the paper's "different applications demand
different trade-offs" discussion is about.

Run with:  python examples/design_space_exploration.py
"""

from repro import IdealSource, list_designs
from repro.eval import estimate_asic, estimate_fpga, latency_report
from repro.hwtests import UnifiedTestingBlock
from repro.sw.routines import SoftwareVerifier


def explore():
    rows = []
    sequences = {}
    for design in list_designs():
        block = UnifiedTestingBlock(design.parameters, tests=design.tests)
        resources = block.resources()
        fpga = estimate_fpga(resources)
        asic = estimate_asic(resources)

        if design.n not in sequences:
            sequences[design.n] = IdealSource(seed=design.n).generate(design.n).bits
        block.accelerated_process_sequence(sequences[design.n])
        verifier = SoftwareVerifier(design.parameters, tests=design.tests)
        verifier.verify(block.register_file)
        latency = latency_report(design.name, design.n, verifier.instruction_counts())

        rows.append(
            {
                "design": design,
                "fpga": fpga,
                "asic": asic,
                "instructions": verifier.instruction_counts(),
                "latency": latency,
            }
        )
    return rows


def print_table(rows) -> None:
    header = (
        f"{'design':<18s}{'tests':>6s}{'slices':>8s}{'FF':>7s}{'LUT':>7s}"
        f"{'fmax':>7s}{'GE':>8s}{'SW instr':>10s}{'SW cycles':>11s}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        design = row["design"]
        print(
            f"{design.name:<18s}{len(design.tests):>6d}{row['fpga'].slices:>8d}"
            f"{row['fpga'].flip_flops:>7d}{row['fpga'].luts:>7d}"
            f"{row['fpga'].max_frequency_mhz:>7.0f}{row['asic'].gate_equivalents:>8d}"
            f"{row['instructions'].total():>10d}{row['latency'].software_cycles:>11.0f}"
        )


def pick_design(rows, max_slices: int, min_tests: int):
    """Largest test coverage (then longest sequence) within a slice budget."""
    feasible = [
        row for row in rows
        if row["fpga"].slices <= max_slices and len(row["design"].tests) >= min_tests
    ]
    if not feasible:
        return None
    return max(feasible, key=lambda row: (len(row["design"].tests), row["design"].n))


def main() -> None:
    rows = explore()
    print("Design space of the on-the-fly testing platform "
          "(compare with Table III of the paper):\n")
    print_table(rows)

    print("\nDesign selection under an area budget:")
    for budget, min_tests in ((100, 5), (200, 6), (600, 9)):
        choice = pick_design(rows, budget, min_tests)
        if choice is None:
            print(f"  <= {budget} slices, >= {min_tests} tests: no feasible design")
        else:
            d = choice["design"]
            print(
                f"  <= {budget} slices, >= {min_tests} tests: {d.name} "
                f"({choice['fpga'].slices} slices, {len(d.tests)} tests, n={d.n})"
            )

    print("\nObservations (matching the paper's Section IV):")
    print("  * every design sustains an input rate above 100 Mbit/s;")
    print("  * the 128-bit light design is the cheapest (quick total-failure tests);")
    print("  * the 2^20-bit high design supports all nine tests for long-term monitoring;")
    print("  * software latency stays far below the sequence generation time.")


if __name__ == "__main__":
    main()
