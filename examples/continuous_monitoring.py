#!/usr/bin/env python3
"""Continuous monitoring of an aging TRNG (the "slow tests" use case).

Section II-B distinguishes quick tests (catching total failures within a few
hundred bits) from slow tests (catching long-term statistical weaknesses).
This example runs both at once, the way an integrator would deploy the
platform:

* a 128-bit light design acts as the fast health check,
* a 65536-bit high design watches for slowly developing weaknesses,
* the monitored TRNG suffers from aging drift — its bias grows by ~0.5 % per
  10^5 generated bits — plus occasional burst failures.

Run with:  python examples/continuous_monitoring.py
"""

from repro import AgingSource, OnTheFlyPlatform
from repro.core.monitor import HealthState, OnTheFlyMonitor
from repro.trng import BurstFailureSource


class AgingWithBursts(AgingSource):
    """An aging source that additionally collapses for short bursts.

    Overriding ``next_bit`` below a block-native source is the legacy
    extension pattern: bulk generation (``generate_block``) detects the
    bit-serial override and honours it by falling back to the per-bit loop,
    so the platform's vectorised hardware path still sees the combined
    burst+aging stream.
    """

    def __init__(self, drift_per_bit: float, burst_rate: float, seed: int):
        super().__init__(drift_per_bit=drift_per_bit, seed=seed)
        self._bursts = BurstFailureSource(
            burst_rate=burst_rate, burst_length=96, stuck_value=0, seed=seed + 1
        )

    def next_bit(self) -> int:
        burst_bit = self._bursts.next_bit()
        aged_bit = super().next_bit()
        # During a burst the failure source forces zeros regardless of the
        # aged source's output; outside bursts its output is ideal, so XOR-ing
        # would destroy the aging signature — take the aged bit instead.
        if self._bursts._remaining_burst > 0:
            return burst_bit
        return aged_bit


def run_monitor(label: str, design_name: str, source, sequences: int) -> None:
    platform = OnTheFlyPlatform(design_name, alpha=0.01)
    monitor = OnTheFlyMonitor(platform, suspect_after=1, fail_after=2)
    print(f"\n{label}: design {design_name} (n = {platform.n}), "
          f"{sequences} consecutive sequences")
    print(f"  {'seq':>4s} {'bits seen':>12s} {'verdict':<28s} {'health':<8s}")
    events = monitor.monitor(source, num_sequences=sequences)
    for event in events:
        verdict = "pass" if event.report.passed else f"fail {event.report.failing_tests}"
        print(
            f"  {event.sequence_index:>4d} {(event.sequence_index + 1) * platform.n:>12d} "
            f"{verdict:<28s} {event.state.value:<8s}"
        )
    print(f"  failure rate: {monitor.failure_rate():.2f}   final state: {monitor.state.value}")
    if monitor.detection_latency_bits() is not None:
        print(f"  degradation flagged after {monitor.detection_latency_bits()} bits")


def main() -> None:
    print("Continuous on-the-fly monitoring of an aging TRNG")
    print("==================================================")

    # Fast health check: 128-bit sequences, quick tests only.  The aging is
    # far too slow for it, but it catches the burst failures the moment one
    # lands inside a monitored window.
    fast_source = AgingWithBursts(drift_per_bit=2e-7, burst_rate=2e-3, seed=42)
    run_monitor("Quick tests", "n128_light", fast_source, sequences=24)

    # Slow tests: 65536-bit sequences, all nine tests.  The drift accumulates
    # across sequences until the bias is large enough to reject.
    slow_source = AgingSource(drift_per_bit=2e-7, seed=43)
    run_monitor("Slow tests", "n65536_high", slow_source, sequences=12)

    print("\nInterpretation: the quick 128-bit design reacts within a couple of")
    print("hundred bits to total failures, while the long design accumulates")
    print("enough evidence to flag the slow aging drift — the two-tier setup the")
    print("paper recommends in Section II-B.")


if __name__ == "__main__":
    main()
