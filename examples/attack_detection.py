#!/usr/bin/env python3
"""Attack detection: the threat catalogue of Section II-B, end to end.

Three attacks against a ring-oscillator TRNG (and against the test logic
itself) are simulated and monitored on the fly:

1. a frequency-injection attack through the power supply that locks the
   oscillator mid-operation (Markettos & Moore),
2. a contactless electromagnetic injection that couples a carrier onto the
   sampled bits (Bayon et al.),
3. a probing attack that grounds the reporting channel — which defeats a
   classic single-wire alarm but not the paper's value-based reporting.

Run with:  python examples/attack_detection.py
"""

from repro import OnTheFlyPlatform, ProbingAttack, RingOscillatorTRNG
from repro.core.monitor import OnTheFlyMonitor
from repro.core.reporting import compare_reporting_under_probing
from repro.trng import EMInjectionAttack, FrequencyInjectionAttack, StuckAtSource


def frequency_injection_demo() -> None:
    print("=" * 72)
    print("1. Frequency-injection attack (oscillator locks after 3 sequences)")
    print("=" * 72)
    platform = OnTheFlyPlatform("n128_medium", alpha=0.01)
    trng = RingOscillatorTRNG(ratio=200.25, jitter=0.05, seed=7)
    attack = FrequencyInjectionAttack(trng, lock_strength=1.0, start_bit=3 * platform.n)
    monitor = OnTheFlyMonitor(platform, suspect_after=1, fail_after=2)
    for event in monitor.monitor_until_failure(attack, max_sequences=10):
        status = "PASS" if event.report.passed else f"FAIL {event.report.failing_tests}"
        print(
            f"  sequence {event.sequence_index:>2}  "
            f"attack {'active' if attack.active else 'idle  '}  "
            f"tests: {status:<24s}  health: {event.state.value}"
        )
    latency = monitor.detection_latency_bits()
    print(f"  -> attack flagged after {latency} monitored bits\n")


def em_injection_demo() -> None:
    print("=" * 72)
    print("2. Electromagnetic injection (85% coupling to a 4-bit carrier)")
    print("=" * 72)
    platform = OnTheFlyPlatform("n65536_high", alpha=0.01)
    attack = EMInjectionAttack(
        RingOscillatorTRNG(seed=8), coupling=0.85, carrier_period=4, seed=9
    )
    report = platform.evaluate_sequence(attack.generate(platform.n), accelerated=True)
    print(f"  verdict       : {'PASS' if report.passed else 'FAIL'}")
    print(f"  failing tests : {report.failing_tests}")
    print("  (the template, serial and approximate-entropy tests see the carrier)\n")


def probing_demo() -> None:
    print("=" * 72)
    print("3. Probing attack on the reporting channel (dead TRNG, grounded bus)")
    print("=" * 72)
    platform = OnTheFlyPlatform("n128_light", alpha=0.01)
    comparison = compare_reporting_under_probing(
        platform, source=StuckAtSource(0), probing=ProbingAttack("ground")
    )
    print(f"  single alarm wire      : detects failure = {comparison.alarm_wire_detects}, "
          f"under probing = {comparison.alarm_wire_detects_under_probing}")
    print(f"  value-based reporting  : detects failure = {comparison.value_based_detects}, "
          f"under probing = {comparison.value_based_detects_under_probing}")
    print(f"  consistency violations seen by the software under probing: "
          f"{comparison.consistency_violations_under_probing}")
    print("  -> grounding a single alarm wire hides the failure; grounding the")
    print("     memory-mapped read-out produces structurally impossible values")
    print("     that the software flags immediately.")


def main() -> None:
    frequency_injection_demo()
    em_injection_demo()
    probing_demo()


if __name__ == "__main__":
    main()
