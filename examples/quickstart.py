#!/usr/bin/env python3
"""Quickstart: evaluate a TRNG with the HW/SW on-the-fly testing platform.

This example mirrors the paper's testing environment (Fig. 1): a TRNG
produces a bit sequence, the unified hardware testing block observes every
bit while it is being generated, and the software platform then reads the
hardware's counter values and accepts or rejects the randomness hypothesis
against precomputed critical values.

Run with:  python examples/quickstart.py
"""

from repro import IdealSource, BiasedSource, OnTheFlyPlatform, list_designs


def main() -> None:
    # 1. Pick one of the eight published design points.  "n65536_high"
    #    implements all nine hardware-suitable NIST tests on 65536-bit
    #    sequences; lighter designs trade coverage for area.
    print("Available design points:")
    for design in list_designs():
        print(f"  {design.name:18s} n={design.n:>8d}  tests={design.tests}")
    platform = OnTheFlyPlatform("n65536_high", alpha=0.01)
    print(f"\nUsing {platform!r}\n")

    # 2. Evaluate one sequence from a healthy (ideal) source.
    healthy = IdealSource(seed=2024)
    report = platform.evaluate_sequence(healthy.generate(platform.n), accelerated=True)
    print("Healthy source:")
    print(f"  overall verdict : {'PASS' if report.passed else 'FAIL'}")
    for row in report.summary_rows():
        print(
            f"  test {row['test']:>2}: {row['name']:<42s} "
            f"statistic={row['statistic']:>12.3f}  threshold={row['threshold']:>12.3f}  "
            f"{'ok' if row['passed'] else 'FAIL'}"
        )
    print(f"  software cost   : {report.instruction_counts.as_dict()}")

    # 3. Evaluate a weakened source (3:2 biased bits).  The frequency,
    #    block-frequency and cumulative-sums tests catch the bias immediately.
    weak = BiasedSource(p_one=0.6, seed=2024)
    report = platform.evaluate_sequence(weak.generate(platform.n), accelerated=True)
    print("\nBiased source (P[1] = 0.6):")
    print(f"  overall verdict : {'PASS' if report.passed else 'FAIL'}")
    print(f"  failing tests   : {report.failing_tests}")

    # 4. The level of significance lives purely in software: changing it does
    #    not touch the hardware block (the paper's flexibility argument).
    platform.set_alpha(0.001)
    print(f"\nAfter set_alpha(0.001) the hardware is unchanged; "
          f"the software now uses alpha={platform.alpha}.")


if __name__ == "__main__":
    main()
