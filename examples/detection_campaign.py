#!/usr/bin/env python3
"""Detection campaign: sweep the whole threat catalogue across design points.

The paper's purpose is *detection* — catching total failures, degradation
and active attacks on the fly.  This example runs the campaign subsystem
over both 128-bit design points: every scenario in the default catalogue
(healthy controls, total failures, bias/correlation sweeps, staged
frequency/EM injection, aging trajectories) is monitored for a few
sequences per trial through the engine's batch path, and the resulting
report tabulates detection probability, detection latency and which test
caught which threat.

Run with:  python examples/detection_campaign.py
"""

from repro.campaign import CampaignConfig, run_campaign
from repro.eval.attribution import format_attribution_table


def main() -> None:
    config = CampaignConfig(
        designs=("n128_light", "n128_medium"),
        trials=3,
        sequences_per_trial=8,
        seed=2015,
    )
    report = run_campaign(config)

    print("=" * 72)
    print("Detection campaign over the Section II-B threat catalogue")
    print("=" * 72)
    print(report.format_table())

    print()
    print("Which test caught which threat (trials flagged / trials run):")
    print(format_attribution_table(report.threat_cells()))

    print()
    for design in report.designs:
        rate = report.control_false_alarm_rate(design)
        print(f"healthy-control false-alarm rate [{design}]: {rate:.3f}")

    detected = report.detected_everywhere()
    threats = {cell.scenario for cell in report.threat_cells()}
    print(f"threats detected in every trial on every design: "
          f"{len(detected)}/{len(threats)}")
    print("  (weak biases legitimately escape the 128-bit quick tests; the")
    print("   65536-bit and 2^20-bit designs exist to catch exactly those.)")


if __name__ == "__main__":
    main()
