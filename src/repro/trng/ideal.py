"""Ideal (unbiased, independent) entropy source."""

from __future__ import annotations

import numpy as np

from repro.trng.source import SeededSource

__all__ = ["IdealSource"]


class IdealSource(SeededSource):
    """An ideal TRNG model: independent, unbiased bits.

    Used as the null-hypothesis workload in every experiment — the platform
    must accept its output with probability ≈ 1 − α per test.
    """

    block_bits = 1024

    def _generate_block(self, n: int) -> np.ndarray:
        # One bounded int64 draw per bit: the same stream n successive
        # single-bit draws produced (the default-dtype bounded-integer path
        # is chunk-invariant, unlike the uint8 one), cast down afterwards.
        return self._rng.integers(0, 2, size=n).astype(np.uint8)
