"""Ideal (unbiased, independent) entropy source."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nist.common import BitSequence
from repro.trng.source import SeededSource

__all__ = ["IdealSource"]


class IdealSource(SeededSource):
    """An ideal TRNG model: independent, unbiased bits.

    Used as the null-hypothesis workload in every experiment — the platform
    must accept its output with probability ≈ 1 − α per test.
    """

    def next_bit(self) -> int:
        return int(self._rng.integers(0, 2))

    def generate(self, n: int) -> BitSequence:
        # Vectorised override for speed; behaviour identical to the bit-serial
        # path (both consume the generator's integer stream).
        if n < 0:
            raise ValueError("n must be non-negative")
        return BitSequence(self._rng.integers(0, 2, size=n, dtype=np.uint8))
