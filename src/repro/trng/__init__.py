"""Entropy-source and attack simulators.

The paper's platform monitors a physical TRNG; here the physical entropy
sources and the physical attacks on them (frequency injection through the
power supply, electromagnetic injection, wire cutting, probing of the alarm
signal, aging) are replaced by behavioural models that produce bit streams
with the corresponding statistical signatures.  These models are what the
on-the-fly monitor (:mod:`repro.core`) is exercised against.
"""

from repro.trng.source import EntropySource, SeededSource
from repro.trng.ideal import IdealSource
from repro.trng.biased import BiasedSource
from repro.trng.correlated import CorrelatedSource, OscillatingBiasSource
from repro.trng.oscillator import RingOscillatorTRNG
from repro.trng.failures import StuckAtSource, DeadSource, AlternatingSource, BurstFailureSource
from repro.trng.attacks import (
    FrequencyInjectionAttack,
    EMInjectionAttack,
    ProbingAttack,
    AttackScenario,
)
from repro.trng.aging import AgingSource
from repro.trng.capture import CaptureSource, ReplaySource

__all__ = [
    "CaptureSource",
    "ReplaySource",
    "EntropySource",
    "SeededSource",
    "IdealSource",
    "BiasedSource",
    "CorrelatedSource",
    "OscillatingBiasSource",
    "RingOscillatorTRNG",
    "StuckAtSource",
    "DeadSource",
    "AlternatingSource",
    "BurstFailureSource",
    "FrequencyInjectionAttack",
    "EMInjectionAttack",
    "ProbingAttack",
    "AttackScenario",
    "AgingSource",
]
