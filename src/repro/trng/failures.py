"""Total-failure models of the entropy source.

Section II-B of the paper motivates *quick* on-the-fly tests by total
failures: a cut signal wire, a dead source, a source stuck at a constant
value or oscillating deterministically.  These models produce exactly those
streams.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.trng.source import EntropySource, SeededSource

__all__ = ["StuckAtSource", "DeadSource", "AlternatingSource", "BurstFailureSource"]


class StuckAtSource(EntropySource):
    """Source stuck at a constant value (0 or 1).

    Models a cut signal wire (reads as constant 0) or a latched sampling
    flip-flop.
    """

    def __init__(self, value: int = 0):
        if value not in (0, 1):
            raise ValueError("value must be 0 or 1")
        self.value = int(value)

    def next_bit(self) -> int:
        return self.value

    def _generate_block(self, n: int) -> np.ndarray:
        return np.full(n, self.value, dtype=np.uint8)

    @property
    def name(self) -> str:
        return f"StuckAtSource(value={self.value})"


class DeadSource(StuckAtSource):
    """A completely disabled source — the wire-cut attack of Section II-B.

    Equivalent to :class:`StuckAtSource` with value 0; kept as a separate
    class so attack scenarios read naturally.
    """

    def __init__(self):
        super().__init__(value=0)

    @property
    def name(self) -> str:
        return "DeadSource"


class AlternatingSource(EntropySource):
    """Deterministic periodic source (e.g. ``010101...`` or a longer pattern).

    Models an oscillator locked exactly to a sub-multiple of the sampling
    clock: perfectly balanced ones/zeros (so the plain frequency test passes)
    but zero entropy.  The runs, serial and approximate-entropy tests are the
    ones that must catch it.

    Parameters
    ----------
    pattern:
        The repeating bit pattern (default ``(0, 1)``).
    """

    def __init__(self, pattern=(0, 1)):
        pattern = tuple(int(b) for b in pattern)
        if not pattern:
            raise ValueError("pattern must not be empty")
        if set(pattern) - {0, 1}:
            raise ValueError("pattern may only contain bits")
        self.pattern = pattern
        self._pattern_array = np.asarray(pattern, dtype=np.uint8)
        self._index = 0

    def next_bit(self) -> int:
        bit = self.pattern[self._index]
        self._index = (self._index + 1) % len(self.pattern)
        return bit

    def _generate_block(self, n: int) -> np.ndarray:
        indices = (np.arange(n, dtype=np.int64) + self._index) % self._pattern_array.size
        self._index = int((self._index + n) % self._pattern_array.size)
        return self._pattern_array[indices]

    def reset(self) -> None:
        super().reset()
        self._index = 0

    @property
    def name(self) -> str:
        return f"AlternatingSource(pattern={''.join(map(str, self.pattern))})"


class BurstFailureSource(SeededSource):
    """A source that behaves ideally except for intermittent stuck intervals.

    Models aging-related intermittent failures or a marginal source that
    occasionally collapses for a stretch of ``burst_length`` bits.  The
    probability that any given bit starts a burst is ``burst_rate``.

    Two independent child streams are derived from the seed: a *trigger*
    stream consuming exactly one uniform per output bit (burst or not), and
    a *data* stream consuming one draw per healthy bit.  Decoupling them
    keeps the emitted stream split-invariant — the burst pattern depends
    only on absolute bit positions, never on block boundaries — which is
    what lets :meth:`_generate_block` vectorise the healthy stretches.

    ``block_bits`` stays 1: the remaining-burst state is observable (e.g.
    ``examples/continuous_monitoring.py`` gates on it), so the ``next_bit``
    shim may not read ahead.

    Parameters
    ----------
    burst_rate:
        Per-bit probability of entering a stuck burst.
    burst_length:
        Length of each stuck burst, in bits.
    stuck_value:
        The constant value emitted during a burst.
    seed:
        Seed of the backing pseudo-random generator.
    """

    def __init__(
        self,
        burst_rate: float = 1e-4,
        burst_length: int = 256,
        stuck_value: int = 0,
        seed: Optional[int] = None,
    ):
        super().__init__(seed)
        if not 0.0 <= burst_rate <= 1.0:
            raise ValueError("burst_rate must lie in [0, 1]")
        if burst_length <= 0:
            raise ValueError("burst_length must be positive")
        if stuck_value not in (0, 1):
            raise ValueError("stuck_value must be 0 or 1")
        self.burst_rate = float(burst_rate)
        self.burst_length = int(burst_length)
        self.stuck_value = int(stuck_value)
        self._remaining_burst = 0
        self._spawn_rngs()

    def _spawn_rngs(self) -> None:
        data_seq, trigger_seq = np.random.SeedSequence(self._seed).spawn(2)
        self._rng = np.random.default_rng(data_seq)
        self._trigger_rng = np.random.default_rng(trigger_seq)

    def _generate_block(self, n: int) -> np.ndarray:
        triggers = self._trigger_rng.random(n) < self.burst_rate
        burst = np.zeros(n, dtype=bool)
        end = self._remaining_burst  # burst carried in from the last block
        burst[: min(end, n)] = True
        # Bursts are sparse, so resolving overlaps iterates only the few
        # trigger positions (triggers inside an active burst are ignored,
        # matching the bit-serial semantics).
        for idx in np.flatnonzero(triggers):
            if idx < end:
                continue
            stop = min(idx + self.burst_length, n)
            burst[idx:stop] = True
            end = idx + self.burst_length
        self._remaining_burst = max(0, end - n)
        out = np.full(n, self.stuck_value, dtype=np.uint8)
        healthy = ~burst
        count = int(np.count_nonzero(healthy))
        if count:
            out[healthy] = self._rng.integers(0, 2, size=count).astype(np.uint8)
        return out

    def reset(self) -> None:
        super().reset()
        self._spawn_rngs()
        self._remaining_burst = 0

    @property
    def name(self) -> str:
        return (
            f"BurstFailureSource(rate={self.burst_rate}, length={self.burst_length}, "
            f"value={self.stuck_value})"
        )
