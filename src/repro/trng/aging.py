"""Aging-degradation model of an entropy source.

Section II-B notes that, besides active attacks, a designer must worry about
failures due to aging.  Aging (NBTI/HCI-type drift) typically manifests as a
slow drift of the sampling threshold — i.e. a slowly growing bias — possibly
accompanied by growing correlation as the noise margin shrinks.  The
long-sequence ("slow") tests of the platform exist to catch exactly this.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.trng.source import SeededSource

__all__ = ["AgingSource"]


class AgingSource(SeededSource):
    """A source whose bias drifts linearly with the number of emitted bits.

    ``block_bits`` stays 1: :attr:`age_bits` and :meth:`current_bias` are
    observables that must track the bits the consumer has actually seen, so
    the ``next_bit`` shim may not read ahead.

    Parameters
    ----------
    drift_per_bit:
        Increase of P(1) per emitted bit (can be negative).  Typical
        interesting values are tiny (e.g. ``1e-7``): the drift is invisible
        to short "quick" tests but accumulates over the 2^20-bit sequences of
        the paper's long-term design point.
    initial_bias:
        Starting P(1) (default 0.5 — a healthy source).
    max_bias, min_bias:
        Saturation limits of the drifting bias.
    seed:
        Seed of the backing pseudo-random generator.
    """

    def __init__(
        self,
        drift_per_bit: float = 1e-7,
        initial_bias: float = 0.5,
        max_bias: float = 1.0,
        min_bias: float = 0.0,
        seed: Optional[int] = None,
    ):
        super().__init__(seed)
        if not 0.0 <= initial_bias <= 1.0:
            raise ValueError("initial_bias must lie in [0, 1]")
        if not 0.0 <= min_bias <= max_bias <= 1.0:
            raise ValueError("need 0 <= min_bias <= max_bias <= 1")
        self.drift_per_bit = float(drift_per_bit)
        self.initial_bias = float(initial_bias)
        self.max_bias = float(max_bias)
        self.min_bias = float(min_bias)
        self._emitted = 0

    def current_bias(self) -> float:
        """P(1) for the next bit, after the drift accumulated so far."""
        bias = self.initial_bias + self.drift_per_bit * self._emitted
        return min(max(bias, self.min_bias), self.max_bias)

    def _generate_block(self, n: int) -> np.ndarray:
        u = self._rng.random(n)
        ages = np.arange(self._emitted, self._emitted + n, dtype=np.int64)
        bias = self.initial_bias + self.drift_per_bit * ages
        np.clip(bias, self.min_bias, self.max_bias, out=bias)
        self._emitted += n
        return (u < bias).astype(np.uint8)

    def reset(self) -> None:
        super().reset()
        self._emitted = 0

    @property
    def age_bits(self) -> int:
        """Number of bits emitted so far (the model's notion of age)."""
        return self._emitted

    @property
    def name(self) -> str:
        return f"AgingSource(drift={self.drift_per_bit}, start={self.initial_bias})"
