"""Behavioural model of a ring-oscillator-based TRNG.

The classic elementary ring-oscillator TRNG samples a fast, free-running
oscillator with a slower sampling clock; entropy comes from the accumulated
phase jitter between samples.  This model reproduces that mechanism at the
phase level so that the physical attacks of the paper's Section II-B
(frequency injection locking the oscillator, electromagnetic injection) have
a faithful software counterpart: when the oscillator locks to the injected
frequency, the jitter-to-period ratio collapses and the output becomes
deterministic/periodic, which is exactly the failure the on-the-fly tests
must detect.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.trng.source import SeededSource

__all__ = ["RingOscillatorTRNG"]

#: Absolute sample indices at which the accumulated phase is reduced mod 1.
#: Reduction points are fixed in the stream (not at block boundaries) so the
#: emitted bits stay split-invariant while the accumulator never grows far
#: enough for float64 to lose the sub-period phase resolution.
_RENORM_INTERVAL = 1 << 16


class RingOscillatorTRNG(SeededSource):
    """Jitter-sampling ring-oscillator TRNG model.

    Parameters
    ----------
    ratio:
        Ratio between the sampling period and the ring-oscillator period
        (i.e. how many RO periods elapse between two samples).  Non-integer
        fractional parts create a deterministic phase drift on top of which
        jitter accumulates.
    jitter:
        RMS period jitter of the ring oscillator, expressed as a fraction of
        the RO period.  The per-sample accumulated jitter grows with
        ``sqrt(ratio)``; the default (0.05 with a ratio of ~200) gives an
        accumulated per-sample jitter of ~0.7 RO periods, i.e. a healthy
        source whose samples are essentially independent.
    locked:
        When True the oscillator is locked to an external signal (the effect
        of a frequency-injection attack): jitter accumulation is suppressed
        by ``lock_strength``.
    lock_strength:
        Fraction (0..1) by which locking suppresses jitter; 1.0 means fully
        deterministic output.
    seed:
        Seed of the backing pseudo-random generator.
    """

    block_bits = 1024

    def __init__(
        self,
        ratio: float = 200.25,
        jitter: float = 0.05,
        locked: bool = False,
        lock_strength: float = 1.0,
        seed: Optional[int] = None,
    ):
        super().__init__(seed)
        if ratio <= 0:
            raise ValueError("ratio must be positive")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        if not 0.0 <= lock_strength <= 1.0:
            raise ValueError("lock_strength must lie in [0, 1]")
        self.ratio = float(ratio)
        self.jitter = float(jitter)
        self.locked = bool(locked)
        self.lock_strength = float(lock_strength)
        # Phase of the RO at the next sample, in periods.  Accumulated
        # *unreduced* between the fixed renormalisation points above, so the
        # stream does not depend on how it is chopped into blocks.
        self._phase = self._uniform()
        self._sample_index = 0

    # -- attack hooks ------------------------------------------------------
    def lock(self, strength: float = 1.0) -> None:
        """Lock the oscillator to an injected frequency (attack effect)."""
        if not 0.0 <= strength <= 1.0:
            raise ValueError("strength must lie in [0, 1]")
        self._drop_buffer()  # buffered bits were sampled before the lock
        self.locked = True
        self.lock_strength = float(strength)

    def unlock(self) -> None:
        """Remove the injection lock."""
        self._drop_buffer()
        self.locked = False

    # -- entropy source protocol -------------------------------------------
    def effective_jitter(self) -> float:
        """Accumulated phase jitter (in RO periods) between two samples."""
        sigma = self.jitter * math.sqrt(self.ratio)
        if self.locked:
            sigma *= 1.0 - self.lock_strength
        return sigma

    def _generate_block(self, n: int) -> np.ndarray:
        out = np.empty(n, dtype=np.uint8)
        pos = 0
        while pos < n:
            to_renorm = _RENORM_INTERVAL - (self._sample_index % _RENORM_INTERVAL)
            k = min(n - pos, to_renorm)
            sigma = self.effective_jitter()
            steps = np.full(k, self.ratio)
            if sigma > 0:
                steps += self._rng.normal(0.0, sigma, size=k)
            # Seeding the cumulative sum with the carried phase keeps the
            # left-to-right accumulation identical across any block split.
            phases = np.cumsum(np.concatenate(([self._phase], steps)))[1:]
            # Sample the RO output: high for the first half of its period.
            out[pos : pos + k] = (phases % 1.0) < 0.5
            self._phase = float(phases[-1])
            self._sample_index += k
            if self._sample_index % _RENORM_INTERVAL == 0:
                self._phase %= 1.0
            pos += k
        return out

    def reset(self) -> None:
        super().reset()
        self._phase = self._uniform()
        self._sample_index = 0

    @property
    def name(self) -> str:
        state = "locked" if self.locked else "free-running"
        return f"RingOscillatorTRNG(ratio={self.ratio}, jitter={self.jitter}, {state})"
