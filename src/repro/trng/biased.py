"""Biased entropy source (independent bits, P(1) != 1/2)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.trng.source import SeededSource

__all__ = ["BiasedSource"]


class BiasedSource(SeededSource):
    """Independent bits with a fixed probability of producing a one.

    Models a statistically weakened entropy source, e.g. an unbalanced
    sampling latch or a TRNG operated outside its specified supply-voltage
    range.  The frequency, block-frequency and cumulative-sums tests are the
    ones expected to catch this weakness first.

    Parameters
    ----------
    p_one:
        Probability of emitting a one, in [0, 1].
    seed:
        Seed of the backing pseudo-random generator.
    """

    block_bits = 1024

    def __init__(self, p_one: float, seed: Optional[int] = None):
        super().__init__(seed)
        if not 0.0 <= p_one <= 1.0:
            raise ValueError("p_one must lie in [0, 1]")
        self.p_one = float(p_one)

    def _generate_block(self, n: int) -> np.ndarray:
        # One uniform draw per bit, exactly like the bit-serial path.
        return (self._rng.random(n) < self.p_one).astype(np.uint8)

    @property
    def name(self) -> str:
        return f"BiasedSource(p_one={self.p_one})"
