"""Active-attack models against the TRNG and against the test logic itself.

Section II-B of the paper lists the threats that motivate on-the-fly
testing: frequency injection through the power supply [15], contactless
electromagnetic injection [16], wire cutting, and — against the *test
hardware* — probing/grounding of the alarm signal (the motivation for the
paper's value-based reporting).  Each threat is modelled here either as a
wrapper that degrades an underlying entropy source or, for the probing
attack, as a tampering model applied to the reporting channel.

The wrappers are block-native like every other source: they transform whole
blocks pulled from their target (splitting a block at the staged attack
onset where needed) instead of falling back to bit loops, so an attacked
source streams at the same vectorised rate as a healthy one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.trng.oscillator import RingOscillatorTRNG
from repro.trng.source import EntropySource, SeededSource

__all__ = [
    "FrequencyInjectionAttack",
    "EMInjectionAttack",
    "ProbingAttack",
    "AttackScenario",
]


class FrequencyInjectionAttack(EntropySource):
    """Frequency-injection (power-supply) attack on a ring-oscillator TRNG.

    Following Markettos & Moore (CHES 2009), injecting a signal close to the
    ring-oscillator frequency through the supply locks the oscillator and
    collapses its jitter.  The attack wraps a :class:`RingOscillatorTRNG`
    and, once activated, locks it with the requested strength.

    ``block_bits`` stays 1: :attr:`active` is an observable that must track
    the bits the consumer has actually seen, so the ``next_bit`` shim may
    not read ahead of the staged lock.

    Parameters
    ----------
    target:
        The ring-oscillator TRNG under attack.
    lock_strength:
        Jitter suppression when the attack is active (1.0 = complete lock).
    start_bit:
        Bit index at which the injection begins (the attack can be staged
        mid-stream, which is the interesting case for on-the-fly detection).
    """

    def __init__(
        self,
        target: RingOscillatorTRNG,
        lock_strength: float = 1.0,
        start_bit: int = 0,
    ):
        if start_bit < 0:
            raise ValueError("start_bit must be non-negative")
        self.target = target
        self.lock_strength = float(lock_strength)
        self.start_bit = int(start_bit)
        self._emitted = 0

    def _generate_block(self, n: int) -> np.ndarray:
        pieces = []
        remaining = n
        if self._emitted < self.start_bit and remaining:
            # Pre-injection stretch: pass the free-running target through.
            pre = min(remaining, self.start_bit - self._emitted)
            pieces.append(self.target.generate_block(pre))
            self._emitted += pre
            remaining -= pre
        if remaining:
            if self._emitted == self.start_bit:
                self.target.lock(self.lock_strength)
            pieces.append(self.target.generate_block(remaining))
            self._emitted += remaining
        if not pieces:
            return np.zeros(0, dtype=np.uint8)
        return pieces[0] if len(pieces) == 1 else np.concatenate(pieces)

    def reset(self) -> None:
        super().reset()
        self.target.unlock()
        self.target.reset()
        self._emitted = 0

    @property
    def active(self) -> bool:
        """True once the injection has started."""
        return self._emitted > self.start_bit

    @property
    def name(self) -> str:
        return f"FrequencyInjectionAttack(strength={self.lock_strength}, start={self.start_bit})"


class EMInjectionAttack(SeededSource):
    """Electromagnetic-injection attack model.

    Following Bayon et al. (COSADE 2012), a near-field EM probe injects a
    periodic disturbance that partially synchronises the sampled bits with
    the injected carrier.  Modelled as a forced periodic pattern that each
    output bit follows with probability ``coupling`` (otherwise the
    underlying source's bit is passed through).

    Parameters
    ----------
    target:
        The entropy source under attack.
    coupling:
        Probability that a bit is overridden by the injected carrier.
    carrier_period:
        Period, in bits, of the injected carrier pattern.
    start_bit:
        Bit index at which the injection begins.
    seed:
        Seed for the coupling randomness.
    """

    # block_bits stays 1: a wrapper must never read ahead of its target —
    # buffering would advance finite targets (replay captures) and the
    # target's own position observables past what the consumer has seen.

    def __init__(
        self,
        target: EntropySource,
        coupling: float = 0.8,
        carrier_period: int = 2,
        start_bit: int = 0,
        seed: Optional[int] = None,
    ):
        super().__init__(seed)
        if not 0.0 <= coupling <= 1.0:
            raise ValueError("coupling must lie in [0, 1]")
        if carrier_period <= 0:
            raise ValueError("carrier_period must be positive")
        if start_bit < 0:
            raise ValueError("start_bit must be non-negative")
        self.target = target
        self.coupling = float(coupling)
        self.carrier_period = int(carrier_period)
        self.start_bit = int(start_bit)
        self._emitted = 0

    def _generate_block(self, n: int) -> np.ndarray:
        source_bits = np.ascontiguousarray(self.target.generate_block(n), dtype=np.uint8)
        positions = np.arange(self._emitted, self._emitted + n, dtype=np.int64)
        self._emitted += n
        past_onset = positions >= self.start_bit
        count = int(np.count_nonzero(past_onset))
        if count == 0:
            return source_bits
        # One coupling uniform per post-onset bit (the coupling stream and
        # the target stream are independent generators, so pulling each in
        # bulk preserves both streams' draw order).
        overridden = np.zeros(n, dtype=bool)
        overridden[past_onset] = self._rng.random(count) < self.coupling
        # The carrier imposes its own waveform: high for the first half of
        # each carrier period.
        carrier = (positions % self.carrier_period) < self.carrier_period / 2
        return np.where(overridden, carrier.astype(np.uint8), source_bits)

    def reset(self) -> None:
        super().reset()
        self.target.reset()
        self._emitted = 0

    @property
    def name(self) -> str:
        return (
            f"EMInjectionAttack(coupling={self.coupling}, period={self.carrier_period}, "
            f"start={self.start_bit})"
        )


class ProbingAttack:
    """Probing/grounding attack on the test hardware's reporting channel.

    The paper's key architectural argument: if failures are reported through
    a single alarm wire, grounding that wire with a probe hides every
    failure.  If instead the hardware exports a *set of numerical counter
    values*, grounding the readout forces all values to zero — which is
    itself a blatantly non-random outcome that the software immediately
    flags.  This class models both channels so the difference can be
    demonstrated (see ``examples/attack_detection.py`` and the
    ``tests/test_core_reporting.py`` suite).

    Parameters
    ----------
    mode:
        ``"ground"`` forces the probed signal(s) to 0; ``"vdd"`` forces them
        to all-ones (the other classic fault-injection level).
    """

    def __init__(self, mode: str = "ground"):
        if mode not in ("ground", "vdd"):
            raise ValueError("mode must be 'ground' or 'vdd'")
        self.mode = mode

    def tamper_alarm(self, alarm: bool) -> bool:
        """Effect of probing a single-wire alarm signal."""
        return False if self.mode == "ground" else True

    def tamper_value(self, value: int, width: int) -> int:
        """Effect of probing a ``width``-bit numerical readout value."""
        if self.mode == "ground":
            return 0
        return (1 << width) - 1

    @property
    def name(self) -> str:
        return f"ProbingAttack(mode={self.mode})"


@dataclass
class AttackScenario:
    """A named attack scenario bundling a source with a description.

    Used by the detection benchmarks to iterate over the threat catalogue of
    Section II-B.
    """

    label: str
    source: EntropySource
    description: str = ""
    expected_detectable: bool = True
