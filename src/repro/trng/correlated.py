"""Correlated entropy sources (serial dependence between successive bits)."""

from __future__ import annotations

import math
from typing import Optional

from repro.trng.source import SeededSource

__all__ = ["CorrelatedSource", "OscillatingBiasSource"]


class CorrelatedSource(SeededSource):
    """First-order Markov source: each bit repeats the previous one with
    probability ``p_repeat``.

    With ``p_repeat = 0.5`` this degenerates to an ideal source.  Larger
    values model under-sampled oscillator TRNGs whose consecutive samples are
    correlated; the runs, serial and approximate-entropy tests are the ones
    designed to catch this weakness, while the plain frequency test does not
    (the marginal bit probability stays 1/2).

    Parameters
    ----------
    p_repeat:
        Probability that a bit equals the previous bit, in [0, 1].
    seed:
        Seed of the backing pseudo-random generator.
    """

    def __init__(self, p_repeat: float, seed: Optional[int] = None):
        super().__init__(seed)
        if not 0.0 <= p_repeat <= 1.0:
            raise ValueError("p_repeat must lie in [0, 1]")
        self.p_repeat = float(p_repeat)
        self._previous: Optional[int] = None

    def next_bit(self) -> int:
        if self._previous is None:
            bit = int(self._rng.integers(0, 2))
        elif self._uniform() < self.p_repeat:
            bit = self._previous
        else:
            bit = 1 - self._previous
        self._previous = bit
        return bit

    def reset(self) -> None:
        super().reset()
        self._previous = None

    @property
    def name(self) -> str:
        return f"CorrelatedSource(p_repeat={self.p_repeat})"


class OscillatingBiasSource(SeededSource):
    """Source whose bias drifts sinusoidally over time.

    Models slow environmental modulation (temperature cycling, supply ripple)
    of the entropy source.  The long-sequence block-frequency test is the one
    expected to catch it: individual short blocks see an almost constant but
    wrong bias, while the global ones count can still average out to n/2.

    Parameters
    ----------
    amplitude:
        Peak deviation of P(1) from 1/2 (0 <= amplitude <= 0.5).
    period:
        Modulation period in bits.
    seed:
        Seed of the backing pseudo-random generator.
    """

    def __init__(self, amplitude: float, period: int, seed: Optional[int] = None):
        super().__init__(seed)
        if not 0.0 <= amplitude <= 0.5:
            raise ValueError("amplitude must lie in [0, 0.5]")
        if period <= 0:
            raise ValueError("period must be positive")
        self.amplitude = float(amplitude)
        self.period = int(period)
        self._t = 0

    def current_bias(self) -> float:
        """Instantaneous P(1) at the current position in the stream."""
        return 0.5 + self.amplitude * math.sin(2.0 * math.pi * self._t / self.period)

    def next_bit(self) -> int:
        bit = int(self._uniform() < self.current_bias())
        self._t += 1
        return bit

    def reset(self) -> None:
        super().reset()
        self._t = 0

    @property
    def name(self) -> str:
        return f"OscillatingBiasSource(amplitude={self.amplitude}, period={self.period})"
