"""Correlated entropy sources (serial dependence between successive bits)."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.trng.source import SeededSource

__all__ = ["CorrelatedSource", "OscillatingBiasSource"]


class CorrelatedSource(SeededSource):
    """First-order Markov source: each bit repeats the previous one with
    probability ``p_repeat``.

    With ``p_repeat = 0.5`` this degenerates to an ideal source.  Larger
    values model under-sampled oscillator TRNGs whose consecutive samples are
    correlated; the runs, serial and approximate-entropy tests are the ones
    designed to catch this weakness, while the plain frequency test does not
    (the marginal bit probability stays 1/2).

    Parameters
    ----------
    p_repeat:
        Probability that a bit equals the previous bit, in [0, 1].
    seed:
        Seed of the backing pseudo-random generator.
    """

    block_bits = 1024

    def __init__(self, p_repeat: float, seed: Optional[int] = None):
        super().__init__(seed)
        if not 0.0 <= p_repeat <= 1.0:
            raise ValueError("p_repeat must lie in [0, 1]")
        self.p_repeat = float(p_repeat)
        self._previous: Optional[int] = None

    def _generate_block(self, n: int) -> np.ndarray:
        if n == 0:
            return np.zeros(0, dtype=np.uint8)
        if self._previous is None:
            # The very first bit of the stream is one bounded integer draw;
            # every later bit is one uniform draw deciding repeat vs flip.
            first = int(self._rng.integers(0, 2))
            flips = (self._rng.random(n - 1) >= self.p_repeat).astype(np.int64)
        else:
            first = None
            flips = (self._rng.random(n) >= self.p_repeat).astype(np.int64)
        # bit_k = anchor XOR parity(flips up to k): the Markov chain reduced
        # to a cumulative XOR, one vectorised pass instead of n branches.
        parity = (np.cumsum(flips) & 1).astype(np.uint8)
        bits = np.empty(n, dtype=np.uint8)
        if first is None:
            bits[:] = self._previous ^ parity
        else:
            bits[0] = first
            bits[1:] = first ^ parity
        self._previous = int(bits[-1])
        return bits

    def reset(self) -> None:
        super().reset()
        self._previous = None

    @property
    def name(self) -> str:
        return f"CorrelatedSource(p_repeat={self.p_repeat})"


class OscillatingBiasSource(SeededSource):
    """Source whose bias drifts sinusoidally over time.

    Models slow environmental modulation (temperature cycling, supply ripple)
    of the entropy source.  The long-sequence block-frequency test is the one
    expected to catch it: individual short blocks see an almost constant but
    wrong bias, while the global ones count can still average out to n/2.

    ``block_bits`` stays 1: :meth:`current_bias` is an observable that must
    track the bits the consumer has actually seen, so the ``next_bit`` shim
    may not read ahead.

    Parameters
    ----------
    amplitude:
        Peak deviation of P(1) from 1/2 (0 <= amplitude <= 0.5).
    period:
        Modulation period in bits.
    seed:
        Seed of the backing pseudo-random generator.
    """

    def __init__(self, amplitude: float, period: int, seed: Optional[int] = None):
        super().__init__(seed)
        if not 0.0 <= amplitude <= 0.5:
            raise ValueError("amplitude must lie in [0, 0.5]")
        if period <= 0:
            raise ValueError("period must be positive")
        self.amplitude = float(amplitude)
        self.period = int(period)
        self._t = 0

    def current_bias(self) -> float:
        """Instantaneous P(1) at the current position in the stream."""
        return 0.5 + self.amplitude * math.sin(2.0 * math.pi * self._t / self.period)

    def _generate_block(self, n: int) -> np.ndarray:
        u = self._rng.random(n)
        t = np.arange(self._t, self._t + n, dtype=np.int64)
        bias = 0.5 + self.amplitude * np.sin(2.0 * math.pi * t / self.period)
        self._t += n
        return (u < bias).astype(np.uint8)

    def reset(self) -> None:
        super().reset()
        self._t = 0

    @property
    def name(self) -> str:
        return f"OscillatingBiasSource(amplitude={self.amplitude}, period={self.period})"
