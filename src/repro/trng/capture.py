"""Replay and capture adapters for real TRNG data.

A deployed platform monitors a physical generator; during bring-up and
certification, engineers also need to replay *captured* bit streams (from a
logic analyser dump, a raw byte file, or a previous run) through exactly the
same testing pipeline.  These adapters bridge stored data and the
:class:`repro.trng.source.EntropySource` interface used everywhere else.

Both adapters are block-native: :class:`ReplaySource` serves whole slices of
its stored array and :class:`CaptureSource` records whole blocks as they
pass through, so neither reintroduces a per-bit Python loop on the hot
path.  ``CaptureSource`` deliberately bypasses the base class's read-ahead
buffer — what it records must be exactly what the consumer has seen.
"""

from __future__ import annotations

import pathlib
from typing import List, Optional, Union

import numpy as np

from repro.nist.common import BitsLike, BitSequence, pack_bits, to_bits
from repro.trng.source import EntropySource

__all__ = ["ReplaySource", "CaptureSource"]


class ReplaySource(EntropySource):
    """Replay a stored bit sequence as an entropy source.

    Parameters
    ----------
    bits:
        Anything :func:`repro.nist.common.to_bits` accepts (bit string, list,
        numpy array, raw bytes — unpacked MSB first).
    loop:
        When True the stream restarts from the beginning once exhausted;
        when False, requesting more bits than stored raises ``RuntimeError``
        (usually the right behaviour for certification replays, where
        silently recycling data would invalidate the statistics).
    """

    def __init__(self, bits: BitsLike, loop: bool = False, bit_length: Optional[int] = None):
        self._bits = to_bits(bits)
        if bit_length is not None:
            if not 0 < bit_length <= self._bits.size:
                raise ValueError(
                    f"bit_length must lie in 1..{self._bits.size}, got {bit_length}"
                )
            self._bits = self._bits[:bit_length]
        if self._bits.size == 0:
            raise ValueError("cannot replay an empty capture")
        self.loop = loop
        self._position = 0

    @classmethod
    def from_file(
        cls,
        path: Union[str, pathlib.Path],
        loop: bool = False,
        bit_length: Optional[int] = None,
    ) -> "ReplaySource":
        """Replay a raw byte file (every byte contributes 8 bits, MSB first).

        Byte files cannot represent a bit count that is not a multiple of 8:
        :meth:`CaptureSource.save` zero-pads the last byte.  Pass the exact
        ``bit_length`` (as returned by ``save``) to drop that padding so a
        capture round-trips bit-identically regardless of its length.
        """
        data = pathlib.Path(path).read_bytes()
        if not data:
            raise ValueError(f"capture file {path} is empty")
        return cls(data, loop=loop, bit_length=bit_length)

    @property
    def total_bits(self) -> int:
        """Number of stored bits."""
        return int(self._bits.size)

    @property
    def remaining_bits(self) -> Optional[int]:
        """Bits left before exhaustion (None when looping)."""
        if self.loop:
            return None
        return self.total_bits - self._position

    def _exhausted_error(self) -> RuntimeError:
        return RuntimeError(
            f"replay exhausted after {self.total_bits} bits; "
            "construct with loop=True to recycle the capture"
        )

    def next_bit(self) -> int:
        if self._position >= self._bits.size:
            if not self.loop:
                raise self._exhausted_error()
            self._position = 0
        bit = int(self._bits[self._position])
        self._position += 1
        return bit

    def _generate_block(self, n: int) -> np.ndarray:
        if n == 0:
            return np.zeros(0, dtype=np.uint8)
        if not self.loop:
            if self._position + n > self._bits.size:
                raise self._exhausted_error()
            out = self._bits[self._position : self._position + n].copy()
            self._position += n
            return out
        indices = (self._position + np.arange(n, dtype=np.int64)) % self._bits.size
        self._position = int((self._position + n) % self._bits.size)
        return self._bits[indices]

    def reset(self) -> None:
        super().reset()
        self._position = 0

    @property
    def name(self) -> str:
        return f"ReplaySource(total_bits={self.total_bits}, loop={self.loop})"


class CaptureSource(EntropySource):
    """Wrap a source and record every bit it emits.

    Useful for post-mortem analysis: when the on-the-fly monitor flags a
    sequence, the captured bits can be re-examined with the full reference
    NIST suite (including the six tests the hardware cannot run).

    ``next_bit`` and :meth:`generate_block` are both overridden directly —
    the capture must never read ahead of the consumer, and the recorded
    stream is exactly the consumer-visible one even when bit-serial and
    block access are interleaved (the wrapped source's own buffering keeps
    the underlying stream contiguous).
    """

    def __init__(self, source: EntropySource, max_bits: Optional[int] = None):
        if max_bits is not None and max_bits <= 0:
            raise ValueError("max_bits must be positive when given")
        self.source = source
        self.max_bits = max_bits
        # Recorded blocks in consumer order; bit-serial bits accumulate in a
        # plain int list appended as the trailing "chunk" so the per-bit
        # path stays a cheap list append.
        self._chunks: List[Union[np.ndarray, List[int]]] = []
        self._captured_bits = 0

    def _room(self) -> Optional[int]:
        if self.max_bits is None:
            return None
        return self.max_bits - self._captured_bits

    def next_bit(self) -> int:
        bit = self.source.next_bit()
        room = self._room()
        if room is None or room > 0:
            if not self._chunks or not isinstance(self._chunks[-1], list):
                self._chunks.append([])
            self._chunks[-1].append(bit)
            self._captured_bits += 1
        return bit

    def generate_block(self, n: int) -> np.ndarray:
        block = self.source.generate_block(n)
        recorded = block
        room = self._room()
        if room is not None:
            recorded = block[:room]
        if recorded.size:
            self._chunks.append(recorded.copy())
            self._captured_bits += int(recorded.size)
        return block

    @property
    def captured_bits(self) -> int:
        """Number of bits recorded so far."""
        return self._captured_bits

    def captured(self) -> BitSequence:
        """The recorded bits as a :class:`BitSequence`."""
        if not self._chunks:
            return BitSequence(np.zeros(0, dtype=np.uint8))
        return BitSequence(
            np.concatenate([np.asarray(chunk, dtype=np.uint8) for chunk in self._chunks])
        )

    def save(self, path: Union[str, pathlib.Path]) -> int:
        """Write the capture as packed bytes (MSB first); returns the exact
        number of bits captured.

        Trailing bits that do not fill a whole byte are zero-padded in the
        file (the shared :func:`~repro.nist.common.pack_bits` convention).
        The returned bit count is what makes the round-trip lossless: pass
        it as ``bit_length`` to :meth:`ReplaySource.from_file` so the
        replay stops at the real data instead of treating the pad bits as
        captured output.
        """
        bits = self.captured().bits
        pathlib.Path(path).write_bytes(pack_bits(bits).tobytes())
        return int(bits.size)

    def clear(self) -> None:
        """Drop the recorded bits (the wrapped source is untouched)."""
        self._chunks = []
        self._captured_bits = 0

    def reset(self) -> None:
        super().reset()
        self.source.reset()
        self.clear()

    @property
    def name(self) -> str:
        return f"CaptureSource({self.source.name})"
