"""Replay and capture adapters for real TRNG data.

A deployed platform monitors a physical generator; during bring-up and
certification, engineers also need to replay *captured* bit streams (from a
logic analyser dump, a raw byte file, or a previous run) through exactly the
same testing pipeline.  These adapters bridge stored data and the
:class:`repro.trng.source.EntropySource` interface used everywhere else.
"""

from __future__ import annotations

import pathlib
from typing import Optional, Union

import numpy as np

from repro.nist.common import BitsLike, BitSequence, to_bits
from repro.trng.source import EntropySource

__all__ = ["ReplaySource", "CaptureSource"]


class ReplaySource(EntropySource):
    """Replay a stored bit sequence as an entropy source.

    Parameters
    ----------
    bits:
        Anything :func:`repro.nist.common.to_bits` accepts (bit string, list,
        numpy array, raw bytes — unpacked MSB first).
    loop:
        When True the stream restarts from the beginning once exhausted;
        when False, requesting more bits than stored raises ``RuntimeError``
        (usually the right behaviour for certification replays, where
        silently recycling data would invalidate the statistics).
    """

    def __init__(self, bits: BitsLike, loop: bool = False, bit_length: Optional[int] = None):
        self._bits = to_bits(bits)
        if bit_length is not None:
            if not 0 < bit_length <= self._bits.size:
                raise ValueError(
                    f"bit_length must lie in 1..{self._bits.size}, got {bit_length}"
                )
            self._bits = self._bits[:bit_length]
        if self._bits.size == 0:
            raise ValueError("cannot replay an empty capture")
        self.loop = loop
        self._position = 0

    @classmethod
    def from_file(
        cls,
        path: Union[str, pathlib.Path],
        loop: bool = False,
        bit_length: Optional[int] = None,
    ) -> "ReplaySource":
        """Replay a raw byte file (every byte contributes 8 bits, MSB first).

        Byte files cannot represent a bit count that is not a multiple of 8:
        :meth:`CaptureSource.save` zero-pads the last byte.  Pass the exact
        ``bit_length`` (as returned by ``save``) to drop that padding so a
        capture round-trips bit-identically regardless of its length.
        """
        data = pathlib.Path(path).read_bytes()
        if not data:
            raise ValueError(f"capture file {path} is empty")
        return cls(data, loop=loop, bit_length=bit_length)

    @property
    def total_bits(self) -> int:
        """Number of stored bits."""
        return int(self._bits.size)

    @property
    def remaining_bits(self) -> Optional[int]:
        """Bits left before exhaustion (None when looping)."""
        if self.loop:
            return None
        return self.total_bits - self._position

    def next_bit(self) -> int:
        if self._position >= self._bits.size:
            if not self.loop:
                raise RuntimeError(
                    f"replay exhausted after {self.total_bits} bits; "
                    "construct with loop=True to recycle the capture"
                )
            self._position = 0
        bit = int(self._bits[self._position])
        self._position += 1
        return bit

    def reset(self) -> None:
        self._position = 0

    @property
    def name(self) -> str:
        return f"ReplaySource(total_bits={self.total_bits}, loop={self.loop})"


class CaptureSource(EntropySource):
    """Wrap a source and record every bit it emits.

    Useful for post-mortem analysis: when the on-the-fly monitor flags a
    sequence, the captured bits can be re-examined with the full reference
    NIST suite (including the six tests the hardware cannot run).
    """

    def __init__(self, source: EntropySource, max_bits: Optional[int] = None):
        if max_bits is not None and max_bits <= 0:
            raise ValueError("max_bits must be positive when given")
        self.source = source
        self.max_bits = max_bits
        self._captured: list = []

    def next_bit(self) -> int:
        bit = self.source.next_bit()
        if self.max_bits is None or len(self._captured) < self.max_bits:
            self._captured.append(bit)
        return bit

    @property
    def captured_bits(self) -> int:
        """Number of bits recorded so far."""
        return len(self._captured)

    def captured(self) -> BitSequence:
        """The recorded bits as a :class:`BitSequence`."""
        return BitSequence(np.array(self._captured, dtype=np.uint8))

    def save(self, path: Union[str, pathlib.Path]) -> int:
        """Write the capture as packed bytes (MSB first); returns the exact
        number of bits captured.

        Trailing bits that do not fill a whole byte are zero-padded in the
        file.  The returned bit count is what makes the round-trip lossless:
        pass it as ``bit_length`` to :meth:`ReplaySource.from_file` so the
        replay stops at the real data instead of treating the pad bits as
        captured output.
        """
        bits = np.array(self._captured, dtype=np.uint8)
        packed = np.packbits(bits) if bits.size else np.array([], dtype=np.uint8)
        pathlib.Path(path).write_bytes(packed.tobytes())
        return int(bits.size)

    def clear(self) -> None:
        """Drop the recorded bits (the wrapped source is untouched)."""
        self._captured = []

    def reset(self) -> None:
        self.source.reset()
        self.clear()

    @property
    def name(self) -> str:
        return f"CaptureSource({self.source.name})"
