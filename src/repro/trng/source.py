"""Base classes for entropy sources.

An entropy source is anything that produces bits one at a time.  The
hardware testing block (:mod:`repro.hwtests`) consumes these bits one per
clock cycle, exactly as the paper's RTL reads the TRNG output bit by bit.
"""

from __future__ import annotations

import abc
from typing import Iterator, Optional

import numpy as np

from repro.nist.common import BitSequence

__all__ = ["EntropySource", "SeededSource"]


class EntropySource(abc.ABC):
    """Abstract bit-serial entropy source.

    Concrete sources implement :meth:`next_bit`; bulk generation and
    iteration are provided on top of it.  Sources are stateful: consecutive
    calls continue the same underlying stream.
    """

    @abc.abstractmethod
    def next_bit(self) -> int:
        """Produce the next output bit (0 or 1)."""

    def generate(self, n: int) -> BitSequence:
        """Produce ``n`` bits as a :class:`~repro.nist.common.BitSequence`."""
        if n < 0:
            raise ValueError("n must be non-negative")
        bits = np.empty(n, dtype=np.uint8)
        for i in range(n):
            bits[i] = self.next_bit()
        return BitSequence(bits)

    def bit_stream(self, n: Optional[int] = None) -> Iterator[int]:
        """Yield bits one at a time; endless when ``n`` is None."""
        if n is None:
            while True:
                yield self.next_bit()
        else:
            for _ in range(n):
                yield self.next_bit()

    def reset(self) -> None:
        """Reset any internal state.  Default: no-op."""

    @property
    def name(self) -> str:
        """Human-readable source name (defaults to the class name)."""
        return type(self).__name__


class SeededSource(EntropySource):
    """Entropy source backed by a seeded pseudo-random generator.

    This is the common base of all behavioural models in this package: the
    underlying physical randomness (thermal noise, jitter) is emulated with a
    numpy ``Generator`` so that experiments are reproducible.
    """

    def __init__(self, seed: Optional[int] = None):
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    @property
    def seed(self) -> Optional[int]:
        """The seed this source was constructed with (None = OS entropy)."""
        return self._seed

    def reset(self) -> None:
        """Restart the underlying pseudo-random stream from the seed."""
        self._rng = np.random.default_rng(self._seed)

    def _uniform(self) -> float:
        """One uniform draw in [0, 1) from the backing generator."""
        return float(self._rng.random())
