"""Base classes for entropy sources.

An entropy source is anything that produces a stream of bits.  The hardware
testing block (:mod:`repro.hwtests`) can observe that stream one bit per
clock cycle, exactly as the paper's RTL reads the TRNG output — but the
*canonical* production interface is block-native: every source implements
:meth:`EntropySource._generate_block`, a truly vectorised generator of the
next ``n`` stream bits, and :meth:`EntropySource.next_bit` is a thin
compatibility shim that serves single bits out of an internal block buffer.

Two invariants make the two interfaces interchangeable:

* **Split invariance** — a source's stream depends only on its seed and
  state, never on how the stream is chopped into blocks:
  ``generate_block(a + b)`` equals ``generate_block(a)`` followed by
  ``generate_block(b)``, bit for bit.  Every implementation in this package
  maintains it (asserted source by source in
  ``tests/test_trng_block_parity.py``).
* **Shim equivalence** — because of split invariance, ``n`` successive
  ``next_bit()`` calls return exactly ``generate_block(n)`` for the same
  seed, regardless of the buffer refill granularity
  (:attr:`EntropySource.block_bits`).

Sources whose *observable* state tracks the stream position (an aging
source's ``age_bits``, an attack's ``active`` flag, a replay's
``remaining_bits``) keep ``block_bits = 1`` so the shim never reads ahead of
what the consumer has seen; pure generators with no positional observables
buffer a whole block per refill.

Legacy subclasses that override :meth:`next_bit` directly (without providing
``_generate_block``) keep working: :meth:`generate_block` detects that the
bit-serial override is the most-derived behaviour and falls back to looping
it.  Only direct subclasses of :class:`EntropySource`/:class:`SeededSource`
should rely on this; overriding ``next_bit`` *below* a block-native source
makes bulk generation fall back to the per-bit path as well.
"""

from __future__ import annotations

import abc
from functools import lru_cache
from typing import Iterator, Optional

import numpy as np

from repro.nist.common import BitSequence

__all__ = ["EntropySource", "SeededSource"]


@lru_cache(maxsize=None)
def _block_native(cls: type) -> bool:
    """True when ``cls``'s block implementation is at least as derived as its
    bit-serial one, i.e. ``_generate_block`` is the authoritative stream.

    A class that overrides ``next_bit`` *below* the class providing
    ``_generate_block`` (the legacy bit-serial extension pattern) must be
    served by looping its ``next_bit`` so the override is honoured.
    """
    mro = cls.__mro__
    next_bit_cls = next(k for k in mro if "next_bit" in vars(k))
    block_cls = next((k for k in mro if "_generate_block" in vars(k)), None)
    if block_cls is None or block_cls is EntropySource:
        return False
    return mro.index(block_cls) <= mro.index(next_bit_cls)


class EntropySource(abc.ABC):
    """Abstract block-native entropy source.

    Concrete sources implement :meth:`_generate_block`; single-bit access,
    bulk generation and iteration are provided on top of it.  Sources are
    stateful: consecutive calls continue the same underlying stream.
    """

    #: Refill granularity of the ``next_bit`` buffer.  Sources with
    #: position-dependent observable state keep the default of 1 (no
    #: read-ahead); pure generators raise it to amortise the numpy call
    #: overhead across legacy bit-serial loops.
    block_bits: int = 1

    # Lazily initialised so subclasses need not call ``__init__``.
    _buffer: Optional[np.ndarray] = None
    _cursor: int = 0

    # ------------------------------------------------------------- block API
    def _generate_block(self, n: int) -> np.ndarray:
        """Produce the next ``n`` stream bits as a uint8 array (subclass hook).

        Implementations must be split-invariant: the emitted stream may not
        depend on how it is partitioned into blocks.
        """
        raise TypeError(
            f"{type(self).__name__} implements neither _generate_block() nor "
            "next_bit(); a concrete entropy source must provide one of them"
        )

    def generate_block(self, n: int) -> np.ndarray:
        """Produce the next ``n`` bits of the stream as a uint8 numpy array.

        This is the canonical bulk interface: it first drains any bits the
        ``next_bit`` shim has buffered (so mixed bit-serial/block consumers
        always see one contiguous stream) and generates the remainder with
        the vectorised :meth:`_generate_block` — or, for legacy subclasses
        that only override :meth:`next_bit`, by looping the bit-serial path.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        if not _block_native(type(self)):
            # Legacy bit-serial override: loop it for the whole block.  Any
            # buffered bits belong to the *parent* stream (they were staged
            # by a super().next_bit() chain) and are consumed through that
            # same chain, so they must not be drained raw here.
            return np.fromiter(
                (self.next_bit() for _ in range(n)), dtype=np.uint8, count=n
            )
        buffered: Optional[np.ndarray] = None
        if self._buffer is not None and self._cursor < self._buffer.size:
            take = min(n, self._buffer.size - self._cursor)
            buffered = self._buffer[self._cursor : self._cursor + take].copy()
            self._cursor += take
        remaining = n - (buffered.size if buffered is not None else 0)
        if remaining == 0:
            return buffered if buffered is not None else np.zeros(0, dtype=np.uint8)
        fresh = np.ascontiguousarray(self._generate_block(remaining), dtype=np.uint8)
        if buffered is None:
            return fresh
        return np.concatenate([buffered, fresh])

    def generate_matrix(self, num_sequences: int, n: int, packed: bool = False):
        """The next ``num_sequences * n`` stream bits as a ``(num_sequences,
        n)`` uint8 matrix (row ``i`` is the ``i``-th consecutive sequence).

        This is the shape the engine's batch path and the campaign runner
        consume directly, without intermediate :class:`BitSequence` copies.

        With ``packed=True`` the matrix is returned as a
        :class:`~repro.engine.packed.PackedMatrix` (64 bits per word, the
        uint8 source retained) ready for the engine's packed backend — the
        emitted *stream* is identical either way, only the container
        changes, so seeded runs stay reproducible across backends.
        """
        if num_sequences < 0:
            raise ValueError("num_sequences must be non-negative")
        matrix = self.generate_block(num_sequences * n).reshape(num_sequences, n)
        if packed:
            # Imported here: the source layer stays importable without
            # pulling in the engine package for plain matrix generation.
            from repro.engine.packed import pack_matrix

            return pack_matrix(matrix, keep_source=True)
        return matrix

    # ---------------------------------------------------------- bit-serial API
    def next_bit(self) -> int:
        """Produce the next output bit (0 or 1).

        Compatibility shim over the block interface: serves bits from an
        internal buffer refilled :attr:`block_bits` at a time by
        :meth:`_generate_block`.
        """
        buffer = self._buffer
        if buffer is None or self._cursor >= buffer.size:
            size = max(1, int(self.block_bits))
            buffer = np.ascontiguousarray(self._generate_block(size), dtype=np.uint8)
            self._buffer = buffer
            self._cursor = 0
        bit = int(buffer[self._cursor])
        self._cursor += 1
        return bit

    def generate(self, n: int) -> BitSequence:
        """Produce ``n`` bits as a :class:`~repro.nist.common.BitSequence`.

        Delegates to :meth:`generate_block`; the historical per-bit bulk
        loop (``n`` successive ``next_bit()`` calls into a pre-allocated
        array) is deprecated — it produced the same stream but at per-bit
        Python cost.  Use :meth:`generate_block` directly when a raw numpy
        array is enough.
        """
        return BitSequence(self.generate_block(n))

    def bit_stream(self, n: Optional[int] = None) -> Iterator[int]:
        """Yield bits one at a time; endless when ``n`` is None."""
        if n is None:
            while True:
                yield self.next_bit()
        else:
            for _ in range(n):
                yield self.next_bit()

    # ------------------------------------------------------------------ state
    def _drop_buffer(self) -> None:
        """Discard bits buffered by the ``next_bit`` shim.

        Called when source parameters change mid-stream (e.g. an injection
        lock engages) so already-buffered bits generated under the old
        parameters are not served afterwards.
        """
        self._buffer = None
        self._cursor = 0

    def reset(self) -> None:
        """Reset any internal state.  Subclass overrides must call super()."""
        self._drop_buffer()

    @property
    def name(self) -> str:
        """Human-readable source name (defaults to the class name)."""
        return type(self).__name__


class SeededSource(EntropySource):
    """Entropy source backed by a seeded pseudo-random generator.

    This is the common base of all behavioural models in this package: the
    underlying physical randomness (thermal noise, jitter) is emulated with a
    numpy ``Generator`` so that experiments are reproducible.
    """

    def __init__(self, seed: Optional[int] = None):
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    @property
    def seed(self) -> Optional[int]:
        """The seed this source was constructed with (None = OS entropy)."""
        return self._seed

    def reset(self) -> None:
        """Restart the underlying pseudo-random stream from the seed."""
        super().reset()
        self._rng = np.random.default_rng(self._seed)

    def _uniform(self) -> float:
        """One uniform draw in [0, 1) from the backing generator."""
        return float(self._rng.random())
