"""Dependency-free metrics primitives: Counter, Gauge, Histogram, registry.

The observability substrate the ROADMAP's fleet scale-out is judged with —
stdlib only, so the hot layers (engine batches, streaming pushes, fleet
rounds, service requests) can record throughput and latency without pulling
a client library into the repository.  Design points:

* **One process-wide registry.**  Instrumented modules create their metrics
  at import time through :func:`counter` / :func:`gauge` / :func:`histogram`
  (get-or-create, so repeated imports and test reloads are idempotent); the
  fleet service and the ``repro.cli metrics`` command render the same
  :data:`REGISTRY`.
* **Lock only on the update.**  Metric *lookup* is a plain dict read on the
  parent object; the per-metric ``threading.Lock`` is held only around the
  child value/bucket mutation — no registry-wide lock anywhere on the hot
  path (the 8-thread hammer test in ``tests/test_obs.py`` pins exactness).
* **Fixed log-spaced latency buckets.**  Histograms default to a 1/2/5 ×
  10^k grid spanning 1 µs .. 50 s — wide enough for a packed-kernel call
  and a million-device round on the same axis — plus the implicit ``+Inf``
  bucket.  Bucket counts are stored per-bucket and cumulated only at
  render time, so ``observe`` is one ``bisect`` and two adds.
* **Two render targets.**  :meth:`MetricsRegistry.render_text` emits the
  Prometheus text-exposition format 0.0.4 (``# HELP`` / ``# TYPE``,
  cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``);
  :meth:`MetricsRegistry.snapshot` the JSON-ready structured equivalent.

Disabling (:func:`set_enabled` / the :func:`disabled` context manager)
turns every update into an early return — ``benchmarks/bench_obs_overhead.py``
uses it to pin the instrumented-vs-uninstrumented overhead ≤ 3%.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "counter",
    "gauge",
    "histogram",
    "registry",
    "set_enabled",
    "is_enabled",
    "disabled",
]

#: Default histogram bounds: a fixed 1/2/5 log-spaced grid from 1 µs to
#: 50 s.  Small enough (24 buckets) to render cheaply, wide enough that a
#: packed-kernel dispatch and a whole fleet round land on the same axis.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    float(f"{mantissa}e{exponent}")
    for exponent in range(-6, 2)
    for mantissa in (1, 2, 5)
)

_METRIC_NAME_RE_CHARS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"

# Process-wide enable flag.  Reads are a bare global lookup (the fast path
# of every update); writes go through set_enabled.
_enabled = True


def set_enabled(value: bool) -> None:
    """Globally enable/disable metric updates and span recording."""
    global _enabled
    _enabled = bool(value)


def is_enabled() -> bool:
    """True when metric updates and span recording are active."""
    return _enabled


@contextmanager
def disabled() -> Iterator[None]:
    """Temporarily disable all metric updates and span recording.

    The overhead benchmark's "uninstrumented" arm: inside the block every
    ``inc``/``set``/``observe`` is an early return and spans detach from
    the trace ring (they still measure time — see ``tracing`` — so code
    that reads a span's duration keeps working).
    """
    previous = _enabled
    set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


def _validate_name(name: str) -> str:
    if not name or name[0].isdigit() or any(c not in _METRIC_NAME_RE_CHARS for c in name):
        raise ValueError(
            f"invalid metric name {name!r}: use [a-zA-Z_:][a-zA-Z0-9_:]*"
        )
    return name


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Exposition-format sample value: integral floats render as integers."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(label_names: Sequence[str], key: Tuple[str, ...]) -> str:
    if not label_names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(label_names, key)
    )
    return "{" + pairs + "}"


class _Metric:
    """Shared machinery: label validation, child lookup, the update lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: Sequence[str] = ()):
        self.name = _validate_name(name)
        self.help = str(help)
        self.label_names: Tuple[str, ...] = tuple(labels)
        for label in self.label_names:
            _validate_name(label)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def signature(self) -> Tuple[str, Tuple[str, ...]]:
        """Identity for get-or-create conflict checks."""
        return (self.kind, self.label_names)


class Counter(_Metric):
    """Monotonically increasing total (per label set)."""

    kind = "counter"

    def __init__(self, name: str, help: str, labels: Sequence[str] = ()):
        super().__init__(name, help, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (>= 0) to the labelled child."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        if not _enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current total of the labelled child (0.0 if never incremented)."""
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[Tuple[Tuple[str, ...], float]]:
        with self._lock:
            return sorted(self._values.items())


class Gauge(_Metric):
    """A value that goes up and down (per label set)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labels: Sequence[str] = ()):
        super().__init__(name, help, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        """Set the labelled child to ``value``."""
        if not _enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def add(self, amount: float, **labels: object) -> None:
        """Add ``amount`` (any sign) to the labelled child."""
        if not _enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value of the labelled child (0.0 if never set)."""
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[Tuple[Tuple[str, ...], float]]:
        with self._lock:
            return sorted(self._values.items())


class _HistogramChild:
    __slots__ = ("counts", "sum")

    def __init__(self, num_buckets: int):
        self.counts = [0] * num_buckets  # per-bucket, cumulated at render
        self.sum = 0.0


class Histogram(_Metric):
    """Latency distribution over fixed log-spaced buckets (per label set)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help, labels)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be a sorted, unique, non-empty sequence")
        if any(math.isinf(bound) for bound in bounds):
            raise ValueError("the +Inf bucket is implicit; do not pass it")
        self.bounds: Tuple[float, ...] = bounds
        self._children: Dict[Tuple[str, ...], _HistogramChild] = {}

    def signature(self) -> Tuple[str, Tuple[str, ...], Tuple[float, ...]]:  # type: ignore[override]
        return (self.kind, self.label_names, self.bounds)

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation into the labelled child."""
        if not _enabled:
            return
        key = self._key(labels)
        index = bisect_left(self.bounds, value)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _HistogramChild(len(self.bounds) + 1)
            child.counts[index] += 1
            child.sum += value

    def count(self, **labels: object) -> int:
        """Total observations of the labelled child."""
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            return sum(child.counts) if child is not None else 0

    def total(self, **labels: object) -> float:
        """Sum of observed values of the labelled child."""
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            return child.sum if child is not None else 0.0

    def samples(self) -> List[Tuple[Tuple[str, ...], List[int], float]]:
        with self._lock:
            return sorted(
                (key, list(child.counts), child.sum)
                for key, child in self._children.items()
            )


class MetricsRegistry:
    """Process-wide metric namespace with text and JSON exposition."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # --------------------------------------------------------- registration
    def _get_or_create(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is None:
                self._metrics[metric.name] = metric
                return metric
            if existing.signature() != metric.signature():
                raise ValueError(
                    f"metric {metric.name!r} already registered as "
                    f"{existing.signature()}, cannot re-register as "
                    f"{metric.signature()}"
                )
            return existing

    def counter(self, name: str, help: str, labels: Sequence[str] = ()) -> Counter:
        """Get-or-create a :class:`Counter` (conflicting redefinition raises)."""
        metric = self._get_or_create(Counter(name, help, labels))
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str, labels: Sequence[str] = ()) -> Gauge:
        """Get-or-create a :class:`Gauge` (conflicting redefinition raises)."""
        metric = self._get_or_create(Gauge(name, help, labels))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get-or-create a :class:`Histogram` (conflicting redefinition raises)."""
        metric = self._get_or_create(Histogram(name, help, labels, buckets))
        assert isinstance(metric, Histogram)
        return metric

    def get(self, name: str) -> Optional[_Metric]:
        """The registered metric object, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._metrics))

    def reset(self) -> None:
        """Zero every metric's children (registrations survive).

        Test/benchmark hook: module-level metric objects stay valid, their
        accumulated values drop to empty.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            with metric._lock:
                if isinstance(metric, (Counter, Gauge)):
                    metric._values.clear()
                elif isinstance(metric, Histogram):
                    metric._children.clear()

    # ----------------------------------------------------------- exposition
    def render_text(self) -> str:
        """The registry in Prometheus text-exposition format 0.0.4."""
        lines: List[str] = []
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        for metric in metrics:
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, (Counter, Gauge)):
                for key, value in metric.samples():
                    labels = _render_labels(metric.label_names, key)
                    lines.append(f"{metric.name}{labels} {_format_value(value)}")
            elif isinstance(metric, Histogram):
                for key, counts, total in metric.samples():
                    cumulative = 0
                    for bound, count in zip(metric.bounds, counts):
                        cumulative += count
                        le = _format_value(bound)
                        labels = _render_labels(
                            metric.label_names + ("le",), key + (le,)
                        )
                        lines.append(
                            f"{metric.name}_bucket{labels} {cumulative}"
                        )
                    cumulative += counts[-1]
                    labels = _render_labels(
                        metric.label_names + ("le",), key + ("+Inf",)
                    )
                    lines.append(f"{metric.name}_bucket{labels} {cumulative}")
                    plain = _render_labels(metric.label_names, key)
                    lines.append(f"{metric.name}_sum{plain} {_format_value(total)}")
                    lines.append(f"{metric.name}_count{plain} {cumulative}")
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready structured snapshot (the ``/metrics.json`` payload)."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        rendered: List[Dict[str, object]] = []
        for metric in metrics:
            entry: Dict[str, object] = {
                "name": metric.name,
                "type": metric.kind,
                "help": metric.help,
                "label_names": list(metric.label_names),
            }
            if isinstance(metric, (Counter, Gauge)):
                entry["samples"] = [
                    {
                        "labels": dict(zip(metric.label_names, key)),
                        "value": value,
                    }
                    for key, value in metric.samples()
                ]
            elif isinstance(metric, Histogram):
                samples: List[Dict[str, object]] = []
                for key, counts, total in metric.samples():
                    cumulative = 0
                    buckets: Dict[str, int] = {}
                    for bound, count in zip(metric.bounds, counts):
                        cumulative += count
                        buckets[_format_value(bound)] = cumulative
                    cumulative += counts[-1]
                    buckets["+Inf"] = cumulative
                    samples.append(
                        {
                            "labels": dict(zip(metric.label_names, key)),
                            "buckets": buckets,
                            "sum": total,
                            "count": cumulative,
                        }
                    )
                entry["samples"] = samples
            rendered.append(entry)
        return {"metrics": rendered}


#: The process-wide default registry every instrumented module writes to.
REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return REGISTRY


def counter(name: str, help: str, labels: Sequence[str] = ()) -> Counter:
    """Get-or-create a counter in the default registry."""
    return REGISTRY.counter(name, help, labels)


def gauge(name: str, help: str, labels: Sequence[str] = ()) -> Gauge:
    """Get-or-create a gauge in the default registry."""
    return REGISTRY.gauge(name, help, labels)


def histogram(
    name: str,
    help: str,
    labels: Sequence[str] = (),
    buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
) -> Histogram:
    """Get-or-create a histogram in the default registry."""
    return REGISTRY.histogram(name, help, labels, buckets)
