"""Fleet-wide observability: metrics registry, tracing spans, exposition.

Stdlib-only telemetry for the hot layers.  Modules instrument themselves by
creating metrics at import time and opening spans around their stages::

    from repro import obs

    _ROUND_SECONDS = obs.histogram(
        "repro_fleet_round_latency_seconds", "Wall time of one fleet round."
    )

    with obs.trace("fleet.run_round", devices=len(devices)) as root:
        ...
    _ROUND_SECONDS.observe(root.duration_s)

Everything lands in one process-wide :data:`~repro.obs.metrics.REGISTRY` /
:data:`~repro.obs.tracing.TRACER`, surfaced three ways: ``GET /metrics``
(+ ``/metrics.json``) on the fleet service, the ``repro.cli metrics``
command, and ``--trace <path>`` span-tree dumps.  This module is also the
repository's sanctioned wall-clock home (analysis rule ``OBS001``): direct
``time.perf_counter()`` timing in the instrumented layers is linted away in
favour of spans, so latency numbers and traces can never disagree.

See :mod:`repro.obs.metrics` and :mod:`repro.obs.tracing` for the design
notes (per-metric locking, log-spaced buckets, thread-local span stacks,
the bounded trace ring, and the global enable flag the overhead benchmark
toggles).
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    disabled,
    gauge,
    histogram,
    is_enabled,
    registry,
    set_enabled,
)
from repro.obs.tracing import (
    TRACER,
    Span,
    Tracer,
    clear_traces,
    export_traces,
    span,
    trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "counter",
    "gauge",
    "histogram",
    "registry",
    "set_enabled",
    "is_enabled",
    "disabled",
    "Span",
    "Tracer",
    "TRACER",
    "span",
    "trace",
    "export_traces",
    "clear_traces",
]
