"""Tracing spans: nested timed stages, a bounded ring of recent traces.

A :class:`Span` is one timed stage of a run — ``pack`` / ``dispatch`` /
``decision`` inside :func:`repro.engine.batch.run_batch`, ``generate`` /
``evaluate`` / ``fold`` inside a fleet round — opened with the
:func:`span` context manager and nested through a thread-local stack, so
concurrent service threads and worker rounds never interleave their trees.

Spans *always* time themselves (``time.perf_counter`` start/stop — this
module is the repository's sanctioned wall-clock home, see rule ``OBS001``),
so instrumented code can read ``span.duration_s`` for its own reporting
(the fleet round latency is exactly its root span's duration).  What the
enable flag (:func:`repro.obs.metrics.set_enabled`) gates is *recording*:
when disabled, spans do not attach to a parent and finished roots are not
appended to the trace ring, so the disabled cost is two clock reads and
one small allocation.

Finished **root** spans land in a bounded ring (``deque(maxlen=...)``) of
recent traces; :meth:`Tracer.export` renders them as JSON-ready dicts —
the payload behind the CLI's ``--trace <path>`` flag.  The export schema
per span::

    {"name": str, "start_s": float,     # relative to its root's start
     "duration_s": float, "attributes": {...},
     "error": str | null, "children": [...]}
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.metrics import is_enabled

__all__ = ["Span", "Tracer", "TRACER", "span", "trace", "export_traces", "clear_traces"]

#: Default bound of the recent-trace ring: enough to hold a whole CLI run's
#: batch/round roots, small enough that a long-lived service stays O(1).
DEFAULT_TRACE_CAPACITY = 128


class Span:
    """One timed stage; children nest through the thread-local stack."""

    __slots__ = ("name", "attributes", "children", "start_s", "duration_s", "error")

    def __init__(self, name: str, attributes: Dict[str, object]):
        self.name = name
        self.attributes = attributes
        self.children: List["Span"] = []
        self.start_s = 0.0
        self.duration_s = 0.0
        self.error: Optional[str] = None

    def to_dict(self, origin_s: Optional[float] = None) -> Dict[str, object]:
        """JSON-ready span tree; start times are relative to the root."""
        origin = self.start_s if origin_s is None else origin_s
        return {
            "name": self.name,
            "start_s": self.start_s - origin,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "error": self.error,
            "children": [child.to_dict(origin) for child in self.children],
        }

    def stage_names(self) -> List[str]:
        """Every span name in this tree, depth-first (test/debug helper)."""
        names = [self.name]
        for child in self.children:
            names.extend(child.stage_names())
        return names

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, duration_s={self.duration_s:.6f}, "
            f"children={len(self.children)})"
        )


class _SpanHandle:
    """Context manager driving one span's lifecycle on the tracer stack."""

    __slots__ = ("_tracer", "_span", "_attached")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, object]):
        self._tracer = tracer
        self._span = Span(name, attributes)
        self._attached = False

    def __enter__(self) -> Span:
        current = self._span
        if is_enabled():
            stack = self._tracer._stack()
            if stack:
                stack[-1].children.append(current)
            stack.append(current)
            self._attached = True
        current.start_s = time.perf_counter()
        return current

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        current = self._span
        current.duration_s = time.perf_counter() - current.start_s
        if exc_type is not None:
            current.error = getattr(exc_type, "__name__", str(exc_type))
        if self._attached:
            stack = self._tracer._stack()
            # The span we pushed is still on top (with statements unwind in
            # LIFO order even under exceptions).
            stack.pop()
            if not stack:
                self._tracer._record(current)


class Tracer:
    """Thread-local span stacks over a shared bounded ring of recent traces."""

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY):
        if capacity < 1:
            raise ValueError("trace ring capacity must be positive")
        self.capacity = capacity
        self._traces: Deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, root: Span) -> None:
        with self._lock:
            self._traces.append(root)

    # --------------------------------------------------------------- API
    def span(self, name: str, **attributes: object) -> _SpanHandle:
        """Open a (possibly nested) timed span as a context manager."""
        return _SpanHandle(self, name, dict(attributes))

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def traces(self) -> Tuple[Span, ...]:
        """The recent finished root spans, oldest first."""
        with self._lock:
            return tuple(self._traces)

    def export(self) -> List[Dict[str, object]]:
        """JSON-ready dicts of the recent traces (oldest first)."""
        return [root.to_dict() for root in self.traces()]

    def clear(self) -> None:
        """Drop the recorded traces (open spans are unaffected)."""
        with self._lock:
            self._traces.clear()


#: The process-wide default tracer every instrumented module records into.
TRACER = Tracer()


def span(name: str, **attributes: object) -> _SpanHandle:
    """Open a span on the default tracer (nests under any open span)."""
    return TRACER.span(name, **attributes)


#: Alias emphasising intent at call sites that open a run's *root* span.
trace = span


def export_traces() -> List[Dict[str, object]]:
    """The default tracer's recent traces as JSON-ready dicts."""
    return TRACER.export()


def clear_traces() -> None:
    """Drop the default tracer's recorded traces."""
    TRACER.clear()
