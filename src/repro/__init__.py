"""repro — Embedded HW/SW platform for on-the-fly testing of TRNGs.

A faithful, fully software reproduction of

    B. Yang, V. Rožić, N. Mentens, W. Dehaene, I. Verbauwhede,
    "Embedded HW/SW Platform for On-the-Fly Testing of True Random Number
    Generators", DATE 2015.

Top-level quickstart::

    from repro import OnTheFlyPlatform, IdealSource

    platform = OnTheFlyPlatform("n65536_high", alpha=0.01)
    report = platform.evaluate_source(IdealSource(seed=1))
    print(report.passed, report.failing_tests)

Sub-packages
------------
``repro.campaign``
    Detection-evaluation campaigns: the threat-scenario catalogue and the
    (scenario x design) sweep measuring detection probability, latency and
    per-test attribution through the batch engine.
``repro.core``
    The HW/SW co-designed platform (design points, per-sequence evaluation,
    continuous monitoring, value-based reporting).
``repro.hwtests`` / ``repro.hwsim``
    The bit-serial hardware testing block of Fig. 2 and the component /
    resource model underneath it.
``repro.sw``
    The 16-bit software platform: verification routines, precomputed critical
    values, PWL x·log(x), instruction and cycle counting.
``repro.engine``
    The unified batch test engine: shared-statistic contexts, the uniform
    test registry (NIST / FIPS / hw-model) and the vectorised batch executor.
``repro.fleet``
    Fleet monitoring: a registry of many simulated devices, the multiplexed
    scheduler pushing whole fleets through the engine per round, fleet-level
    reporting and the stdlib HTTP/JSON service front-end.
``repro.nist``
    Reference implementations of all 15 NIST SP 800-22 tests (golden model).
``repro.trng``
    Entropy-source and attack simulators.
``repro.eval``
    FPGA / ASIC / latency estimation and the standalone-implementation
    baseline used for the Table IV comparison.
"""

from repro.campaign import (
    CampaignCell,
    CampaignConfig,
    CampaignReport,
    DEFAULT_CATALOG,
    ScenarioCatalog,
    ScenarioSpec,
    run_campaign,
)
from repro.core import (
    DesignPoint,
    FlexibleLengthPlatform,
    HealthState,
    MonitorEvent,
    OnTheFlyMonitor,
    OnTheFlyPlatform,
    PlatformReport,
    STANDARD_DESIGNS,
    get_design,
    list_designs,
)
from repro.engine import (
    BatchContext,
    DEFAULT_REGISTRY,
    EngineReport,
    SequenceContext,
    TestRegistry,
    run_batch,
)
from repro.fips import FipsBattery
from repro.fleet import (
    DeviceRegistry,
    FleetMix,
    FleetReport,
    FleetScheduler,
    FleetService,
)
from repro.hwtests import DesignParameters, SharingOptions, UnifiedTestingBlock
from repro.nist import BitSequence, NistSuite, TestResult, run_all_tests
from repro.sw import CriticalValues, InstructionCounts, SoftwareVerifier
from repro.trng import (
    AgingSource,
    AlternatingSource,
    BiasedSource,
    BurstFailureSource,
    CaptureSource,
    CorrelatedSource,
    DeadSource,
    EMInjectionAttack,
    EntropySource,
    FrequencyInjectionAttack,
    IdealSource,
    OscillatingBiasSource,
    ProbingAttack,
    ReplaySource,
    RingOscillatorTRNG,
    StuckAtSource,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # campaign
    "CampaignCell",
    "CampaignConfig",
    "CampaignReport",
    "DEFAULT_CATALOG",
    "ScenarioCatalog",
    "ScenarioSpec",
    "run_campaign",
    # core
    "DesignPoint",
    "FlexibleLengthPlatform",
    "HealthState",
    "MonitorEvent",
    "OnTheFlyMonitor",
    "OnTheFlyPlatform",
    "PlatformReport",
    "STANDARD_DESIGNS",
    "get_design",
    "list_designs",
    # engine
    "BatchContext",
    "DEFAULT_REGISTRY",
    "EngineReport",
    "SequenceContext",
    "TestRegistry",
    "run_batch",
    # fips
    "FipsBattery",
    # fleet
    "DeviceRegistry",
    "FleetMix",
    "FleetReport",
    "FleetScheduler",
    "FleetService",
    # hardware
    "DesignParameters",
    "SharingOptions",
    "UnifiedTestingBlock",
    # nist
    "BitSequence",
    "NistSuite",
    "TestResult",
    "run_all_tests",
    # software
    "CriticalValues",
    "InstructionCounts",
    "SoftwareVerifier",
    # trng
    "AgingSource",
    "AlternatingSource",
    "BiasedSource",
    "BurstFailureSource",
    "CaptureSource",
    "CorrelatedSource",
    "DeadSource",
    "EMInjectionAttack",
    "EntropySource",
    "FrequencyInjectionAttack",
    "IdealSource",
    "OscillatingBiasSource",
    "ProbingAttack",
    "ReplaySource",
    "RingOscillatorTRNG",
    "StuckAtSource",
]
