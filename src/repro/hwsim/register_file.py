"""Memory-mapped read-out interface of the hardware testing block.

Fig. 2 of the paper shows a single large multiplexer through which the
software reads every exported counter value; a 7-bit address selects the
value.  The paper notes that this interface "contributes significantly to the
overall area", which is why reducing the number of transmitted values is one
of its optimisation levers — the model therefore accounts the multiplexer
cost explicitly as a function of the number and width of exported values.

This read-out path is also where the paper's security argument lives: there
is no single alarm wire to ground; an attacker probing the interface can only
force the read values to all-zeros or all-ones, both of which are blatantly
non-random and flagged by the software (see
:class:`repro.trng.attacks.ProbingAttack`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.hwsim.components import Component

__all__ = ["MappedValue", "ReadoutMux", "RegisterFile"]


@dataclass
class MappedValue:
    """One value exported through the memory-mapped interface.

    Attributes
    ----------
    address:
        The 7-bit read address.
    name:
        Symbolic name (e.g. ``"t13_s_max"``).
    width:
        Bit width of the value on the bus.
    getter:
        Callable returning the current (untampered) value.
    """

    address: int
    name: str
    width: int
    getter: Callable[[], int]


class ReadoutMux(Component):
    """The read-out multiplexer as a resource-bearing component.

    Resource model: a ``num_values``-to-1 multiplexer of ``bus_width`` bits
    costs roughly ``bus_width * num_values / 3`` 6-input LUTs (two 2-to-1
    muxes per LUT plus the address decode), and no flip-flops (the paper's
    interface is combinational read).
    """

    kind = "readout_mux"

    def __init__(self, name: str, num_values: int, bus_width: int, address_bits: int = 7):
        super().__init__(name)
        if num_values < 0:
            raise ValueError("num_values must be non-negative")
        if bus_width <= 0:
            raise ValueError("bus_width must be positive")
        self.num_values = num_values
        self.bus_width = bus_width
        self.address_bits = address_bits

    def reset(self) -> None:  # combinational
        return None

    @property
    def flip_flops(self) -> int:
        return 0

    @property
    def lut_estimate(self) -> float:
        if self.num_values <= 1:
            return 0.0
        return self.bus_width * self.num_values / 3.0 + self.address_bits


class RegisterFile:
    """Address-mapped collection of exported hardware values.

    The software platform reads counter values through this interface;
    every read is also counted so the READ column of Table III can be
    regenerated (each exported value wider than the 16-bit bus costs
    multiple reads on a 16-bit platform — that accounting lives in
    :mod:`repro.sw.processor`).

    Parameters
    ----------
    bus_width:
        Width of the read data bus (the paper's SW platform is 16-bit).
    address_bits:
        Number of address bits (the paper uses a 7-bit address).
    """

    def __init__(self, bus_width: int = 16, address_bits: int = 7):
        self.bus_width = bus_width
        self.address_bits = address_bits
        self._values: Dict[int, MappedValue] = {}
        self._by_name: Dict[str, MappedValue] = {}
        self._next_address = 0

    # -- construction ------------------------------------------------------
    def add(self, name: str, width: int, getter: Callable[[], int]) -> MappedValue:
        """Register a new exported value at the next free address."""
        if name in self._by_name:
            raise ValueError(f"value {name!r} already mapped")
        if self._next_address >= (1 << self.address_bits):
            raise ValueError("register file address space exhausted")
        mapped = MappedValue(self._next_address, name, width, getter)
        self._values[mapped.address] = mapped
        self._by_name[name] = mapped
        self._next_address += 1
        return mapped

    # -- access -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    def names(self) -> List[str]:
        """Exported value names in address order."""
        return [self._values[a].name for a in sorted(self._values)]

    def read_by_address(self, address: int) -> int:
        """Read the value stored at ``address``."""
        if address not in self._values:
            raise KeyError(f"no value mapped at address {address}")
        return int(self._values[address].getter())

    def read(self, name: str) -> int:
        """Read an exported value by name."""
        if name not in self._by_name:
            raise KeyError(f"no value named {name!r}")
        return int(self._by_name[name].getter())

    def width_of(self, name: str) -> int:
        """Bit width of the named exported value."""
        return self._by_name[name].width

    def dump(self) -> Dict[str, int]:
        """Read every exported value (name -> value)."""
        return {name: self.read(name) for name in self.names()}

    def memory_map(self) -> List[Dict[str, object]]:
        """The register map as a list of rows (address, name, width)."""
        return [
            {"address": mapped.address, "name": mapped.name, "width": mapped.width}
            for mapped in (self._values[a] for a in sorted(self._values))
        ]

    def words_required(self, name: str) -> int:
        """Number of bus transfers needed to read the named value."""
        return max(1, math.ceil(self._by_name[name].width / self.bus_width))

    def total_read_words(self) -> int:
        """Bus transfers needed to read the entire register file once."""
        return sum(self.words_required(name) for name in self.names())

    def mux_component(self, name: str = "readout_mux") -> ReadoutMux:
        """The read-out multiplexer sized for the current register map."""
        return ReadoutMux(name, len(self), self.bus_width, self.address_bits)
