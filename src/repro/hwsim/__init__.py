"""Hardware-simulation substrate.

This package replaces the paper's Verilog RTL with a cycle-accurate,
bit-serial Python model.  It provides:

* :mod:`repro.hwsim.components` — the only primitives the paper's datapath
  uses (registers, counters, up/down counters, shift registers, comparators,
  pattern detectors and the read-out multiplexer), each of which declares its
  own resource cost;
* :mod:`repro.hwsim.resources` — resource accounting (flip-flops, LUT
  estimate, component inventory) consumed by the FPGA/ASIC estimators in
  :mod:`repro.eval`;
* :mod:`repro.hwsim.register_file` — the memory-mapped read-out interface of
  Fig. 2 (a 7-bit-addressed multiplexer over all exported counter values).
"""

from repro.hwsim.components import (
    Component,
    Register,
    Counter,
    UpDownCounter,
    ShiftRegister,
    EqualityComparator,
    PatternDetector,
    PatternCounterBank,
)
from repro.hwsim.resources import ResourceReport, component_inventory
from repro.hwsim.register_file import MappedValue, RegisterFile, ReadoutMux

__all__ = [
    "Component",
    "Register",
    "Counter",
    "UpDownCounter",
    "ShiftRegister",
    "EqualityComparator",
    "PatternDetector",
    "PatternCounterBank",
    "ResourceReport",
    "component_inventory",
    "MappedValue",
    "RegisterFile",
    "ReadoutMux",
]
