"""Primitive hardware components of the testing block.

The paper's hardware datapath is deliberately restricted to "counters,
comparators and registers" (Section I-B); every hardware test unit in
:mod:`repro.hwtests` is assembled exclusively from the components defined
here.  Each component models its cycle-by-cycle behaviour *and* declares its
implementation cost (flip-flops and a LUT estimate), so that the unified
testing block can report the resource usage that the FPGA/ASIC estimators in
:mod:`repro.eval` translate into slices and gate equivalents.

Width handling follows RTL semantics: counters and registers wrap modulo
``2**width``, and the up/down counter uses two's-complement saturation-free
wrapping.  Widths are chosen by the test units to be provably sufficient for
the configured sequence length, and the unit tests assert that no wrap ever
occurs in legal operation.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

__all__ = [
    "Component",
    "Register",
    "Counter",
    "UpDownCounter",
    "ShiftRegister",
    "EqualityComparator",
    "PatternDetector",
    "PatternCounterBank",
]


def _check_width(width: int) -> int:
    if not isinstance(width, int) or width <= 0:
        raise ValueError(f"width must be a positive integer, got {width!r}")
    return width


class Component:
    """Base class of all hardware primitives.

    Sub-classes must implement the resource-declaration properties
    :attr:`flip_flops` and :attr:`lut_estimate`, and should provide a
    ``reset()`` method restoring the power-on state.
    """

    #: Short component-kind label used in inventories ("counter", ...).
    kind: str = "component"

    def __init__(self, name: str):
        self.name = name

    @property
    def flip_flops(self) -> int:
        """Number of flip-flops (1-bit storage elements) this component uses."""
        raise NotImplementedError

    @property
    def lut_estimate(self) -> float:
        """Estimated number of 6-input LUTs of combinational logic."""
        raise NotImplementedError

    def reset(self) -> None:
        """Restore the power-on state."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class Register(Component):
    """A simple ``width``-bit storage register with a load enable.

    Resource model: one flip-flop per bit; the load-enable multiplexing is
    absorbed into the FF's CE pin on both FPGA and ASIC targets, so the LUT
    cost is essentially zero.
    """

    kind = "register"

    def __init__(self, name: str, width: int, reset_value: int = 0):
        super().__init__(name)
        self.width = _check_width(width)
        self._mask = (1 << width) - 1
        self.reset_value = reset_value & self._mask
        self._value = self.reset_value

    @property
    def value(self) -> int:
        return self._value

    def load(self, value: int) -> None:
        """Clock a new value into the register (wraps modulo 2**width)."""
        self._value = value & self._mask

    def force(self, value: int) -> None:
        """Set the register state directly (functional-model fast path)."""
        self.load(value)

    def reset(self) -> None:
        self._value = self.reset_value

    @property
    def flip_flops(self) -> int:
        return self.width

    @property
    def lut_estimate(self) -> float:
        return 0.0


class Counter(Component):
    """An up-counter with synchronous enable and reset.

    Resource model: ``width`` flip-flops plus roughly one LUT per bit for the
    increment logic (on a carry-chain fabric this is conservative).
    """

    kind = "counter"

    def __init__(self, name: str, width: int):
        super().__init__(name)
        self.width = _check_width(width)
        self._mask = (1 << width) - 1
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    @property
    def max_value(self) -> int:
        """Largest representable count."""
        return self._mask

    def increment(self, enable: bool = True) -> None:
        """Advance the counter by one when ``enable`` is set."""
        if enable:
            self._value = (self._value + 1) & self._mask

    def clear(self) -> None:
        """Synchronous clear (used at block boundaries)."""
        self._value = 0

    def force(self, value: int) -> None:
        """Set the counter state directly (functional-model fast path).

        Raises ``ValueError`` if the value does not fit, so the fast path can
        never hide a width-sizing bug that the cycle-accurate path would
        expose as a wrap-around.
        """
        if not 0 <= value <= self._mask:
            raise ValueError(f"value {value} does not fit in {self.width} bits")
        self._value = value

    def reset(self) -> None:
        self._value = 0

    @property
    def flip_flops(self) -> int:
        return self.width

    @property
    def lut_estimate(self) -> float:
        return float(self.width)


class UpDownCounter(Component):
    """A signed up/down counter used to track the cusum random walk.

    The counter holds values in two's complement over ``width`` bits; the
    paper sizes it so that the full ±n excursion of an n-bit sequence fits
    (width = ceil(log2(n)) + 1 plus sign).

    Resource model: ``width`` flip-flops and ~1.5 LUTs per bit (an
    adder/subtractor is slightly wider than a bare incrementer).
    """

    kind = "updown_counter"

    def __init__(self, name: str, width: int):
        super().__init__(name)
        self.width = _check_width(width)
        self._modulus = 1 << width
        self._value = 0

    @property
    def value(self) -> int:
        """Current signed value (two's-complement interpretation)."""
        raw = self._value
        if raw >= self._modulus // 2:
            raw -= self._modulus
        return raw

    @property
    def min_value(self) -> int:
        return -(self._modulus // 2)

    @property
    def max_value(self) -> int:
        return self._modulus // 2 - 1

    def count(self, up: bool) -> None:
        """Count up (``up`` true) or down by one."""
        delta = 1 if up else -1
        self._value = (self._value + delta) % self._modulus

    def clear(self) -> None:
        self._value = 0

    def force(self, signed_value: int) -> None:
        """Set the counter to a signed value directly (functional fast path)."""
        if not self.min_value <= signed_value <= self.max_value:
            raise ValueError(
                f"value {signed_value} outside the {self.width}-bit two's-complement range"
            )
        self._value = signed_value % self._modulus

    def reset(self) -> None:
        self._value = 0

    @property
    def flip_flops(self) -> int:
        return self.width

    @property
    def lut_estimate(self) -> float:
        return 1.5 * self.width


class ShiftRegister(Component):
    """A serial-in shift register holding the most recent ``width`` bits.

    The newest bit occupies the least-significant position; :attr:`value`
    therefore equals the integer whose MSB is the *oldest* stored bit, which
    matches how the template-matching units compare against their patterns.

    Resource model: one flip-flop per bit, negligible combinational logic.
    """

    kind = "shift_register"

    def __init__(self, name: str, width: int):
        super().__init__(name)
        self.width = _check_width(width)
        self._mask = (1 << width) - 1
        self._value = 0
        self._fill = 0

    @property
    def value(self) -> int:
        return self._value

    @property
    def full(self) -> bool:
        """True once ``width`` bits have been shifted in since reset."""
        return self._fill >= self.width

    def shift_in(self, bit: int) -> None:
        """Shift one new bit into the register."""
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        self._value = ((self._value << 1) | bit) & self._mask
        if self._fill < self.width:
            self._fill += 1

    def bits(self) -> List[int]:
        """Current contents, oldest bit first."""
        return [(self._value >> (self.width - 1 - i)) & 1 for i in range(self.width)]

    def clear(self) -> None:
        self._value = 0
        self._fill = 0

    def reset(self) -> None:
        self.clear()

    @property
    def flip_flops(self) -> int:
        return self.width

    @property
    def lut_estimate(self) -> float:
        return 0.0


class EqualityComparator(Component):
    """A combinational equality comparator against a fixed constant.

    Resource model: no flip-flops; a ``width``-bit equality against a
    constant packs roughly three bits per 6-input LUT plus a small AND
    reduction tree.
    """

    kind = "comparator"

    def __init__(self, name: str, width: int, constant: int):
        super().__init__(name)
        self.width = _check_width(width)
        if not 0 <= constant < (1 << width):
            raise ValueError(f"constant {constant} does not fit in {width} bits")
        self.constant = constant

    def matches(self, value: int) -> bool:
        """Combinational compare of ``value`` against the stored constant."""
        return (value & ((1 << self.width) - 1)) == self.constant

    def reset(self) -> None:  # combinational: nothing to reset
        return None

    @property
    def flip_flops(self) -> int:
        return 0

    @property
    def lut_estimate(self) -> float:
        return max(1.0, math.ceil(self.width / 3.0))


class PatternDetector(Component):
    """Shift register + equality comparator detecting a fixed bit pattern.

    Used by the template-matching units.  The shift register may be shared
    between several detectors (the paper's fourth sharing trick); pass
    ``shared_shift_register`` to reuse an existing one, in which case only
    the comparator cost is accounted to this component.
    """

    kind = "pattern_detector"

    def __init__(
        self,
        name: str,
        pattern: Sequence[int],
        shared_shift_register: Optional[ShiftRegister] = None,
    ):
        super().__init__(name)
        pattern = tuple(int(b) for b in pattern)
        if not pattern or set(pattern) - {0, 1}:
            raise ValueError("pattern must be a non-empty sequence of bits")
        self.pattern = pattern
        width = len(pattern)
        self._owns_shift_register = shared_shift_register is None
        self.shift_register = shared_shift_register or ShiftRegister(f"{name}_sr", width)
        if self.shift_register.width != width:
            raise ValueError(
                "shared shift register width does not match the pattern length"
            )
        pattern_value = 0
        for bit in pattern:
            pattern_value = (pattern_value << 1) | bit
        self.comparator = EqualityComparator(f"{name}_cmp", width, pattern_value)

    def shift_in(self, bit: int) -> bool:
        """Shift a bit in (only if this detector owns the register) and match."""
        if self._owns_shift_register:
            self.shift_register.shift_in(bit)
        return self.matches()

    def matches(self) -> bool:
        """True when the (possibly shared) shift register holds the pattern."""
        return self.shift_register.full and self.comparator.matches(self.shift_register.value)

    def reset(self) -> None:
        if self._owns_shift_register:
            self.shift_register.reset()

    @property
    def flip_flops(self) -> int:
        return self.shift_register.flip_flops if self._owns_shift_register else 0

    @property
    def lut_estimate(self) -> float:
        own_sr = self.shift_register.lut_estimate if self._owns_shift_register else 0.0
        return own_sr + self.comparator.lut_estimate


class PatternCounterBank(Component):
    """A bank of ``2**pattern_length`` counters indexed by an m-bit window.

    This is the serial-test structure of Table II: one counter per possible
    m-bit pattern, incremented whenever the sliding window equals that
    pattern.  The decode of the window value into a one-hot enable costs
    roughly one LUT per counter.
    """

    kind = "pattern_counter_bank"

    def __init__(self, name: str, pattern_length: int, counter_width: int):
        super().__init__(name)
        if pattern_length <= 0:
            raise ValueError("pattern_length must be positive")
        self.pattern_length = pattern_length
        self.counter_width = _check_width(counter_width)
        self.counters = [
            Counter(f"{name}_nu{index:0{pattern_length}b}", counter_width)
            for index in range(1 << pattern_length)
        ]

    def record(self, pattern_value: int) -> None:
        """Increment the counter selected by the m-bit window value."""
        if not 0 <= pattern_value < (1 << self.pattern_length):
            raise ValueError(
                f"pattern value {pattern_value} out of range for m={self.pattern_length}"
            )
        self.counters[pattern_value].increment()

    def counts(self) -> List[int]:
        """Current counter values, indexed by pattern value."""
        return [counter.value for counter in self.counters]

    def reset(self) -> None:
        for counter in self.counters:
            counter.reset()

    @property
    def flip_flops(self) -> int:
        return sum(counter.flip_flops for counter in self.counters)

    @property
    def lut_estimate(self) -> float:
        decode = float(len(self.counters))
        return decode + sum(counter.lut_estimate for counter in self.counters)
