"""Resource accounting for the hardware model.

Every hardware test unit and the unified testing block expose a
:class:`ResourceReport`; the FPGA/ASIC estimators in :mod:`repro.eval`
convert these raw flip-flop / LUT numbers into Spartan-6 slices, a maximum
frequency estimate and ASIC gate equivalents.
"""

from __future__ import annotations

from collections import Counter as _TallyCounter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.hwsim.components import Component

__all__ = ["ResourceReport", "component_inventory"]


@dataclass
class ResourceReport:
    """Raw resource usage of a hardware block.

    Attributes
    ----------
    flip_flops:
        Total number of 1-bit storage elements.
    lut_estimate:
        Estimated number of 6-input LUTs of combinational logic.
    max_counter_width:
        Width of the widest counter/adder structure; drives the critical-path
        (maximum-frequency) model.
    readout_values:
        Number of values exported through the memory-mapped interface; drives
        the read-out multiplexer cost.
    components:
        Per-component-kind tallies (``{"counter": 12, ...}``).
    label:
        Free-form label identifying the block the report describes.
    """

    flip_flops: int = 0
    lut_estimate: float = 0.0
    max_counter_width: int = 0
    readout_values: int = 0
    components: Dict[str, int] = field(default_factory=dict)
    label: str = ""

    def merge(self, other: "ResourceReport") -> "ResourceReport":
        """Combine two reports (component-wise sum, max of widths)."""
        merged_components = dict(self.components)
        for kind, count in other.components.items():
            merged_components[kind] = merged_components.get(kind, 0) + count
        return ResourceReport(
            flip_flops=self.flip_flops + other.flip_flops,
            lut_estimate=self.lut_estimate + other.lut_estimate,
            max_counter_width=max(self.max_counter_width, other.max_counter_width),
            readout_values=self.readout_values + other.readout_values,
            components=merged_components,
            label=self.label or other.label,
        )

    @classmethod
    def from_components(
        cls,
        components: Iterable[Component],
        *,
        label: str = "",
        readout_values: int = 0,
    ) -> "ResourceReport":
        """Build a report by summing the declared costs of ``components``."""
        components = list(components)
        flip_flops = sum(c.flip_flops for c in components)
        luts = sum(c.lut_estimate for c in components)
        widths = [getattr(c, "width", 0) for c in components if c.kind in ("counter", "updown_counter")]
        tallies = _TallyCounter(c.kind for c in components)
        return cls(
            flip_flops=flip_flops,
            lut_estimate=luts,
            max_counter_width=max(widths) if widths else 0,
            readout_values=readout_values,
            components=dict(tallies),
            label=label,
        )

    def total_components(self) -> int:
        """Total number of primitive components in the block."""
        return sum(self.components.values())


def component_inventory(components: Iterable[Component]) -> List[Dict[str, object]]:
    """Structural inventory (name, kind, FFs, LUTs) of a component list.

    Used by the Fig. 2 architecture bench to print the elaborated structure
    of the unified testing block.
    """
    rows = []
    for component in components:
        rows.append(
            {
                "name": component.name,
                "kind": component.kind,
                "flip_flops": component.flip_flops,
                "lut_estimate": round(component.lut_estimate, 1),
            }
        )
    return rows
