"""Bit-serial hardware test units and the unified testing block of Fig. 2.

Each module implements the *hardware half* of one of the nine NIST tests the
paper selects (Table II, middle column): the values that must be computed
while the TRNG is producing bits, using only counters, comparators, shift
registers and registers.  :mod:`repro.hwtests.block` assembles the units into
the unified testing block with the paper's four resource-sharing tricks and
the memory-mapped read-out interface.
"""

from repro.hwtests.base import HardwareTestUnit
from repro.hwtests.parameters import DesignParameters, SharingOptions
from repro.hwtests.global_counter import GlobalBitCounter
from repro.hwtests.frequency import FrequencyHW
from repro.hwtests.block_frequency import BlockFrequencyHW
from repro.hwtests.runs import RunsHW
from repro.hwtests.longest_run import LongestRunHW
from repro.hwtests.nonoverlapping import NonOverlappingTemplateHW
from repro.hwtests.overlapping import OverlappingTemplateHW
from repro.hwtests.serial import SerialHW
from repro.hwtests.approximate_entropy import ApproximateEntropyHW
from repro.hwtests.cusum import CusumHW
from repro.hwtests.block import UnifiedTestingBlock
from repro.hwtests.suitability import SUITABILITY_TABLE, suitability_table

__all__ = [
    "HardwareTestUnit",
    "DesignParameters",
    "SharingOptions",
    "GlobalBitCounter",
    "FrequencyHW",
    "BlockFrequencyHW",
    "RunsHW",
    "LongestRunHW",
    "NonOverlappingTemplateHW",
    "OverlappingTemplateHW",
    "SerialHW",
    "ApproximateEntropyHW",
    "CusumHW",
    "UnifiedTestingBlock",
    "SUITABILITY_TABLE",
    "suitability_table",
]
