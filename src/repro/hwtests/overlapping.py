"""Hardware half of NIST test 8 (Overlapping Template Matching).

Shares the 9-bit shift register with the non-overlapping test (sharing
trick 4); its own comparator detects the all-ones template.  Matches are
counted per block (overlapping — the window always slides by one), and at
each block boundary the block is classified into one of the K+1 occurrence
categories whose counters ν_temp,i are the exported values of Table II.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hwsim.components import (
    Component,
    Counter,
    EqualityComparator,
    ShiftRegister,
)
from repro.hwsim.register_file import RegisterFile
from repro.hwtests.base import HardwareTestUnit
from repro.hwtests.parameters import DesignParameters, counter_width

__all__ = ["OverlappingTemplateHW"]


class OverlappingTemplateHW(HardwareTestUnit):
    """Overlapping template detector with per-category block counters."""

    test_number = 8
    display_name = "Overlapping Template Matching Test"

    #: Number of non-terminal categories (occurrence counts 0..K-1, then >= K).
    K = 5

    def __init__(
        self,
        params: DesignParameters,
        shift_register: Optional[ShiftRegister] = None,
    ):
        self.params = params
        self.template = params.overlapping_template
        self.template_length = params.template_length
        self.block_length = params.overlapping_block_length
        self.num_blocks = params.overlapping_num_blocks
        if self.block_length < self.template_length:
            raise ValueError("block shorter than the template")
        if self.num_blocks < 1:
            raise ValueError("sequence too short for a single overlapping-test block")
        self._owns_shift_register = shift_register is None
        self._shift_register = shift_register or ShiftRegister(
            "t8_shift_register", self.template_length
        )
        template_value = 0
        for bit in self.template:
            template_value = (template_value << 1) | int(bit)
        self._comparator = EqualityComparator(
            "t8_template_cmp", self.template_length, template_value
        )
        self._block_matches = Counter(
            "t8_block_matches", counter_width(self.block_length)
        )
        category_width = counter_width(self.num_blocks)
        self._categories = [
            Counter(f"t8_nu_{i}", category_width) for i in range(self.K + 1)
        ]

    def process_bit(self, bit: int, index: int) -> None:
        if self._owns_shift_register:
            self._shift_register.shift_in(bit)
        position_in_block = index % self.block_length
        window_complete = position_in_block >= self.template_length - 1
        if window_complete and self._matches():
            self._block_matches.increment()
        if (index + 1) % self.block_length == 0:
            category = min(self._block_matches.value, self.K)
            self._categories[category].increment()
            self._block_matches.clear()

    def _matches(self) -> bool:
        window = self._shift_register.value & ((1 << self.template_length) - 1)
        return self._shift_register.full and self._comparator.matches(window)

    @property
    def category_counts(self) -> List[int]:
        """Current ν_temp,i values (one per occurrence category)."""
        return [counter.value for counter in self._categories]

    def components(self) -> List[Component]:
        owned: List[Component] = []
        if self._owns_shift_register:
            owned.append(self._shift_register)
        owned.extend([self._comparator, self._block_matches, *self._categories])
        return owned

    def register_exports(self, register_file: RegisterFile) -> None:
        for i, counter in enumerate(self._categories):
            register_file.add(
                f"t8_nu_{i}", counter.width, (lambda c=counter: c.value)
            )
