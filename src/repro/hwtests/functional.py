"""Functional (vectorised) model of the hardware testing block.

The cycle-accurate model in :mod:`repro.hwtests` consumes one bit per call,
exactly like the RTL; that fidelity costs ~10 µs of Python per bit, which
makes the 2^20-bit design points slow to exercise.  This module provides the
standard EDA answer — a *functional model*: for each hardware unit the final
counter state after a complete n-bit sequence is computed with vectorised
reference code and loaded directly into the unit's components.

The functional and cycle-accurate paths are verified equivalent by
``tests/test_hwtests_functional.py`` (same final register-file contents for
the same input sequence); benchmarks and examples may then use whichever
path suits their sequence length.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.hwtests.approximate_entropy import ApproximateEntropyHW
from repro.hwtests.base import HardwareTestUnit
from repro.hwtests.block_frequency import BlockFrequencyHW
from repro.hwtests.cusum import CusumHW
from repro.hwtests.frequency import FrequencyHW
from repro.hwtests.longest_run import LongestRunHW
from repro.hwtests.nonoverlapping import NonOverlappingTemplateHW
from repro.hwtests.overlapping import OverlappingTemplateHW
from repro.hwtests.runs import RunsHW
from repro.hwtests.serial import SerialHW
from repro.nist.common import chunk, pattern_counts
from repro.nist.cusum import random_walk_extremes
from repro.nist.longest_run import LONGEST_RUN_TABLES, category_index, longest_run_of_ones
from repro.nist.nonoverlapping import count_non_overlapping
from repro.nist.overlapping import count_overlapping
from repro.nist.runs import count_runs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hwtests.block import UnifiedTestingBlock

__all__ = ["fast_load_unit", "fast_load_block"]


def _load_cusum(unit: CusumHW, bits: np.ndarray) -> None:
    s_max, s_min, s_final = random_walk_extremes(bits)
    unit._walk.force(s_final)
    unit._s_max.force(unit._to_raw(s_max))
    unit._s_min.force(unit._to_raw(s_min))


def _load_frequency(unit: FrequencyHW, bits: np.ndarray) -> None:
    unit._ones.force(int(bits.sum()))


def _load_runs(unit: RunsHW, bits: np.ndarray) -> None:
    unit._runs.force(count_runs(bits))
    unit._previous.force(int(bits[-1]) if bits.size else 0)
    unit._started = bits.size > 0


def _load_block_frequency(unit: BlockFrequencyHW, bits: np.ndarray) -> None:
    blocks = chunk(bits, unit.block_length)
    for index, block in enumerate(blocks[: unit.num_blocks]):
        unit._snapshots[index].force(int(block.sum()))
    unit._current_block = min(len(blocks), unit.num_blocks)
    unit._block_ones.clear()


def _load_longest_run(unit: LongestRunHW, bits: np.ndarray) -> None:
    _k, v_values, _pi = LONGEST_RUN_TABLES[unit.block_length]
    categories = [0] * len(unit._categories)
    for block in chunk(bits, unit.block_length):
        categories[category_index(longest_run_of_ones(block), v_values)] += 1
    for counter, value in zip(unit._categories, categories):
        counter.force(value)
    unit._current_run.clear()
    unit._block_longest.force(0)


def _load_non_overlapping(unit: NonOverlappingTemplateHW, bits: np.ndarray) -> None:
    blocks = chunk(bits, unit.block_length)
    for index, counter in enumerate(unit._block_counters):
        if index < len(blocks):
            counter.force(count_non_overlapping(blocks[index], unit.template))
    unit._skip.clear()
    unit._current_block = min(len(blocks), unit.num_blocks) - 1


def _load_overlapping(unit: OverlappingTemplateHW, bits: np.ndarray) -> None:
    categories = [0] * len(unit._categories)
    for block in chunk(bits, unit.block_length)[: unit.num_blocks]:
        occurrences = count_overlapping(block, unit.template)
        categories[min(occurrences, unit.K)] += 1
    for counter, value in zip(unit._categories, categories):
        counter.force(value)
    unit._block_matches.clear()


def _load_serial(unit: SerialHW, bits: np.ndarray) -> None:
    for length, bank in unit._banks.items():
        counts = pattern_counts(bits, length, cyclic=True)
        for counter, value in zip(bank.counters, counts):
            counter.force(int(value))
    unit._bits_seen = int(bits.size) + unit.m - 1
    unit._finalized = True


def _load_approximate_entropy(unit: ApproximateEntropyHW, bits: np.ndarray) -> None:
    if unit.shares_serial_counters:
        return  # the serial unit's fast load already provides the counts
    for length, bank in unit._banks.items():
        counts = pattern_counts(bits, length, cyclic=True)
        for counter, value in zip(bank.counters, counts):
            counter.force(int(value))
    unit._bits_seen = int(bits.size) + unit.m
    unit._finalized = True


_LOADERS = {
    CusumHW: _load_cusum,
    FrequencyHW: _load_frequency,
    RunsHW: _load_runs,
    BlockFrequencyHW: _load_block_frequency,
    LongestRunHW: _load_longest_run,
    NonOverlappingTemplateHW: _load_non_overlapping,
    OverlappingTemplateHW: _load_overlapping,
    SerialHW: _load_serial,
    ApproximateEntropyHW: _load_approximate_entropy,
}


def fast_load_unit(unit: HardwareTestUnit, bits: np.ndarray) -> None:
    """Load the end-of-sequence state of one unit from a complete sequence."""
    loader = _LOADERS.get(type(unit))
    if loader is None:
        raise TypeError(f"no functional model for {type(unit).__name__}")
    loader(unit, bits)


def fast_load_block(block: "UnifiedTestingBlock", bits: np.ndarray) -> None:
    """Load the end-of-sequence state of a whole unified testing block."""
    if bits.size != block.params.n:
        raise ValueError(f"expected {block.params.n} bits, got {bits.size}")
    block.reset()
    for unit in block.units.values():
        fast_load_unit(unit, bits)
    # Advance the global counter to the end-of-sequence state.
    block.global_counter._counter.force(block.params.n)
    if block._shared_shift_register is not None:
        tail = bits[-block._shared_shift_register.width :]
        for bit in tail:
            block._shared_shift_register.shift_in(int(bit))
    block._finalized = True
