"""Functional (vectorised) model of the hardware testing block.

The cycle-accurate model in :mod:`repro.hwtests` consumes one bit per call,
exactly like the RTL; that fidelity costs ~10 µs of Python per bit, which
makes the 2^20-bit design points slow to exercise.  This module provides the
standard EDA answer — a *functional model*: for each hardware unit the final
counter state after a complete n-bit sequence is computed with vectorised
reference code and loaded directly into the unit's components.

Every loader draws its statistics from a shared
:class:`~repro.engine.context.SequenceContext` rather than re-scanning the
raw bits: the ones count, walk extremes, run count, per-block sums and
longest runs, and cyclic pattern counts are each derived once and shared by
every unit that needs them — mirroring how the paper's hardware counters
share sub-statistics.  When the context is backed by a
:class:`~repro.engine.context.BatchContext` (the platform's batch path), the
statistics are computed in single vectorised passes over the whole batch,
on the packed 64-bits-per-word kernels when the batch's backend is
``"packed"``.  Only the template-matching units read raw bits.

The functional and cycle-accurate paths are verified equivalent by
``tests/test_hwtests_functional.py`` (same final register-file contents for
the same input sequence); benchmarks and examples may then use whichever
path suits their sequence length.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from repro.engine.context import SequenceContext
from repro.hwtests.approximate_entropy import ApproximateEntropyHW
from repro.hwtests.base import HardwareTestUnit
from repro.hwtests.block_frequency import BlockFrequencyHW
from repro.hwtests.cusum import CusumHW
from repro.hwtests.frequency import FrequencyHW
from repro.hwtests.longest_run import LongestRunHW
from repro.hwtests.nonoverlapping import NonOverlappingTemplateHW
from repro.hwtests.overlapping import OverlappingTemplateHW
from repro.hwtests.runs import RunsHW
from repro.hwtests.serial import SerialHW
from repro.nist.common import BitsLike, chunk
from repro.nist.longest_run import LONGEST_RUN_TABLES, category_index
from repro.nist.nonoverlapping import count_non_overlapping
from repro.nist.overlapping import count_overlapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hwtests.block import UnifiedTestingBlock

__all__ = ["fast_load_unit", "fast_load_block", "fast_load_block_from_context"]

#: Anything a loader accepts: raw bits or an already-built shared context.
LoadInput = Union[BitsLike, SequenceContext]


def _load_cusum(unit: CusumHW, context: SequenceContext) -> None:
    s_max, s_min, s_final = context.walk_extremes()
    unit._walk.force(s_final)
    unit._s_max.force(unit._to_raw(s_max))
    unit._s_min.force(unit._to_raw(s_min))


def _load_frequency(unit: FrequencyHW, context: SequenceContext) -> None:
    unit._ones.force(context.ones)


def _load_runs(unit: RunsHW, context: SequenceContext) -> None:
    unit._runs.force(context.num_runs())
    unit._previous.force(context.last_bit() if context.n else 0)
    unit._started = context.n > 0


def _load_block_frequency(unit: BlockFrequencyHW, context: SequenceContext) -> None:
    sums = context.block_sums(unit.block_length)
    for index in range(min(len(sums), unit.num_blocks)):
        unit._snapshots[index].force(int(sums[index]))
    unit._current_block = min(len(sums), unit.num_blocks)
    unit._block_ones.clear()


def _load_longest_run(unit: LongestRunHW, context: SequenceContext) -> None:
    _k, v_values, _pi = LONGEST_RUN_TABLES[unit.block_length]
    categories = [0] * len(unit._categories)
    for longest in context.block_longest_one_runs(unit.block_length):
        categories[category_index(int(longest), v_values)] += 1
    for counter, value in zip(unit._categories, categories):
        counter.force(value)
    unit._current_run.clear()
    unit._block_longest.force(0)


def _load_non_overlapping(unit: NonOverlappingTemplateHW, context: SequenceContext) -> None:
    blocks = chunk(context.bits, unit.block_length)
    for index, counter in enumerate(unit._block_counters):
        if index < len(blocks):
            counter.force(count_non_overlapping(blocks[index], unit.template))
    unit._skip.clear()
    unit._current_block = min(len(blocks), unit.num_blocks) - 1


def _load_overlapping(unit: OverlappingTemplateHW, context: SequenceContext) -> None:
    categories = [0] * len(unit._categories)
    for block in chunk(context.bits, unit.block_length)[: unit.num_blocks]:
        occurrences = count_overlapping(block, unit.template)
        categories[min(occurrences, unit.K)] += 1
    for counter, value in zip(unit._categories, categories):
        counter.force(value)
    unit._block_matches.clear()


def _load_serial(unit: SerialHW, context: SequenceContext) -> None:
    for length, bank in unit._banks.items():
        counts = context.pattern_counts(length, cyclic=True)
        for counter, value in zip(bank.counters, counts):
            counter.force(int(value))
    unit._bits_seen = context.n + unit.m - 1
    unit._finalized = True


def _load_approximate_entropy(unit: ApproximateEntropyHW, context: SequenceContext) -> None:
    if unit.shares_serial_counters:
        return  # the serial unit's fast load already provides the counts
    for length, bank in unit._banks.items():
        counts = context.pattern_counts(length, cyclic=True)
        for counter, value in zip(bank.counters, counts):
            counter.force(int(value))
    unit._bits_seen = context.n + unit.m
    unit._finalized = True


_LOADERS = {
    CusumHW: _load_cusum,
    FrequencyHW: _load_frequency,
    RunsHW: _load_runs,
    BlockFrequencyHW: _load_block_frequency,
    LongestRunHW: _load_longest_run,
    NonOverlappingTemplateHW: _load_non_overlapping,
    OverlappingTemplateHW: _load_overlapping,
    SerialHW: _load_serial,
    ApproximateEntropyHW: _load_approximate_entropy,
}


def _as_context(bits: LoadInput) -> SequenceContext:
    if isinstance(bits, SequenceContext):
        return bits
    return SequenceContext(bits)


def fast_load_unit(unit: HardwareTestUnit, bits: LoadInput) -> None:
    """Load the end-of-sequence state of one unit from a complete sequence.

    ``bits`` may be a raw bit sequence or a prepared
    :class:`~repro.engine.context.SequenceContext` so several units (or a
    whole batch) share the same memoized statistics.
    """
    loader = _LOADERS.get(type(unit))
    if loader is None:
        raise TypeError(f"no functional model for {type(unit).__name__}")
    loader(unit, _as_context(bits))


def fast_load_block(block: "UnifiedTestingBlock", bits: BitsLike) -> None:
    """Load the end-of-sequence state of a whole unified testing block."""
    fast_load_block_from_context(block, SequenceContext(bits))


def fast_load_block_from_context(
    block: "UnifiedTestingBlock", context: SequenceContext
) -> None:
    """Load a whole block from a shared context (the platform batch path).

    The context supplies every shared statistic; the raw bits are only
    touched when the design includes template tests (their match counters
    have no shared sub-statistic) or a shared shift register whose tail
    state must be replayed.
    """
    if context.n != block.params.n:
        raise ValueError(f"expected {block.params.n} bits, got {context.n}")
    block.reset()
    for unit in block.units.values():
        fast_load_unit(unit, context)
    # Advance the global counter to the end-of-sequence state.
    block.global_counter._counter.force(block.params.n)
    if block._shared_shift_register is not None:
        tail = context.bits[-block._shared_shift_register.width :]
        for bit in tail:
            block._shared_shift_register.shift_in(int(bit))
    block._finalized = True
