"""Hardware half of NIST test 13 (Cumulative Sums) — and, via sharing, test 1.

An up/down counter tracks the ±1 random walk; two registers latch the walk's
maximum and minimum.  The three exported values S_max, S_min and S_final
(Table II) let the software evaluate both cusum modes *and* — the paper's
first sharing trick — recover the total number of ones as
``N_ones = (n + S_final) / 2`` so that the frequency test needs no dedicated
counter.
"""

from __future__ import annotations

from typing import List

from repro.hwsim.components import Component, Register, UpDownCounter
from repro.hwsim.register_file import RegisterFile
from repro.hwtests.base import HardwareTestUnit
from repro.hwtests.parameters import DesignParameters, counter_width

__all__ = ["CusumHW"]


class CusumHW(HardwareTestUnit):
    """Random-walk tracker: up/down counter plus max/min capture registers."""

    test_number = 13
    display_name = "Cumulative Sums Test"

    def __init__(self, params: DesignParameters):
        self.params = params
        # The walk stays within ±n; one sign bit plus enough magnitude bits.
        width = counter_width(params.n) + 1
        self._walk = UpDownCounter("t13_walk", width)
        # The capture registers reset to the most-negative / most-positive
        # representable values so that the very first walk sample is latched
        # into both (hardware would tie the async-reset pattern accordingly).
        self._s_max = Register("t13_s_max", width, reset_value=1 << (width - 1))
        self._s_min = Register("t13_s_min", width, reset_value=(1 << (width - 1)) - 1)

    # -- per-clock behaviour -------------------------------------------------
    def process_bit(self, bit: int, index: int) -> None:
        self._walk.count(up=bool(bit))
        value = self._walk.value
        if value > self._signed(self._s_max.value):
            self._s_max.load(self._to_raw(value))
        if value < self._signed(self._s_min.value):
            self._s_min.load(self._to_raw(value))

    # -- two's-complement helpers (registers store raw bit patterns) ---------
    def _to_raw(self, signed_value: int) -> int:
        modulus = 1 << self._walk.width
        return signed_value % modulus

    def _signed(self, raw_value: int) -> int:
        modulus = 1 << self._walk.width
        if raw_value >= modulus // 2:
            return raw_value - modulus
        return raw_value

    # -- exported values ------------------------------------------------------
    @property
    def s_max(self) -> int:
        """Maximum of the random walk so far (>= 0 once any bit arrived)."""
        return self._signed(self._s_max.value)

    @property
    def s_min(self) -> int:
        """Minimum of the random walk so far (<= 0)."""
        return self._signed(self._s_min.value)

    @property
    def s_final(self) -> int:
        """Current (at end of sequence: final) value of the random walk."""
        return self._walk.value

    @property
    def derived_ones(self) -> int:
        """Number of ones derived from S_final (sharing trick 1).

        Only meaningful once the full sequence has been processed.
        """
        return (self.params.n + self.s_final) // 2

    def components(self) -> List[Component]:
        return [self._walk, self._s_max, self._s_min]

    def register_exports(self, register_file: RegisterFile) -> None:
        width = self._walk.width
        register_file.add("t13_s_max", width, lambda: self._to_raw(self.s_max))
        register_file.add("t13_s_min", width, lambda: self._to_raw(self.s_min))
        register_file.add("t13_s_final", width, lambda: self._to_raw(self.s_final))
