"""The global bit counter of the unified testing block.

The paper mentions (Section III-C) a global bit counter, not drawn in Fig. 2,
that counts the total number of received bits so that the end of the sequence
can be detected.  Because every block length in the design is a power of two,
the same counter also provides every block-boundary signal: a block of
``2**k`` bits ends exactly when the counter's low ``k`` bits roll over to
zero (the paper's "block detection" trick).
"""

from __future__ import annotations

from typing import List

from repro.hwsim.components import Component, Counter
from repro.hwtests.parameters import counter_width, is_power_of_two

__all__ = ["GlobalBitCounter"]


class GlobalBitCounter:
    """Counts received bits and derives end-of-sequence / block boundaries.

    Parameters
    ----------
    n:
        Sequence length in bits (a power of two).
    """

    def __init__(self, n: int):
        if not is_power_of_two(n):
            raise ValueError("sequence length must be a power of two")
        self.n = n
        self._counter = Counter("global_bit_counter", counter_width(n))

    # -- per-clock behaviour -------------------------------------------------
    def clock(self) -> None:
        """Count one received bit."""
        self._counter.increment()

    @property
    def bits_received(self) -> int:
        """Number of bits received since the last reset."""
        return self._counter.value

    @property
    def sequence_complete(self) -> bool:
        """True once ``n`` bits have been received."""
        return self._counter.value >= self.n

    def block_boundary(self, block_length: int) -> bool:
        """True when the most recent bit completed a block of ``block_length`` bits.

        In hardware this is the AND of the low ``log2(block_length)`` counter
        bits being zero (checked *after* the increment), which is exactly the
        modulo comparison below for power-of-two block lengths.
        """
        if not is_power_of_two(block_length):
            raise ValueError("block_length must be a power of two")
        if self._counter.value == 0:
            return False
        return self._counter.value % block_length == 0

    def position_in_block(self, block_length: int) -> int:
        """Zero-based position of the *next* bit within its block."""
        if not is_power_of_two(block_length):
            raise ValueError("block_length must be a power of two")
        return self._counter.value % block_length

    def reset(self) -> None:
        """Clear the counter for a new sequence."""
        self._counter.reset()

    # -- resources -------------------------------------------------------------
    def components(self) -> List[Component]:
        """The counter itself (the boundary decode is a handful of LUTs,
        already covered by the counter's per-bit LUT estimate)."""
        return [self._counter]
