"""Common interface of the per-test hardware units.

A hardware test unit models the RTL of one NIST test's hardware half.  It is
driven one bit per clock cycle by the unified testing block and exposes the
values it would transfer to the software platform (Table II, middle column)
through the memory-mapped register file.
"""

from __future__ import annotations

import abc
from typing import Dict, List

from repro.hwsim.components import Component
from repro.hwsim.register_file import RegisterFile
from repro.hwsim.resources import ResourceReport

__all__ = ["HardwareTestUnit"]


class HardwareTestUnit(abc.ABC):
    """Abstract base class of the bit-serial hardware test units.

    Sub-classes implement:

    * :meth:`process_bit` — the per-clock update; the paper requires that all
      update calculations finish within one clock cycle, which translates
      here to "only component-level operations, no arithmetic on Python
      integers wider than the declared counters";
    * :meth:`components` — the list of primitive components the unit
      instantiates (excluding any *shared* components owned by the unified
      block);
    * :meth:`register_exports` — add the unit's exported values to the
      memory-mapped register file.

    ``finalize()`` exists for the single place where the paper's on-the-fly
    formulation needs an end-of-sequence step (the serial test's cyclic
    window wrap-around); for every other unit it is a no-op.
    """

    #: NIST test number (1..15) this unit implements the hardware half of.
    test_number: int = 0
    #: Human-readable test name.
    display_name: str = ""

    @abc.abstractmethod
    def process_bit(self, bit: int, index: int) -> None:
        """Consume one input bit.

        Parameters
        ----------
        bit:
            The incoming random bit (0 or 1).
        index:
            Zero-based position of the bit within the current sequence; the
            units use it only in the way real hardware could (comparing the
            low bits against zero for power-of-two block detection).
        """

    def finalize(self) -> None:
        """End-of-sequence hook (default: nothing to do)."""

    @abc.abstractmethod
    def components(self) -> List[Component]:
        """Primitive components owned by this unit (shared ones excluded)."""

    @abc.abstractmethod
    def register_exports(self, register_file: RegisterFile) -> None:
        """Map this unit's hardware-to-software values into ``register_file``."""

    def reset(self) -> None:
        """Restore all owned components to their power-on state."""
        for component in self.components():
            component.reset()

    # -- convenience ---------------------------------------------------------
    def resources(self) -> ResourceReport:
        """Resource usage of the owned components only."""
        return ResourceReport.from_components(
            self.components(), label=f"test{self.test_number}"
        )

    def exported_values(self) -> Dict[str, int]:
        """Snapshot of the unit's exports, bypassing the register file.

        Only used by unit tests; the platform always reads through the
        register file so that the READ-instruction accounting stays honest.
        """
        register_file = RegisterFile()
        self.register_exports(register_file)
        return register_file.dump()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(test={self.test_number})"
