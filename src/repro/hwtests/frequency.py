"""Hardware half of NIST test 1 (Frequency / Monobit).

In the unified block with sharing trick 1 enabled this unit is *not*
instantiated at all: the total number of ones is derived in software from the
cusum counter's final value.  The standalone version below (a plain ones
counter) exists for two reasons: configurations that include test 1 but not
test 13, and the sharing-ablation benchmark that quantifies the saving of
trick 1.
"""

from __future__ import annotations

from typing import List

from repro.hwsim.components import Component, Counter
from repro.hwsim.register_file import RegisterFile
from repro.hwtests.base import HardwareTestUnit
from repro.hwtests.parameters import DesignParameters, counter_width

__all__ = ["FrequencyHW"]


class FrequencyHW(HardwareTestUnit):
    """Dedicated ones counter for the frequency (monobit) test."""

    test_number = 1
    display_name = "Frequency (Monobit) Test"

    def __init__(self, params: DesignParameters):
        self.params = params
        self._ones = Counter("t1_ones", counter_width(params.n))

    def process_bit(self, bit: int, index: int) -> None:
        self._ones.increment(enable=bool(bit))

    @property
    def ones(self) -> int:
        """Total number of ones counted so far."""
        return self._ones.value

    def components(self) -> List[Component]:
        return [self._ones]

    def register_exports(self, register_file: RegisterFile) -> None:
        register_file.add("t1_n_ones", self._ones.width, lambda: self._ones.value)
