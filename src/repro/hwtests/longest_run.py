"""Hardware half of NIST test 4 (Longest Run of Ones in a Block).

Per incoming bit the unit maintains the length of the current run of ones and
the longest run seen in the current block (a comparator plus two small
counters/registers).  At each block boundary the block's longest run is
classified into one of the K+1 NIST categories with constant comparators and
the corresponding category counter ν_runs,i is incremented — those category
counters are the values exported to software (Table II).
"""

from __future__ import annotations

from typing import List

from repro.hwsim.components import Component, Counter, Register
from repro.hwsim.register_file import RegisterFile
from repro.hwtests.base import HardwareTestUnit
from repro.hwtests.parameters import DesignParameters, counter_width
from repro.nist.longest_run import LONGEST_RUN_TABLES, category_index

__all__ = ["LongestRunHW"]


class LongestRunHW(HardwareTestUnit):
    """Current-run tracking plus per-category block counters."""

    test_number = 4
    display_name = "Longest Run of Ones in a Block"

    def __init__(self, params: DesignParameters):
        self.params = params
        self.block_length = params.longest_run_block_length
        if self.block_length not in LONGEST_RUN_TABLES:
            raise ValueError(
                f"longest-run block length {self.block_length} has no NIST category table"
            )
        self.num_blocks = params.n // self.block_length
        self.k, self.v_values, self.pi = LONGEST_RUN_TABLES[self.block_length]
        run_width = counter_width(self.block_length)
        category_width = counter_width(self.num_blocks)
        self._current_run = Counter("t4_current_run", run_width)
        self._block_longest = Register("t4_block_longest", run_width)
        self._categories = [
            Counter(f"t4_nu_{i}", category_width) for i in range(self.k + 1)
        ]

    def process_bit(self, bit: int, index: int) -> None:
        if bit:
            self._current_run.increment()
            if self._current_run.value > self._block_longest.value:
                self._block_longest.load(self._current_run.value)
        else:
            self._current_run.clear()
        if (index + 1) % self.block_length == 0:
            category = category_index(self._block_longest.value, self.v_values)
            self._categories[category].increment()
            self._current_run.clear()
            self._block_longest.load(0)

    @property
    def category_counts(self) -> List[int]:
        """Current ν_runs,i values (one per category)."""
        return [counter.value for counter in self._categories]

    def components(self) -> List[Component]:
        return [self._current_run, self._block_longest, *self._categories]

    def register_exports(self, register_file: RegisterFile) -> None:
        for i, counter in enumerate(self._categories):
            register_file.add(
                f"t4_nu_{i}", counter.width, (lambda c=counter: c.value)
            )
