"""Design parameters shared by the hardware test units.

The paper's "block detection" trick requires every block length to be a power
of two so that block boundaries can be read directly off the global bit
counter; the parameter derivation here enforces that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

__all__ = ["SharingOptions", "DesignParameters", "is_power_of_two", "clog2"]


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def clog2(value: int) -> int:
    """Ceiling of log2, i.e. the number of bits needed to address ``value`` states."""
    if value <= 0:
        raise ValueError("value must be positive")
    return max(1, int(math.ceil(math.log2(value))))


def counter_width(max_count: int) -> int:
    """Width of a counter that must be able to hold ``max_count``."""
    if max_count < 0:
        raise ValueError("max_count must be non-negative")
    return max(1, (max_count).bit_length())


@dataclass(frozen=True)
class SharingOptions:
    """The four area-reduction tricks of Section III-C, individually switchable.

    All default to True (the paper's unified implementation); the ablation
    benchmark disables them one at a time to quantify each trick's saving.

    Attributes
    ----------
    omit_ones_counter:
        Trick 1 — derive the total number of ones from the cusum up/down
        counter's final value instead of keeping a dedicated ones counter
        (possible whenever test 13 is present).
    block_detection_from_global_counter:
        Trick 2 — detect power-of-two block boundaries by observing bits of
        the global bit counter instead of per-test block counters.
    unified_approximate_entropy:
        Trick 3 — the approximate-entropy test reuses the serial test's 3-bit
        and 4-bit pattern counters instead of instantiating its own bank.
    shared_shift_register:
        Trick 4 — the non-overlapping and overlapping template tests (and the
        serial test's window) share a single 9-bit shift register.
    """

    omit_ones_counter: bool = True
    block_detection_from_global_counter: bool = True
    unified_approximate_entropy: bool = True
    shared_shift_register: bool = True

    @classmethod
    def all_disabled(cls) -> "SharingOptions":
        """A configuration with every sharing trick turned off."""
        return cls(False, False, False, False)


@dataclass(frozen=True)
class DesignParameters:
    """Per-design test parameters derived from the sequence length ``n``.

    Parameters are chosen the way the paper describes: every block length is
    a power of two, the longest-run block length is one of the NIST-tabulated
    values that is also a power of two (8 / 128 / 512), templates are 9 bits
    long, and the serial / approximate-entropy tests use m = 4 / m = 3.

    Attributes
    ----------
    n:
        Sequence length in bits (must be a power of two).
    block_frequency_num_blocks:
        Number of blocks N for the block-frequency test (power of two).
    longest_run_block_length:
        Block length M for the longest-run test (8, 128 or 512).
    template_length:
        Template length m for both template-matching tests.
    nonoverlapping_num_blocks:
        Number of blocks N for the non-overlapping template test.
    overlapping_block_length:
        Block length M for the overlapping template test (power of two).
    serial_m:
        Pattern length m for the serial test (the approximate-entropy test
        uses m − 1).
    """

    n: int
    block_frequency_num_blocks: int = 8
    longest_run_block_length: int = 128
    template_length: int = 9
    nonoverlapping_num_blocks: int = 8
    overlapping_block_length: int = 1024
    serial_m: int = 4
    nonoverlapping_template: Tuple[int, ...] = (0, 0, 0, 0, 0, 0, 0, 0, 1)
    overlapping_template: Tuple[int, ...] = (1, 1, 1, 1, 1, 1, 1, 1, 1)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n):
            raise ValueError(f"sequence length n={self.n} must be a power of two")
        if not is_power_of_two(self.block_frequency_num_blocks):
            raise ValueError("block_frequency_num_blocks must be a power of two")
        if self.block_frequency_num_blocks > self.n:
            raise ValueError("block_frequency_num_blocks exceeds sequence length")
        if self.longest_run_block_length not in (8, 128, 512):
            raise ValueError("longest_run_block_length must be 8, 128 or 512")
        if self.longest_run_block_length > self.n:
            raise ValueError("longest_run_block_length exceeds sequence length")
        if not is_power_of_two(self.nonoverlapping_num_blocks):
            raise ValueError("nonoverlapping_num_blocks must be a power of two")
        if not is_power_of_two(self.overlapping_block_length):
            raise ValueError("overlapping_block_length must be a power of two")
        if len(self.nonoverlapping_template) != self.template_length:
            raise ValueError("nonoverlapping_template length mismatch")
        if len(self.overlapping_template) != self.template_length:
            raise ValueError("overlapping_template length mismatch")
        if self.serial_m < 2:
            raise ValueError("serial_m must be at least 2")

    # -- derived values ------------------------------------------------------
    @property
    def block_frequency_block_length(self) -> int:
        """Block length M of the block-frequency test (n / N)."""
        return self.n // self.block_frequency_num_blocks

    @property
    def longest_run_num_blocks(self) -> int:
        """Number of blocks of the longest-run test."""
        return self.n // self.longest_run_block_length

    @property
    def nonoverlapping_block_length(self) -> int:
        """Block length M of the non-overlapping template test."""
        return self.n // self.nonoverlapping_num_blocks

    @property
    def overlapping_num_blocks(self) -> int:
        """Number of blocks of the overlapping template test."""
        return self.n // self.overlapping_block_length

    @classmethod
    def for_length(cls, n: int) -> "DesignParameters":
        """Default parameters for one of the paper's three sequence lengths.

        Any power-of-two ``n >= 128`` is accepted; the three lengths used by
        the paper (128, 65 536, 1 048 576) give the parameter sets the
        benchmarks use.
        """
        if not is_power_of_two(n) or n < 128:
            raise ValueError("n must be a power of two and at least 128")
        if n < 6272:
            longest_run_m = 8
        elif n < 524288:
            longest_run_m = 128
        else:
            longest_run_m = 512
        overlapping_m = 1024 if n >= 65536 else max(64, n // 8)
        return cls(
            n=n,
            block_frequency_num_blocks=8,
            longest_run_block_length=longest_run_m,
            nonoverlapping_num_blocks=8 if n >= 1024 else 2,
            overlapping_block_length=overlapping_m,
        )
