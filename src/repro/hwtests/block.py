"""The unified hardware testing block (Fig. 2 of the paper).

Assembles the per-test hardware units for a chosen design point, applies the
four resource-sharing tricks of Section III-C, drives every unit bit by bit,
and exposes all hardware-to-software values through a single memory-mapped
register file read by the software platform.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.hwsim.components import Component, ShiftRegister
from repro.hwsim.register_file import RegisterFile
from repro.hwsim.resources import ResourceReport, component_inventory
from repro.hwtests.approximate_entropy import ApproximateEntropyHW
from repro.hwtests.base import HardwareTestUnit
from repro.hwtests.block_frequency import BlockFrequencyHW
from repro.hwtests.cusum import CusumHW
from repro.hwtests.frequency import FrequencyHW
from repro.hwtests.global_counter import GlobalBitCounter
from repro.hwtests.longest_run import LongestRunHW
from repro.hwtests.nonoverlapping import NonOverlappingTemplateHW
from repro.hwtests.overlapping import OverlappingTemplateHW
from repro.hwtests.parameters import DesignParameters, SharingOptions
from repro.hwtests.runs import RunsHW
from repro.hwtests.serial import SerialHW
from repro.nist.common import BitsLike, to_bits

__all__ = ["UnifiedTestingBlock"]

#: Tests the block knows how to instantiate (the 9 HW-suitable tests).
SUPPORTED_TESTS = (1, 2, 3, 4, 7, 8, 11, 12, 13)


class UnifiedTestingBlock:
    """The unified hardware testing block.

    Parameters
    ----------
    params:
        Design parameters (sequence length and per-test block sizes); see
        :class:`repro.hwtests.parameters.DesignParameters`.
    tests:
        The NIST test numbers included in this design point (a subset of
        1, 2, 3, 4, 7, 8, 11, 12, 13).
    sharing:
        Which of the four area-reduction tricks are applied (all on by
        default).
    bus_width:
        Width of the memory-mapped read bus (16 bits in the paper).
    """

    def __init__(
        self,
        params: DesignParameters,
        tests: Sequence[int],
        sharing: SharingOptions = SharingOptions(),
        bus_width: int = 16,
    ):
        tests = tuple(sorted(set(int(t) for t in tests)))
        unsupported = [t for t in tests if t not in SUPPORTED_TESTS]
        if unsupported:
            raise ValueError(
                f"tests {unsupported} are not implementable in the hardware block "
                f"(supported: {SUPPORTED_TESTS})"
            )
        if not tests:
            raise ValueError("at least one test must be selected")
        self.params = params
        self.tests = tests
        self.sharing = sharing
        self.global_counter = GlobalBitCounter(params.n)
        self._shared_shift_register: Optional[ShiftRegister] = None
        self.units: Dict[int, HardwareTestUnit] = {}
        self._build_units()
        self.register_file = RegisterFile(bus_width=bus_width)
        for number in sorted(self.units):
            self.units[number].register_exports(self.register_file)
        self._finalized = False

    # ------------------------------------------------------------------ build
    def _build_units(self) -> None:
        params = self.params
        sharing = self.sharing
        template_tests_present = any(t in self.tests for t in (7, 8))
        if sharing.shared_shift_register and template_tests_present:
            self._shared_shift_register = ShiftRegister(
                "shared_template_sr", params.template_length
            )

        if 13 in self.tests:
            self.units[13] = CusumHW(params)
        if 1 in self.tests:
            ones_from_cusum = sharing.omit_ones_counter and 13 in self.tests
            if not ones_from_cusum:
                self.units[1] = FrequencyHW(params)
        if 2 in self.tests:
            self.units[2] = BlockFrequencyHW(params)
        if 3 in self.tests:
            self.units[3] = RunsHW(params)
        if 4 in self.tests:
            self.units[4] = LongestRunHW(params)
        if 7 in self.tests:
            self.units[7] = NonOverlappingTemplateHW(
                params, shift_register=self._shared_shift_register
            )
        if 8 in self.tests:
            self.units[8] = OverlappingTemplateHW(
                params, shift_register=self._shared_shift_register
            )
        if 11 in self.tests:
            serial_sr = None
            if self._shared_shift_register is not None:
                serial_sr = self._shared_shift_register
            self.units[11] = SerialHW(params, shift_register=serial_sr)
        if 12 in self.tests:
            serial_unit = None
            if 11 in self.tests and sharing.unified_approximate_entropy:
                serial_unit = self.units[11]
            apen_sr = None
            if serial_unit is None and self._shared_shift_register is not None:
                apen_sr = self._shared_shift_register
            self.units[12] = ApproximateEntropyHW(
                params, serial_unit=serial_unit, shift_register=apen_sr
            )

    # ------------------------------------------------------------ bit-serial I/O
    @property
    def bits_processed(self) -> int:
        """Number of bits consumed since the last reset."""
        return self.global_counter.bits_received

    @property
    def sequence_complete(self) -> bool:
        """True once the configured sequence length has been consumed."""
        return self.global_counter.sequence_complete

    def process_bit(self, bit: int) -> None:
        """Consume one random bit (one clock cycle of the testing block)."""
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        if self.sequence_complete:
            raise RuntimeError(
                "sequence already complete; call reset() before feeding more bits"
            )
        index = self.global_counter.bits_received
        if self._shared_shift_register is not None:
            self._shared_shift_register.shift_in(bit)
        for number in sorted(self.units):
            self.units[number].process_bit(bit, index)
        self.global_counter.clock()

    def finalize(self) -> None:
        """End-of-sequence step (serial-test cyclic wrap-around replay)."""
        if self._finalized:
            return
        for number in sorted(self.units):
            self.units[number].finalize()
        self._finalized = True

    def process_sequence(self, bits: BitsLike) -> "UnifiedTestingBlock":
        """Feed a complete sequence of exactly ``n`` bits and finalize."""
        arr = to_bits(bits)
        if arr.size != self.params.n:
            raise ValueError(
                f"expected a sequence of {self.params.n} bits, got {arr.size}"
            )
        for bit in arr:
            self.process_bit(int(bit))
        self.finalize()
        return self

    def accelerated_process_sequence(self, bits: BitsLike) -> "UnifiedTestingBlock":
        """Functional-model fast path: identical final state, vectorised.

        Produces exactly the same register-file contents as
        :meth:`process_sequence` (verified by the test suite) but computes
        the final counter states with vectorised reference code instead of
        clocking every bit, which makes the 2^20-bit design points usable in
        benchmarks and examples.
        """
        from repro.hwtests.functional import fast_load_block

        arr = to_bits(bits)
        fast_load_block(self, arr)
        return self

    def reset(self) -> None:
        """Restore the whole block to its power-on state."""
        self.global_counter.reset()
        if self._shared_shift_register is not None:
            self._shared_shift_register.reset()
        for unit in self.units.values():
            unit.reset()
        self._finalized = False

    # ------------------------------------------------------------------ readout
    def hardware_values(self) -> Dict[str, int]:
        """Read every exported value through the memory-mapped interface."""
        return self.register_file.dump()

    def memory_map(self) -> List[Dict[str, object]]:
        """The register map (address, name, width) of the read-out interface."""
        return self.register_file.memory_map()

    # ------------------------------------------------------------------ structure
    def all_components(self) -> List[Component]:
        """Every primitive component in the block (shared ones once)."""
        components: List[Component] = list(self.global_counter.components())
        if self._shared_shift_register is not None:
            components.append(self._shared_shift_register)
        for number in sorted(self.units):
            components.extend(self.units[number].components())
        components.append(self.register_file.mux_component())
        return components

    def component_inventory(self) -> List[Dict[str, object]]:
        """Structural inventory used by the Fig. 2 architecture bench."""
        return component_inventory(self.all_components())

    def resources(self) -> ResourceReport:
        """Aggregate resource usage of the whole block."""
        report = ResourceReport.from_components(
            self.all_components(),
            label=f"n={self.params.n} tests={','.join(map(str, self.tests))}",
            readout_values=len(self.register_file),
        )
        return report

    def __repr__(self) -> str:
        return (
            f"UnifiedTestingBlock(n={self.params.n}, tests={self.tests}, "
            f"values={len(self.register_file)})"
        )
