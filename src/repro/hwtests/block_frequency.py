"""Hardware half of NIST test 2 (Frequency within a Block).

One counter accumulates the number of ones in the current block; at every
block boundary (detected from the global bit counter, sharing trick 2) the
count is latched into the next snapshot register and the counter is cleared.
The exported ε_1..ε_N are exactly the values Table II lists for this test;
the software computes Σ(ε_i − M/2)².
"""

from __future__ import annotations

from typing import List

from repro.hwsim.components import Component, Counter, Register
from repro.hwsim.register_file import RegisterFile
from repro.hwtests.base import HardwareTestUnit
from repro.hwtests.parameters import DesignParameters, counter_width

__all__ = ["BlockFrequencyHW"]


class BlockFrequencyHW(HardwareTestUnit):
    """Block ones counter plus one snapshot register per block."""

    test_number = 2
    display_name = "Frequency Test within a Block"

    def __init__(self, params: DesignParameters):
        self.params = params
        self.block_length = params.block_frequency_block_length
        self.num_blocks = params.block_frequency_num_blocks
        width = counter_width(self.block_length)
        self._block_ones = Counter("t2_block_ones", width)
        self._snapshots = [
            Register(f"t2_eps_{i + 1}", width) for i in range(self.num_blocks)
        ]
        self._current_block = 0

    def process_bit(self, bit: int, index: int) -> None:
        self._block_ones.increment(enable=bool(bit))
        # Block boundary: the low log2(M) bits of the (index + 1) count are 0.
        if (index + 1) % self.block_length == 0:
            if self._current_block < self.num_blocks:
                self._snapshots[self._current_block].load(self._block_ones.value)
                self._current_block += 1
            self._block_ones.clear()

    @property
    def ones_per_block(self) -> List[int]:
        """The latched ε_i values for all completed blocks."""
        return [reg.value for reg in self._snapshots[: self._current_block]]

    def reset(self) -> None:
        super().reset()
        self._current_block = 0

    def components(self) -> List[Component]:
        return [self._block_ones, *self._snapshots]

    def register_exports(self, register_file: RegisterFile) -> None:
        for i, register in enumerate(self._snapshots):
            register_file.add(
                f"t2_eps_{i + 1}", register.width, (lambda r=register: r.value)
            )
