"""Hardware half of NIST test 3 (Runs).

A run boundary occurs whenever the incoming bit differs from the previous
bit, so the hardware is a single-bit "previous value" register, an XOR and a
runs counter.  The software also needs the total number of ones for this
test (Table II lists both N_ones and N_runs); that value comes from the
shared cusum counter (or the dedicated ones counter when sharing is off), so
this unit exports only N_runs.
"""

from __future__ import annotations

from typing import List

from repro.hwsim.components import Component, Counter, Register
from repro.hwsim.register_file import RegisterFile
from repro.hwtests.base import HardwareTestUnit
from repro.hwtests.parameters import DesignParameters, counter_width

__all__ = ["RunsHW"]


class RunsHW(HardwareTestUnit):
    """Runs counter: previous-bit register + counter incremented on changes."""

    test_number = 3
    display_name = "Runs Test"

    def __init__(self, params: DesignParameters):
        self.params = params
        self._runs = Counter("t3_runs", counter_width(params.n))
        self._previous = Register("t3_prev_bit", 1)
        self._started = False

    def process_bit(self, bit: int, index: int) -> None:
        if not self._started:
            # The first bit always opens the first run.
            self._runs.increment()
            self._started = True
        elif bit != self._previous.value:
            self._runs.increment()
        self._previous.load(bit)

    @property
    def runs(self) -> int:
        """Total number of runs observed so far."""
        return self._runs.value

    def reset(self) -> None:
        super().reset()
        self._started = False

    def components(self) -> List[Component]:
        return [self._runs, self._previous]

    def register_exports(self, register_file: RegisterFile) -> None:
        register_file.add("t3_n_runs", self._runs.width, lambda: self._runs.value)
