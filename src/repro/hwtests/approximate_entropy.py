"""Hardware half of NIST test 12 (Approximate Entropy).

The approximate-entropy test with block length m = 3 needs exactly the cyclic
3-bit and 4-bit pattern counts that the serial test (m = 4) already
maintains.  The paper's third sharing trick therefore gives this test a
zero-area hardware implementation whenever the serial test is present: this
unit simply references the serial unit's counter banks.

A standalone mode (own banks) exists for the sharing-ablation benchmark and
for hypothetical configurations that include test 12 without test 11.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hwsim.components import Component, PatternCounterBank, Register, ShiftRegister
from repro.hwsim.register_file import RegisterFile
from repro.hwtests.base import HardwareTestUnit
from repro.hwtests.parameters import DesignParameters, counter_width
from repro.hwtests.serial import SerialHW

__all__ = ["ApproximateEntropyHW"]


class ApproximateEntropyHW(HardwareTestUnit):
    """Approximate-entropy hardware: shared with the serial test when possible."""

    test_number = 12
    display_name = "Approximate Entropy Test"

    def __init__(
        self,
        params: DesignParameters,
        serial_unit: Optional[SerialHW] = None,
        shift_register: Optional[ShiftRegister] = None,
    ):
        self.params = params
        self.m = params.serial_m - 1  # ApEn block length (3 when serial m = 4)
        self._serial_unit = serial_unit
        if serial_unit is not None:
            # Unified implementation: no hardware of its own.
            self._banks = {}
            self._shift_register = None
            self._head_bits = None
            self._owns_shift_register = False
        else:
            width = counter_width(params.n)
            self._banks = {
                length: PatternCounterBank(f"t12_bank{length}", length, width)
                for length in (self.m, self.m + 1)
            }
            self._owns_shift_register = shift_register is None
            self._shift_register = shift_register or ShiftRegister(
                "t12_window", self.m + 1
            )
            self._head_bits = Register("t12_head_bits", self.m)
        self._bits_seen = 0
        self._finalized = False

    @property
    def shares_serial_counters(self) -> bool:
        """True when this unit reuses the serial test's banks (zero own area)."""
        return self._serial_unit is not None

    # -- per-clock behaviour ---------------------------------------------------
    def process_bit(self, bit: int, index: int) -> None:
        if self.shares_serial_counters:
            return  # the serial unit does all the work
        if self._owns_shift_register:
            self._shift_register.shift_in(bit)
        if self._bits_seen < self.m:
            current = self._head_bits.value
            self._head_bits.load((current << 1) | bit)
        self._bits_seen += 1
        self._record_windows()

    def _record_windows(self) -> None:
        for length, bank in self._banks.items():
            if self._bits_seen >= length and self._recorded(bank) < self.params.n:
                bank.record(self._shift_register.value & ((1 << length) - 1))

    @staticmethod
    def _recorded(bank: PatternCounterBank) -> int:
        return sum(counter.value for counter in bank.counters)

    def finalize(self) -> None:
        if self.shares_serial_counters or self._finalized:
            return
        head = self._head_bits.value
        head_length = min(self.m, self._bits_seen)
        for i in range(head_length):
            bit = (head >> (head_length - 1 - i)) & 1
            self._shift_register.shift_in(bit)
            self._bits_seen += 1
            self._record_windows()
        self._finalized = True

    # -- exported values ----------------------------------------------------------
    def pattern_counts(self, length: int) -> List[int]:
        """Cyclic pattern counts for ``length`` in {m, m+1}."""
        if self.shares_serial_counters:
            return self._serial_unit.pattern_counts(length)
        if length not in self._banks:
            raise ValueError(f"no counter bank for pattern length {length}")
        return self._banks[length].counts()

    def reset(self) -> None:
        super().reset()
        self._bits_seen = 0
        self._finalized = False

    def components(self) -> List[Component]:
        if self.shares_serial_counters:
            return []
        owned: List[Component] = [self._head_bits]
        if self._owns_shift_register:
            owned.append(self._shift_register)
        owned.extend(self._banks.values())
        return owned

    def register_exports(self, register_file: RegisterFile) -> None:
        if self.shares_serial_counters:
            # The serial unit already exports the shared counters.
            return
        for length in sorted(self._banks, reverse=True):
            bank = self._banks[length]
            for value, counter in enumerate(bank.counters):
                register_file.add(
                    f"t12_nu{length}_{value:0{length}b}",
                    counter.width,
                    (lambda c=counter: c.value),
                )
