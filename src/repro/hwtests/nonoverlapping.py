"""Hardware half of NIST test 7 (Non-overlapping Template Matching).

The incoming bits pass through a 9-bit shift register (shared with the
overlapping test and the serial window when sharing trick 4 is on); an
equality comparator detects the template.  Matches are counted per block into
the W_i counters of Table II.  The non-overlapping scanning rule — after a
match the window restarts rather than sliding — is implemented with a small
skip counter that ignores the next m−1 positions after each match.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hwsim.components import (
    Component,
    Counter,
    EqualityComparator,
    ShiftRegister,
)
from repro.hwsim.register_file import RegisterFile
from repro.hwtests.base import HardwareTestUnit
from repro.hwtests.parameters import DesignParameters, counter_width

__all__ = ["NonOverlappingTemplateHW"]


class NonOverlappingTemplateHW(HardwareTestUnit):
    """Template detector with per-block non-overlapping match counters."""

    test_number = 7
    display_name = "Non-overlapping Template Matching Test"

    def __init__(
        self,
        params: DesignParameters,
        shift_register: Optional[ShiftRegister] = None,
    ):
        self.params = params
        self.template = params.nonoverlapping_template
        self.template_length = params.template_length
        self.num_blocks = params.nonoverlapping_num_blocks
        self.block_length = params.nonoverlapping_block_length
        if self.block_length < self.template_length:
            raise ValueError("block shorter than the template")
        self._owns_shift_register = shift_register is None
        self._shift_register = shift_register or ShiftRegister(
            "t7_shift_register", self.template_length
        )
        if self._shift_register.width < self.template_length:
            raise ValueError("shared shift register narrower than the template")
        template_value = 0
        for bit in self.template:
            template_value = (template_value << 1) | int(bit)
        self._comparator = EqualityComparator(
            "t7_template_cmp", self.template_length, template_value
        )
        # Worst case: a match every m bits.
        match_width = counter_width(self.block_length // self.template_length + 1)
        self._block_counters = [
            Counter(f"t7_w_{i + 1}", match_width) for i in range(self.num_blocks)
        ]
        self._skip = Counter("t7_skip", counter_width(self.template_length))
        self._current_block = 0

    # -- per-clock behaviour -------------------------------------------------
    def process_bit(self, bit: int, index: int) -> None:
        if self._owns_shift_register:
            self._shift_register.shift_in(bit)
        position_in_block = index % self.block_length
        if position_in_block == 0 and index > 0:
            # New block: restart the scan (matches never straddle blocks).
            self._skip.clear()
        self._current_block = min(index // self.block_length, self.num_blocks - 1)
        if self._skip.value > 0:
            self._decrement_skip()
            return
        window_complete = position_in_block >= self.template_length - 1
        if window_complete and self._matches():
            self._block_counters[self._current_block].increment()
            # Ignore the next m-1 positions (the window restarts after a match).
            for _ in range(self.template_length - 1):
                self._skip.increment()

    def _decrement_skip(self) -> None:
        # Down-count by clearing and re-counting (models a small down counter).
        remaining = self._skip.value - 1
        self._skip.clear()
        for _ in range(remaining):
            self._skip.increment()

    def _matches(self) -> bool:
        window = self._shift_register.value & ((1 << self.template_length) - 1)
        return self._shift_register.full and self._comparator.matches(window)

    # -- exported values -------------------------------------------------------
    @property
    def block_counts(self) -> List[int]:
        """Current W_i values (non-overlapping matches per block)."""
        return [counter.value for counter in self._block_counters]

    def reset(self) -> None:
        super().reset()
        if not self._owns_shift_register:
            # The shared register is reset by its owner (the unified block).
            pass
        self._current_block = 0

    def components(self) -> List[Component]:
        owned: List[Component] = []
        if self._owns_shift_register:
            owned.append(self._shift_register)
        owned.extend([self._comparator, self._skip, *self._block_counters])
        return owned

    def register_exports(self, register_file: RegisterFile) -> None:
        for i, counter in enumerate(self._block_counters):
            register_file.add(
                f"t7_w_{i + 1}", counter.width, (lambda c=counter: c.value)
            )
