"""Hardware half of NIST test 11 (Serial) — and, via sharing, test 12.

Maintains cyclic overlapping pattern counts for m-, (m−1)- and (m−2)-bit
patterns (m = 4 in the paper's designs): three banks of 16 + 8 + 4 counters,
exactly the ν values listed for the serial test in Table II.  The
approximate-entropy test reuses the 4-bit and 3-bit banks (sharing trick 3),
so :class:`repro.hwtests.approximate_entropy.ApproximateEntropyHW` owns no
counters of its own when instantiated alongside this unit.

The NIST definition counts patterns over the sequence extended cyclically by
its first m−1 bits.  On-the-fly hardware achieves this by saving the first
m−1 input bits in a small register and replaying them through the window
after the last input bit — that replay is the only end-of-sequence step in
the whole testing block and is modelled by :meth:`finalize`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hwsim.components import Component, PatternCounterBank, Register, ShiftRegister
from repro.hwsim.register_file import RegisterFile
from repro.hwtests.base import HardwareTestUnit
from repro.hwtests.parameters import DesignParameters, counter_width

__all__ = ["SerialHW"]


class SerialHW(HardwareTestUnit):
    """Cyclic pattern counter banks for m-, (m−1)- and (m−2)-bit patterns."""

    test_number = 11
    display_name = "Serial Test"

    def __init__(
        self,
        params: DesignParameters,
        shift_register: Optional[ShiftRegister] = None,
    ):
        self.params = params
        self.m = params.serial_m
        if params.n < (1 << self.m):
            raise ValueError("sequence too short for the configured pattern length")
        # Pattern counters are sized for the worst case (a constant input
        # makes a single pattern appear n times), so that overflow cannot
        # masquerade as healthy counts precisely when the source has failed.
        width = counter_width(params.n)
        self._banks = {
            length: PatternCounterBank(f"t11_bank{length}", length, width)
            for length in (self.m, self.m - 1, self.m - 2)
            if length >= 1
        }
        self._owns_shift_register = shift_register is None
        # The window only needs m bits; when a wider shared register is
        # available (the 9-bit template register), its low m bits are used.
        self._shift_register = shift_register or ShiftRegister(
            "t11_window", self.m
        )
        if self._shift_register.width < self.m:
            raise ValueError("shared shift register narrower than the serial window")
        # Storage for the first m-1 bits, replayed at the end of the sequence
        # to realise the cyclic extension.
        self._head_bits = Register("t11_head_bits", self.m - 1)
        self._bits_seen = 0
        self._finalized = False

    # -- window bookkeeping ---------------------------------------------------
    def _window_value(self, length: int) -> int:
        """The most recent ``length`` bits as an MSB-first integer."""
        return self._shift_register.value & ((1 << length) - 1)

    def _record_windows(self, total_bits: int) -> None:
        """Record the current window into every bank whose warm-up is done and
        which has not yet reached its n-window budget."""
        for length, bank in self._banks.items():
            if total_bits >= length and self._recorded(bank) < self.params.n:
                bank.record(self._window_value(length))

    @staticmethod
    def _recorded(bank: PatternCounterBank) -> int:
        return sum(counter.value for counter in bank.counters)

    # -- per-clock behaviour ----------------------------------------------------
    def process_bit(self, bit: int, index: int) -> None:
        if self._owns_shift_register:
            self._shift_register.shift_in(bit)
        if self._bits_seen < self.m - 1:
            # Save the sequence head for the cyclic wrap-around replay.
            current = self._head_bits.value
            self._head_bits.load((current << 1) | bit)
        self._bits_seen += 1
        self._record_windows(self._bits_seen)

    def finalize(self) -> None:
        """Replay the first m−1 bits to complete the cyclic pattern counts."""
        if self._finalized:
            return
        head = self._head_bits.value
        head_length = min(self.m - 1, self._bits_seen)
        for i in range(head_length):
            bit = (head >> (head_length - 1 - i)) & 1
            if self._owns_shift_register:
                self._shift_register.shift_in(bit)
            else:
                # The shared register is fed by the unified block during the
                # normal sequence; during the replay this unit drives it.
                self._shift_register.shift_in(bit)
            self._bits_seen += 1
            self._record_windows(self._bits_seen)
        self._finalized = True

    # -- exported values -----------------------------------------------------------
    def pattern_counts(self, length: int) -> List[int]:
        """Current counts of all ``length``-bit patterns (length in {m, m-1, m-2})."""
        if length not in self._banks:
            raise ValueError(f"no counter bank for pattern length {length}")
        return self._banks[length].counts()

    def reset(self) -> None:
        super().reset()
        self._bits_seen = 0
        self._finalized = False

    def components(self) -> List[Component]:
        owned: List[Component] = [self._head_bits]
        if self._owns_shift_register:
            owned.append(self._shift_register)
        owned.extend(self._banks.values())
        return owned

    def register_exports(self, register_file: RegisterFile) -> None:
        for length in sorted(self._banks, reverse=True):
            bank = self._banks[length]
            for value, counter in enumerate(bank.counters):
                register_file.add(
                    f"t11_nu{length}_{value:0{length}b}",
                    counter.width,
                    (lambda c=counter: c.value),
                )
