"""Table I of the paper: which NIST tests are suitable for hardware implementation.

The paper keeps a test in hardware only when its on-the-fly half reduces to
counters, comparators and registers with a small, bounded amount of state and
a small number of values to transfer to software.  This module captures that
classification together with the *reason*, and provides a quantitative
justification helper used by the Table I benchmark: for the suitable tests it
reports the actual number of storage bits the hardware model uses, and for
the unsuitable ones the storage/computation lower bound that disqualifies
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.hwtests.parameters import DesignParameters
from repro.nist.suite import NIST_TEST_NAMES

__all__ = ["SuitabilityEntry", "SUITABILITY_TABLE", "suitability_table"]


@dataclass(frozen=True)
class SuitabilityEntry:
    """One row of Table I."""

    number: int
    name: str
    hw_suitable: bool
    reason: str


#: The classification of Table I with the disqualifying/qualifying reason.
SUITABILITY_TABLE: List[SuitabilityEntry] = [
    SuitabilityEntry(1, NIST_TEST_NAMES[1], True, "single ones counter (or derived from the cusum counter)"),
    SuitabilityEntry(2, NIST_TEST_NAMES[2], True, "one block counter plus N snapshot registers"),
    SuitabilityEntry(3, NIST_TEST_NAMES[3], True, "runs counter plus a 1-bit previous-value register"),
    SuitabilityEntry(4, NIST_TEST_NAMES[4], True, "run-length counter plus K+1 category counters"),
    SuitabilityEntry(5, NIST_TEST_NAMES[5], False, "needs storage of full 32x32 matrices and GF(2) Gaussian elimination"),
    SuitabilityEntry(6, NIST_TEST_NAMES[6], False, "needs an n-point DFT: O(n) storage and multipliers"),
    SuitabilityEntry(7, NIST_TEST_NAMES[7], True, "shared 9-bit shift register, comparator and per-block counters"),
    SuitabilityEntry(8, NIST_TEST_NAMES[8], True, "shared 9-bit shift register, comparator and category counters"),
    SuitabilityEntry(9, NIST_TEST_NAMES[9], False, "needs a 2^L-entry last-occurrence table and per-block logarithms"),
    SuitabilityEntry(10, NIST_TEST_NAMES[10], False, "Berlekamp-Massey needs O(M) storage and O(M^2) updates per block"),
    SuitabilityEntry(11, NIST_TEST_NAMES[11], True, "2^m + 2^(m-1) + 2^(m-2) pattern counters driven by a shared window"),
    SuitabilityEntry(12, NIST_TEST_NAMES[12], True, "reuses the serial test's 3-/4-bit pattern counters (no own hardware)"),
    SuitabilityEntry(13, NIST_TEST_NAMES[13], True, "up/down counter plus max/min capture registers"),
    SuitabilityEntry(14, NIST_TEST_NAMES[14], False, "per-state, per-visit-count bookkeeping across unbounded cycles"),
    SuitabilityEntry(15, NIST_TEST_NAMES[15], False, "needs 18 wide visit counters plus post-processing over the whole walk"),
]


def _hw_state_bits(number: int, params: DesignParameters) -> int:
    """Storage bits the hardware model actually uses for a suitable test."""
    from repro.hwtests.block import UnifiedTestingBlock  # local import to avoid a cycle

    block = UnifiedTestingBlock(params, tests=[number])
    return block.resources().flip_flops


def _storage_lower_bound(number: int, n: int) -> int:
    """Storage (bits) a hardware implementation of an unsuitable test would need."""
    if number == 5:
        return 32 * 32  # one full matrix at a time
    if number == 6:
        return 2 * n  # the ±1 samples (before even counting the butterflies)
    if number == 9:
        L = 6
        return (1 << L) * 20  # last-occurrence table of 2^L entries of ~20 bits
    if number == 10:
        M = 500
        return 2 * M  # the two LFSR connection polynomials of Berlekamp-Massey
    if number == 14:
        return 8 * 6 * 16  # 8 states x 6 visit-count classes x 16-bit counters
    if number == 15:
        return 18 * 24  # 18 states x wide visit counters
    raise ValueError(f"test {number} is HW-suitable; no lower bound defined")


def suitability_table(n: int = 65536) -> List[Dict[str, object]]:
    """Table I rows augmented with a quantitative storage figure.

    For HW-suitable tests the figure is the flip-flop count of the actual
    hardware unit at sequence length ``n``; for unsuitable tests it is the
    storage lower bound that disqualifies them.
    """
    params = DesignParameters.for_length(n)
    rows: List[Dict[str, object]] = []
    for entry in SUITABILITY_TABLE:
        if entry.hw_suitable:
            storage = _hw_state_bits(entry.number, params)
        else:
            storage = _storage_lower_bound(entry.number, n)
        rows.append(
            {
                "test": entry.number,
                "name": entry.name,
                "hw_suitable": entry.hw_suitable,
                "reason": entry.reason,
                "storage_bits": storage,
            }
        )
    return rows
