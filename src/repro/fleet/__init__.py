"""Fleet monitoring: multiplexed many-device health tracking + JSON service.

The paper monitors one TRNG continuously; the ROADMAP's production system
tracks the health of thousands of deployed devices at once.  This subpackage
is that aggregation tier, built on the substrate of PRs 1–3:

* :class:`DeviceRegistry` instantiates N simulated devices from a
  :class:`FleetMix` (e.g. 95% healthy, 5% drawn from the campaign's threat
  catalogue), each a seeded scenario source plus its own
  :class:`~repro.core.monitor.OnTheFlyMonitor` health machine.
* :class:`FleetScheduler` advances the whole fleet in rounds: one sequence
  per device, the entire fleet stacked into a single ``(devices, n)`` uint8
  matrix through :func:`~repro.engine.batch.run_batch` (shared vectorised
  statistics across devices, optional process-pool sharding), verdicts
  folded back into each device's health state.
* :class:`FleetReport` aggregates the operations view — health mix over
  time, per-scenario detection probability and latency percentiles,
  healthy-device false-alarm rate, devices/second — with JSON/CSV export.
* :mod:`repro.fleet.service` puts a stdlib ``http.server`` JSON front-end on
  top: ``POST /devices``, ``POST /ingest``, ``GET /devices/<id>/health``,
  ``GET /fleet/summary`` — with load-shedding (429 + ``Retry-After``),
  payload caps and per-device quarantine; :mod:`repro.fleet.client` is the
  matching retrying client.
* :mod:`repro.fleet.durability` makes the whole thing crash-safe: atomic
  versioned snapshots of the scheduler (registry, health machines, rounds,
  streaming rings) plus a CRC-framed write-ahead ingest journal, replayed
  bit-identically by :func:`recover_fleet` after a crash.
* :mod:`repro.fleet.chaos` proves it: a seeded harness that boots the real
  service, kills it with SIGKILL mid-ingest, injects drop/duplicate/
  reorder/corrupt faults, restores from the spool, and asserts the
  recovered fleet matches an uninterrupted control run verdict for verdict.

Quickstart::

    from repro.fleet import DeviceRegistry, FleetMix, FleetScheduler

    registry = DeviceRegistry("n128_light", alpha=0.01)
    registry.populate(512, FleetMix.healthy_with_threats(0.95), seed=7)
    report = FleetScheduler(registry).run(num_rounds=8)
    print(report.format_table())
    report.save_json("fleet.json")
"""

from repro.fleet.client import FleetClient, FleetServiceError
from repro.fleet.durability import (
    DurableFleet,
    IngestJournal,
    JournalReplayStats,
    recover_fleet,
)
from repro.fleet.registry import Device, DeviceRegistry, FleetMix
from repro.fleet.report import (
    FleetReport,
    FleetRound,
    FleetScenarioStats,
    SUMMARY_COLUMNS,
    build_report,
)
from repro.fleet.scheduler import (
    DuplicateIngestError,
    FleetScheduler,
    FleetVerdict,
    IngestSequenceError,
    IngestSequenceGapError,
)
from repro.fleet.service import FleetService, ServiceError, serve

__all__ = [
    "Device",
    "DeviceRegistry",
    "DuplicateIngestError",
    "DurableFleet",
    "FleetClient",
    "FleetMix",
    "FleetReport",
    "FleetRound",
    "FleetScenarioStats",
    "FleetScheduler",
    "FleetService",
    "FleetServiceError",
    "FleetVerdict",
    "IngestJournal",
    "IngestSequenceError",
    "IngestSequenceGapError",
    "JournalReplayStats",
    "SUMMARY_COLUMNS",
    "ServiceError",
    "build_report",
    "recover_fleet",
    "serve",
]
