"""Fleet durability: crash-safe snapshots, a write-ahead ingest journal.

The fleet's value is its *state* — thousands of health machines, streaming
rings and round counters accumulated over hours of monitoring — and before
this module a crash of the service lost all of it.  The layer here makes
the fleet durable with the classic two-piece recipe:

Snapshots
    :func:`write_snapshot` captures
    :meth:`~repro.fleet.scheduler.FleetScheduler.state_dict` — registry
    device specs (sources pickled with their RNG state), per-device health
    machines, round history, streaming rings — into one versioned JSON
    file, written atomically (tmp file + fsync + rename + directory fsync,
    the :func:`atomic_write_bytes` discipline rule ROB001 enforces across
    ``repro/fleet/``).  A reader never observes a torn snapshot: it sees
    the old file or the new one.

Write-ahead journal
    :class:`IngestJournal` appends one CRC-framed JSON line per mutation
    *before* the mutation is applied: device registrations, sequenced
    ingest chunks, and (write-behind, after completion) round markers.
    Replaying ``snapshot + journal`` after a crash reproduces bit-identical
    fleet state: ingest replay is idempotent through the per-device
    monotonic ``seq`` contract (duplicates and reordered records are
    rejected without effect), and round markers carry their round index so
    rounds already inside the snapshot are skipped.  A torn final record
    (the crash happened mid-append) is detected by its CRC and dropped.

Generations
    Journal segments are numbered ``wal.<generation>.jsonl``.  Every
    checkpoint writes the snapshot (recording the current generation),
    rotates appends to a fresh segment, and prunes segments older than the
    snapshot's — so the spool directory stays bounded while recovery
    always has every record the snapshot might miss.  Records that raced a
    checkpoint land in a retained segment and replay as duplicates, which
    the seq contract absorbs.

:class:`DurableFleet` is the coordinator: it owns the spool directory,
attaches the journal to a scheduler, checkpoints on an interval (and on
demand), and :func:`recover_fleet` rebuilds a scheduler from the spool
after a crash.

Durability model: journal appends are flushed per record (the OS page
cache holds them thereafter), so state survives process death — including
``kill -9``, the chaos harness's weapon of choice.  Surviving a *machine*
crash additionally needs ``fsync_journal=True``, which fsyncs every
appended record at a substantial throughput cost.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import re
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

import repro.obs as obs
from repro.fleet.registry import DeviceRegistry
from repro.nist.common import pack_bits, unpack_bits
from repro.fleet.scheduler import (
    DuplicateIngestError,
    FleetScheduler,
    IngestSequenceGapError,
)

__all__ = [
    "DurableFleet",
    "IngestJournal",
    "JournalReplayStats",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "atomic_write_bytes",
    "atomic_write_json",
    "decode_state",
    "encode_state",
    "has_snapshot",
    "read_journal",
    "read_snapshot",
    "recover_fleet",
    "replay_records",
    "write_snapshot",
]

#: Snapshot file identity; bumped only on incompatible layout changes.
SNAPSHOT_FORMAT = "repro-fleet-snapshot"
SNAPSHOT_VERSION = 1

#: Snapshot file name inside a spool directory.
SNAPSHOT_NAME = "snapshot.json"

#: Journal segment naming: ``wal.<generation>.jsonl``.
_SEGMENT_RE = re.compile(r"^wal\.(\d{8})\.jsonl$")

_SNAPSHOTS = obs.counter(
    "repro_durability_snapshots_total",
    "Fleet snapshots written by the durability layer.",
)
_SNAPSHOT_SECONDS = obs.histogram(
    "repro_durability_snapshot_seconds",
    "Wall time of one fleet snapshot (capture + encode + atomic write).",
)
_SNAPSHOT_BYTES = obs.gauge(
    "repro_durability_snapshot_bytes",
    "Size of the most recently written fleet snapshot file.",
)
_WAL_RECORDS = obs.counter(
    "repro_durability_wal_records_total",
    "Records appended to the write-ahead ingest journal, by record type.",
    labels=("type",),
)
_WAL_REPLAYED = obs.counter(
    "repro_durability_wal_replayed_total",
    "Journal records processed during recovery replay, by outcome.",
    labels=("outcome",),
)
_RECOVERIES = obs.counter(
    "repro_durability_recoveries_total",
    "Fleet recoveries (snapshot restore + journal replay) completed.",
)


# --------------------------------------------------------------------- atomic IO
def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` atomically: tmp + fsync + rename.

    The bytes land in a sibling tmp file, are fsynced, and replace the
    target with ``os.replace`` (atomic on POSIX); the directory entry is
    then fsynced too, so after a crash the target holds either its old
    content or the new one — never a torn mix.  This helper (and its JSON
    wrapper) is the sanctioned persistence path in ``repro/fleet/``; rule
    ROB001 flags bare ``open(..., "w")`` writes that bypass it.
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    handle = open(tmp, "wb")
    try:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    finally:
        handle.close()
    os.replace(tmp, target)
    _fsync_directory(target.parent)


def atomic_write_json(path: Union[str, Path], payload: Dict[str, Any]) -> int:
    """Serialise ``payload`` and write it atomically; returns the byte size."""
    data = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    atomic_write_bytes(path, data)
    return len(data)


def _fsync_directory(directory: Path) -> None:
    """Flush a rename to disk (no-op where directories can't be opened)."""
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(directory, flags)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# --------------------------------------------------------------------- codec
def encode_state(value: Any) -> Any:
    """Recursively encode a state dict into JSON-safe values.

    numpy arrays travel as base64 raw bytes plus dtype and shape (compact
    and bit-exact — the streaming rings are uint64 words), ``bytes`` blobs
    (pickled sources) as base64, numpy scalars as their Python values.
    Tuples become lists; the consumers all tolerate that.
    """
    if isinstance(value, np.ndarray):
        return {
            "__nd__": True,
            "dtype": str(value.dtype),
            "shape": list(value.shape),
            "data": base64.b64encode(np.ascontiguousarray(value).tobytes()).decode(
                "ascii"
            ),
        }
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": True, "data": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {key: encode_state(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_state(item) for item in value]
    return value


def decode_state(value: Any) -> Any:
    """Inverse of :func:`encode_state` (dtype- and shape-exact)."""
    if isinstance(value, dict):
        if value.get("__nd__"):
            raw = base64.b64decode(value["data"])
            array = np.frombuffer(raw, dtype=np.dtype(value["dtype"]))
            return array.reshape(value["shape"]).copy()
        if value.get("__bytes__"):
            return base64.b64decode(value["data"])
        return {key: decode_state(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_state(item) for item in value]
    return value


# --------------------------------------------------------------------- snapshot
def write_snapshot(
    path: Union[str, Path], scheduler: FleetScheduler, wal_generation: int
) -> int:
    """Capture ``scheduler`` into an atomic snapshot file; returns byte size.

    ``wal_generation`` records which journal segment was current at capture
    time: recovery replays every retained segment at or after it.
    """
    with obs.span("durability.snapshot") as span:
        payload = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "wal_generation": int(wal_generation),
            "scheduler": encode_state(scheduler.state_dict()),
        }
        size = atomic_write_json(path, payload)
    _SNAPSHOTS.inc()
    _SNAPSHOT_SECONDS.observe(span.duration_s)
    _SNAPSHOT_BYTES.set(float(size))
    return size


def read_snapshot(path: Union[str, Path]) -> Tuple[Dict[str, Any], int]:
    """Load and decode a snapshot file -> (scheduler state, wal generation)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(f"{path}: not a {SNAPSHOT_FORMAT} file")
    if payload.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"{path}: unsupported snapshot version {payload.get('version')!r} "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    return decode_state(payload["scheduler"]), int(payload["wal_generation"])


def has_snapshot(directory: Union[str, Path]) -> bool:
    """True when ``directory`` holds a restorable snapshot."""
    return (Path(directory) / SNAPSHOT_NAME).is_file()


# --------------------------------------------------------------------- journal
class IngestJournal:
    """Append-only write-ahead journal of fleet mutations.

    One CRC32-framed JSON line per record (``<crc32 hex> <payload>``);
    each append is a single unbuffered ``write()`` so it survives process
    death, and ``fsync=True`` additionally fsyncs each record for
    machine-crash durability.  Appends are thread-safe, and an append racing
    :meth:`close` (a request in flight while a checkpoint rotates
    segments) transparently reopens the file in append mode — the record
    lands in the retained old segment and replays as an absorbable
    duplicate.
    """

    def __init__(self, path: Union[str, Path], fsync: bool = False):
        self.path = Path(path)
        self.fsync = bool(fsync)
        self._lock = threading.Lock()
        self._closed = False
        # Unbuffered binary append: one write() syscall per record puts the
        # frame in the page cache immediately (kill -9 durable) without the
        # text layer's encode-buffer-flush round trip on the ingest path.
        self._handle = open(self.path, "ab", buffering=0)

    def append_ingest(
        self, device_id: str, bits: np.ndarray, seq: Optional[int] = None
    ) -> None:
        """Journal one ingest chunk (called *before* the chunk is applied).

        Bits travel packed (8 per byte) and base64-framed: a journaled
        chunk costs ~bits/6 bytes on disk instead of one byte per bit.
        """
        arr = np.ascontiguousarray(bits, dtype=np.uint8)
        self._append(
            {
                "t": "ingest",
                "device": device_id,
                "seq": seq,
                "nbits": int(arr.size),
                "bits": base64.b64encode(pack_bits(arr).tobytes()).decode("ascii"),
            }
        )

    def append_device(
        self,
        device_id: str,
        scenario: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        """Journal one device registration (call *before* registering)."""
        self._append(
            {"t": "device", "device": device_id, "scenario": scenario, "seed": seed}
        )

    def append_round(self, index: int) -> None:
        """Journal one completed round (write-behind; replay reruns it)."""
        self._append({"t": "round", "index": int(index)})

    def _append(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":")).encode("utf-8")
        frame = b"%08x " % zlib.crc32(line) + line + b"\n"
        with self._lock:
            if self._closed:
                self._handle = open(self.path, "ab", buffering=0)
                self._closed = False
            self._handle.write(frame)
            if self.fsync:
                os.fsync(self._handle.fileno())
        _WAL_RECORDS.inc(type=str(record["t"]))

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._handle.close()
                self._closed = True

    def __enter__(self) -> "IngestJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_journal(path: Union[str, Path]) -> Tuple[List[Dict[str, Any]], bool]:
    """Parse one journal segment -> (records, torn_tail).

    Reading stops at the first record whose CRC frame does not verify —
    by construction that is a torn tail from a crash mid-append (records
    are framed per line, so nothing after a torn line can be trusted to
    align).  ``torn_tail`` reports whether anything was dropped.
    """
    records: List[Dict[str, Any]] = []
    torn = False
    with open(path, "r", encoding="utf-8") as handle:
        raw = handle.read()
    for line in raw.split("\n"):
        if not line:
            continue
        frame = line.split(" ", 1)
        if len(frame) != 2:
            torn = True
            break
        crc_text, payload = frame
        try:
            crc = int(crc_text, 16)
        except ValueError:
            torn = True
            break
        if zlib.crc32(payload.encode("utf-8")) != crc:
            torn = True
            break
        try:
            record = json.loads(payload)
        except json.JSONDecodeError:
            torn = True
            break
        records.append(record)
    return records, torn


# --------------------------------------------------------------------- replay
@dataclass
class JournalReplayStats:
    """Outcome counts of one recovery replay (the recovery report body)."""

    applied: int = 0
    duplicates: int = 0
    gaps: int = 0
    rounds_applied: int = 0
    rounds_skipped: int = 0
    devices_registered: int = 0
    devices_existing: int = 0
    errors: int = 0
    torn_segments: int = 0
    segments: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "applied": self.applied,
            "duplicates": self.duplicates,
            "gaps": self.gaps,
            "rounds_applied": self.rounds_applied,
            "rounds_skipped": self.rounds_skipped,
            "devices_registered": self.devices_registered,
            "devices_existing": self.devices_existing,
            "errors": self.errors,
            "torn_segments": self.torn_segments,
            "segments": list(self.segments),
        }


def replay_records(
    scheduler: FleetScheduler,
    records: List[Dict[str, Any]],
    stats: Optional[JournalReplayStats] = None,
) -> JournalReplayStats:
    """Re-apply journal records to a restored scheduler, idempotently.

    Ingest records re-run through the sequenced ingest path: chunks the
    snapshot already contains come back as duplicates and are skipped
    without effect, so replaying an overlap (records appended just before
    the snapshot's capture) converges on the same state.  Round markers
    rerun :meth:`~repro.fleet.scheduler.FleetScheduler.run_round` only for
    rounds beyond the snapshot's history — the restored sources carry
    their RNG state, so a replayed round is bit-identical to the one the
    crash interrupted.  The scheduler's journal must not be attached yet
    (replayed mutations would be re-journaled).
    """
    stats = stats if stats is not None else JournalReplayStats()
    for record in records:
        kind = record.get("t")
        if kind == "round":
            if int(record["index"]) < len(scheduler.rounds):
                stats.rounds_skipped += 1
                _WAL_REPLAYED.inc(outcome="round_skipped")
            else:
                scheduler.run_round()
                stats.rounds_applied += 1
                _WAL_REPLAYED.inc(outcome="round_applied")
        elif kind == "device":
            device_id = record["device"]
            with scheduler.lock:
                if device_id in scheduler.registry:
                    stats.devices_existing += 1
                    _WAL_REPLAYED.inc(outcome="device_existing")
                else:
                    try:
                        scheduler.registry.register(
                            device_id,
                            scenario=record.get("scenario"),
                            seed=record.get("seed"),
                        )
                    except ValueError:
                        # Journaled write-ahead of a registration that then
                        # failed validation; it never existed, skip it.
                        stats.errors += 1
                        _WAL_REPLAYED.inc(outcome="error")
                    else:
                        stats.devices_registered += 1
                        _WAL_REPLAYED.inc(outcome="device_registered")
        elif kind == "ingest":
            bits = unpack_bits(
                base64.b64decode(record["bits"]), count=int(record["nbits"])
            )
            try:
                scheduler.ingest(record["device"], bits, seq=record.get("seq"))
                stats.applied += 1
                _WAL_REPLAYED.inc(outcome="applied")
            except DuplicateIngestError:
                stats.duplicates += 1
                _WAL_REPLAYED.inc(outcome="duplicate")
            except IngestSequenceGapError:
                stats.gaps += 1
                _WAL_REPLAYED.inc(outcome="gap")
            except (KeyError, ValueError):
                # A malformed chunk was journaled ahead of its validation
                # failure; it had no effect then and has none now.
                stats.errors += 1
                _WAL_REPLAYED.inc(outcome="error")
        else:
            stats.errors += 1
            _WAL_REPLAYED.inc(outcome="unknown")
    return stats


def _segment_generations(directory: Path) -> List[int]:
    """Sorted generations of the journal segments present in ``directory``."""
    generations = []
    for entry in directory.iterdir():
        match = _SEGMENT_RE.match(entry.name)
        if match:
            generations.append(int(match.group(1)))
    return sorted(generations)


def _segment_path(directory: Path, generation: int) -> Path:
    return directory / f"wal.{generation:08d}.jsonl"


def recover_fleet(
    directory: Union[str, Path],
    processes: Optional[int] = None,
    min_shard_devices: int = 256,
    catalog: Optional[object] = None,
) -> Tuple[FleetScheduler, JournalReplayStats]:
    """Rebuild a fleet from a spool directory: snapshot restore + replay.

    Restores the snapshot into a fresh registry + scheduler, then replays
    every retained journal segment at or after the snapshot's generation,
    in order.  Returns the recovered scheduler and the replay statistics;
    attach a :class:`DurableFleet` afterwards to resume journaling and
    snapshotting (its first checkpoint folds the replayed journal into a
    fresh snapshot).
    """
    spool = Path(directory)
    snapshot_path = spool / SNAPSHOT_NAME
    if not snapshot_path.is_file():
        raise FileNotFoundError(f"no fleet snapshot at {snapshot_path}")
    state, wal_generation = read_snapshot(snapshot_path)
    registry = DeviceRegistry.from_state(state["registry"], catalog=catalog)  # type: ignore[arg-type]
    scheduler = FleetScheduler(
        registry,
        processes=processes,
        min_shard_devices=min_shard_devices,
        backend=state["backend"],
        streaming=state["streaming"],
    )
    scheduler.load_state(state)
    stats = JournalReplayStats()
    for generation in _segment_generations(spool):
        if generation < wal_generation:
            continue
        segment = _segment_path(spool, generation)
        records, torn = read_journal(segment)
        stats.segments.append(segment.name)
        if torn:
            stats.torn_segments += 1
        replay_records(scheduler, records, stats)
    _RECOVERIES.inc()
    return scheduler, stats


# --------------------------------------------------------------------- coordinator
class DurableFleet:
    """Owns one spool directory: journal rotation + interval snapshots.

    Attaching a ``DurableFleet`` to a scheduler wires the scheduler's
    journal (round markers; the service front-end journals ingests and
    registrations through the same object) and starts checkpointing:

    * :meth:`checkpoint` — atomically snapshot the fleet, rotate the
      journal to a fresh generation, prune segments older than the
      snapshot's.  Called on an interval (``snapshot_interval_s``), on
      demand, and by :meth:`close` (the SIGTERM path).
    * :func:`recover_fleet` — the crash-side counterpart.

    The caller owns scheduler shutdown; ``close()`` only detaches and
    stops the durability machinery.
    """

    def __init__(
        self,
        scheduler: FleetScheduler,
        directory: Union[str, Path],
        snapshot_interval_s: Optional[float] = None,
        fsync_journal: bool = False,
    ):
        if snapshot_interval_s is not None and snapshot_interval_s <= 0:
            raise ValueError("snapshot_interval_s must be positive (or None)")
        self.scheduler = scheduler
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_interval_s = snapshot_interval_s
        self.fsync_journal = bool(fsync_journal)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        existing = _segment_generations(self.directory)
        self.generation = (existing[-1] + 1) if existing else 0
        self.journal = IngestJournal(
            _segment_path(self.directory, self.generation), fsync=self.fsync_journal
        )
        with scheduler.lock:
            scheduler.journal = self.journal

    @property
    def snapshot_path(self) -> Path:
        return self.directory / SNAPSHOT_NAME

    def start(self) -> None:
        """Write an initial checkpoint and begin interval snapshotting."""
        self.checkpoint()
        if self.snapshot_interval_s is not None and self._thread is None:
            thread = threading.Thread(
                target=self._snapshot_loop, name="fleet-snapshots", daemon=True
            )
            with self._lock:
                self._thread = thread
            thread.start()

    def _snapshot_loop(self) -> None:
        interval = self.snapshot_interval_s
        assert interval is not None
        while not self._stop.wait(interval):
            self.checkpoint()

    def checkpoint(self) -> Path:
        """Snapshot now; rotate the journal; prune stale segments."""
        with self._lock:
            generation = self.generation
            write_snapshot(self.snapshot_path, self.scheduler, generation)
            # Rotate: new appends go to the next generation.  The segment
            # the snapshot covers is retained one more cycle, so an append
            # that raced the capture is still on disk for replay (the seq
            # contract absorbs it as a duplicate if it made the snapshot).
            next_generation = generation + 1
            journal = IngestJournal(
                _segment_path(self.directory, next_generation),
                fsync=self.fsync_journal,
            )
            with self.scheduler.lock:
                self.scheduler.journal = journal
            old = self.journal
            self.journal = journal
            self.generation = next_generation
            old.close()
            for stale in _segment_generations(self.directory):
                if stale < generation:
                    _segment_path(self.directory, stale).unlink(missing_ok=True)
            return self.snapshot_path

    def close(self, final_snapshot: bool = True) -> None:
        """Stop interval snapshotting; optionally write a final checkpoint."""
        self._stop.set()
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None:
            thread.join()
        if final_snapshot:
            self.checkpoint()
        with self.scheduler.lock:
            self.scheduler.journal = None
        self.journal.close()

    def __enter__(self) -> "DurableFleet":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
