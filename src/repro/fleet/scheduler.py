"""Fleet scheduler: the whole fleet through the batch engine, round by round.

A naive port of :class:`~repro.core.monitor.OnTheFlyMonitor` to a fleet runs
one platform evaluation per device per round — thousands of per-sequence
hardware-model passes, none of which share any work.  The scheduler
multiplexes instead: each round it pulls **one** n-bit sequence per device,
stacks the fleet into a single ``(num_devices, n)`` uint8 matrix and pushes
it through :func:`repro.engine.batch.run_batch`, whose
:class:`~repro.engine.context.BatchContext` computes the shared statistics
of the design's test subset in single vectorised 2-D passes over the whole
fleet.  The per-device verdicts then fold back into each device's
health-state machine exactly as per-device monitoring would.

For large fleets the round matrix can additionally shard over a process pool
(``processes > 1``): each worker evaluates a contiguous device shard with the
same engine path and returns reduced verdicts, so only booleans and test
numbers cross the process boundary.

``benchmarks/bench_fleet.py`` pins the speedup: the multiplexed round must
stay >= 5x faster than the naive per-device loop at a 512-device fleet.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

import numpy as np

import repro.obs as obs
from repro.core.monitor import MonitorEvent
from repro.engine.batch import EngineReport, run_batch
from repro.engine.context import DEFAULT_BACKEND, validate_backend
from repro.engine.packed import PackedMatrix, pack_matrix
from repro.engine.registry import NIST_NUMBER_TO_ID
from repro.engine.streaming import StreamingBatchContext, StreamingContext
from repro.fleet.registry import Device, DeviceRegistry
from repro.fleet.report import FleetReport, FleetRound, build_report
from repro.nist.common import BitsLike, to_bits

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (durability imports us)
    from repro.fleet.durability import IngestJournal

__all__ = [
    "DuplicateIngestError",
    "FleetScheduler",
    "FleetVerdict",
    "IngestSequenceError",
    "IngestSequenceGapError",
]

#: Canonical registry id -> NIST test number (for verdict attribution).
_ID_TO_NIST_NUMBER = {test_id: number for number, test_id in NIST_NUMBER_TO_ID.items()}

_ROUND_SECONDS = obs.histogram(
    "repro_fleet_round_latency_seconds",
    "Wall time of one multiplexed fleet round (generate + evaluate + fold).",
)
_DEVICES_PER_S = obs.gauge(
    "repro_fleet_devices_per_second",
    "Device throughput of the most recent fleet round.",
)
_INGEST_BITS = obs.counter(
    "repro_fleet_ingest_bits_total",
    "Raw bits submitted through FleetScheduler.ingest (the service path).",
)
_HEALTH_TRANSITIONS = obs.counter(
    "repro_fleet_health_transitions_total",
    "Device health-state machine transitions, by (from, to) state pair.",
    labels=("from_state", "to_state"),
)
_INGEST_REJECTED = obs.counter(
    "repro_fleet_ingest_rejected_total",
    "Idempotency rejections on the sequenced ingest path, by reason.",
    labels=("reason",),
)


class IngestSequenceError(ValueError):
    """A sequenced ingest was rejected by the per-device monotonic contract.

    Sequenced ingest (``FleetScheduler.ingest(..., seq=...)``) requires each
    device's sequence numbers to arrive strictly in order (``last + 1``);
    this is what makes ingest idempotent, so clients can retry and the
    durability layer can replay its write-ahead journal without double-
    applying any chunk.
    """

    def __init__(self, device_id: str, seq: int, last_seq: int, message: str):
        super().__init__(message)
        self.device_id = device_id
        self.seq = seq
        self.last_seq = last_seq


class DuplicateIngestError(IngestSequenceError):
    """The chunk was already applied (``seq <= last``); safe to ignore."""

    def __init__(self, device_id: str, seq: int, last_seq: int):
        super().__init__(
            device_id,
            seq,
            last_seq,
            f"device {device_id!r} already applied ingest seq {seq} "
            f"(last applied seq is {last_seq})",
        )


class IngestSequenceGapError(IngestSequenceError):
    """The chunk arrived out of order (``seq > last + 1``); resend in order."""

    def __init__(self, device_id: str, seq: int, last_seq: int):
        super().__init__(
            device_id,
            seq,
            last_seq,
            f"device {device_id!r} expected ingest seq {last_seq + 1}, "
            f"got {seq} (chunks must arrive in order)",
        )


def _count_transitions(
    transitions: Dict[Tuple[str, str], int], before: str, after: str
) -> None:
    """Accumulate one health transition locally (one inc per pair later)."""
    key = (before, after)
    transitions[key] = transitions.get(key, 0) + 1


def _flush_transitions(transitions: Dict[Tuple[str, str], int]) -> None:
    """One counter inc per observed (from, to) pair, not per device."""
    for (before, after), count in transitions.items():
        _HEALTH_TRANSITIONS.inc(count, from_state=before, to_state=after)


@dataclass(frozen=True)
class FleetVerdict:
    """Reduced per-sequence verdict fed into a device's health machine.

    Duck-typed to what :meth:`~repro.core.monitor.OnTheFlyMonitor.observe`
    reads off a :class:`~repro.core.results.PlatformReport` — ``passed`` and
    ``failing_tests`` (NIST numbers) — plus the engine's error strings, and
    nothing heavier, so verdicts cross process boundaries cheaply.
    """

    passed: bool
    failing_tests: Tuple[int, ...]
    errors: Tuple[str, ...] = ()


def _reduce_report(report: EngineReport, alpha: float) -> FleetVerdict:
    """Collapse one engine report to the verdict the health machine needs."""
    failing = sorted(
        _ID_TO_NIST_NUMBER.get(test_id, -1) for test_id in report.failing_tests(alpha)
    )
    return FleetVerdict(
        passed=report.passed(alpha) and not report.errors,
        failing_tests=tuple(failing),
        errors=tuple(sorted(report.errors.values())),
    )


@dataclass
class _IngestStream:
    """Per-device ingest state (the service path's serialisation point).

    ``lock`` serialises ingests for one device (chunk order defines the
    stream, and the monotonic ``seq`` contract needs a total per-device
    order) without ever holding the fleet lock across an engine
    evaluation.  In streaming mode ``context`` is the device's packed ring
    and ``pending`` counts the bits of the next, not yet complete, n-bit
    sequence sitting in it; in matrix mode both stay empty and the entry
    only carries the lock and the idempotency high-water mark
    ``last_seq``.
    """

    lock: threading.Lock
    context: Optional[StreamingContext] = None
    pending: int = 0
    last_seq: Optional[int] = None


def _shard_worker(payload) -> Tuple[List[FleetVerdict], Dict[str, str]]:
    """Evaluate one device shard in a worker process.

    The shard travels as raw bytes (+ shape) and comes back as reduced
    verdicts plus the shard's per-test execution paths; tests resolve
    against the worker's own default registry, like
    :func:`~repro.engine.batch.run_batch`'s fallback pool workers.
    On the packed backend the bytes are the shard's 64-bit words — 1/8th
    the serialisation traffic of the uint8 representation.
    """
    raw, rows, n, tests, alpha, backend = payload
    if backend == "packed":
        num_words = (n + 63) // 64
        words = np.frombuffer(raw, dtype="<u8").reshape(rows, num_words)
        shard = PackedMatrix(words, n)
    else:
        shard = np.frombuffer(raw, dtype=np.uint8).reshape(rows, n)
    reports = run_batch(shard, tests=list(tests), backend=backend)
    paths: Dict[str, str] = {}
    for report in reports:
        paths.update(report.execution_paths)
    return [_reduce_report(report, alpha) for report in reports], paths


class FleetScheduler:
    """Advances a whole device fleet in multiplexed engine rounds.

    Parameters
    ----------
    registry:
        The populated :class:`~repro.fleet.registry.DeviceRegistry`; the
        scheduler evaluates with the registry's shared design point (test
        subset, sequence length) and alpha.
    processes:
        When > 1, each round's fleet matrix is sharded over a process pool of
        that size (one contiguous device shard per worker).
    min_shard_devices:
        Sharding is skipped for rounds smaller than this — below it, the
        pool's serialisation overhead dominates the vectorised evaluation.
    backend:
        Compute backend of the engine's shared statistics: ``"packed"``
        (default) packs each round's fleet matrix into 64-bit words once
        and evaluates it on the popcount kernels of
        :mod:`repro.engine.packed`; ``"uint8"`` keeps the byte-per-bit
        reference paths.  Verdicts are bit-identical either way; the choice
        is recorded in :attr:`FleetReport.backend
        <repro.fleet.report.FleetReport.backend>`.
    streaming:
        Keep per-shard streaming state instead of rebuilding matrices.
        Rounds push the fleet's new words into one long-lived
        :class:`~repro.engine.streaming.StreamingBatchContext` (one packed
        ring per device) and evaluate the preseeded rolled window; ingest
        keeps a per-device :class:`~repro.engine.streaming.StreamingContext`
        and accepts *arbitrary* chunk sizes — partial sequences pend in the
        device's ring (see :meth:`pending_bits`) instead of being rejected.
        Verdicts are bit-identical to the matrix path.  Streaming rounds
        always evaluate inline (the rings are process-local state, so
        pool sharding does not apply).
    """

    def __init__(
        self,
        registry: DeviceRegistry,
        processes: Optional[int] = None,
        min_shard_devices: int = 256,
        backend: str = DEFAULT_BACKEND,
        streaming: bool = False,
    ):
        if processes is not None and processes < 1:
            raise ValueError("processes must be positive (or None)")
        self.registry = registry
        self.processes = processes
        self.min_shard_devices = min_shard_devices
        self.backend = validate_backend(backend)
        self.streaming = bool(streaming)
        # Round-path fleet ring (built on first streaming round, rebuilt only
        # when the device count changes) and per-device ingest streams.
        self._round_stream: Optional[StreamingBatchContext] = None
        self._ingest_streams: Dict[str, "_IngestStream"] = {}
        # Guards the ingest-entry dict alone (add-only membership), so
        # state_dict() can enumerate entries *before* taking their locks —
        # the entry-locks-then-fleet-lock order every ingest follows.
        self._streams_lock = threading.Lock()
        #: Write-ahead journal attached by the durability layer
        #: (:class:`repro.fleet.durability.DurableFleet`); when set,
        #: completed rounds append replay markers to it.  ``None`` while no
        #: durability spool is configured (and during journal replay, so
        #: replayed rounds are not re-journaled).
        self.journal: Optional["IngestJournal"] = None
        self.rounds: List[FleetRound] = []
        #: Canonical test id -> execution path ("batched" / "inline" /
        #: "pooled") observed on the most recent evaluations; surfaced in
        #: :attr:`FleetReport.execution_paths
        #: <repro.fleet.report.FleetReport.execution_paths>` to prove the
        #: heavy tests ran pool-free on the batch kernels.
        self.execution_paths: Dict[str, str] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False
        # Guards lazy pool creation/shutdown: ingest evaluation runs outside
        # the fleet lock, so two large requests (or a request racing close())
        # may reach the pool concurrently.
        self._pool_lock = threading.Lock()
        #: Serialises fleet mutations (rounds, ingest, registration) between
        #: the scheduler's owner and the HTTP service threads; re-entrant so
        #: the service can call locked scheduler methods under it.
        self.lock = threading.RLock()

    # ------------------------------------------------------------- evaluation
    def _fold_paths(self, paths: Dict[str, str]) -> None:
        """Merge observed per-test execution paths under the fleet lock.

        ``evaluate_matrix`` runs outside the lock on the ingest path, so
        two service threads (or a request racing ``report()``'s snapshot
        iteration) would otherwise mutate and read the dict concurrently.
        The lock is re-entrant, so the locked ``run_round`` path folds
        through here unchanged.
        """
        with self.lock:
            self.execution_paths.update(paths)

    def _fold_reports(self, reports: List[EngineReport], alpha: float) -> List[FleetVerdict]:
        """Reduce engine reports to verdicts, folding their execution paths."""
        paths: Dict[str, str] = {}
        for report in reports:
            paths.update(report.execution_paths)
        self._fold_paths(paths)
        return [_reduce_report(report, alpha) for report in reports]

    def evaluate_matrix(
        self, matrix: Union[np.ndarray, PackedMatrix]
    ) -> List[FleetVerdict]:
        """One fleet matrix through the engine.

        ``matrix`` is a ``(devices, n)`` uint8 matrix or a prepacked
        :class:`~repro.engine.packed.PackedMatrix`; on the packed backend a
        uint8 input is packed once here, so every downstream consumer —
        inline evaluation, pool shards, the engine's kernels — reads the
        64-bit words instead of re-deriving them.  Shards over the process
        pool when configured and the round is large enough; the inline and
        sharded paths produce identical verdicts (asserted in
        ``tests/test_fleet.py``).
        """
        # Normalise the container to the backend so the inline, shard-encode
        # and shard-decode paths all agree on the byte layout.
        if self.backend == "packed" and not isinstance(matrix, PackedMatrix):
            matrix = pack_matrix(matrix, keep_source=True)
        elif self.backend == "uint8" and isinstance(matrix, PackedMatrix):
            matrix = matrix.unpack()
        rows = matrix.num_rows if isinstance(matrix, PackedMatrix) else matrix.shape[0]
        n = matrix.n if isinstance(matrix, PackedMatrix) else matrix.shape[1]
        tests = self.registry.tests
        alpha = self.registry.alpha
        pooled = (
            self.processes is not None
            and self.processes > 1
            and rows >= self.min_shard_devices
        )
        if not pooled:
            reports = run_batch(matrix, tests=list(tests), backend=self.backend)
            return self._fold_reports(reports, alpha)
        shards = [s for s in np.array_split(np.arange(rows), self.processes) if len(s)]
        # On the packed backend the shards ship as 64-bit words: 1/8th the
        # bytes across the pool pipe.
        shard_rows = matrix.words if isinstance(matrix, PackedMatrix) else matrix
        payloads = [
            (
                np.ascontiguousarray(shard_rows[shard]).tobytes(),
                len(shard),
                n,
                tests,
                alpha,
                self.backend,
            )
            for shard in shards
        ]
        # The pool is created lazily and reused across rounds: spawning
        # workers (and re-importing numpy + repro in them) per round would
        # cost more than the sharding saves.  After close() no new pool is
        # ever spawned (a late request would leak its workers); the rare
        # request racing shutdown falls back to inline evaluation instead.
        with self._pool_lock:
            if self._closed:
                pool = None
            else:
                if self._pool is None:
                    self._pool = ProcessPoolExecutor(max_workers=self.processes)
                pool = self._pool
        if pool is None:
            reports = run_batch(matrix, tests=list(tests), backend=self.backend)
            return self._fold_reports(reports, alpha)
        verdicts: List[FleetVerdict] = []
        paths: Dict[str, str] = {}
        for shard_verdicts, shard_paths in pool.map(_shard_worker, payloads):
            verdicts.extend(shard_verdicts)
            paths.update(shard_paths)
        self._fold_paths(paths)
        return verdicts

    def _round_stream_verdicts(self, matrix: np.ndarray) -> List[FleetVerdict]:
        """Streaming round path: push new words, evaluate the rolled window.

        The fleet ring lives across rounds (rebuilt only when the device
        count changes); each round is one vectorised push of the fleet's
        new words, and the engine runs on the preseeded window context —
        the round matrix is never re-packed or re-scanned.  Always inline:
        the rings are process-local state, so pool sharding does not apply.
        """
        rows, n = matrix.shape
        with self.lock:
            if self._round_stream is None or self._round_stream.num_rows != rows:
                self._round_stream = StreamingBatchContext(rows, n, backend=self.backend)
            stream = self._round_stream
        stream.push(matrix)
        reports = run_batch(stream.window_context(), tests=list(self.registry.tests))
        return self._fold_reports(reports, self.registry.alpha)

    # ------------------------------------------------------------- rounds
    def run_round(self) -> FleetRound:
        """Advance every simulated device by one sequence.

        Pulls one n-bit block per device (continuing each device's own
        stream — staged attacks and aging trajectories unfold across
        rounds), evaluates the stacked fleet matrix through the engine and
        folds each verdict into its device's health machine.  In
        ``streaming`` mode the fleet matrix is pushed into the long-lived
        fleet ring and the rolled window is evaluated instead (identical
        verdicts).
        """
        with self.lock:
            devices = self.registry.simulated_devices()
            if not devices:
                raise ValueError(
                    "no simulated devices registered; populate() the fleet first"
                )
            n = self.registry.n
            # The root span is also the round timer: its duration feeds both
            # FleetRound.elapsed_s and the latency histogram (spans always
            # measure, even with recording disabled — see repro.obs.tracing).
            with obs.trace(
                "fleet.run_round", devices=len(devices), streaming=self.streaming
            ) as root:
                with obs.span("generate"):
                    matrix = np.empty((len(devices), n), dtype=np.uint8)
                    for row, device in enumerate(devices):
                        matrix[row] = device.source.generate_block(n)
                with obs.span("evaluate"):
                    if self.streaming:
                        verdicts = self._round_stream_verdicts(matrix)
                    else:
                        verdicts = self.evaluate_matrix(matrix)
                with obs.span("fold"):
                    failing = 0
                    transitions: Dict[Tuple[str, str], int] = {}
                    for device, verdict in zip(devices, verdicts):
                        before = device.monitor.state.value
                        event = device.monitor.observe(verdict)
                        _count_transitions(transitions, before, event.state.value)
                        if not event.report.passed:
                            failing += 1
                    _flush_transitions(transitions)
            elapsed = root.duration_s
            _ROUND_SECONDS.observe(elapsed)
            _DEVICES_PER_S.set(len(devices) / elapsed if elapsed > 0 else 0.0)
            fleet_round = FleetRound(
                index=len(self.rounds),
                health=self.registry.health_counts(),
                devices=len(devices),
                failing_sequences=failing,
                elapsed_s=elapsed,
            )
            self.rounds.append(fleet_round)
            # Write-behind round marker: journaled only after the round's
            # effects are complete, so a crash mid-round replays nothing.
            # The index makes replay idempotent — a marker whose round is
            # already inside the restored snapshot is skipped.
            journal = self.journal
            if journal is not None:
                journal.append_round(fleet_round.index)
            return fleet_round

    def run(self, num_rounds: int) -> FleetReport:
        """Run ``num_rounds`` fleet rounds and build the aggregate report."""
        if num_rounds < 1:
            raise ValueError("num_rounds must be positive")
        for _ in range(num_rounds):
            self.run_round()
        return self.report()

    # ------------------------------------------------------------- ingest
    def ingest(
        self, device_id: str, bits: BitsLike, *, seq: Optional[int] = None
    ) -> List[MonitorEvent]:
        """Evaluate raw bits for one registered device (the service path).

        ``bits`` is anything :func:`~repro.nist.common.to_bits` accepts.  In
        the default matrix mode it must hold a positive multiple of the
        design's sequence length; each n-bit sequence is evaluated through
        the engine and folded into the device's health machine in order.
        In ``streaming`` mode *any* positive number of bits is accepted:
        chunks append to the device's packed ring, a window is evaluated
        whenever n new bits have accumulated, and a trailing partial
        sequence simply pends in the ring (:meth:`pending_bits`) until the
        next chunk completes it — the device's stream is never rebuilt.

        ``seq`` opts the chunk into the idempotent sequenced contract: per
        device, sequence numbers must arrive strictly in order.  A replayed
        or retried chunk (``seq <= last``) raises
        :class:`DuplicateIngestError` *without* re-applying anything, an
        out-of-order chunk (``seq > last + 1``) raises
        :class:`IngestSequenceGapError` without applying it, and the
        sequence number commits only after the chunk's effects are fully
        folded — which is what lets clients retry blindly and the
        durability layer replay its write-ahead journal after a crash.

        Only the health-machine fold takes the fleet lock: the engine
        evaluation itself is pure compute over the submitted bits (the
        design's test subset and alpha are immutable registry config), so a
        large ingest never stalls concurrent service reads or scheduler
        rounds while the statistics run.  Chunks for one device serialise
        on that device's own entry lock instead (chunk order defines the
        stream and the seq order).
        """
        device = self.registry.get(device_id)
        arr = to_bits(bits)
        _INGEST_BITS.inc(arr.size)
        n = self.registry.n
        entry = self._ingest_entry(device_id)
        with entry.lock:
            self._check_seq(entry, device_id, seq)
            # Write-ahead: journal the accepted chunk before applying it,
            # inside the entry lock so per-device journal order matches
            # apply order (replay depends on that for the seq contract).
            # During recovery replay the journal is still detached, so
            # replayed chunks are not re-journaled.
            journal = self.journal
            if journal is not None:
                journal.append_ingest(device_id, arr, seq=seq)
            verdicts: List[FleetVerdict]
            if self.streaming:
                if arr.size == 0:
                    raise ValueError("streaming ingest needs at least one bit")
                context = entry.context
                assert context is not None  # streaming entries always carry a ring
                verdicts = []
                offset = 0
                while offset < arr.size:
                    take = min(n - entry.pending, arr.size - offset)
                    context.push(arr[offset : offset + take])
                    offset += take
                    entry.pending += take
                    if entry.pending == n:
                        reports = run_batch(
                            context.window_context(),
                            tests=list(self.registry.tests),
                        )
                        verdicts.extend(
                            self._fold_reports(reports, self.registry.alpha)
                        )
                        entry.pending = 0
            else:
                if arr.size == 0 or arr.size % n != 0:
                    raise ValueError(
                        f"ingest needs a positive multiple of {n} bits "
                        f"(the {self.registry.design_name} sequence length), "
                        f"got {arr.size}"
                    )
                verdicts = self.evaluate_matrix(arr.reshape(-1, n))
            with self.lock:
                events = self._observe_all(device, verdicts)
            # Commit the idempotency high-water mark only after the fold:
            # a chunk that failed validation or evaluation stays unapplied
            # and must be resendable under the same seq.
            if seq is not None:
                entry.last_seq = seq
            return events

    @staticmethod
    def _check_seq(
        entry: _IngestStream, device_id: str, seq: Optional[int]
    ) -> None:
        """Enforce the strictly-in-order per-device seq contract (if opted in)."""
        if seq is None:
            return
        if seq < 0:
            raise ValueError("ingest seq must be non-negative")
        last = entry.last_seq
        if last is None:
            return
        if seq <= last:
            _INGEST_REJECTED.inc(reason="duplicate")
            raise DuplicateIngestError(device_id, seq, last)
        if seq != last + 1:
            _INGEST_REJECTED.inc(reason="gap")
            raise IngestSequenceGapError(device_id, seq, last)

    def last_ingest_seq(self, device_id: str) -> Optional[int]:
        """The device's last applied sequenced-ingest number (None if none)."""
        self.registry.get(device_id)
        with self._streams_lock:
            entry = self._ingest_streams.get(device_id)
        if entry is None:
            return None
        with entry.lock:
            return entry.last_seq

    def _observe_all(
        self, device: Device, verdicts: List[FleetVerdict]
    ) -> List[MonitorEvent]:
        """Fold ingest verdicts into one device's health machine, counted.

        Callers hold the fleet lock.  Transitions accumulate locally and
        flush as one counter inc per observed (from, to) pair.
        """
        events: List[MonitorEvent] = []
        transitions: Dict[Tuple[str, str], int] = {}
        for verdict in verdicts:
            before = device.monitor.state.value
            event = device.monitor.observe(verdict)
            _count_transitions(transitions, before, event.state.value)
            events.append(event)
        _flush_transitions(transitions)
        return events

    def _ingest_entry(self, device_id: str) -> _IngestStream:
        """The device's ingest entry, created on first use (add-only)."""
        with self._streams_lock:
            entry = self._ingest_streams.get(device_id)
            if entry is None:
                entry = _IngestStream(
                    lock=threading.Lock(),
                    context=(
                        StreamingContext(self.registry.n, backend=self.backend)
                        if self.streaming
                        else None
                    ),
                )
                self._ingest_streams[device_id] = entry
            return entry

    def pending_bits(self, device_id: str) -> int:
        """Bits of the device's next sequence pending in its ingest ring.

        Always 0 outside streaming mode (partial sequences are rejected
        there) and for devices that have not streamed yet.
        """
        self.registry.get(device_id)
        with self._streams_lock:
            entry = self._ingest_streams.get(device_id)
        if entry is None:
            return 0
        with entry.lock:
            return entry.pending

    # ------------------------------------------------------------- state dict
    def state_dict(self) -> Dict[str, Any]:
        """The whole fleet's durable state as plain values.

        Covers the registry's device specs and health machines (sources
        pickled with their RNG state — see
        :meth:`~repro.fleet.registry.DeviceRegistry.state_dict` for the
        trust caveat), the round history, the execution-path record, the
        round-path fleet ring and every device's ingest entry (ring,
        pending bits, idempotency high-water mark).

        The capture is crash-consistent: locks are taken in the same order
        every ingest uses (device entry locks first, then the fleet lock),
        so any concurrent ingest either commits *all* its effects before
        the capture or contributes none of them — exactly the property the
        write-ahead journal replay relies on.
        """
        while True:
            with self._streams_lock:
                entries = sorted(self._ingest_streams.items())
            for _, entry in entries:
                entry.lock.acquire()
            self.lock.acquire()
            with self._streams_lock:
                if len(self._ingest_streams) == len(entries):
                    break
            # A device ingested for the first time mid-capture; retry so
            # its entry is held too (entry creation is add-only).
            self.lock.release()
            for _, entry in entries:
                entry.lock.release()
        try:
            streams: Dict[str, Any] = {}
            for device_id, entry in entries:
                streams[device_id] = {
                    "pending": entry.pending,
                    "last_seq": entry.last_seq,
                    "context": (
                        None if entry.context is None else entry.context.state_dict()
                    ),
                }
            return {
                "version": 1,
                "backend": self.backend,
                "streaming": self.streaming,
                "registry": self.registry.state_dict(),
                "rounds": [fleet_round.to_dict() for fleet_round in self.rounds],
                "execution_paths": dict(self.execution_paths),
                "round_stream": (
                    None
                    if self._round_stream is None
                    else self._round_stream.state_dict()
                ),
                "ingest_streams": streams,
            }
        finally:
            self.lock.release()
            for _, entry in entries:
                entry.lock.release()

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` capture into this scheduler.

        The backend and streaming mode must match the capture (they shape
        the per-device state), and the registry configuration is validated
        by :meth:`~repro.fleet.registry.DeviceRegistry.load_state`.  After
        the restore, subsequent rounds and sequenced ingests are
        bit-identical to the uninterrupted run.
        """
        if state.get("version") != 1:
            raise ValueError(
                f"unsupported fleet state version {state.get('version')!r}"
            )
        for key, expected in (("backend", self.backend), ("streaming", self.streaming)):
            if state[key] != expected:
                raise ValueError(
                    f"fleet state mismatch: {key} is {state[key]!r}, "
                    f"this scheduler has {expected!r}"
                )
        with self.lock:
            self.registry.load_state(state["registry"])
            self.rounds = [
                FleetRound.from_dict(entry) for entry in state["rounds"]
            ]
            self.execution_paths = dict(state["execution_paths"])
            round_stream = state["round_stream"]
            self._round_stream = (
                None
                if round_stream is None
                else StreamingBatchContext.from_state(round_stream)
            )
        with self._streams_lock:
            self._ingest_streams.clear()
            for device_id, spec in state["ingest_streams"].items():
                context_state = spec["context"]
                self._ingest_streams[device_id] = _IngestStream(
                    lock=threading.Lock(),
                    context=(
                        None
                        if context_state is None
                        else StreamingContext.from_state(context_state)
                    ),
                    pending=int(spec["pending"]),
                    last_seq=spec["last_seq"],
                )

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down the sharding pool; later rounds/ingests run inline.

        Waits for in-flight shard maps, so an ingest racing shutdown
        completes instead of failing mid-evaluation, and marks the
        scheduler closed so no request can respawn a pool nothing would
        ever shut down.
        """
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "FleetScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- reporting
    def report(self) -> FleetReport:
        """Aggregate the fleet's current state into a :class:`FleetReport`."""
        with self.lock:
            return build_report(
                self.registry,
                self.rounds,
                backend=self.backend,
                execution_paths=dict(self.execution_paths),
                streaming=self.streaming,
            )
