"""Device registry: many simulated TRNG devices behind one health ledger.

The paper's platform monitors *one* TRNG; a production deployment tracks
thousands.  :class:`DeviceRegistry` is the fleet-side ledger: every
:class:`Device` couples a seeded scenario source (built from the campaign's
:class:`~repro.campaign.scenarios.ScenarioCatalog`) with its own
:class:`~repro.core.monitor.OnTheFlyMonitor` health-state machine, while the
platform (design point, alpha, health policy) is shared fleet-wide — one
design, many devices, exactly like a rollout of identical parts.

The composition of a fleet is a :class:`FleetMix`: an ordered scenario →
weight mapping (e.g. 95% ``healthy-ideal``, 5% spread over threat labels)
resolved into exact per-scenario device counts by largest remainder and
placed deterministically from the fleet seed, so two fleets built from the
same spec are device-for-device identical.

Devices may also be registered *without* a simulated source
(``scenario=None``): those are externally-fed devices whose bits arrive
through the service front-end's ``POST /ingest`` instead of the scheduler's
simulated rounds.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.campaign.scenarios import DEFAULT_CATALOG, ScenarioCatalog
from repro.core.configs import DesignPoint, get_design
from repro.core.monitor import HealthState, OnTheFlyMonitor
from repro.core.platform import OnTheFlyPlatform
from repro.trng.source import EntropySource

__all__ = ["Device", "DeviceRegistry", "FleetMix"]


def _device_seed(base: int, device_id: str) -> int:
    """Deterministic per-device seed for a given (fleet seed, device id).

    Note the id embeds :meth:`DeviceRegistry.populate`'s zero-pad width, so
    streams are stable per *id* (``"dev-0042"``), not per device index across
    differently-sized fleets.
    """
    return zlib.crc32(f"{base}:{device_id}".encode())


@dataclass(frozen=True)
class FleetMix:
    """Scenario mix of a fleet: ordered catalogue label → weight.

    Weights are relative (they need not sum to one); :meth:`counts` resolves
    them into exact per-scenario device counts by largest remainder, so a
    1000-device fleet at ``healthy-ideal: 0.95`` really holds 950 healthy
    devices.
    """

    weights: Tuple[Tuple[str, float], ...]

    def __post_init__(self):
        if not self.weights:
            raise ValueError("a fleet mix needs at least one scenario")
        seen = set()
        for label, weight in self.weights:
            if weight <= 0:
                raise ValueError(f"scenario {label!r} has non-positive weight {weight}")
            if label in seen:
                raise ValueError(f"scenario {label!r} listed twice in the mix")
            seen.add(label)

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(label for label, _ in self.weights)

    @classmethod
    def parse(cls, spec: str) -> "FleetMix":
        """Parse a ``label:weight,label:weight`` CLI spec."""
        weights = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            label, sep, raw = part.rpartition(":")
            if not sep or not label:
                raise ValueError(
                    f"bad mix entry {part!r}; expected <scenario-label>:<weight>"
                )
            try:
                weight = float(raw)
            except ValueError:
                raise ValueError(f"bad mix weight {raw!r} for scenario {label!r}")
            weights.append((label.strip(), weight))
        return cls(tuple(weights))

    @classmethod
    def healthy_with_threats(
        cls,
        healthy_fraction: float = 0.95,
        threats: Sequence[str] = ("wire-cut", "biased-0.60", "freq-injection", "aging-drift"),
        healthy_label: str = "healthy-ideal",
    ) -> "FleetMix":
        """The canonical deployment mix: mostly healthy, a sliver of threats
        split evenly over ``threats``."""
        if not 0.0 < healthy_fraction < 1.0:
            raise ValueError("healthy_fraction must lie in (0, 1)")
        if not threats:
            raise ValueError("need at least one threat label")
        share = (1.0 - healthy_fraction) / len(threats)
        return cls(
            ((healthy_label, healthy_fraction),)
            + tuple((label, share) for label in threats)
        )

    def counts(self, num_devices: int) -> Dict[str, int]:
        """Exact per-scenario device counts (largest-remainder apportionment).

        Every scenario in the mix gets at least the floor of its share; the
        leftover devices go to the largest fractional remainders, ties broken
        by mix order.  The counts always sum to ``num_devices``.
        """
        if num_devices < 1:
            raise ValueError("num_devices must be positive")
        total = sum(weight for _, weight in self.weights)
        shares = [(label, num_devices * weight / total) for label, weight in self.weights]
        counts = {label: int(share) for label, share in shares}
        leftover = num_devices - sum(counts.values())
        remainders = sorted(
            ((share - int(share), -index, label) for index, (label, share) in enumerate(shares)),
            reverse=True,
        )
        for _, _, label in remainders[:leftover]:
            counts[label] += 1
        return counts

    def to_dict(self) -> Dict[str, float]:
        return {label: weight for label, weight in self.weights}

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "FleetMix":
        return cls(tuple(data.items()))


@dataclass
class Device:
    """One fleet member: identity, scenario, stream and health machine.

    ``source`` is None for externally-fed devices (registered through the
    service): they take part in health tracking and summaries but are skipped
    by the scheduler's simulated rounds.
    """

    device_id: str
    scenario: Optional[str]
    category: str
    expected_detectable: bool
    source: Optional[EntropySource]
    monitor: OnTheFlyMonitor
    seed: Optional[int] = None

    @property
    def state(self) -> HealthState:
        return self.monitor.state

    @property
    def is_control(self) -> bool:
        """True when this device's alarms count as false alarms."""
        return not self.expected_detectable

    @property
    def simulated(self) -> bool:
        return self.source is not None

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready health snapshot (the ``GET /devices/<id>/health`` body)."""
        monitor = self.monitor
        return {
            "device_id": self.device_id,
            "scenario": self.scenario,
            "category": self.category,
            "expected_detectable": self.expected_detectable,
            "simulated": self.simulated,
            "state": monitor.state.value,
            "sequences_monitored": monitor.sequences_monitored,
            "failure_rate": monitor.failure_rate(),
            "first_suspect_index": monitor.first_suspect_index,
            "first_failed_index": monitor.first_failed_index,
            "detection_latency_sequences": monitor.detection_latency_sequences(),
            "first_failing_tests": list(monitor.first_failing_tests or ()),
        }


class DeviceRegistry:
    """The fleet's device ledger over one shared design point.

    Parameters
    ----------
    design:
        Design point (name or :class:`~repro.core.configs.DesignPoint`)
        shared by every device — a fleet of identical deployed parts.
    alpha:
        Level of significance of the per-sequence verdicts.
    suspect_after / fail_after:
        Health policy of every device's monitor (consecutive failing
        sequences until SUSPECT / FAILED).
    catalog:
        Scenario catalogue the mix labels resolve against (default: the
        campaign's :data:`~repro.campaign.scenarios.DEFAULT_CATALOG`).
    max_history:
        Per-device monitor history bound; the default of 1 keeps a
        thousands-strong fleet in constant memory (aggregate statistics stay
        exact — see :class:`~repro.core.monitor.OnTheFlyMonitor`).
    """

    def __init__(
        self,
        design: "DesignPoint | str" = "n128_light",
        alpha: float = 0.01,
        suspect_after: int = 1,
        fail_after: int = 2,
        catalog: Optional[ScenarioCatalog] = None,
        max_history: Optional[int] = 1,
    ):
        self.platform = OnTheFlyPlatform(design, alpha=alpha)
        self.alpha = alpha
        self.suspect_after = suspect_after
        self.fail_after = fail_after
        self.catalog = catalog if catalog is not None else DEFAULT_CATALOG
        self.max_history = max_history
        self.seed: Optional[int] = None
        self._devices: Dict[str, Device] = {}

    # ------------------------------------------------------------------ info
    @property
    def n(self) -> int:
        """Sequence length of the fleet's shared design point."""
        return self.platform.n

    @property
    def design_name(self) -> str:
        return self.platform.design.name

    @property
    def tests(self) -> Tuple[int, ...]:
        """NIST test numbers of the fleet's shared design point."""
        return tuple(self.platform.tests)

    def __len__(self) -> int:
        return len(self._devices)

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._devices

    def __iter__(self) -> Iterator[Device]:
        return iter(self._devices.values())

    def get(self, device_id: str) -> Device:
        if device_id not in self._devices:
            raise KeyError(f"unknown device {device_id!r}")
        return self._devices[device_id]

    def device_ids(self) -> Tuple[str, ...]:
        return tuple(self._devices)

    def simulated_devices(self) -> List[Device]:
        """Devices with a simulated source (the scheduler's round members)."""
        return [device for device in self if device.simulated]

    # ------------------------------------------------------------------ build
    def _new_monitor(self) -> OnTheFlyMonitor:
        return OnTheFlyMonitor(
            self.platform,
            suspect_after=self.suspect_after,
            fail_after=self.fail_after,
            max_history=self.max_history,
        )

    def register(
        self,
        device_id: str,
        scenario: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> Device:
        """Register one device.

        With a ``scenario`` label the device gets a fresh seeded source built
        from the catalogue (scaled to the design's sequence length); without
        one it is externally fed (bits arrive via the service's ingest).
        """
        if device_id in self._devices:
            raise ValueError(f"device {device_id!r} already registered")
        if scenario is not None:
            spec = self.catalog.get(scenario)
            base = self.seed if self.seed is not None else 0
            source_seed = seed if seed is not None else _device_seed(base, device_id)
            device = Device(
                device_id=device_id,
                scenario=spec.label,
                category=spec.category,
                expected_detectable=spec.expected_detectable,
                source=spec.build(source_seed, self.n),
                monitor=self._new_monitor(),
                seed=source_seed,
            )
        else:
            device = Device(
                device_id=device_id,
                scenario=None,
                category="external",
                expected_detectable=True,
                source=None,
                monitor=self._new_monitor(),
                seed=None,
            )
        self._devices[device_id] = device
        return device

    def populate(self, num_devices: int, mix: FleetMix, seed: int = 0) -> List[Device]:
        """Instantiate ``num_devices`` simulated devices from a scenario mix.

        The mix is resolved into exact counts (:meth:`FleetMix.counts`) and
        the scenario placement is shuffled with a generator seeded from the
        fleet seed, so device ids don't cluster by scenario yet the whole
        fleet is reproducible device for device.
        """
        counts = mix.counts(num_devices)
        for label in counts:
            self.catalog.get(label)  # fail fast on unknown labels
        assignment: List[str] = []
        for label, count in counts.items():
            assignment.extend([label] * count)
        rng = np.random.default_rng(seed)
        rng.shuffle(assignment)
        self.seed = seed
        width = max(4, len(str(num_devices - 1)))
        devices = []
        for index, label in enumerate(assignment):
            device_id = f"dev-{index:0{width}d}"
            devices.append(
                self.register(
                    device_id, scenario=label, seed=_device_seed(seed, device_id)
                )
            )
        return devices

    # ------------------------------------------------------------------ state dict
    def state_dict(self) -> Dict[str, Any]:
        """The fleet ledger as plain values (the snapshot's registry part).

        Device sources are pickled whole — a source *is* its RNG state, and
        restoring it bit-exactly is what makes replayed rounds reproduce
        the uninterrupted run.  Pickles are bytes blobs inside the state;
        only load snapshots you wrote yourself (unpickling executes code),
        which is the trust model of a service restoring its own spool
        directory.
        """
        devices: List[Dict[str, Any]] = []
        for device in self:
            devices.append(
                {
                    "device_id": device.device_id,
                    "scenario": device.scenario,
                    "category": device.category,
                    "expected_detectable": device.expected_detectable,
                    "seed": device.seed,
                    "monitor": device.monitor.state_dict(),
                    "source_pickle": (
                        None
                        if device.source is None
                        else pickle.dumps(device.source, protocol=pickle.DEFAULT_PROTOCOL)
                    ),
                }
            )
        return {
            "version": 1,
            "design": self.design_name,
            "alpha": self.alpha,
            "suspect_after": self.suspect_after,
            "fail_after": self.fail_after,
            "max_history": self.max_history,
            "seed": self.seed,
            "devices": devices,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` capture into this registry.

        The platform configuration (design point, alpha, health policy)
        must match the captured one; the current device ledger is replaced
        wholesale.  See :meth:`state_dict` for the pickled-source trust
        caveat.
        """
        if state.get("version") != 1:
            raise ValueError(
                f"unsupported registry state version {state.get('version')!r}"
            )
        for key, expected in (
            ("design", self.design_name),
            ("alpha", self.alpha),
            ("suspect_after", self.suspect_after),
            ("fail_after", self.fail_after),
            ("max_history", self.max_history),
        ):
            if state[key] != expected:
                raise ValueError(
                    f"registry state mismatch: {key} is {state[key]!r}, "
                    f"this registry has {expected!r}"
                )
        self.seed = state["seed"]
        self._devices = {}
        for spec in state["devices"]:
            monitor = self._new_monitor()
            monitor.load_state(spec["monitor"])
            blob = spec["source_pickle"]
            source = None if blob is None else pickle.loads(blob)
            device = Device(
                device_id=spec["device_id"],
                scenario=spec["scenario"],
                category=spec["category"],
                expected_detectable=bool(spec["expected_detectable"]),
                source=source,
                monitor=monitor,
                seed=spec["seed"],
            )
            self._devices[device.device_id] = device

    @classmethod
    def from_state(
        cls, state: Dict[str, Any], catalog: Optional[ScenarioCatalog] = None
    ) -> "DeviceRegistry":
        """Build a registry (config + devices) from a :meth:`state_dict` capture."""
        registry = cls(
            state["design"],
            alpha=state["alpha"],
            suspect_after=state["suspect_after"],
            fail_after=state["fail_after"],
            catalog=catalog,
            max_history=state["max_history"],
        )
        registry.load_state(state)
        return registry

    # ------------------------------------------------------------------ health
    def health_counts(self) -> Dict[str, int]:
        """Fleet health mix: state value → number of devices."""
        counts = {state.value: 0 for state in HealthState}
        for device in self:
            counts[device.state.value] += 1
        return counts

    def scenario_counts(self) -> Dict[str, int]:
        """Devices per scenario label (externally-fed devices as ``None``)."""
        counts: Dict[str, int] = {}
        for device in self:
            key = device.scenario if device.scenario is not None else "external"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def reset_health(self) -> None:
        """Reset every device's monitor (sources keep streaming)."""
        for device in self:
            device.monitor.reset()
