"""Stdlib HTTP/JSON front-end over a fleet: ingest, health, summary.

The thin service tier the ROADMAP's production system puts in front of the
engine — deliberately ``http.server``-based so the repository gains a real
network-facing API without a single new dependency.  Endpoints:

``POST /devices``
    Register a device.  Body ``{"device_id": "...", "scenario": "<label>"}``;
    omit ``scenario`` to register an externally-fed device whose bits arrive
    only through ingest.
``POST /ingest``
    Evaluate raw bits for a registered device.  Body ``{"device_id": "...",
    "bits": "0101..."}`` where ``bits`` is an ASCII 0/1 string holding a
    positive multiple of the design's sequence length; every n-bit sequence
    runs through the engine's batch path and folds into the device's health
    machine.  Responds with the per-sequence verdicts and the new state.
    On a streaming scheduler the multiple-of-n restriction is lifted: any
    chunk size is accepted, windows are evaluated from the device's packed
    ring as they complete, and the response's ``pending_bits`` reports the
    partial sequence still waiting in the ring.
``GET /devices/<id>/health``
    Health snapshot of one device.
``GET /fleet/summary``
    Fleet-wide summary: health mix, scenario mix, throughput, the
    per-scenario detection table of :class:`~repro.fleet.report.FleetReport`.
``GET /metrics``
    The process-wide :mod:`repro.obs` registry in Prometheus text
    exposition format 0.0.4 (round latency histogram, bits counters,
    execution-path and health-transition counters, request metrics, ...).
``GET /metrics.json``
    The same registry as a structured JSON snapshot.

Requests are logged through the ``repro.fleet.service`` :mod:`logging`
logger — one INFO line per request with method, path, status and latency —
instead of ``http.server``'s raw stderr lines (the CLI's ``fleet serve``
wires a handler; ``--quiet`` drops it to warnings only).

The server is a :class:`~http.server.ThreadingHTTPServer` (daemon threads,
one per connection), and lock holds are bounded: requests take the
scheduler's re-entrant lock — the same lock
:meth:`~repro.fleet.scheduler.FleetScheduler.run_round` holds — only around
the registry/health mutations and snapshots, never around engine evaluation
or response serialisation.  A slow ``GET /fleet/summary`` (large fleet, slow
client) therefore no longer blocks a concurrent ``POST /ingest`` on another
connection, and vice versa (pinned by the two-connection e2e test in
``tests/test_fleet_service.py``).
"""

from __future__ import annotations

import json
import logging
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Sequence, Tuple
from urllib.parse import unquote, urlsplit

import repro.obs as obs
from repro.fleet.registry import DeviceRegistry
from repro.fleet.scheduler import (
    DuplicateIngestError,
    FleetScheduler,
    IngestSequenceGapError,
)

__all__ = ["FleetService", "ServiceError", "serve"]

#: Per-request log lines (INFO) and raw ``http.server`` chatter (DEBUG)
#: both flow through here; unconfigured, nothing reaches stderr.
logger = logging.getLogger("repro.fleet.service")

#: Content type of the Prometheus text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_REQUESTS = obs.counter(
    "repro_service_requests_total",
    "HTTP requests served by the fleet service, by method, route and status.",
    labels=("method", "route", "status"),
)
_REQUEST_SECONDS = obs.histogram(
    "repro_service_request_seconds",
    "Wall time of one fleet-service request (dispatch through response body).",
    labels=("method",),
)
_INGEST_SHED = obs.counter(
    "repro_service_ingest_shed_total",
    "Ingest requests load-shed by the service, by reason (backpressure/draining).",
    labels=("reason",),
)
_QUARANTINED = obs.counter(
    "repro_service_quarantined_total",
    "Devices quarantined by the service after repeated malformed ingests.",
)

#: Known route templates, so the request counter's cardinality stays fixed
#: no matter what paths clients probe.
_ROUTES = (
    (re.compile(r"^/metrics$"), "/metrics"),
    (re.compile(r"^/metrics\.json$"), "/metrics.json"),
    (re.compile(r"^/fleet/summary$"), "/fleet/summary"),
    (re.compile(r"^/devices/[^/]+/health$"), "/devices/<id>/health"),
    (re.compile(r"^/devices$"), "/devices"),
    (re.compile(r"^/ingest$"), "/ingest"),
)


def _route_label(path: str) -> str:
    """The route template of ``path`` (``<unknown>`` off the route table)."""
    clean = urlsplit(path).path.rstrip("/") or "/"
    for pattern, label in _ROUTES:
        if pattern.match(clean):
            return label
    return "<unknown>"

#: Cap on accepted request bodies (a 2^20-bit design ingest is ~1 MiB of
#: ASCII bits; anything far beyond that is a client error, not traffic).
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Service-registered device ids must be URL-safe so ``GET
#: /devices/<id>/health`` can always address them (a "/" or space in the id
#: would make the device unreachable through the path-segment router).
_DEVICE_ID_RE = re.compile(r"^[A-Za-z0-9._~-]+$")


class ServiceError(Exception):
    """An error with an HTTP status code attached.

    ``retry_after`` (seconds) surfaces as a ``Retry-After`` header — the
    backpressure contract of the 429 load-shedding path, which well-behaved
    clients (:class:`~repro.fleet.client.FleetClient`) honour before
    retrying.
    """

    def __init__(self, status: int, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


class FleetService:
    """The service facade: JSON dict in, JSON dict out, no HTTP types.

    Keeping the endpoint logic free of ``http.server`` machinery makes it
    unit-testable without sockets; the handler below is a thin shell.
    """

    def __init__(
        self,
        scheduler: FleetScheduler,
        *,
        max_body_bytes: int = MAX_BODY_BYTES,
        max_inflight_ingests: Optional[int] = None,
        retry_after_s: float = 1.0,
        quarantine_after: Optional[int] = None,
    ):
        if max_body_bytes <= 0:
            raise ValueError("max_body_bytes must be positive")
        if max_inflight_ingests is not None and max_inflight_ingests < 0:
            raise ValueError("max_inflight_ingests must be non-negative (or None)")
        if quarantine_after is not None and quarantine_after <= 0:
            raise ValueError("quarantine_after must be positive (or None)")
        self.scheduler = scheduler
        self.registry: DeviceRegistry = scheduler.registry
        self.max_body_bytes = max_body_bytes
        self.max_inflight_ingests = max_inflight_ingests
        self.retry_after_s = retry_after_s
        self.quarantine_after = quarantine_after
        # The scheduler's re-entrant lock, shared so service requests and
        # owner-driven fleet rounds serialise against each other even when
        # the owner keeps advancing rounds while the server is live.
        self._lock = scheduler.lock
        # Backpressure state: in-flight ingest count gated by its own
        # condition (never the fleet lock — shedding must stay cheap even
        # while evaluations hold the scheduler busy).
        self._drain_cond = threading.Condition()
        self._inflight = 0
        self._draining = False
        # Abuse state, keyed by device id, guarded by the fleet lock.
        self._malformed: Dict[str, int] = {}
        self._quarantined: set[str] = set()

    # ------------------------------------------------------------- endpoints
    def register_device(self, payload: Dict[str, object]) -> Dict[str, object]:
        device_id = payload.get("device_id")
        if not isinstance(device_id, str) or not device_id:
            raise ServiceError(400, "device_id must be a non-empty string")
        if not _DEVICE_ID_RE.match(device_id):
            raise ServiceError(
                400,
                "device_id must be URL-safe (letters, digits, '.', '_', '~', '-')",
            )
        scenario = payload.get("scenario")
        if scenario is not None and not isinstance(scenario, str):
            raise ServiceError(400, "scenario must be a catalogue label string")
        seed = payload.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise ServiceError(400, "seed must be an integer")
        with self._lock:
            if device_id in self.registry:
                raise ServiceError(409, f"device {device_id!r} already registered")
            # Write-ahead: journal the registration before applying it, so
            # a crash right after the reply can't lose the device (its
            # journaled ingests would otherwise error out of replay).
            journal = self.scheduler.journal
            if journal is not None:
                journal.append_device(device_id, scenario=scenario, seed=seed)
            try:
                device = self.registry.register(device_id, scenario=scenario, seed=seed)
            except ValueError as exc:
                raise ServiceError(400, str(exc))
            return device.snapshot()

    def ingest(self, payload: Dict[str, object]) -> Dict[str, object]:
        device_id = payload.get("device_id")
        if not isinstance(device_id, str) or not device_id:
            raise ServiceError(400, "device_id must be a non-empty string")
        raw = payload.get("bits")
        if not isinstance(raw, str) or not raw:
            raise ServiceError(400, "bits must be a non-empty string of 0/1 characters")
        seq = payload.get("seq")
        if seq is not None and (isinstance(seq, bool) or not isinstance(seq, int)):
            raise ServiceError(400, "seq must be a non-negative integer")
        if isinstance(seq, int) and seq < 0:
            raise ServiceError(400, "seq must be a non-negative integer")
        try:
            device = self.registry.get(device_id)
        except KeyError as exc:
            raise ServiceError(404, str(exc))
        with self._lock:
            if device_id in self._quarantined:
                raise ServiceError(
                    403,
                    f"device {device_id!r} is quarantined after repeated "
                    "malformed ingests",
                )
        self._admit_ingest()
        try:
            try:
                # to_bits (via scheduler.ingest) owns the 0/1-string contract:
                # one validation path, whitespace tolerated like the library.
                # The scheduler locks only the health fold, not the engine
                # evaluation, so concurrent requests proceed meanwhile.  The
                # sequenced path journals write-ahead inside the scheduler.
                events = self.scheduler.ingest(device_id, raw, seq=seq)
            except DuplicateIngestError as exc:
                # Idempotent success: the chunk was already applied, so a
                # blind retry (client timeout, WAL replay, at-least-once
                # delivery) converges instead of erroring.
                with self._lock:
                    health = device.snapshot()
                return {
                    "device_id": device_id,
                    "duplicate": True,
                    "sequences": 0,
                    "verdicts": [],
                    "health": health,
                    "last_seq": exc.last_seq,
                }
            except IngestSequenceGapError as exc:
                raise ServiceError(409, str(exc))
            except ValueError as exc:
                self._count_malformed(device_id)
                raise ServiceError(400, str(exc))
        finally:
            self._release_ingest()
        with self._lock:
            self._malformed.pop(device_id, None)
            health = device.snapshot()
        response: Dict[str, object] = {
            "device_id": device_id,
            "sequences": len(events),
            "verdicts": [
                {
                    "sequence_index": event.sequence_index,
                    "passed": event.report.passed,
                    "failing_tests": list(event.report.failing_tests),
                    "state": event.state.value,
                }
                for event in events
            ],
            "health": health,
        }
        if seq is not None:
            response["last_seq"] = seq
        if self.scheduler.streaming:
            response["pending_bits"] = self.scheduler.pending_bits(device_id)
        return response

    # --------------------------------------------------------- backpressure
    def _admit_ingest(self) -> None:
        """Admit one ingest or shed it (429 at capacity, 503 while draining)."""
        with self._drain_cond:
            if self._draining:
                _INGEST_SHED.inc(reason="draining")
                raise ServiceError(
                    503, "service is draining", retry_after=self.retry_after_s
                )
            cap = self.max_inflight_ingests
            if cap is not None and self._inflight >= cap:
                _INGEST_SHED.inc(reason="backpressure")
                raise ServiceError(
                    429,
                    f"ingest capacity ({cap} in flight) exhausted; retry later",
                    retry_after=self.retry_after_s,
                )
            self._inflight += 1

    def _release_ingest(self) -> None:
        with self._drain_cond:
            self._inflight -= 1
            self._drain_cond.notify_all()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting ingests and wait for in-flight ones to finish.

        The graceful-shutdown half of backpressure: new ingests are shed
        with 503 from the moment this is called, and the call returns once
        the last admitted ingest has folded (or ``timeout`` elapsed —
        returns False on a dirty drain).
        """
        with self._drain_cond:
            self._draining = True
            return self._drain_cond.wait_for(
                lambda: self._inflight == 0, timeout=timeout
            )

    def _count_malformed(self, device_id: str) -> None:
        """Track consecutive malformed ingests; quarantine repeat offenders."""
        threshold = self.quarantine_after
        if threshold is None:
            return
        with self._lock:
            count = self._malformed.get(device_id, 0) + 1
            self._malformed[device_id] = count
            if count >= threshold and device_id not in self._quarantined:
                self._quarantined.add(device_id)
                _QUARANTINED.inc()
                logger.warning(
                    "quarantined device %s after %d consecutive malformed ingests",
                    device_id,
                    count,
                )

    def device_health(self, device_id: str) -> Dict[str, object]:
        with self._lock:
            try:
                return self.registry.get(device_id).snapshot()
            except KeyError as exc:
                raise ServiceError(404, str(exc))

    def fleet_summary(self) -> Dict[str, object]:
        # The aggregation snapshot happens under the scheduler's lock
        # (inside report()); rendering the JSON-ready dict does not.
        with self._lock:
            report = self.scheduler.report()
            health = self.registry.health_counts()
        return {
            "design": report.design,
            "n": report.n,
            "alpha": report.alpha,
            "backend": report.backend,
            "streaming": report.streaming,
            "execution_paths": dict(sorted(report.execution_paths.items())),
            "num_devices": report.num_devices,
            "rounds_completed": report.rounds_completed,
            "health": health,
            "mix": report.mix,
            "false_alarm_rate": report.false_alarm_rate(),
            "devices_per_s": report.devices_per_second(),
            "scenarios": [stats.to_dict() for stats in report.scenarios],
        }

    def metrics_text(self) -> str:
        """The process-wide metrics registry in Prometheus 0.0.4 text format."""
        return obs.registry().render_text()

    def metrics_snapshot(self) -> Dict[str, object]:
        """The process-wide metrics registry as a structured JSON snapshot."""
        return obs.registry().snapshot()

    # ------------------------------------------------------------- dispatch
    def handle_get(self, path: str) -> Tuple[int, Dict[str, object]]:
        # Drop any query string (?pretty=1 must not 404 a real endpoint)
        # and percent-decode the segments before routing.
        parts = [unquote(part) for part in urlsplit(path).path.split("/") if part]
        if parts == ["metrics.json"]:
            return 200, self.metrics_snapshot()
        if parts == ["fleet", "summary"]:
            return 200, self.fleet_summary()
        if len(parts) == 3 and parts[0] == "devices" and parts[2] == "health":
            return 200, self.device_health(parts[1])
        raise ServiceError(404, f"unknown path {path!r}")

    def handle_post(self, path: str, payload: Dict[str, object]) -> Tuple[int, Dict[str, object]]:
        parts = [unquote(part) for part in urlsplit(path).path.split("/") if part]
        if parts == ["devices"]:
            return 201, self.register_device(payload)
        if parts == ["ingest"]:
            return 200, self.ingest(payload)
        raise ServiceError(404, f"unknown path {path!r}")


def _retry_headers(exc: ServiceError) -> Tuple[Tuple[str, str], ...]:
    """The ``Retry-After`` header of a load-shed response (else nothing)."""
    if exc.retry_after is None:
        return ()
    return (("Retry-After", f"{exc.retry_after:g}"),)


class _FleetRequestHandler(BaseHTTPRequestHandler):
    """Thin HTTP shell around :class:`FleetService`."""

    server_version = "repro-fleet/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> FleetService:
        return self.server.service  # type: ignore[attr-defined]

    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: Sequence[Tuple[str, str]] = (),
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, object]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise ServiceError(400, "invalid Content-Length header")
        if length <= 0:
            raise ServiceError(400, "request body required")
        cap = self.service.max_body_bytes
        if length > cap:
            raise ServiceError(413, f"request body exceeds {cap} bytes")
        raw = self.rfile.read(length)
        if len(raw) < length:
            # The client died (or lied about Content-Length) mid-body; a
            # partial JSON document must not be half-parsed into a request.
            raise ServiceError(400, "truncated request body")
        try:
            payload = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceError(400, f"invalid JSON body: {exc}")
        if not isinstance(payload, dict):
            raise ServiceError(400, "JSON body must be an object")
        return payload

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        route = _route_label(self.path)
        with obs.span("service.request", method="GET", route=route) as request_span:
            extra_headers: Tuple[Tuple[str, str], ...] = ()
            if route == "/metrics":
                # The exposition endpoint is plain text, not JSON, and is
                # rendered outside the fleet lock (the registry has its own
                # per-metric locks).
                status = 200
                body = self.service.metrics_text().encode("utf-8")
                content_type = METRICS_CONTENT_TYPE
            else:
                try:
                    status, payload = self.service.handle_get(self.path)
                except ServiceError as exc:
                    status, payload = exc.status, {"error": exc.message}
                    extra_headers = _retry_headers(exc)
                except Exception:
                    # A bug must become one 500 response, never a dropped
                    # connection with no diagnostics.
                    logger.exception("unhandled error serving GET %s", self.path)
                    self.close_connection = True
                    status, payload = 500, {"error": "internal server error"}
                body = json.dumps(payload).encode("utf-8")
                content_type = "application/json"
        # Account before writing the response, so a client that reads its
        # reply and immediately scrapes /metrics always sees this request.
        self._account("GET", route, status, request_span.duration_s)
        self._send_body(status, body, content_type, extra_headers)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        route = _route_label(self.path)
        with obs.span("service.request", method="POST", route=route) as request_span:
            extra_headers: Tuple[Tuple[str, str], ...] = ()
            try:
                status, payload = self.service.handle_post(self.path, self._read_json())
            except ServiceError as exc:
                # The body may not have been consumed (bad/oversized payload);
                # on a keep-alive connection the leftover bytes would be parsed
                # as the next request line, so drop the connection after
                # responding.
                self.close_connection = True
                status, payload = exc.status, {"error": exc.message}
                extra_headers = _retry_headers(exc)
            except Exception:
                logger.exception("unhandled error serving POST %s", self.path)
                self.close_connection = True
                status, payload = 500, {"error": "internal server error"}
        self._account("POST", route, status, request_span.duration_s)
        self._send_body(
            status, json.dumps(payload).encode("utf-8"), "application/json",
            extra_headers,
        )

    def _account(self, method: str, route: str, status: int, seconds: float) -> None:
        """Per-request telemetry: counters, latency histogram, one log line."""
        _REQUESTS.inc(method=method, route=route, status=str(status))
        _REQUEST_SECONDS.observe(seconds, method=method)
        logger.info(
            "%s %s -> %d in %.2f ms", method, self.path, status, seconds * 1000.0
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # http.server's own chatter (error lines etc.) goes to the logger at
        # DEBUG; the per-request INFO line above is the structured one.
        logger.debug(format, *args)


def serve(
    scheduler: FleetScheduler,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    max_body_bytes: int = MAX_BODY_BYTES,
    max_inflight_ingests: Optional[int] = None,
    retry_after_s: float = 1.0,
    quarantine_after: Optional[int] = None,
) -> ThreadingHTTPServer:
    """Build a ready-to-run HTTP server over ``scheduler``.

    Returns the bound (but not yet serving) server; call ``serve_forever()``
    — possibly in a thread — and ``shutdown()``/``server_close()`` when done.
    Bind to port 0 to let the OS pick a free port (``server.server_address``
    then reports the real one).  Connections are served on daemon threads,
    so a stalled client never prevents process exit.

    The keyword knobs are the degradation policy: ``max_body_bytes`` caps
    request payloads (413 beyond it), ``max_inflight_ingests`` bounds
    concurrent ingest evaluations (429 + ``Retry-After: retry_after_s``
    beyond it), and ``quarantine_after`` cuts off a device (403) after that
    many consecutive malformed ingests.
    """
    server = ThreadingHTTPServer((host, port), _FleetRequestHandler)
    server.daemon_threads = True
    server.service = FleetService(  # type: ignore[attr-defined]
        scheduler,
        max_body_bytes=max_body_bytes,
        max_inflight_ingests=max_inflight_ingests,
        retry_after_s=retry_after_s,
        quarantine_after=quarantine_after,
    )
    return server
