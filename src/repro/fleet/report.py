"""Fleet-level aggregation: health mix over time, per-scenario detection.

The campaign's :class:`~repro.campaign.report.CampaignReport` aggregates
*trials* of one scenario; a fleet aggregates *devices*.  A
:class:`FleetReport` therefore answers the operations questions: how is the
fleet's health mix evolving round by round, what fraction of each deployed
threat scenario has been caught and how fast (latency percentiles across
devices, not means across trials), how noisy are the healthy devices
(sequence-level false-alarm rate) and how fast does the multiplexed
scheduler chew through the fleet (devices/second).  Export mirrors the
campaign report: ``to_json``/``from_json`` round-trip the full report,
``to_csv`` emits the per-scenario summary table under stable
:data:`SUMMARY_COLUMNS`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.export import JsonCsvExportMixin
from repro.eval.attribution import format_rows

if TYPE_CHECKING:  # imported lazily: registry is a consumer of this module
    from repro.fleet.registry import DeviceRegistry

__all__ = [
    "FleetRound",
    "FleetScenarioStats",
    "FleetReport",
    "SUMMARY_COLUMNS",
    "build_report",
]

#: Latency percentiles reported per scenario (across detected devices).
LATENCY_PERCENTILES = (50, 90, 99)


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (q in [0, 100]); None on empty input.

    Nearest-rank keeps every reported latency an actually-observed value
    (a latency of 1.5 sequences does not exist), which is what an operator
    pages on.
    """
    if not values:
        return None
    if not 0 <= q <= 100:
        raise ValueError("q must lie in [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


def _fmt_optional(value: Optional[float], spec: str = ".0f") -> str:
    return "-" if value is None else format(value, spec)


@dataclass
class FleetRound:
    """One scheduler round: the fleet health mix after it, and its cost."""

    index: int
    #: health-state value -> device count (the whole fleet, after the round)
    health: Dict[str, int]
    #: simulated devices evaluated in this round
    devices: int
    failing_sequences: int
    elapsed_s: float

    @property
    def devices_per_s(self) -> float:
        """Round throughput, derived on demand.

        Stored state keeps only the measured quantities (count, wall time),
        so the serialised report never carries a non-finite rate even on a
        platform whose timer resolves the round to zero.
        """
        return self.devices / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "health": dict(self.health),
            "devices": self.devices,
            "failing_sequences": self.failing_sequences,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FleetRound":
        return cls(
            index=data["index"],
            health={str(k): v for k, v in data["health"].items()},
            devices=data["devices"],
            failing_sequences=data["failing_sequences"],
            elapsed_s=data["elapsed_s"],
        )


@dataclass
class FleetScenarioStats:
    """Detection outcome of one scenario's device population."""

    scenario: str
    category: str
    expected_detectable: bool
    devices: int
    detected_devices: int
    detection_probability: float
    #: percentile (as int key) -> detection latency in sequences
    latency_percentiles: Dict[int, Optional[float]] = field(default_factory=dict)
    sequence_failure_rate: float = 0.0

    @property
    def is_control(self) -> bool:
        return not self.expected_detectable

    @property
    def false_alarm_rate(self) -> Optional[float]:
        """Sequence-level false-alarm rate (controls only, None otherwise)."""
        return self.sequence_failure_rate if self.is_control else None

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "category": self.category,
            "expected_detectable": self.expected_detectable,
            "devices": self.devices,
            "detected_devices": self.detected_devices,
            "detection_probability": self.detection_probability,
            "latency_percentiles": {
                str(q): value for q, value in sorted(self.latency_percentiles.items())
            },
            "sequence_failure_rate": self.sequence_failure_rate,
            "false_alarm_rate": self.false_alarm_rate,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FleetScenarioStats":
        return cls(
            scenario=data["scenario"],
            category=data["category"],
            expected_detectable=data["expected_detectable"],
            devices=data["devices"],
            detected_devices=data["detected_devices"],
            detection_probability=data["detection_probability"],
            latency_percentiles={
                int(q): value for q, value in data["latency_percentiles"].items()
            },
            sequence_failure_rate=data["sequence_failure_rate"],
        )


#: Columns of the per-scenario summary table / CSV (stable export contract).
SUMMARY_COLUMNS = (
    "scenario", "category", "devices", "detected", "detect_prob",
    "latency_p50", "latency_p90", "latency_p99", "seq_fail_rate", "false_alarm",
)


@dataclass
class FleetReport(JsonCsvExportMixin):
    """Everything one fleet run produced.

    Scenario rows are ordered by first appearance in the registry's mix,
    rounds chronologically, so two runs of the same seeded fleet serialise
    identically.
    """

    SUMMARY_COLUMNS = SUMMARY_COLUMNS

    design: str
    n: int
    alpha: float
    num_devices: int
    suspect_after: int
    fail_after: int
    seed: Optional[int]
    #: scenario label -> device count (the resolved mix; "external" for
    #: service-registered devices without a simulated source)
    mix: Dict[str, int]
    rounds: List[FleetRound] = field(default_factory=list)
    scenarios: List[FleetScenarioStats] = field(default_factory=list)
    #: Compute backend the scheduler evaluated rounds on ("packed" 64-bit
    #: word kernels or the "uint8" reference paths); verdicts are identical.
    backend: str = "packed"
    #: Whether the scheduler ran in streaming mode (long-lived per-device
    #: packed rings with O(1) window rolls instead of per-round matrix
    #: rebuilds); verdicts are identical either way.
    streaming: bool = False
    #: Canonical test id -> execution path the engine took for it
    #: ("batched" batch-native kernel / "inline" per-sequence scalar /
    #: "pooled" process-pool fallback), as observed on the scheduler's
    #: most recent evaluations.  Empty for reports saved before the
    #: batch-native heavy kernels existed.
    execution_paths: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------- selection
    @property
    def rounds_completed(self) -> int:
        return len(self.rounds)

    def control_stats(self) -> List[FleetScenarioStats]:
        return [stats for stats in self.scenarios if stats.is_control]

    def threat_stats(self) -> List[FleetScenarioStats]:
        return [stats for stats in self.scenarios if not stats.is_control]

    def false_alarm_rate(self) -> Optional[float]:
        """Sequence-level false-alarm rate across all healthy-control devices
        (device-weighted mean; None when the fleet has no controls)."""
        controls = self.control_stats()
        total_devices = sum(stats.devices for stats in controls)
        if total_devices == 0:
            return None
        weighted = sum(stats.sequence_failure_rate * stats.devices for stats in controls)
        return weighted / total_devices

    def health_trajectory(self) -> List[Dict[str, int]]:
        """Fleet health mix after every round (the time axis of a dashboard)."""
        return [dict(fleet_round.health) for fleet_round in self.rounds]

    def final_health(self) -> Dict[str, int]:
        """Health mix after the last round (empty when no rounds ran)."""
        return dict(self.rounds[-1].health) if self.rounds else {}

    def devices_per_second(self) -> Optional[float]:
        """Aggregate scheduler throughput over all rounds."""
        total = sum(fleet_round.elapsed_s for fleet_round in self.rounds)
        evaluated = sum(fleet_round.devices for fleet_round in self.rounds)
        if total <= 0:
            return None
        return evaluated / total

    # ------------------------------------------------------------- rendering
    def summary_rows(self) -> List[Dict[str, object]]:
        """One row per scenario population (the CSV / table body)."""
        rows = []
        for stats in self.scenarios:
            percentiles = stats.latency_percentiles
            rows.append(
                {
                    "scenario": stats.scenario,
                    "category": stats.category,
                    "devices": stats.devices,
                    "detected": stats.detected_devices,
                    "detect_prob": f"{stats.detection_probability:.2f}",
                    "latency_p50": _fmt_optional(percentiles.get(50)),
                    "latency_p90": _fmt_optional(percentiles.get(90)),
                    "latency_p99": _fmt_optional(percentiles.get(99)),
                    "seq_fail_rate": f"{stats.sequence_failure_rate:.3f}",
                    "false_alarm": _fmt_optional(stats.false_alarm_rate, ".3f"),
                }
            )
        return rows

    def format_table(self) -> str:
        """Human-readable per-scenario detection table."""
        return format_rows(self.summary_rows(), SUMMARY_COLUMNS)

    # ------------------------------------------------------------- export
    def to_dict(self) -> Dict[str, object]:
        return {
            "config": {
                "design": self.design,
                "n": self.n,
                "alpha": self.alpha,
                "num_devices": self.num_devices,
                "suspect_after": self.suspect_after,
                "fail_after": self.fail_after,
                "seed": self.seed,
                "mix": dict(self.mix),
                "backend": self.backend,
                "streaming": self.streaming,
            },
            "rounds": [fleet_round.to_dict() for fleet_round in self.rounds],
            "scenarios": [stats.to_dict() for stats in self.scenarios],
            "execution_paths": dict(sorted(self.execution_paths.items())),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FleetReport":
        config = data["config"]
        return cls(
            design=config["design"],
            n=config["n"],
            alpha=config["alpha"],
            num_devices=config["num_devices"],
            suspect_after=config["suspect_after"],
            fail_after=config["fail_after"],
            seed=config["seed"],
            mix={str(k): v for k, v in config["mix"].items()},
            rounds=[FleetRound.from_dict(r) for r in data["rounds"]],
            scenarios=[FleetScenarioStats.from_dict(s) for s in data["scenarios"]],
            # Reports saved before the packed backend existed ran on uint8.
            backend=config.get("backend", "uint8"),
            # Reports saved before streaming mode existed ran the matrix path.
            streaming=bool(config.get("streaming", False)),
            # Reports saved before the batch-native heavy kernels recorded
            # no per-test paths.
            execution_paths={
                str(k): str(v)
                for k, v in data.get("execution_paths", {}).items()
            },
        )

    # to_json / from_json / save_json / to_csv / save_csv come from
    # JsonCsvExportMixin, shared with the campaign report.


def build_report(
    registry: "DeviceRegistry",
    rounds: List[FleetRound],
    backend: str = "packed",
    execution_paths: Optional[Dict[str, str]] = None,
    streaming: bool = False,
) -> FleetReport:
    """Aggregate a registry's device health into a :class:`FleetReport`.

    Groups devices by scenario label in registry insertion order (service-
    registered external devices land in an ``"external"`` group), computes
    per-scenario detection probability, latency percentiles across detected
    devices and the sequence-level failure rate.
    """
    by_scenario: Dict[str, List] = {}
    for device in registry:
        key = device.scenario if device.scenario is not None else "external"
        by_scenario.setdefault(key, []).append(device)

    scenarios = []
    for label, devices in by_scenario.items():
        latencies = [
            device.monitor.detection_latency_sequences()
            for device in devices
            if device.monitor.first_failed_index is not None
        ]
        sequences = sum(device.monitor.sequences_monitored for device in devices)
        failures = sum(device.monitor.failures_total for device in devices)
        scenarios.append(
            FleetScenarioStats(
                scenario=label,
                category=devices[0].category,
                expected_detectable=devices[0].expected_detectable,
                devices=len(devices),
                detected_devices=len(latencies),
                detection_probability=len(latencies) / len(devices),
                latency_percentiles={
                    q: percentile(latencies, q) for q in LATENCY_PERCENTILES
                },
                sequence_failure_rate=failures / sequences if sequences else 0.0,
            )
        )

    return FleetReport(
        design=registry.design_name,
        n=registry.n,
        alpha=registry.alpha,
        num_devices=len(registry),
        suspect_after=registry.suspect_after,
        fail_after=registry.fail_after,
        seed=registry.seed,
        mix=registry.scenario_counts(),
        rounds=list(rounds),
        scenarios=scenarios,
        backend=backend,
        execution_paths=dict(execution_paths or {}),
        streaming=streaming,
    )
