"""Seeded chaos harness: kill the real service, recover it, prove nothing broke.

Durability claims are cheap; this module makes the repository earn them.
:func:`run_chaos` boots the *actual* ``repro.cli fleet serve`` process with
a durability spool, drives externally-registered devices over real HTTP
through :class:`~repro.fleet.client.FleetClient`, and then misbehaves on a
seeded schedule:

* **drop** — a send is "lost" once before being retried;
* **duplicate** — a chunk is sent twice (the second must come back
  ``{"duplicate": true}``, not double-evaluate);
* **reorder** — the *next* chunk is sent first (must 409 as a sequence
  gap, then the proper order resumes);
* **corrupt** — a malformed payload precedes the real chunk (must 400
  without touching device state);
* **kill** — after a seeded number of acknowledged ingests the service is
  SIGKILLed mid-run, restarted with ``--restore``, and ingestion resumes
  from the client's acknowledged sequence numbers.

At the end the service is shut down gracefully (SIGTERM must exit clean),
and the per-device health snapshots plus fleet summary are compared field
for field against an **uninterrupted control run** — the same chunks
folded, in the same per-device order, into an in-process scheduler that
never crashed.  Bit-identical health after a ``kill -9`` is the invariant
CI pins (the durability layer's write-ahead journal and idempotent seq
contract are exactly what make it hold).

Everything is derived from one seed — device bits, fault schedule, kill
point — so a failing run reproduces exactly.
"""

from __future__ import annotations

import os
import re
import shutil
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Tuple

import numpy as np

from repro.fleet.client import FleetClient, FleetServiceError
from repro.fleet.registry import DeviceRegistry
from repro.fleet.scheduler import FleetScheduler

__all__ = ["ChaosConfig", "ChaosResult", "run_chaos"]

#: Startup line printed by ``fleet serve`` (the port is OS-assigned).
_LISTENING_RE = re.compile(r"listening on http://([^:]+):(\d+)")
#: Restore line printed by ``fleet serve --restore`` on a successful replay.
_REPLAY_RE = re.compile(r"journal replay applied (\d+) ingests \((\d+) duplicates")

#: Summary fields compared against the control run.  Throughput and
#: timing fields are excluded by construction (wall-clock differs); the
#: structural and statistical fields must match exactly.
_SUMMARY_KEYS = (
    "design",
    "n",
    "alpha",
    "streaming",
    "num_devices",
    "rounds_completed",
    "health",
    "mix",
    "false_alarm_rate",
)


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos experiment, fully determined by its fields."""

    devices: int = 4
    chunks_per_device: int = 6
    seed: int = 0
    design: str = "n128_light"
    kill_after_acks: Optional[int] = None
    drop_rate: float = 0.1
    duplicate_rate: float = 0.1
    reorder_rate: float = 0.1
    corrupt_rate: float = 0.1
    snapshot_interval_s: float = 0.2
    backend: str = "packed"
    streaming: bool = False
    workdir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.devices <= 0:
            raise ValueError("chaos needs at least one device")
        if self.chunks_per_device <= 0:
            raise ValueError("chaos needs at least one chunk per device")
        for name in ("drop_rate", "duplicate_rate", "reorder_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {rate}")
        if self.snapshot_interval_s <= 0:
            raise ValueError("snapshot_interval_s must be positive")


@dataclass
class ChaosResult:
    """Verdict of one chaos run (the recovery report body)."""

    matched: bool
    killed: bool
    clean_shutdown: bool
    acks_before_kill: int
    total_acks: int
    faults_injected: int
    fault_counts: Dict[str, int]
    replay_applied: int
    replay_duplicates: int
    mismatches: List[str] = field(default_factory=list)
    summary: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "matched": self.matched,
            "killed": self.killed,
            "clean_shutdown": self.clean_shutdown,
            "acks_before_kill": self.acks_before_kill,
            "total_acks": self.total_acks,
            "faults_injected": self.faults_injected,
            "fault_counts": dict(self.fault_counts),
            "replay_applied": self.replay_applied,
            "replay_duplicates": self.replay_duplicates,
            "mismatches": list(self.mismatches),
            "summary": dict(self.summary),
        }


def _device_ids(config: ChaosConfig) -> List[str]:
    return [f"chaos-{index:04d}" for index in range(config.devices)]


def _chunk_bits(config: ChaosConfig, device_index: int, chunk_index: int, n: int) -> str:
    """Deterministic bits of one chunk, stateless in (device, chunk).

    Statelessness matters: faults and restarts replay chunks in odd
    orders, and the control run must be able to regenerate any chunk
    without tracking generator positions.  Every fourth device is biased
    (P(1) = 0.9) so the run exercises real health transitions, not just
    healthy devices staying healthy.
    """
    rng = np.random.default_rng(
        [config.seed, 0x5EED, device_index, chunk_index]
    )
    size = _chunk_size(config, device_index, chunk_index, n)
    if device_index % 4 == 3:
        bits = (rng.random(size) < 0.9).astype(np.uint8)
    else:
        bits = rng.integers(0, 2, size, dtype=np.uint8)
    return "".join("1" if bit else "0" for bit in bits.tolist())


def _chunk_size(config: ChaosConfig, device_index: int, chunk_index: int, n: int) -> int:
    """Chunk sizes: whole sequences in matrix mode, varied in streaming."""
    if not config.streaming:
        return n
    # Between n/2 and ~3n/2, sweeping windows across chunk boundaries so
    # partial sequences pend in the rings at kill time.
    return n // 2 + (device_index * 7 + chunk_index * 13) % n


def _service_command(config: ChaosConfig, spool: Path, restore: bool) -> List[str]:
    command = [
        sys.executable,
        "-u",
        "-m",
        "repro.cli",
        "fleet",
        "serve",
        "--devices",
        "0",
        "--rounds",
        "0",
        "--design",
        config.design,
        "--backend",
        config.backend,
        "--host",
        "127.0.0.1",
        "--port",
        "0",
        "--quiet",
        "--snapshot-dir",
        str(spool),
        "--snapshot-interval",
        str(config.snapshot_interval_s),
    ]
    if config.streaming:
        command.append("--streaming")
    if restore:
        command.append("--restore")
    return command


def _spawn_service(
    config: ChaosConfig, spool: Path, restore: bool
) -> Tuple["subprocess.Popen[str]", str, Tuple[int, int]]:
    """Start ``fleet serve`` and wait for its listening line.

    Returns the process, the base URL, and the (applied, duplicates)
    replay counts parsed from the restore banner (zeros on a fresh boot).
    """
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root if not existing else src_root + os.pathsep + existing
    process = subprocess.Popen(
        _service_command(config, spool, restore),
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    replay = (0, 0)
    stdout = process.stdout
    assert stdout is not None
    while True:
        line = stdout.readline()
        if not line:
            raise RuntimeError(
                f"fleet service exited during startup "
                f"(code {process.wait()}); command: "
                + " ".join(_service_command(config, spool, restore))
            )
        replay_match = _REPLAY_RE.search(line)
        if replay_match:
            replay = (int(replay_match.group(1)), int(replay_match.group(2)))
        listening = _LISTENING_RE.search(line)
        if listening:
            url = f"http://{listening.group(1)}:{listening.group(2)}"
            return process, url, replay


def _note(out: Optional[TextIO], message: str) -> None:
    if out is not None:
        print(message, file=out, flush=True)


def _control_run(config: ChaosConfig, n_chunks: Dict[str, List[str]]) -> Tuple[
    Dict[str, Dict[str, Any]], Dict[str, Any]
]:
    """The uninterrupted reference: same chunks, in-process, no faults."""
    registry = DeviceRegistry(config.design)
    for device_id in n_chunks:
        registry.register(device_id)
    with FleetScheduler(
        registry, backend=config.backend, streaming=config.streaming
    ) as scheduler:
        for device_id, chunks in n_chunks.items():
            for seq, bits in enumerate(chunks):
                scheduler.ingest(device_id, bits, seq=seq)
        health = {device.device_id: device.snapshot() for device in registry}
        report = scheduler.report()
        summary = {
            "design": report.design,
            "n": report.n,
            "alpha": report.alpha,
            "streaming": report.streaming,
            "num_devices": report.num_devices,
            "rounds_completed": report.rounds_completed,
            "health": registry.health_counts(),
            "mix": report.mix,
            "false_alarm_rate": report.false_alarm_rate(),
        }
    return health, summary


def run_chaos(config: ChaosConfig, out: Optional[TextIO] = None) -> ChaosResult:
    """Execute one chaos experiment; see the module docstring for the plot."""
    owns_workdir = config.workdir is None
    workdir = Path(config.workdir or tempfile.mkdtemp(prefix="repro-chaos-"))
    workdir.mkdir(parents=True, exist_ok=True)
    spool = workdir / "spool"
    try:
        result = _run_chaos_in(config, spool, out)
    except BaseException:
        # Keep the spool for post-mortem when the run blew up.
        _note(out, f"chaos run failed; spool kept at {spool}")
        raise
    if owns_workdir and result.matched:
        shutil.rmtree(workdir, ignore_errors=True)
    elif not result.matched:
        _note(out, f"spool kept for post-mortem at {spool}")
    return result


def _run_chaos_in(
    config: ChaosConfig, spool: Path, out: Optional[TextIO]
) -> ChaosResult:
    device_ids = _device_ids(config)
    n = DeviceRegistry(config.design).n
    chunks: Dict[str, List[str]] = {
        device_id: [
            _chunk_bits(config, device_index, chunk_index, n)
            for chunk_index in range(config.chunks_per_device)
        ]
        for device_index, device_id in enumerate(device_ids)
    }
    total_chunks = config.devices * config.chunks_per_device
    schedule_rng = np.random.default_rng([config.seed, 0xFA57])
    if config.kill_after_acks is not None:
        kill_target = config.kill_after_acks
    elif total_chunks > 2:
        # A seeded point in the middle half of the run, so the kill lands
        # after some snapshots exist but while the journal still leads.
        kill_target = int(
            schedule_rng.integers(
                max(1, total_chunks // 4), max(2, (3 * total_chunks) // 4)
            )
        )
    else:
        kill_target = 1

    process, url, _ = _spawn_service(config, spool, restore=False)
    _note(out, f"service up at {url}; killing after {kill_target} acks")
    client = FleetClient(url, jitter_seed=config.seed)
    for device_id in device_ids:
        client.register_device(device_id)

    acked: Dict[str, int] = {}
    acks = 0
    killed = False
    fault_counts = {"drop": 0, "duplicate": 0, "reorder": 0, "corrupt": 0}
    replay_applied = 0
    replay_duplicates = 0

    def send(device_id: str, seq: int) -> Dict[str, Any]:
        return client.ingest(device_id, chunks[device_id][seq], seq=seq)

    for chunk_index in range(config.chunks_per_device):
        for device_index, device_id in enumerate(device_ids):
            if acked.get(device_id, -1) >= chunk_index:
                continue
            if not killed and acks >= kill_target:
                _note(out, f"SIGKILL after {acks} acks; restarting with --restore")
                process.kill()
                process.wait(timeout=30)
                process, url, replay = _spawn_service(config, spool, restore=True)
                replay_applied, replay_duplicates = replay
                client = FleetClient(url, jitter_seed=config.seed + 1)
                killed = True
                _note(
                    out,
                    f"service back at {url}; replay applied {replay_applied} "
                    f"ingests ({replay_duplicates} duplicates)",
                )
            faults = schedule_rng.random(4)
            if faults[0] < config.corrupt_rate:
                fault_counts["corrupt"] += 1
                try:
                    client.ingest(device_id, "012 not bits", seq=chunk_index)
                except FleetServiceError as exc:
                    if exc.status != 400:
                        raise
            # Reorder only once the device has an applied seq: the contract
            # deliberately leaves the *first* seq unconstrained (clients may
            # resume mid-stream), so a premature chunk before any history
            # would be accepted rather than 409ed.
            if (
                faults[1] < config.reorder_rate
                and chunk_index >= 1
                and chunk_index + 1 < config.chunks_per_device
            ):
                fault_counts["reorder"] += 1
                try:
                    send(device_id, chunk_index + 1)
                except FleetServiceError as exc:
                    if exc.status != 409:
                        raise
            if faults[2] < config.drop_rate:
                # The "network" eats one send; the chunk goes out on the
                # retry below, exactly like a client-side timeout.
                fault_counts["drop"] += 1
            reply = send(device_id, chunk_index)
            if not reply.get("duplicate"):
                acks += 1
            acked[device_id] = chunk_index
            if faults[3] < config.duplicate_rate:
                fault_counts["duplicate"] += 1
                echo = send(device_id, chunk_index)
                if not echo.get("duplicate"):
                    raise RuntimeError(
                        f"duplicate seq {chunk_index} for {device_id} was "
                        "re-applied instead of deduplicated"
                    )

    if not killed:
        # The seeded kill point can exceed the ack total when duplicates
        # absorbed part of the run; kill at the end and recover anyway so
        # the invariant is still exercised.
        _note(out, f"SIGKILL after full run ({acks} acks); restarting")
        process.kill()
        process.wait(timeout=30)
        process, url, replay = _spawn_service(config, spool, restore=True)
        replay_applied, replay_duplicates = replay
        client = FleetClient(url, jitter_seed=config.seed + 1)
        killed = True

    service_health = {
        device_id: client.device_health(device_id) for device_id in device_ids
    }
    service_summary = client.fleet_summary()
    process.terminate()
    clean = process.wait(timeout=30) == 0
    _note(out, f"SIGTERM shutdown {'clean' if clean else 'DIRTY'}")

    control_health, control_summary = _control_run(config, chunks)
    mismatches: List[str] = []
    for device_id in device_ids:
        theirs = service_health[device_id]
        ours = control_health[device_id]
        for key, expected in ours.items():
            got = theirs.get(key)
            if got != expected:
                mismatches.append(
                    f"{device_id}.{key}: service {got!r} != control {expected!r}"
                )
    for key in _SUMMARY_KEYS:
        if service_summary.get(key) != control_summary.get(key):
            mismatches.append(
                f"summary.{key}: service {service_summary.get(key)!r} "
                f"!= control {control_summary.get(key)!r}"
            )
    if not clean:
        mismatches.append("SIGTERM shutdown exited dirty")
    return ChaosResult(
        matched=not mismatches,
        killed=killed,
        clean_shutdown=clean,
        acks_before_kill=kill_target,
        total_acks=acks,
        faults_injected=sum(fault_counts.values()),
        fault_counts=fault_counts,
        replay_applied=replay_applied,
        replay_duplicates=replay_duplicates,
        mismatches=mismatches,
        summary={k: service_summary.get(k) for k in _SUMMARY_KEYS},
    )
