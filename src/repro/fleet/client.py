"""Stdlib HTTP client for the fleet service, with retries and backpressure.

The service front-end (:mod:`repro.fleet.service`) sheds load with 429 +
``Retry-After`` and sequences ingests with per-device ``seq`` numbers; this
client is the other half of those contracts.  :class:`FleetClient` wraps
``urllib.request`` (no new dependencies) and retries transient failures —
connection errors, timeouts, 5xx, 408 and 429 — with exponential backoff,
honouring the server's ``Retry-After`` when it sends one and otherwise
jittering the delay from a *seeded* generator, so a swarm of restarted
clients never thunders back in lockstep yet every run of the chaos harness
is reproducible.

Because ingests carry ``seq``, a retry after an ambiguous failure (the
request may or may not have been applied before the connection died) is
safe: the server answers a replayed chunk with ``{"duplicate": true}``
instead of double-evaluating it, and the client surfaces that as success.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

import numpy as np

import repro.obs as obs

__all__ = ["FleetClient", "FleetServiceError"]

#: HTTP statuses worth retrying: the request never ran (408/429/503) or the
#: server hit a transient internal condition (5xx).
_RETRYABLE_STATUSES = frozenset({408, 429, 500, 502, 503, 504})

_RETRIES = obs.counter(
    "repro_fleet_client_retries_total",
    "Requests retried by the fleet client, by reason.",
    labels=("reason",),
)


class FleetServiceError(Exception):
    """A non-retryable (or retry-exhausted) error reply from the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class FleetClient:
    """Convenience wrapper over the fleet service's JSON endpoints.

    Parameters
    ----------
    base_url:
        Service root, e.g. ``http://127.0.0.1:8080``.
    timeout_s:
        Per-request socket timeout.
    retries:
        Transient failures retried per request before giving up.
    backoff_s / backoff_cap_s:
        Exponential backoff base and ceiling: attempt ``k`` sleeps
        ``min(cap, backoff_s * 2**k)`` scaled by a jitter factor in
        ``[0.5, 1.5)`` — unless the server sent ``Retry-After``, which
        wins.
    jitter_seed:
        Seed of the jitter generator (determinism rule: no unseeded
        randomness anywhere in the project, clients included).
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout_s: float = 10.0,
        retries: int = 5,
        backoff_s: float = 0.1,
        backoff_cap_s: float = 2.0,
        jitter_seed: int = 0,
    ):
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self._rng = np.random.default_rng(jitter_seed)

    # -------------------------------------------------------------- endpoints
    def register_device(
        self,
        device_id: str,
        scenario: Optional[str] = None,
        seed: Optional[int] = None,
        exist_ok: bool = False,
    ) -> Dict[str, Any]:
        """Register a device; with ``exist_ok`` a 409 reads as success.

        ``exist_ok=True`` is the recovery idiom: a client resuming after a
        server restart re-registers blindly and proceeds either way.
        """
        payload: Dict[str, Any] = {"device_id": device_id}
        if scenario is not None:
            payload["scenario"] = scenario
        if seed is not None:
            payload["seed"] = seed
        try:
            return self._request("POST", "/devices", payload)
        except FleetServiceError as exc:
            if exist_ok and exc.status == 409:
                return self.device_health(device_id)
            raise

    def ingest(
        self, device_id: str, bits: str, seq: Optional[int] = None
    ) -> Dict[str, Any]:
        """Submit one chunk of bits; pass ``seq`` for idempotent retries."""
        payload: Dict[str, Any] = {"device_id": device_id, "bits": bits}
        if seq is not None:
            payload["seq"] = seq
        return self._request("POST", "/ingest", payload)

    def device_health(self, device_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/devices/{device_id}/health")

    def fleet_summary(self) -> Dict[str, Any]:
        return self._request("GET", "/fleet/summary")

    def metrics_text(self) -> str:
        body = self._request_raw("GET", "/metrics")
        return body.decode("utf-8")

    # -------------------------------------------------------------- plumbing
    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        body = self._request_raw(method, path, payload)
        decoded = json.loads(body)
        if not isinstance(decoded, dict):
            raise FleetServiceError(502, "service returned a non-object JSON body")
        return decoded

    def _request_raw(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> bytes:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                self.base_url + path, data=data, headers=headers, method=method
            )
            try:
                with urllib.request.urlopen(request, timeout=self.timeout_s) as reply:
                    return reply.read()
            except urllib.error.HTTPError as exc:
                status = exc.code
                detail = self._error_message(exc)
                if status not in _RETRYABLE_STATUSES or attempt == self.retries:
                    raise FleetServiceError(status, detail)
                last_error = FleetServiceError(status, detail)
                _RETRIES.inc(reason=f"http_{status}")
                self._sleep(attempt, self._retry_after(exc))
            except (urllib.error.URLError, OSError) as exc:
                # Connection refused / reset / timed out: the server may be
                # mid-restart (the chaos harness guarantees it sometimes is).
                if attempt == self.retries:
                    raise FleetServiceError(503, f"service unreachable: {exc}")
                last_error = exc
                _RETRIES.inc(reason="connection")
                self._sleep(attempt, None)
        raise FleetServiceError(503, f"service unreachable: {last_error}")

    @staticmethod
    def _error_message(exc: urllib.error.HTTPError) -> str:
        try:
            decoded = json.loads(exc.read())
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return exc.reason if isinstance(exc.reason, str) else str(exc.reason)
        if isinstance(decoded, dict) and isinstance(decoded.get("error"), str):
            return decoded["error"]
        return str(decoded)

    @staticmethod
    def _retry_after(exc: urllib.error.HTTPError) -> Optional[float]:
        raw = exc.headers.get("Retry-After") if exc.headers is not None else None
        if raw is None:
            return None
        try:
            value = float(raw)
        except ValueError:
            return None
        return value if value >= 0 else None

    def _sleep(self, attempt: int, retry_after: Optional[float]) -> None:
        if retry_after is not None:
            delay = retry_after
        else:
            delay = min(self.backoff_cap_s, self.backoff_s * (2.0**attempt))
            delay *= 0.5 + float(self._rng.random())
        if delay > 0:
            time.sleep(delay)
