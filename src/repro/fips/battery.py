"""The four FIPS 140-2 statistical tests on a 20 000-bit block.

These are the tests the prior hardware implementations referenced by the
paper provide.  They are deliberately simple — fixed block size, fixed
acceptance intervals, pass/fail only — which is both their appeal for
hardware and their weakness as a health test (no tunable significance level,
no sensitivity to weaknesses that need longer observation windows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.nist.common import BitsLike, to_bits

__all__ = [
    "FIPS_BLOCK_BITS",
    "FIPS_TEST_NAMES",
    "FipsTestResult",
    "FipsReport",
    "FipsBattery",
    "monobit_test",
    "monobit_test_from_context",
    "poker_test",
    "poker_test_from_context",
    "runs_test",
    "runs_test_from_context",
    "long_run_test",
    "long_run_test_from_context",
    "fips_battery",
]

#: Canonical short names of the four FIPS tests, in battery order.
FIPS_TEST_NAMES = ("monobit", "poker", "runs", "long_run")

#: The FIPS battery always evaluates exactly 20 000 bits.
FIPS_BLOCK_BITS = 20000

#: FIPS 140-2 monobit acceptance interval (exclusive bounds).
MONOBIT_BOUNDS: Tuple[int, int] = (9725, 10275)

#: FIPS 140-2 poker-test acceptance interval (exclusive bounds).
POKER_BOUNDS: Tuple[float, float] = (2.16, 46.17)

#: FIPS 140-2 per-run-length acceptance intervals (inclusive bounds), applied
#: to runs of zeros and runs of ones separately; the final entry covers all
#: runs of length >= 6.
RUNS_BOUNDS: Dict[int, Tuple[int, int]] = {
    1: (2343, 2657),
    2: (1135, 1365),
    3: (542, 708),
    4: (251, 373),
    5: (111, 201),
    6: (111, 201),
}

#: FIPS 140-2 long-run limit: any run of this length or more fails.
LONG_RUN_LIMIT = 26


@dataclass
class FipsTestResult:
    """Outcome of one FIPS test."""

    name: str
    passed: bool
    statistic: float
    details: Dict[str, object] = field(default_factory=dict)


@dataclass
class FipsReport:
    """Outcome of the whole battery on one 20 000-bit block."""

    results: List[FipsTestResult]

    @property
    def passed(self) -> bool:
        """True when all four tests accept the block."""
        return all(result.passed for result in self.results)

    def failing_tests(self) -> List[str]:
        """Names of the tests that rejected the block."""
        return [result.name for result in self.results if not result.passed]


def _check_block(bits: BitsLike) -> np.ndarray:
    arr = to_bits(bits)
    _check_length(arr.size)
    return arr


def _check_length(n: int) -> None:
    if n != FIPS_BLOCK_BITS:
        raise ValueError(
            f"the FIPS battery requires exactly {FIPS_BLOCK_BITS} bits, got {n}"
        )


def _monobit_result(ones: int) -> FipsTestResult:
    low, high = MONOBIT_BOUNDS
    return FipsTestResult(
        name="FIPS monobit",
        passed=low < ones < high,
        statistic=float(ones),
        details={"ones": ones, "bounds": MONOBIT_BOUNDS},
    )


def monobit_test(bits: BitsLike) -> FipsTestResult:
    """FIPS monobit test: the number of ones must lie in (9725, 10275)."""
    arr = _check_block(bits)
    return _monobit_result(int(arr.sum()))


def monobit_test_from_context(context) -> FipsTestResult:
    """Context-aware monobit test reading the shared ones counter."""
    _check_length(context.n)
    return _monobit_result(context.ones)


def _poker_result(counts: np.ndarray) -> FipsTestResult:
    num_nibbles = FIPS_BLOCK_BITS // 4
    statistic = float(16.0 / num_nibbles * np.sum(counts ** 2) - num_nibbles)
    low, high = POKER_BOUNDS
    return FipsTestResult(
        name="FIPS poker",
        passed=low < statistic < high,
        statistic=statistic,
        details={"counts": counts.astype(int).tolist(), "bounds": POKER_BOUNDS},
    )


def poker_test(bits: BitsLike) -> FipsTestResult:
    """FIPS poker test on non-overlapping 4-bit nibbles."""
    arr = _check_block(bits)
    nibbles = arr.reshape(-1, 4)
    weights = np.array([8, 4, 2, 1])
    values = nibbles @ weights
    counts = np.bincount(values, minlength=16).astype(np.float64)
    return _poker_result(counts)


def poker_test_from_context(context) -> FipsTestResult:
    """Context-aware poker test reading the shared nibble-value histogram."""
    _check_length(context.n)
    return _poker_result(context.block_value_counts(4).astype(np.float64))


def _run_lengths(arr: np.ndarray) -> Dict[int, Dict[int, int]]:
    """Histogram of run lengths, separately for runs of zeros and of ones.

    Returns ``{bit_value: {capped_length: count}}`` where lengths of six or
    more are accumulated under the key 6.
    """
    histogram = {0: {length: 0 for length in range(1, 7)}, 1: {length: 0 for length in range(1, 7)}}
    if arr.size == 0:
        return histogram
    boundaries = np.flatnonzero(np.diff(arr.astype(np.int8))) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [arr.size]])
    for start, end in zip(starts, ends):
        value = int(arr[start])
        length = min(int(end - start), 6)
        histogram[value][length] += 1
    return histogram


def _runs_result(histogram: Dict[int, Dict[int, int]]) -> FipsTestResult:
    violations = []
    for value in (0, 1):
        for length, (low, high) in RUNS_BOUNDS.items():
            count = histogram[value][length]
            if not low <= count <= high:
                violations.append((value, length, count))
    return FipsTestResult(
        name="FIPS runs",
        passed=not violations,
        statistic=float(len(violations)),
        details={"histogram": histogram, "violations": violations},
    )


def runs_test(bits: BitsLike) -> FipsTestResult:
    """FIPS runs test: per-length run counts within the tabulated intervals."""
    arr = _check_block(bits)
    return _runs_result(_run_lengths(arr))


def runs_test_from_context(context) -> FipsTestResult:
    """Context-aware runs test reading the shared run-length histogram."""
    _check_length(context.n)
    return _runs_result(context.run_length_histogram(cap=6))


def _long_run_result(longest: int) -> FipsTestResult:
    return FipsTestResult(
        name="FIPS long run",
        passed=longest < LONG_RUN_LIMIT,
        statistic=float(longest),
        details={"longest_run": longest, "limit": LONG_RUN_LIMIT},
    )


def long_run_test(bits: BitsLike) -> FipsTestResult:
    """FIPS long-run test: no run of 26 or more identical bits."""
    arr = _check_block(bits)
    longest = 0
    current = 1
    for i in range(1, arr.size):
        if arr[i] == arr[i - 1]:
            current += 1
        else:
            longest = max(longest, current)
            current = 1
    longest = max(longest, current) if arr.size else 0
    return _long_run_result(longest)


def long_run_test_from_context(context) -> FipsTestResult:
    """Context-aware long-run test reading the shared longest-run value."""
    _check_length(context.n)
    return _long_run_result(context.longest_run())


def fips_battery(bits: BitsLike) -> FipsReport:
    """Run the complete FIPS 140-2 battery on one 20 000-bit block."""
    arr = _check_block(bits)
    return FipsReport(
        results=[
            monobit_test(arr),
            poker_test(arr),
            runs_test(arr),
            long_run_test(arr),
        ]
    )


class FipsBattery:
    """Engine-backed runner of the FIPS battery over shared-statistic contexts.

    Uniform counterpart of :class:`repro.nist.suite.NistSuite`: each FIPS
    test draws its raw statistic (ones count, nibble histogram, run-length
    histogram, longest run) from a
    :class:`~repro.engine.context.SequenceContext`, so the four tests share
    one scan of the block instead of four — and :meth:`run_batch` shares one
    vectorised pass across a whole batch of 20 000-bit blocks.
    """

    _CONTEXT_TESTS = (
        monobit_test_from_context,
        poker_test_from_context,
        runs_test_from_context,
        long_run_test_from_context,
    )

    def run(self, bits: BitsLike) -> FipsReport:
        """Run the battery on one 20 000-bit block via a shared context."""
        from repro.engine.context import SequenceContext

        context = bits if isinstance(bits, SequenceContext) else SequenceContext(bits)
        _check_length(context.n)
        return FipsReport(results=[test(context) for test in self._CONTEXT_TESTS])

    def run_batch(self, blocks) -> List[FipsReport]:
        """Run the battery on many blocks with one vectorised statistics pass."""
        from repro.engine.context import BatchContext, SequenceContext

        arrays = [to_bits(block) for block in blocks]
        for arr in arrays:
            _check_length(arr.size)
        if len(arrays) > 1:
            contexts = BatchContext(np.vstack(arrays)).contexts()
        else:
            contexts = [SequenceContext(arr) for arr in arrays]
        return [self.run(context) for context in contexts]
