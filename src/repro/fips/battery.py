"""The four FIPS 140-2 statistical tests on a 20 000-bit block.

These are the tests the prior hardware implementations referenced by the
paper provide.  They are deliberately simple — fixed block size, fixed
acceptance intervals, pass/fail only — which is both their appeal for
hardware and their weakness as a health test (no tunable significance level,
no sensitivity to weaknesses that need longer observation windows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.nist.common import BitsLike, to_bits

__all__ = [
    "FIPS_BLOCK_BITS",
    "FipsTestResult",
    "FipsReport",
    "monobit_test",
    "poker_test",
    "runs_test",
    "long_run_test",
    "fips_battery",
]

#: The FIPS battery always evaluates exactly 20 000 bits.
FIPS_BLOCK_BITS = 20000

#: FIPS 140-2 monobit acceptance interval (exclusive bounds).
MONOBIT_BOUNDS: Tuple[int, int] = (9725, 10275)

#: FIPS 140-2 poker-test acceptance interval (exclusive bounds).
POKER_BOUNDS: Tuple[float, float] = (2.16, 46.17)

#: FIPS 140-2 per-run-length acceptance intervals (inclusive bounds), applied
#: to runs of zeros and runs of ones separately; the final entry covers all
#: runs of length >= 6.
RUNS_BOUNDS: Dict[int, Tuple[int, int]] = {
    1: (2343, 2657),
    2: (1135, 1365),
    3: (542, 708),
    4: (251, 373),
    5: (111, 201),
    6: (111, 201),
}

#: FIPS 140-2 long-run limit: any run of this length or more fails.
LONG_RUN_LIMIT = 26


@dataclass
class FipsTestResult:
    """Outcome of one FIPS test."""

    name: str
    passed: bool
    statistic: float
    details: Dict[str, object] = field(default_factory=dict)


@dataclass
class FipsReport:
    """Outcome of the whole battery on one 20 000-bit block."""

    results: List[FipsTestResult]

    @property
    def passed(self) -> bool:
        """True when all four tests accept the block."""
        return all(result.passed for result in self.results)

    def failing_tests(self) -> List[str]:
        """Names of the tests that rejected the block."""
        return [result.name for result in self.results if not result.passed]


def _check_block(bits: BitsLike) -> np.ndarray:
    arr = to_bits(bits)
    if arr.size != FIPS_BLOCK_BITS:
        raise ValueError(
            f"the FIPS battery requires exactly {FIPS_BLOCK_BITS} bits, got {arr.size}"
        )
    return arr


def monobit_test(bits: BitsLike) -> FipsTestResult:
    """FIPS monobit test: the number of ones must lie in (9725, 10275)."""
    arr = _check_block(bits)
    ones = int(arr.sum())
    low, high = MONOBIT_BOUNDS
    return FipsTestResult(
        name="FIPS monobit",
        passed=low < ones < high,
        statistic=float(ones),
        details={"ones": ones, "bounds": MONOBIT_BOUNDS},
    )


def poker_test(bits: BitsLike) -> FipsTestResult:
    """FIPS poker test on non-overlapping 4-bit nibbles."""
    arr = _check_block(bits)
    nibbles = arr.reshape(-1, 4)
    weights = np.array([8, 4, 2, 1])
    values = nibbles @ weights
    counts = np.bincount(values, minlength=16).astype(np.float64)
    num_nibbles = FIPS_BLOCK_BITS // 4
    statistic = float(16.0 / num_nibbles * np.sum(counts ** 2) - num_nibbles)
    low, high = POKER_BOUNDS
    return FipsTestResult(
        name="FIPS poker",
        passed=low < statistic < high,
        statistic=statistic,
        details={"counts": counts.astype(int).tolist(), "bounds": POKER_BOUNDS},
    )


def _run_lengths(arr: np.ndarray) -> Dict[int, Dict[int, int]]:
    """Histogram of run lengths, separately for runs of zeros and of ones.

    Returns ``{bit_value: {capped_length: count}}`` where lengths of six or
    more are accumulated under the key 6.
    """
    histogram = {0: {length: 0 for length in range(1, 7)}, 1: {length: 0 for length in range(1, 7)}}
    if arr.size == 0:
        return histogram
    boundaries = np.flatnonzero(np.diff(arr.astype(np.int8))) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [arr.size]])
    for start, end in zip(starts, ends):
        value = int(arr[start])
        length = min(int(end - start), 6)
        histogram[value][length] += 1
    return histogram


def runs_test(bits: BitsLike) -> FipsTestResult:
    """FIPS runs test: per-length run counts within the tabulated intervals."""
    arr = _check_block(bits)
    histogram = _run_lengths(arr)
    violations = []
    for value in (0, 1):
        for length, (low, high) in RUNS_BOUNDS.items():
            count = histogram[value][length]
            if not low <= count <= high:
                violations.append((value, length, count))
    return FipsTestResult(
        name="FIPS runs",
        passed=not violations,
        statistic=float(len(violations)),
        details={"histogram": histogram, "violations": violations},
    )


def long_run_test(bits: BitsLike) -> FipsTestResult:
    """FIPS long-run test: no run of 26 or more identical bits."""
    arr = _check_block(bits)
    longest = 0
    current = 1
    for i in range(1, arr.size):
        if arr[i] == arr[i - 1]:
            current += 1
        else:
            longest = max(longest, current)
            current = 1
    longest = max(longest, current) if arr.size else 0
    return FipsTestResult(
        name="FIPS long run",
        passed=longest < LONG_RUN_LIMIT,
        statistic=float(longest),
        details={"longest_run": longest, "limit": LONG_RUN_LIMIT},
    )


def fips_battery(bits: BitsLike) -> FipsReport:
    """Run the complete FIPS 140-2 battery on one 20 000-bit block."""
    arr = _check_block(bits)
    return FipsReport(
        results=[
            monobit_test(arr),
            poker_test(arr),
            runs_test(arr),
            long_run_test(arr),
        ]
    )
