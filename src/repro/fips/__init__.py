"""FIPS 140-1 / 140-2 statistical test battery (baseline from prior work).

The hardware on-the-fly testers that precede the paper ([7], [8] in its
bibliography) implement the four FIPS 140-1/140-2 power-up tests rather than
NIST tests.  This package provides that battery as a reference baseline so
the reproduction can compare the detection capability of the paper's
NIST-based platform against the older FIPS-based approach
(``benchmarks/bench_fips_baseline.py``).

The battery operates on a single 20 000-bit block and applies fixed
acceptance intervals (no configurable α), exactly as specified in FIPS 140-2
(change notice 1 relaxes nothing we rely on here):

* monobit test — number of ones in (9 725, 10 275);
* poker test — 4-bit poker statistic in (2.16, 46.17);
* runs test — per-length run counts within tabulated intervals;
* long-run test — no run of 26 or more identical bits.
"""

from repro.fips.battery import (
    FIPS_BLOCK_BITS,
    FIPS_TEST_NAMES,
    FipsBattery,
    FipsReport,
    FipsTestResult,
    fips_battery,
    long_run_test,
    monobit_test,
    poker_test,
    runs_test,
)

__all__ = [
    "FIPS_BLOCK_BITS",
    "FIPS_TEST_NAMES",
    "FipsBattery",
    "FipsReport",
    "FipsTestResult",
    "fips_battery",
    "monobit_test",
    "poker_test",
    "runs_test",
    "long_run_test",
]
