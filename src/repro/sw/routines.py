"""Per-test software verification routines.

Each routine reads the hardware-provided values of Table II through the
memory-mapped register file, evaluates the test statistic with basic
arithmetic (through the instruction-counting processor model) and compares
it against the precomputed critical values — accepting or rejecting the
randomness hypothesis without ever computing a P-value at run time.

The verifier also implements the *consistency check* that underpins the
paper's security argument for value-based (alarm-less) reporting: the
exported counter values satisfy structural invariants (pattern counts sum to
the sequence length, per-block category counts sum to the number of blocks,
the random-walk extremes bracket its final value, ...).  An attacker who
grounds or pulls up the read-out bus forces all values to all-zeros or
all-ones, which violates these invariants and is therefore detected — unlike
grounding a single alarm wire, which silently masks every failure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.hwsim.register_file import RegisterFile
from repro.hwtests.parameters import DesignParameters
from repro.sw.critical_values import CriticalValues
from repro.sw.processor import InstructionCounts, SoftwareProcessor, SWValue
from repro.sw.pwl import PiecewiseLinearXLogX

__all__ = ["SoftwareVerdict", "SoftwareVerifier"]


@dataclass
class SoftwareVerdict:
    """Outcome of one software verification routine."""

    test_number: int
    name: str
    passed: bool
    statistic: float
    threshold: float
    details: Dict[str, object] = field(default_factory=dict)


class SoftwareVerifier:
    """Software platform running the verification routines of one design point.

    Parameters
    ----------
    params:
        The design parameters (shared with the hardware block).
    tests:
        NIST test numbers this design point implements.
    alpha:
        Level of significance; only the software depends on it (the paper's
        flexibility argument), so changing it just rebuilds this object.
    word_bits:
        Native word width of the software platform (16 in the paper).
    """

    #: Display names, aligned with the hardware units.
    _NAMES = {
        1: "Frequency (Monobit) Test",
        2: "Frequency Test within a Block",
        3: "Runs Test",
        4: "Longest Run of Ones in a Block",
        7: "Non-overlapping Template Matching Test",
        8: "Overlapping Template Matching Test",
        11: "Serial Test",
        12: "Approximate Entropy Test",
        13: "Cumulative Sums Test",
    }

    def __init__(
        self,
        params: DesignParameters,
        tests: Sequence[int],
        alpha: float = 0.01,
        word_bits: int = 16,
        pwl_segments: int = 32,
    ):
        unknown = [t for t in tests if t not in self._NAMES]
        if unknown:
            raise ValueError(f"no software routine for tests {unknown}")
        self.params = params
        self.tests = tuple(sorted(set(tests)))
        self.alpha = alpha
        self.critical_values = CriticalValues.for_design(
            params, alpha, pwl_segments=pwl_segments
        )
        self.processor = SoftwareProcessor(word_bits=word_bits)
        self.pwl = PiecewiseLinearXLogX(segments=pwl_segments)
        self._read_cache: Dict[str, SWValue] = {}

    # ------------------------------------------------------------------ reads
    def _read(self, register_file: RegisterFile, name: str) -> SWValue:
        """Read a hardware value once per verification pass (reads are cached,
        matching a software implementation that copies the register file into
        RAM before processing)."""
        if name not in self._read_cache:
            self._read_cache[name] = self.processor.read(register_file, name)
        return self._read_cache[name]

    def _read_signed(self, register_file: RegisterFile, name: str) -> SWValue:
        """Read a two's-complement value and sign-extend it."""
        raw = self._read(register_file, name)
        width = raw.bits
        sign_threshold = self.processor.constant(1 << (width - 1), width)
        if self.processor.compare_ge(raw, sign_threshold):
            modulus = self.processor.constant(1 << width, width + 1)
            return self.processor.sub(raw, modulus)
        return raw

    # ------------------------------------------------------------------ driver
    def verify(self, register_file: RegisterFile) -> Dict[int, SoftwareVerdict]:
        """Run every configured routine against the hardware values."""
        self._read_cache = {}
        verdicts: Dict[int, SoftwareVerdict] = {}
        dispatch = {
            1: self.verify_frequency,
            2: self.verify_block_frequency,
            3: self.verify_runs,
            4: self.verify_longest_run,
            7: self.verify_non_overlapping,
            8: self.verify_overlapping,
            11: self.verify_serial,
            12: self.verify_approximate_entropy,
            13: self.verify_cusum,
        }
        for number in self.tests:
            before = self.processor.counts
            self.processor.counts = InstructionCounts()
            verdict = dispatch[number](register_file)
            verdict.details["instructions"] = self.processor.counts.as_dict()
            self.processor.counts = before.merge(self.processor.counts)
            verdicts[number] = verdict
        return verdicts

    def instruction_counts(self) -> InstructionCounts:
        """Cumulative instruction tally of all routines run so far."""
        return self.processor.counts

    # ----------------------------------------------------------- shared helpers
    def _n_ones(self, register_file: RegisterFile) -> SWValue:
        """Total number of ones, from the dedicated counter or the cusum walk."""
        if "t1_n_ones" in register_file.names():
            return self._read(register_file, "t1_n_ones")
        s_final = self._read_signed(register_file, "t13_s_final")
        n_const = self.processor.constant(self.params.n, self.params.n.bit_length())
        total = self.processor.add(n_const, s_final)
        return self.processor.shift_right(total, 1)

    def _s_final(self, register_file: RegisterFile) -> SWValue:
        """The random-walk final value S_n = 2·N_ones − n."""
        if "t13_s_final" in register_file.names():
            return self._read_signed(register_file, "t13_s_final")
        ones = self._read(register_file, "t1_n_ones")
        doubled = self.processor.shift_left(ones, 1)
        n_const = self.processor.constant(self.params.n, self.params.n.bit_length())
        return self.processor.sub(doubled, n_const)

    # ------------------------------------------------------------------ test 1
    def verify_frequency(self, register_file: RegisterFile) -> SoftwareVerdict:
        """Frequency test: compare |S_final| against the precomputed limit."""
        s_final = self._s_final(register_file)
        abs_s = self.processor.absolute(s_final)
        limit = self.processor.constant(
            self.critical_values.frequency_max_abs_s, 32
        )
        passed = self.processor.compare_le(abs_s, limit)
        return SoftwareVerdict(
            1, self._NAMES[1], passed, float(abs_s.value), float(limit.value)
        )

    # ------------------------------------------------------------------ test 2
    def verify_block_frequency(self, register_file: RegisterFile) -> SoftwareVerdict:
        """Block-frequency test: Σ (2·ε_i − M)² compared against M·χ²_crit."""
        m = self.params.block_frequency_block_length
        m_const = self.processor.constant(m, m.bit_length())
        terms: List[SWValue] = []
        for i in range(self.params.block_frequency_num_blocks):
            eps = self._read(register_file, f"t2_eps_{i + 1}")
            doubled = self.processor.shift_left(eps, 1)
            deviation = self.processor.sub(doubled, m_const)
            terms.append(self.processor.square(deviation))
        total = self.processor.accumulate(terms)
        limit = self.processor.constant(self.critical_values.block_frequency_max_sum, 48)
        passed = self.processor.compare_le(total, limit)
        return SoftwareVerdict(
            2, self._NAMES[2], passed, float(total.value), float(limit.value)
        )

    # ------------------------------------------------------------------ test 3
    def verify_runs(self, register_file: RegisterFile) -> SoftwareVerdict:
        """Runs test: pre-test on the bias, then the runs-count window."""
        n = self.params.n
        log2n = n.bit_length() - 1
        s_final = self._s_final(register_file)
        abs_s = self.processor.absolute(s_final)
        pretest_limit = self.processor.constant(self.critical_values.runs_pretest_limit, 32)
        if not self.processor.compare_lt(abs_s, pretest_limit):
            return SoftwareVerdict(
                3,
                self._NAMES[3],
                False,
                float(abs_s.value),
                float(pretest_limit.value),
                details={"pretest_failed": True},
            )
        ones = self._n_ones(register_file)
        n_const = self.processor.constant(n, n.bit_length())
        zeros = self.processor.sub(n_const, ones)
        runs = self._read(register_file, "t3_n_runs")
        product = self.processor.mul(ones, zeros)
        # |V·n − 2·N_ones·N_zeros| <= coefficient · N_ones · N_zeros / n
        lhs = self.processor.absolute(
            self.processor.sub(self.processor.shift_left(runs, log2n),
                               self.processor.shift_left(product, 1))
        )
        coefficient = self.processor.constant(self.critical_values.runs_coefficient, 32)
        rhs = self.processor.shift_right(self.processor.mul(coefficient, product), log2n)
        passed = self.processor.compare_le(lhs, rhs)
        return SoftwareVerdict(
            3,
            self._NAMES[3],
            passed,
            float(lhs.value),
            float(rhs.value),
            details={"pretest_failed": False},
        )

    # ------------------------------------------------------------------ test 4
    def verify_longest_run(self, register_file: RegisterFile) -> SoftwareVerdict:
        """Longest-run test: χ² over the category counters."""
        cv = self.critical_values
        num_categories = len(cv.longest_run_inverse_pi)
        terms: List[SWValue] = []
        for i in range(num_categories):
            nu = self._read(register_file, f"t4_nu_{i}")
            # expected_i = N·π_i; inverse_pi stores 1/(N·π_i) so N·π_i = 1/inverse_pi.
            expected = self.processor.constant(1.0 / cv.longest_run_inverse_pi[i], 32)
            deviation = self.processor.sub(nu, expected)
            squared = self.processor.square(deviation)
            inverse = self.processor.constant(cv.longest_run_inverse_pi[i], 16)
            terms.append(self.processor.mul(squared, inverse))
        chi2 = self.processor.accumulate(terms)
        limit = self.processor.constant(cv.longest_run_max_chi2, 32)
        passed = self.processor.compare_le(chi2, limit)
        return SoftwareVerdict(
            4, self._NAMES[4], passed, float(chi2.value), float(limit.value)
        )

    # ------------------------------------------------------------------ test 7
    def verify_non_overlapping(self, register_file: RegisterFile) -> SoftwareVerdict:
        """Non-overlapping template test: χ² over the per-block match counts."""
        cv = self.critical_values
        mean = self.processor.constant(cv.nonoverlapping_mean, 32)
        inverse_variance = self.processor.constant(cv.nonoverlapping_inverse_variance, 16)
        terms: List[SWValue] = []
        for i in range(self.params.nonoverlapping_num_blocks):
            w = self._read(register_file, f"t7_w_{i + 1}")
            deviation = self.processor.sub(w, mean)
            squared = self.processor.square(deviation)
            terms.append(self.processor.mul(squared, inverse_variance))
        chi2 = self.processor.accumulate(terms)
        limit = self.processor.constant(cv.nonoverlapping_max_chi2, 32)
        passed = self.processor.compare_le(chi2, limit)
        return SoftwareVerdict(
            7, self._NAMES[7], passed, float(chi2.value), float(limit.value)
        )

    # ------------------------------------------------------------------ test 8
    def verify_overlapping(self, register_file: RegisterFile) -> SoftwareVerdict:
        """Overlapping template test: χ² over the occurrence-category counters."""
        cv = self.critical_values
        terms: List[SWValue] = []
        for i in range(len(cv.overlapping_inverse_pi)):
            nu = self._read(register_file, f"t8_nu_{i}")
            expected = self.processor.constant(1.0 / cv.overlapping_inverse_pi[i], 32)
            deviation = self.processor.sub(nu, expected)
            squared = self.processor.square(deviation)
            inverse = self.processor.constant(cv.overlapping_inverse_pi[i], 16)
            terms.append(self.processor.mul(squared, inverse))
        chi2 = self.processor.accumulate(terms)
        limit = self.processor.constant(cv.overlapping_max_chi2, 32)
        passed = self.processor.compare_le(chi2, limit)
        return SoftwareVerdict(
            8, self._NAMES[8], passed, float(chi2.value), float(limit.value)
        )

    # ------------------------------------------------------------------ test 11
    def _psi_squared(self, register_file: RegisterFile, length: int) -> SWValue:
        """ψ²_m = (2^m / n)·Σ ν_i² − n from the hardware pattern counters."""
        n = self.params.n
        log2n = n.bit_length() - 1
        terms = []
        for value in range(1 << length):
            name = f"t11_nu{length}_{value:0{length}b}"
            nu = self._read(register_file, name)
            terms.append(self.processor.square(nu))
        total = self.processor.accumulate(terms)
        scaled = self.processor.shift_right(total, log2n - length)
        n_const = self.processor.constant(n, n.bit_length())
        return self.processor.sub(scaled, n_const)

    def verify_serial(self, register_file: RegisterFile) -> SoftwareVerdict:
        """Serial test: ∇ψ² and ∇²ψ² against their χ² critical values."""
        cv = self.critical_values
        m = self.params.serial_m
        psi_m = self._psi_squared(register_file, m)
        psi_m1 = self._psi_squared(register_file, m - 1)
        psi_m2 = self._psi_squared(register_file, m - 2)
        del1 = self.processor.sub(psi_m, psi_m1)
        twice_psi_m1 = self.processor.shift_left(psi_m1, 1)
        del2 = self.processor.add(self.processor.sub(psi_m, twice_psi_m1), psi_m2)
        limit1 = self.processor.constant(cv.serial_max_del1, 32)
        limit2 = self.processor.constant(cv.serial_max_del2, 32)
        passed1 = self.processor.compare_le(del1, limit1)
        passed2 = self.processor.compare_le(del2, limit2)
        return SoftwareVerdict(
            11,
            self._NAMES[11],
            passed1 and passed2,
            float(del1.value),
            float(limit1.value),
            details={
                "del1": float(del1.value),
                "del2": float(del2.value),
                "limit_del1": float(limit1.value),
                "limit_del2": float(limit2.value),
            },
        )

    # ------------------------------------------------------------------ test 12
    def _phi(self, register_file: RegisterFile, length: int, prefix: str) -> SWValue:
        """φ^(m) = Σ (ν_i/n)·ln(ν_i/n) evaluated with the PWL approximation."""
        n = self.params.n
        log2n = n.bit_length() - 1
        terms: List[SWValue] = []
        for value in range(1 << length):
            name = f"{prefix}{length}_{value:0{length}b}"
            nu = self._read(register_file, name)
            x = self.processor.shift_right(nu, log2n)  # ν / n, exact
            approx = self.pwl.evaluate_counted(float(x.value), self.processor)
            terms.append(self.processor.constant(approx, 24))
        total = self.processor.accumulate(terms)
        # φ = −Σ g(x) because the PWL approximates g(x) = −x·ln(x).
        zero = self.processor.constant(0.0, 24)
        return self.processor.sub(zero, total)

    def verify_approximate_entropy(self, register_file: RegisterFile) -> SoftwareVerdict:
        """Approximate-entropy test via the PWL x·log(x) approximation."""
        cv = self.critical_values
        m = self.params.serial_m - 1
        prefix = "t11_nu" if any(
            name.startswith("t11_nu") for name in register_file.names()
        ) else "t12_nu"
        phi_m = self._phi(register_file, m, prefix)
        phi_m1 = self._phi(register_file, m + 1, prefix)
        apen = self.processor.sub(phi_m, phi_m1)
        ln2 = self.processor.constant(math.log(2.0), 24)
        gap = self.processor.sub(ln2, apen)
        chi2 = self.processor.shift_left(gap, self.params.n.bit_length())  # 2n·gap
        limit = self.processor.constant(cv.approximate_entropy_max_chi2, 32)
        passed = self.processor.compare_le(chi2, limit)
        return SoftwareVerdict(
            12,
            self._NAMES[12],
            passed,
            float(chi2.value),
            float(limit.value),
            details={"apen": float(apen.value)},
        )

    # ------------------------------------------------------------------ test 13
    def verify_cusum(self, register_file: RegisterFile) -> SoftwareVerdict:
        """Cumulative-sums test, both forward and backward modes."""
        cv = self.critical_values
        s_max = self._read_signed(register_file, "t13_s_max")
        s_min = self._read_signed(register_file, "t13_s_min")
        s_final = self._read_signed(register_file, "t13_s_final")
        z_forward = self.processor.maximum(
            self.processor.absolute(s_max), self.processor.absolute(s_min)
        )
        z_backward = self.processor.maximum(
            self.processor.sub(s_final, s_min), self.processor.sub(s_max, s_final)
        )
        limit_forward = self.processor.constant(cv.cusum_max_z_forward, 32)
        limit_backward = self.processor.constant(cv.cusum_max_z_backward, 32)
        passed_forward = self.processor.compare_le(z_forward, limit_forward)
        passed_backward = self.processor.compare_le(z_backward, limit_backward)
        return SoftwareVerdict(
            13,
            self._NAMES[13],
            passed_forward and passed_backward,
            float(z_forward.value),
            float(limit_forward.value),
            details={
                "z_forward": float(z_forward.value),
                "z_backward": float(z_backward.value),
                "passed_forward": passed_forward,
                "passed_backward": passed_backward,
            },
        )

    # --------------------------------------------------------------- consistency
    def consistency_check(self, register_file: RegisterFile) -> List[str]:
        """Structural invariants of the exported values (anti-probing check).

        Returns a list of violated-invariant descriptions (empty when the
        read-out looks structurally sane).  All-zero or all-one read-outs —
        the result of grounding or pulling up the read bus — violate at least
        one invariant in every design point.
        """
        names = register_file.names()
        values = {name: register_file.read(name) for name in names}
        violations: List[str] = []
        n = self.params.n

        def signed(name: str) -> int:
            width = register_file.width_of(name)
            raw = values[name]
            return raw - (1 << width) if raw >= (1 << (width - 1)) else raw

        if "t13_s_final" in values:
            s_max, s_min, s_final = signed("t13_s_max"), signed("t13_s_min"), signed("t13_s_final")
            if not (s_min <= s_final <= s_max):
                violations.append("cusum extremes do not bracket the final value")
            if abs(s_final) > n or s_max > n or s_min < -n:
                violations.append("cusum walk exceeds the sequence length")
            if (s_final - n) % 2 != 0:
                violations.append("cusum final value has the wrong parity")
            if s_max < 0 and s_min > 0:
                violations.append("cusum extremes have impossible signs")
        if "t3_n_runs" in values:
            if not (0 < values["t3_n_runs"] <= n):
                violations.append("runs count outside (0, n]")
        block_eps = [values[k] for k in names if k.startswith("t2_eps_")]
        if block_eps:
            m = self.params.block_frequency_block_length
            if any(e > m for e in block_eps):
                violations.append("a block ones-count exceeds the block length")
            if "t13_s_final" in values:
                derived_ones = (n + signed("t13_s_final")) // 2
                if sum(block_eps) != derived_ones:
                    violations.append("block ones-counts do not sum to the total ones count")
        t4_counts = [values[k] for k in names if k.startswith("t4_nu_")]
        if t4_counts and sum(t4_counts) != self.params.longest_run_num_blocks:
            violations.append("longest-run category counts do not sum to the block count")
        t8_counts = [values[k] for k in names if k.startswith("t8_nu_")]
        if t8_counts and sum(t8_counts) != self.params.overlapping_num_blocks:
            violations.append("overlapping-template category counts do not sum to the block count")
        for length in (self.params.serial_m, self.params.serial_m - 1, self.params.serial_m - 2):
            counts = [values[k] for k in names if k.startswith(f"t11_nu{length}_")]
            if counts and sum(counts) != n:
                violations.append(f"{length}-bit pattern counts do not sum to n")
        return violations
