"""Model of the 16-bit software platform.

The verification routines (:mod:`repro.sw.routines`) perform all their
arithmetic through a :class:`SoftwareProcessor`.  The processor computes the
exact result (Python numbers — modelling a fixed-point implementation with
sufficient precision) while simultaneously accounting how many 16-bit
instructions of each class a real microcontroller would need: an addition of
two 40-bit quantities on a 16-bit core costs three ADDs, a 24×24-bit
multiplication costs four 16×16 MULs plus the partial-product additions, and
so on.  These counts regenerate the software rows of Table III.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Sequence, Union

from repro.hwsim.register_file import RegisterFile

__all__ = ["InstructionCounts", "SWValue", "SoftwareProcessor"]

Number = Union[int, float]


@dataclass
class InstructionCounts:
    """Tally of 16-bit instructions, one field per row of Table III (SW part)."""

    add: int = 0
    sub: int = 0
    mul: int = 0
    sqr: int = 0
    shift: int = 0
    comp: int = 0
    lut: int = 0
    read: int = 0

    def total(self) -> int:
        """Total number of counted instructions."""
        return (
            self.add + self.sub + self.mul + self.sqr
            + self.shift + self.comp + self.lut + self.read
        )

    def as_dict(self) -> Dict[str, int]:
        """The counts as a plain dictionary (upper-case keys as in the paper)."""
        return {
            "ADD": self.add,
            "SUB": self.sub,
            "MUL": self.mul,
            "SQR": self.sqr,
            "SHIFT": self.shift,
            "COMP": self.comp,
            "LUT": self.lut,
            "READ": self.read,
        }

    def merge(self, other: "InstructionCounts") -> "InstructionCounts":
        """Element-wise sum of two tallies."""
        return InstructionCounts(
            add=self.add + other.add,
            sub=self.sub + other.sub,
            mul=self.mul + other.mul,
            sqr=self.sqr + other.sqr,
            shift=self.shift + other.shift,
            comp=self.comp + other.comp,
            lut=self.lut + other.lut,
            read=self.read + other.read,
        )


@dataclass(frozen=True)
class SWValue:
    """A value manipulated by the software, annotated with its bit width.

    The width is what determines how many 16-bit word operations an
    arithmetic step costs; the value itself is kept exact.
    """

    value: Number
    bits: int

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError("bits must be positive")

    @property
    def words(self) -> int:
        """Number of 16-bit words needed to hold this value."""
        return max(1, math.ceil(self.bits / 16))

    def __repr__(self) -> str:
        return f"SWValue({self.value}, bits={self.bits})"


class SoftwareProcessor:
    """Executes routine arithmetic while counting 16-bit instructions.

    Parameters
    ----------
    word_bits:
        Native word size of the platform (16 for the paper's evaluation;
        32 or 64 reduce the instruction counts as discussed in Section IV).
    """

    def __init__(self, word_bits: int = 16):
        if word_bits not in (8, 16, 32, 64):
            raise ValueError("word_bits must be 8, 16, 32 or 64")
        self.word_bits = word_bits
        self.counts = InstructionCounts()

    # -- helpers --------------------------------------------------------------
    def _words(self, value: SWValue) -> int:
        return max(1, math.ceil(value.bits / self.word_bits))

    def reset_counts(self) -> None:
        """Clear the instruction tally."""
        self.counts = InstructionCounts()

    # -- value construction ----------------------------------------------------
    def constant(self, value: Number, bits: int) -> SWValue:
        """A constant from program memory (free: folded into the instruction)."""
        return SWValue(value, bits)

    def read(self, register_file: RegisterFile, name: str) -> SWValue:
        """Read an exported hardware value through the memory-mapped interface.

        Costs one READ instruction per bus word.
        """
        width = register_file.width_of(name)
        words = max(1, math.ceil(width / self.word_bits))
        self.counts.read += words
        return SWValue(register_file.read(name), width)

    def read_all(self, register_file: RegisterFile, names: Iterable[str]) -> Dict[str, SWValue]:
        """Read several exported values."""
        return {name: self.read(register_file, name) for name in names}

    # -- arithmetic ---------------------------------------------------------------
    def add(self, a: SWValue, b: SWValue) -> SWValue:
        """Addition; one ADD per result word (carry propagation)."""
        bits = max(a.bits, b.bits) + 1
        self.counts.add += max(1, math.ceil(bits / self.word_bits))
        return SWValue(a.value + b.value, bits)

    def sub(self, a: SWValue, b: SWValue) -> SWValue:
        """Subtraction; one SUB per result word (borrow propagation)."""
        bits = max(a.bits, b.bits) + 1
        self.counts.sub += max(1, math.ceil(bits / self.word_bits))
        return SWValue(a.value - b.value, bits)

    def accumulate(self, values: Sequence[SWValue]) -> SWValue:
        """Sum a sequence of values with a running accumulator."""
        if not values:
            return SWValue(0, 1)
        total = values[0]
        for value in values[1:]:
            total = self.add(total, value)
        return total

    def mul(self, a: SWValue, b: SWValue) -> SWValue:
        """Multiplication; schoolbook decomposition into word×word MULs.

        A Wa×Wb-word product needs Wa·Wb word multiplications plus
        (Wa·Wb − 1) additions to accumulate the partial products.
        """
        wa, wb = self._words(a), self._words(b)
        self.counts.mul += wa * wb
        self.counts.add += max(0, wa * wb - 1)
        return SWValue(a.value * b.value, a.bits + b.bits)

    def square(self, a: SWValue) -> SWValue:
        """Squaring; symmetric schoolbook (about half the MULs of a full multiply)."""
        wa = self._words(a)
        self.counts.sqr += wa * (wa + 1) // 2
        self.counts.add += max(0, wa * (wa + 1) // 2 - 1)
        return SWValue(a.value * a.value, 2 * a.bits)

    def shift_left(self, a: SWValue, amount: int) -> SWValue:
        """Left shift by a constant; one SHIFT per operand word."""
        if amount < 0:
            raise ValueError("shift amount must be non-negative")
        self.counts.shift += self._words(a)
        return SWValue(a.value * (1 << amount), a.bits + amount)

    def shift_right(self, a: SWValue, amount: int) -> SWValue:
        """Right shift by a constant; one SHIFT per operand word.

        The value is divided exactly (the routines only shift right by
        amounts that preserve exactness, e.g. dividing by the power-of-two
        sequence length).
        """
        if amount < 0:
            raise ValueError("shift amount must be non-negative")
        self.counts.shift += self._words(a)
        return SWValue(a.value / (1 << amount), max(1, a.bits - amount))

    def compare_le(self, a: SWValue, b: SWValue) -> bool:
        """Comparison a <= b; one COMP per word of the wider operand."""
        self.counts.comp += max(self._words(a), self._words(b))
        return a.value <= b.value

    def compare_ge(self, a: SWValue, b: SWValue) -> bool:
        """Comparison a >= b."""
        self.counts.comp += max(self._words(a), self._words(b))
        return a.value >= b.value

    def compare_lt(self, a: SWValue, b: SWValue) -> bool:
        """Comparison a < b."""
        self.counts.comp += max(self._words(a), self._words(b))
        return a.value < b.value

    def absolute(self, a: SWValue) -> SWValue:
        """Absolute value: a sign test plus (possibly) a negation."""
        self.counts.comp += 1
        if a.value < 0:
            self.counts.sub += self._words(a)
            return SWValue(-a.value, a.bits)
        return a

    def maximum(self, a: SWValue, b: SWValue) -> SWValue:
        """Maximum of two values (one comparison, no data movement counted)."""
        self.counts.comp += max(self._words(a), self._words(b))
        return a if a.value >= b.value else b

    def lut_lookup(self, table: Sequence[Number], index: int, result_bits: int = 16) -> SWValue:
        """Table lookup from program memory; one LUT instruction."""
        if not 0 <= index < len(table):
            raise IndexError(f"LUT index {index} out of range (table size {len(table)})")
        self.counts.lut += 1
        return SWValue(table[index], result_bits)
