"""Precomputed critical values (the constants burnt into program memory).

Typical software implementations of the NIST tests compute a P-value with
``erfc``/``igamc`` and compare it against α.  The paper (like [9], [12],
[13]) instead inverts the comparison once, at design time: for the chosen α
the *critical value of the test statistic* is precomputed and stored as a
constant, so the runtime software only performs multiplications, additions
and comparisons.  This module performs that design-time computation (with
scipy standing in for the offline calculation the designers would run on a
workstation) for every statistic the routines of :mod:`repro.sw.routines`
evaluate.

Because the hardware never sees α, changing the level of significance means
recomputing this table and updating the software — exactly the flexibility
argument of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

from scipy import special as _special

from repro.hwtests.parameters import DesignParameters
from repro.nist.cusum import cusum_p_value
from repro.nist.longest_run import LONGEST_RUN_TABLES
from repro.nist.overlapping import overlapping_probabilities

__all__ = [
    "CriticalValues",
    "chi_squared_critical",
    "approximate_entropy_guard_band",
    "NIST_ALPHA_RANGE",
]

#: The α interval recommended by NIST (Section II-A of the paper).
NIST_ALPHA_RANGE: Tuple[float, float] = (0.001, 0.01)


def chi_squared_critical(alpha: float, degrees_of_freedom: float) -> float:
    """The χ² value whose survival probability is exactly ``alpha``.

    ``igamc(df / 2, x / 2) = alpha``  ⇔  ``x = 2 · gammainccinv(df / 2, alpha)``.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must lie strictly between 0 and 1")
    if degrees_of_freedom <= 0:
        raise ValueError("degrees_of_freedom must be positive")
    return float(2.0 * _special.gammainccinv(degrees_of_freedom / 2.0, alpha))


def _erfc_inverse(alpha: float) -> float:
    """x such that erfc(x) = alpha."""
    return float(_special.erfcinv(alpha))


@dataclass(frozen=True)
class CriticalValues:
    """All precomputed constants for one design point and one α.

    Attributes mirror the per-test routines; see :mod:`repro.sw.routines`
    for how each constant is used.
    """

    alpha: float
    params: DesignParameters
    #: Test 1 — accept iff |S_final| <= this.
    frequency_max_abs_s: float
    #: Test 2 — accept iff Σ (2·ε_i − M)² <= this (integer-domain statistic).
    block_frequency_max_sum: float
    #: Test 3 — pre-test: fail iff |2·N_ones − n| >= this.
    runs_pretest_limit: float
    #: Test 3 — accept iff |V·n − 2·N_ones·N_zeros| <= this · N_ones·N_zeros / n.
    runs_coefficient: float
    #: Test 4 — 1/(N·π_i) constants and the χ² acceptance threshold.
    longest_run_inverse_pi: Tuple[float, ...]
    longest_run_max_chi2: float
    #: Test 7 — per-block mean, 1/σ² and the χ² acceptance threshold.
    nonoverlapping_mean: float
    nonoverlapping_inverse_variance: float
    nonoverlapping_max_chi2: float
    #: Test 8 — 1/(N·π_i) constants and the χ² acceptance threshold.
    overlapping_inverse_pi: Tuple[float, ...]
    overlapping_max_chi2: float
    #: Test 11 — acceptance thresholds for ∇ψ² and ∇²ψ².
    serial_max_del1: float
    serial_max_del2: float
    #: Test 12 — acceptance threshold for χ² = 2n(ln 2 − ApEn), including the
    #: guard band that absorbs the PWL approximation error (see
    #: :func:`approximate_entropy_guard_band`).
    approximate_entropy_max_chi2: float
    #: Test 13 — accept iff the maximal excursion z <= this (per mode).
    cusum_max_z_forward: int
    cusum_max_z_backward: int

    @classmethod
    def for_design(
        cls,
        params: DesignParameters,
        alpha: float = 0.01,
        pwl_segments: int = 32,
    ) -> "CriticalValues":
        """Compute the constant table for a design point at level ``alpha``.

        ``pwl_segments`` is the resolution of the x·log(x) approximation used
        by the approximate-entropy routine; it enters the guard band added to
        that test's critical value.
        """
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must lie strictly between 0 and 1")
        n = params.n

        # Test 1: p = erfc(|S| / sqrt(2n)) >= alpha  <=>  |S| <= sqrt(2n)·erfcinv(alpha).
        frequency_max_abs_s = math.sqrt(2.0 * n) * _erfc_inverse(alpha)

        # Test 2: chi2 = (1/M)·Σ(2ε−M)²; accept iff Σ(2ε−M)² <= M·chi2_crit(N).
        m_bf = params.block_frequency_block_length
        n_bf = params.block_frequency_num_blocks
        block_frequency_max_sum = m_bf * chi_squared_critical(alpha, n_bf)

        # Test 3: pre-test |π − 1/2| >= 2/sqrt(n)  <=>  |2·N_ones − n| >= 4·sqrt(n).
        runs_pretest_limit = 4.0 * math.sqrt(n)
        # Main: |V − 2nπ(1−π)| <= 2·sqrt(2n)·erfcinv(alpha)·π(1−π).
        runs_coefficient = 2.0 * math.sqrt(2.0 * n) * _erfc_inverse(alpha)

        # Test 4.
        k4, _v4, pi4 = LONGEST_RUN_TABLES[params.longest_run_block_length]
        n4 = params.longest_run_num_blocks
        longest_run_inverse_pi = tuple(1.0 / (n4 * p) for p in pi4)
        longest_run_max_chi2 = chi_squared_critical(alpha, k4)

        # Test 7.
        m7 = params.template_length
        big_m7 = params.nonoverlapping_block_length
        mean7 = (big_m7 - m7 + 1) / (1 << m7)
        var7 = big_m7 * (1.0 / (1 << m7) - (2.0 * m7 - 1.0) / (1 << (2 * m7)))
        nonoverlapping_max_chi2 = chi_squared_critical(alpha, params.nonoverlapping_num_blocks)

        # Test 8.
        k8 = 5
        pi8 = overlapping_probabilities(params.overlapping_block_length, m7, k8)
        n8 = max(params.overlapping_num_blocks, 1)
        overlapping_inverse_pi = tuple(1.0 / (n8 * p) for p in pi8)
        overlapping_max_chi2 = chi_squared_critical(alpha, k8)

        # Test 11: p1 uses df = 2^(m−1), p2 uses df = 2^(m−2).
        m11 = params.serial_m
        serial_max_del1 = chi_squared_critical(alpha, 2 ** (m11 - 1))
        serial_max_del2 = chi_squared_critical(alpha, 2 ** (m11 - 2))

        # Test 12: ApEn block length m = serial_m − 1; df = 2^m.  The χ²
        # statistic computed through the PWL approximation carries an
        # approximation error amplified by the 2n factor, so the stored
        # critical value includes a design-time guard band.
        m12 = params.serial_m - 1
        approximate_entropy_max_chi2 = chi_squared_critical(alpha, 2 ** m12) + (
            approximate_entropy_guard_band(n, m12, pwl_segments)
        )

        # Test 13: largest z whose P-value is still >= alpha (per mode the
        # formula is identical — it only depends on z and n).
        cusum_max_z = _largest_accepted_excursion(n, alpha)

        return cls(
            alpha=alpha,
            params=params,
            frequency_max_abs_s=frequency_max_abs_s,
            block_frequency_max_sum=block_frequency_max_sum,
            runs_pretest_limit=runs_pretest_limit,
            runs_coefficient=runs_coefficient,
            longest_run_inverse_pi=longest_run_inverse_pi,
            longest_run_max_chi2=longest_run_max_chi2,
            nonoverlapping_mean=mean7,
            nonoverlapping_inverse_variance=1.0 / var7,
            nonoverlapping_max_chi2=nonoverlapping_max_chi2,
            overlapping_inverse_pi=overlapping_inverse_pi,
            overlapping_max_chi2=overlapping_max_chi2,
            serial_max_del1=serial_max_del1,
            serial_max_del2=serial_max_del2,
            approximate_entropy_max_chi2=approximate_entropy_max_chi2,
            cusum_max_z_forward=cusum_max_z,
            cusum_max_z_backward=cusum_max_z,
        )

    def as_table(self) -> Dict[str, object]:
        """The constants as a flat dictionary (what would go to program memory)."""
        return {
            "alpha": self.alpha,
            "frequency_max_abs_s": self.frequency_max_abs_s,
            "block_frequency_max_sum": self.block_frequency_max_sum,
            "runs_pretest_limit": self.runs_pretest_limit,
            "runs_coefficient": self.runs_coefficient,
            "longest_run_inverse_pi": list(self.longest_run_inverse_pi),
            "longest_run_max_chi2": self.longest_run_max_chi2,
            "nonoverlapping_mean": self.nonoverlapping_mean,
            "nonoverlapping_inverse_variance": self.nonoverlapping_inverse_variance,
            "nonoverlapping_max_chi2": self.nonoverlapping_max_chi2,
            "overlapping_inverse_pi": list(self.overlapping_inverse_pi),
            "overlapping_max_chi2": self.overlapping_max_chi2,
            "serial_max_del1": self.serial_max_del1,
            "serial_max_del2": self.serial_max_del2,
            "approximate_entropy_max_chi2": self.approximate_entropy_max_chi2,
            "cusum_max_z_forward": self.cusum_max_z_forward,
            "cusum_max_z_backward": self.cusum_max_z_backward,
        }


def approximate_entropy_guard_band(n: int, m: int, segments: int = 32) -> float:
    """Guard band absorbing the PWL error in the approximate-entropy χ².

    The software evaluates Σ (ν/n)·log(ν/n) with a ``segments``-segment PWL
    approximation whose chord error near an argument p is about
    ``|g''(p)|·|δ|·(h − |δ|)/2`` (h = segment width, δ = distance from the
    nearest breakpoint).  Under the randomness hypothesis the arguments
    fluctuate around p = 2^{-m} and 2^{-(m+1)} — which for the paper's
    parameters are themselves breakpoints — with standard deviation
    ``sqrt(p(1−p)/n)``, so the *expected* per-term error can be bounded at
    design time.  The χ² statistic multiplies the accumulated error by 2n;
    the guard band is three times that expected inflation, and is added to
    the stored critical value so that the PWL-based routine does not raise
    false alarms on a healthy source.  The price is reduced sensitivity of
    the approximate-entropy test to *subtle* weaknesses (gross failures —
    locked oscillators, strong correlation, stuck bits — produce statistics
    orders of magnitude above the guarded threshold); this trade-off is
    inherent to the paper's 32-segment approximation and is quantified by
    ``benchmarks/bench_fig3_pwl.py`` and the detection benchmark.
    """
    if segments < 1:
        raise ValueError("segments must be positive")
    h = 1.0 / segments
    safety = 3.0
    total_expected_error = 0.0
    for length in (m, m + 1):
        p = 2.0 ** (-length)
        sigma = math.sqrt(p * (1.0 - p) / n)
        curvature = 1.0 / p
        # Expected chord error per term: the small-fluctuation estimate,
        # capped by the worst-case mid-segment error h²·|g''|/8.
        per_term = min(0.5 * curvature * sigma * 0.8 * h, curvature * h * h / 8.0)
        total_expected_error += (1 << length) * per_term
    return safety * 2.0 * n * total_expected_error


@lru_cache(maxsize=64)
def _largest_accepted_excursion(n: int, alpha: float) -> int:
    """Largest integer excursion z with cusum P-value still >= alpha."""
    low, high = 1, n
    # The cusum P-value is the survival probability of the maximal excursion,
    # i.e. monotonically decreasing in z; binary-search the acceptance boundary.
    if cusum_p_value(high, n) >= alpha:
        return high
    while low < high:
        mid = (low + high + 1) // 2
        if cusum_p_value(mid, n) >= alpha:
            low = mid
        else:
            high = mid - 1
    return low
