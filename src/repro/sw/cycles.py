"""Cycle-count models for the software platform.

Table IV of the paper reports the latency of the software routine when
executed on an openMSP430 soft core.  Instruction counts are converted to
cycles with a per-instruction-class cost profile; three profiles are
provided, covering the platforms Section IV mentions (a 16-bit
microcontroller with and without a hardware multiplier, and a 32-bit
embedded processor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sw.processor import InstructionCounts

__all__ = ["CycleProfile", "CYCLE_PROFILES", "estimate_cycles"]


@dataclass(frozen=True)
class CycleProfile:
    """Cycles per instruction class for one software platform.

    The numbers are coarse but representative: MSP430-class cores execute
    register/register ALU operations in a single cycle but need several
    cycles for memory operands and peripheral reads; without the hardware
    multiplier peripheral, a 16×16 multiplication is a ~150-cycle library
    call.
    """

    name: str
    add: float
    sub: float
    mul: float
    sqr: float
    shift: float
    comp: float
    lut: float
    read: float
    word_bits: int = 16
    description: str = ""

    def cycles(self, counts: InstructionCounts) -> float:
        """Total cycle estimate for an instruction tally."""
        return (
            counts.add * self.add
            + counts.sub * self.sub
            + counts.mul * self.mul
            + counts.sqr * self.sqr
            + counts.shift * self.shift
            + counts.comp * self.comp
            + counts.lut * self.lut
            + counts.read * self.read
        )


#: The cycle profiles used by the latency benchmarks.
CYCLE_PROFILES: Dict[str, CycleProfile] = {
    "openmsp430_hw_mult": CycleProfile(
        name="openmsp430_hw_mult",
        add=2.0, sub=2.0, mul=8.0, sqr=8.0, shift=2.0, comp=2.0, lut=5.0, read=4.0,
        word_bits=16,
        description="openMSP430 with the 16x16 hardware multiplier peripheral",
    ),
    "openmsp430_sw_mult": CycleProfile(
        name="openmsp430_sw_mult",
        add=2.0, sub=2.0, mul=150.0, sqr=150.0, shift=2.0, comp=2.0, lut=5.0, read=4.0,
        word_bits=16,
        description="openMSP430 with a software multiplication library",
    ),
    "embedded_32bit": CycleProfile(
        name="embedded_32bit",
        add=1.0, sub=1.0, mul=3.0, sqr=3.0, shift=1.0, comp=1.0, lut=3.0, read=3.0,
        word_bits=32,
        description="generic 32-bit embedded core (Cortex-M class)",
    ),
    "avr8": CycleProfile(
        name="avr8",
        add=4.0, sub=4.0, mul=20.0, sqr=20.0, shift=4.0, comp=4.0, lut=8.0, read=6.0,
        word_bits=8,
        description="8-bit AVR-class microcontroller (16-bit words emulated in pairs)",
    ),
    "riscv32_embedded": CycleProfile(
        name="riscv32_embedded",
        add=1.0, sub=1.0, mul=5.0, sqr=5.0, shift=1.0, comp=1.0, lut=3.0, read=4.0,
        word_bits=32,
        description="RV32IM embedded core with a multi-cycle multiplier",
    ),
}


def estimate_cycles(counts: InstructionCounts, profile: str = "openmsp430_hw_mult") -> float:
    """Cycle estimate for an instruction tally under a named profile."""
    if profile not in CYCLE_PROFILES:
        raise ValueError(f"unknown cycle profile {profile!r}; choose from {sorted(CYCLE_PROFILES)}")
    return CYCLE_PROFILES[profile].cycles(counts)
