"""Piece-wise-linear approximation of x·log(x) (Fig. 3 of the paper).

The approximate-entropy routine needs Σ (ν/n)·log(ν/n); evaluating a
logarithm on a small microcontroller is expensive, so the paper replaces
x·log(x) by a 32-segment piece-wise-linear approximation whose segment
parameters live in program memory.  On the processor model this costs one
LUT instruction (fetch slope/intercept), one MUL and one ADD per evaluation —
which is why the LUT row of Table III reads exactly 24 for the designs
containing the approximate-entropy test (16 four-bit terms + 8 three-bit
terms).

Sign and base conventions: the approximation is built for
``g(x) = -x·ln(x)`` on (0, 1] (a non-negative function with maximum
1/e ≈ 0.368, matching the curve of Fig. 3); callers negate as needed.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["xlogx", "PiecewiseLinearXLogX"]


def xlogx(x: float) -> float:
    """The exact function g(x) = -x·ln(x), extended with g(0) = 0."""
    if x < 0 or x > 1:
        raise ValueError("x must lie in [0, 1]")
    if x == 0.0:
        return 0.0
    return -x * math.log(x)


class PiecewiseLinearXLogX:
    """32-segment PWL approximation of g(x) = -x·ln(x) on [0, 1].

    Parameters
    ----------
    segments:
        Number of linear segments (the paper uses 32).
    breakpoints:
        Optional explicit breakpoints (ascending, from 0.0 to 1.0).  The
        default is uniform spacing, which is what a microcontroller indexes
        with the top ``log2(segments)`` bits of the fixed-point argument.

    Notes
    -----
    With 32 uniform segments the maximum absolute error is ≈ 0.0115
    (attained inside the first segment, near x = 1/(32e)), i.e. about 3 % of
    the function's peak value 1/e — the paper's "less than 3 % error" claim
    refers to this regime and is measured by ``benchmarks/bench_fig3_pwl.py``.
    Outside the first segment the error is below 0.4 % of the peak.
    """

    def __init__(self, segments: int = 32, breakpoints: Optional[Sequence[float]] = None):
        if segments < 1:
            raise ValueError("segments must be positive")
        if breakpoints is None:
            points = np.linspace(0.0, 1.0, segments + 1)
        else:
            points = np.asarray(breakpoints, dtype=np.float64)
            if points.size != segments + 1:
                raise ValueError("need segments + 1 breakpoints")
            if points[0] != 0.0 or points[-1] != 1.0:
                raise ValueError("breakpoints must span [0, 1]")
            if np.any(np.diff(points) <= 0):
                raise ValueError("breakpoints must be strictly increasing")
        self.segments = segments
        self.breakpoints = points
        values = np.array([xlogx(float(x)) for x in points])
        widths = np.diff(points)
        self.slopes = np.diff(values) / widths
        self.intercepts = values[:-1] - self.slopes * points[:-1]

    # -- evaluation -----------------------------------------------------------
    def segment_index(self, x: float) -> int:
        """Index of the segment containing ``x`` (what the top address bits select)."""
        if x < 0 or x > 1:
            raise ValueError("x must lie in [0, 1]")
        index = int(np.searchsorted(self.breakpoints, x, side="right")) - 1
        return min(max(index, 0), self.segments - 1)

    def evaluate(self, x: float) -> float:
        """Approximate g(x) = -x·ln(x) with the stored segment parameters."""
        index = self.segment_index(x)
        return float(self.slopes[index] * x + self.intercepts[index])

    __call__ = evaluate

    def evaluate_counted(self, x: float, processor) -> float:
        """Evaluate while charging the processor model (1 LUT, 1 MUL, 1 ADD).

        ``processor`` is a :class:`repro.sw.processor.SoftwareProcessor`; the
        slope/intercept pair is one table entry, the interpolation is a
        multiply-accumulate on ~16-bit fixed-point quantities.
        """
        index = self.segment_index(x)
        slope = processor.lut_lookup(self.slopes.tolist(), index, result_bits=16)
        argument = processor.constant(x, 16)
        product = processor.mul(slope, argument)
        intercept = processor.constant(float(self.intercepts[index]), 16)
        result = processor.add(product, intercept)
        return float(result.value)

    # -- error metrics ------------------------------------------------------------
    def error_profile(self, samples: int = 10001) -> dict:
        """Error statistics over a dense grid, for the Fig. 3 benchmark.

        Returns a dictionary with the maximum absolute error, the x at which
        it occurs, the error relative to the function's peak (1/e), and the
        maximum error outside the first segment.
        """
        xs = np.linspace(0.0, 1.0, samples)
        exact = np.array([xlogx(float(x)) for x in xs])
        approx = np.array([self.evaluate(float(x)) for x in xs])
        errors = np.abs(approx - exact)
        peak = 1.0 / math.e
        worst = int(np.argmax(errors))
        outside_first = xs >= self.breakpoints[1]
        return {
            "max_abs_error": float(errors[worst]),
            "argmax": float(xs[worst]),
            "max_error_relative_to_peak": float(errors[worst] / peak),
            "max_abs_error_outside_first_segment": float(errors[outside_first].max()),
            "mean_abs_error": float(errors.mean()),
            "segments": self.segments,
        }
