"""The software half of the platform: verification routines on a 16-bit core.

The paper moves every operation that is *not* needed while bits are being
generated into software running on whatever processor the embedded system
already contains (a microcontroller, DSP or soft core).  This package models
that software:

* :mod:`repro.sw.processor` — a 16-bit software-platform model; every
  arithmetic operation performed by the routines is decomposed into 16-bit
  word operations and counted (the ADD/SUB/MUL/SQR/SHIFT/COMP/LUT/READ rows
  of Table III);
* :mod:`repro.sw.pwl` — the 32-segment piece-wise-linear approximation of
  x·log(x) used by the approximate-entropy routine (Fig. 3);
* :mod:`repro.sw.critical_values` — the precomputed constants (inverse
  critical values) that replace P-value computation, as a function of the
  level of significance α;
* :mod:`repro.sw.routines` — the per-test verification routines operating on
  the hardware counter values of Table II;
* :mod:`repro.sw.cycles` — cycle-count models for openMSP430-class platforms
  (the latency entry of Table IV).
"""

from repro.sw.processor import InstructionCounts, SoftwareProcessor, SWValue
from repro.sw.pwl import PiecewiseLinearXLogX
from repro.sw.critical_values import CriticalValues
from repro.sw.routines import SoftwareVerdict, SoftwareVerifier
from repro.sw.cycles import CYCLE_PROFILES, estimate_cycles

__all__ = [
    "InstructionCounts",
    "SoftwareProcessor",
    "SWValue",
    "PiecewiseLinearXLogX",
    "CriticalValues",
    "SoftwareVerdict",
    "SoftwareVerifier",
    "CYCLE_PROFILES",
    "estimate_cycles",
]
