"""Implementation-cost evaluation: FPGA, ASIC, software latency, baselines.

These models translate the raw resource reports of the hardware model into
the quantities Table III and Table IV report (Spartan-6 slices / FFs / LUTs /
maximum frequency, ASIC gate equivalents, software instruction counts and
cycle latency), and provide the standalone-implementation baseline of
Veljković et al. [13] for the Table IV comparison.  The attribution helpers
pivot a detection campaign's cells into the complementary comparison: which
implemented test actually catches which threat.
"""

from repro.eval.attribution import (
    attribution_rows,
    attribution_tests,
    format_attribution_table,
)
from repro.eval.fpga import FpgaEstimate, SPARTAN6_MODEL, estimate_fpga
from repro.eval.asic import AsicEstimate, UMC130_MODEL, estimate_asic
from repro.eval.latency import LatencyReport, latency_report, throughput_mbit_per_s
from repro.eval.comparison import (
    StandaloneTestEstimate,
    standalone_baseline,
    unified_vs_standalone,
)
from repro.eval.power import (
    PowerPoint,
    bias_power_curve,
    correlation_power_curve,
    detection_rate,
    false_alarm_rate,
)

__all__ = [
    "attribution_rows",
    "attribution_tests",
    "format_attribution_table",
    "PowerPoint",
    "bias_power_curve",
    "correlation_power_curve",
    "detection_rate",
    "false_alarm_rate",
    "FpgaEstimate",
    "SPARTAN6_MODEL",
    "estimate_fpga",
    "AsicEstimate",
    "UMC130_MODEL",
    "estimate_asic",
    "LatencyReport",
    "latency_report",
    "throughput_mbit_per_s",
    "StandaloneTestEstimate",
    "standalone_baseline",
    "unified_vs_standalone",
]
