"""Latency and throughput figures of the platform.

Two claims of Section IV are checked here:

* all hardware designs keep up with an input bit rate of at least
  100 Mbit/s (one bit per clock at > 100 MHz);
* the latency of the software verification routine, while much higher than a
  pure-hardware test, stays far below the time needed to *generate* the next
  sequence, so the software never becomes the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.fpga import FpgaEstimate
from repro.sw.cycles import CYCLE_PROFILES, estimate_cycles
from repro.sw.processor import InstructionCounts

__all__ = ["LatencyReport", "latency_report", "throughput_mbit_per_s"]


def throughput_mbit_per_s(fpga: FpgaEstimate) -> float:
    """Sustained input bit rate: one bit per clock at the estimated fmax."""
    return fpga.max_frequency_mhz


@dataclass(frozen=True)
class LatencyReport:
    """Software latency versus sequence generation time for one design point."""

    design: str
    n: int
    instruction_total: int
    software_cycles: float
    software_time_us: float
    generation_time_us: float
    latency_ratio: float
    profile: str

    def as_row(self) -> dict:
        return {
            "design": self.design,
            "n": self.n,
            "instructions": self.instruction_total,
            "sw_cycles": round(self.software_cycles),
            "sw_time_us": round(self.software_time_us, 1),
            "generation_time_us": round(self.generation_time_us, 1),
            "sw_over_generation": round(self.latency_ratio, 4),
            "profile": self.profile,
        }


def latency_report(
    design_name: str,
    n: int,
    counts: InstructionCounts,
    profile: str = "openmsp430_hw_mult",
    cpu_mhz: float = 100.0,
    trng_bit_rate_mbit_s: float = 10.0,
) -> LatencyReport:
    """Build the latency comparison for one design point.

    Parameters
    ----------
    design_name, n:
        Identify the design point.
    counts:
        Instruction tally of one software verification pass.
    profile:
        Cycle-cost profile (see :data:`repro.sw.cycles.CYCLE_PROFILES`).
    cpu_mhz:
        Clock frequency of the software platform.
    trng_bit_rate_mbit_s:
        Output bit rate of the TRNG being monitored (10 Mbit/s is a fast
        oscillator-based FPGA TRNG; the comparison only strengthens for the
        slower sources that are common in practice).
    """
    if profile not in CYCLE_PROFILES:
        raise ValueError(f"unknown cycle profile {profile!r}")
    cycles = estimate_cycles(counts, profile)
    software_time_us = cycles / cpu_mhz
    generation_time_us = n / trng_bit_rate_mbit_s
    return LatencyReport(
        design=design_name,
        n=n,
        instruction_total=counts.total(),
        software_cycles=cycles,
        software_time_us=software_time_us,
        generation_time_us=generation_time_us,
        latency_ratio=software_time_us / generation_time_us,
        profile=profile,
    )
