"""ASIC gate-equivalent estimation (UMC 0.13 µm low-leakage library).

The paper synthesises the same RTL with Synopsys Design Compiler to UMC's
0.13 µm standard-cell library and reports the area in gate equivalents (GE,
the area of one NAND2).  Standing in for the synthesis run, this model
converts the component-level resource report into GE with per-primitive
costs: a flip-flop is 5–8 GE in such libraries, a LUT-worth of random logic
is 2–3 GE.  The constants are calibrated against the paper's own Table III;
the ASIC benchmark checks ordering and relative growth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hwsim.resources import ResourceReport

__all__ = ["AsicTechnologyModel", "UMC130_MODEL", "AsicEstimate", "estimate_asic"]


@dataclass(frozen=True)
class AsicTechnologyModel:
    """Calibration constants of the ASIC estimation model."""

    name: str
    ge_per_flip_flop: float = 7.5
    ge_per_lut: float = 2.2
    ge_fixed_overhead: float = 60.0  # clock/reset distribution, interface glue


#: Constants calibrated against the paper's Table III (UMC 0.13 µm, typical).
UMC130_MODEL = AsicTechnologyModel(name="UMC 0.13um 1P8M low-leakage, typical corner")


@dataclass(frozen=True)
class AsicEstimate:
    """ASIC implementation estimate for one hardware block."""

    label: str
    gate_equivalents: int
    flip_flops: int

    def as_row(self) -> dict:
        """One row of the ASIC part of the Table III reproduction."""
        return {"design": self.label, "ge": self.gate_equivalents, "ff": self.flip_flops}


def estimate_asic(
    report: ResourceReport, model: AsicTechnologyModel = UMC130_MODEL
) -> AsicEstimate:
    """Estimate the ASIC area (GE) for a hardware resource report."""
    ge = (
        model.ge_per_flip_flop * report.flip_flops
        + model.ge_per_lut * report.lut_estimate
        + model.ge_fixed_overhead
    )
    return AsicEstimate(
        label=report.label,
        gate_equivalents=int(round(ge)),
        flip_flops=int(report.flip_flops),
    )
