"""Comparison against standalone per-test implementations (Table IV).

The baseline of Table IV is Veljković et al. (DATE 2012, ref. [13]): each
test implemented as an individual hardware block that completes the *whole*
test in hardware — including the arithmetic that this paper moves to
software — and reports through its own alarm.  The baseline model therefore
charges each standalone test block:

* its own bit-serial counters (no sharing with other tests: no shared ones
  counter, no shared shift register, no shared pattern banks), and
* a result-evaluation datapath (multiplier/accumulator/comparator sized for
  the test's statistic) that the unified design does not need in hardware.

The unified design, in exchange, pays the software latency of the
verification routine — which Table IV shows is still far below the sequence
generation time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.eval.fpga import FpgaEstimate, estimate_fpga
from repro.hwsim.resources import ResourceReport
from repro.hwtests.block import UnifiedTestingBlock
from repro.hwtests.parameters import DesignParameters, SharingOptions, counter_width

__all__ = ["StandaloneTestEstimate", "standalone_baseline", "unified_vs_standalone"]

#: Tests that need a multiplier/accumulator to finish their statistic in HW
#: (sum of squares / χ²-style post-processing).
_NEEDS_MULTIPLIER = {2, 4, 7, 8, 11, 12}
#: Tests whose post-processing is comparison-only even in hardware.
_COMPARISON_ONLY = {1, 3, 13}


@dataclass(frozen=True)
class StandaloneTestEstimate:
    """FPGA estimate of one standalone (full-test-in-hardware) block."""

    test_number: int
    fpga: FpgaEstimate
    evaluation_luts: int
    evaluation_ffs: int


def _evaluation_datapath_cost(test_number: int, params: DesignParameters) -> Dict[str, int]:
    """Extra logic a standalone block needs to finish its test in hardware.

    A w×w sequential multiplier costs roughly 2.5·w LUTs and 3·w FFs
    (operand, accumulator and control registers); comparison-only tests get a
    constant-comparator plus a small FSM.
    """
    w = counter_width(params.n)
    if test_number in _NEEDS_MULTIPLIER:
        return {"luts": int(2.5 * w) + 24, "ffs": 3 * w + 8}
    if test_number in _COMPARISON_ONLY:
        return {"luts": w + 8, "ffs": 8}
    raise ValueError(f"test {test_number} is not hardware-suitable")


def standalone_baseline(
    params: DesignParameters, tests: Sequence[int]
) -> List[StandaloneTestEstimate]:
    """Estimate each test as its own standalone hardware block ([13]-style)."""
    estimates = []
    for number in tests:
        block = UnifiedTestingBlock(
            params, tests=[number], sharing=SharingOptions.all_disabled()
        )
        report = block.resources()
        extra = _evaluation_datapath_cost(number, params)
        combined = ResourceReport(
            flip_flops=report.flip_flops + extra["ffs"],
            lut_estimate=report.lut_estimate + extra["luts"],
            max_counter_width=report.max_counter_width,
            readout_values=0,  # a standalone block only outputs its alarm
            components=report.components,
            label=f"standalone_test{number}",
        )
        estimates.append(
            StandaloneTestEstimate(
                test_number=number,
                fpga=estimate_fpga(combined),
                evaluation_luts=extra["luts"],
                evaluation_ffs=extra["ffs"],
            )
        )
    return estimates


def unified_vs_standalone(
    params: DesignParameters,
    tests: Sequence[int],
    software_latency_cycles: float,
    standalone_latency_cycles: float = 21.0,
) -> Dict[str, object]:
    """The Table IV comparison for one design point.

    Parameters
    ----------
    params, tests:
        The unified design point to compare (the paper uses the 65 536-bit
        medium design: tests 1, 2, 3, 4, 7, 13).
    software_latency_cycles:
        Measured cycle count of the unified design's software routine.
    standalone_latency_cycles:
        Result latency of the standalone baseline (the slowest individual
        test of [13] finishes its hardware post-processing in 21 cycles).
    """
    unified_block = UnifiedTestingBlock(params, tests=tests)
    unified_fpga = estimate_fpga(unified_block.resources())
    standalone = standalone_baseline(params, tests)
    standalone_slices = sum(item.fpga.slices for item in standalone)
    return {
        "tests": tuple(tests),
        "sequence_length": params.n,
        "unified_slices": unified_fpga.slices,
        "standalone_slices_total": standalone_slices,
        "slice_saving_percent": 100.0 * (1.0 - unified_fpga.slices / standalone_slices),
        "unified_latency_cycles": software_latency_cycles,
        "standalone_latency_cycles": standalone_latency_cycles,
        "per_test_standalone_slices": {
            item.test_number: item.fpga.slices for item in standalone
        },
    }
